//! Offline shim for the `rand` crate.
//!
//! The workspace's own generators (`dwr_sim::SimRng`) implement
//! [`RngCore`] so adaptors written against the `rand` trait vocabulary
//! keep compiling without a crates.io mirror. Only the trait and its
//! error type are provided.

use std::fmt;

/// Error type for fallible randomness sources (never produced by the
/// deterministic generators in this workspace).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("random number generator failure")
    }
}

impl std::error::Error for Error {}

/// The core random-number-generator interface, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible fill; the default delegates to [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}
