//! Collection strategies: `vec`, `btree_set`, `btree_map`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

/// A size specification for collection strategies: either an exact size
/// or a half-open range of sizes.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        debug_assert!(self.lo < self.hi, "empty size range");
        self.lo + rng.below((self.hi - self.lo) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange { lo: r.start, hi: r.end }
    }
}

/// Strategy for `Vec<T>` with element strategy `element` and length in
/// `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<T>`. When the element domain is smaller than
/// the requested size, the set saturates below the target rather than
/// looping forever.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size: size.into() }
}

/// See [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.sample(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0usize;
        while set.len() < target && attempts < target * 10 + 16 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}

/// Strategy for `BTreeMap<K, V>`; same saturation rule as
/// [`btree_set`].
pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy { key, value, size: size.into() }
}

/// See [`btree_map`].
#[derive(Debug, Clone)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let target = self.size.sample(rng);
        let mut map = BTreeMap::new();
        let mut attempts = 0usize;
        while map.len() < target && attempts < target * 10 + 16 {
            map.insert(self.key.generate(rng), self.value.generate(rng));
            attempts += 1;
        }
        map
    }
}
