//! Offline shim for the `proptest` crate.
//!
//! The build environment has no crates.io mirror, so the workspace
//! vendors the subset of proptest it actually uses as a small,
//! dependency-free harness. Semantics:
//!
//! * **Deterministic**: every `(test, case)` pair derives its RNG seed
//!   from the test's module path and the case number, so failures are
//!   reproducible run-over-run and independent of execution order.
//! * **No shrinking**: a failing case panics with the `Debug` rendering
//!   of the *original* inputs instead of a minimized counterexample.
//! * **Same surface**: `proptest! { ... }` with `#![proptest_config]`,
//!   `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/`prop_assume!`,
//!   range and tuple strategies, `any::<T>()`,
//!   `prop::collection::{vec, btree_set, btree_map}`, `prop_map`,
//!   `prop_flat_map`, and `Just`.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Fail the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)+);
    }};
}

/// Discard the current case (retried with fresh inputs) unless `cond`
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Define property tests, mirroring proptest's macro of the same name.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                #[allow(unused_imports)]
                use $crate::strategy::Strategy as _;
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut accepted: u32 = 0;
                let mut attempt: u64 = 0;
                while accepted < cfg.cases {
                    attempt += 1;
                    assert!(
                        attempt <= u64::from(cfg.cases) * 20 + 100,
                        "proptest: too many rejected cases in {}",
                        stringify!($name)
                    );
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        attempt,
                    );
                    let mut desc = String::new();
                    #[allow(clippy::redundant_closure_call)]
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            let vals = ( $( ($strat).generate(&mut rng), )+ );
                            desc = format!("{vals:?}");
                            let ( $($arg,)+ ) = vals;
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    match result {
                        Ok(()) => accepted += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case failed: {msg}\n  inputs (not shrunk): {desc}"
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ::std::default::Default::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in -2.0f64..2.0, z in 1usize..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!((1..4).contains(&z));
        }

        #[test]
        fn tuples_and_collections(
            v in prop::collection::vec((0u32..8, any::<u8>()), 0..20),
            s in prop::collection::btree_set(0u64..100, 0..10),
            m in prop::collection::btree_map(0u32..50, 0u32..5, 1..8),
        ) {
            prop_assert!(v.len() < 20);
            prop_assert!(s.len() < 10);
            prop_assert!(!m.is_empty() && m.len() < 8);
            prop_assert!(v.iter().all(|&(a, _)| a < 8));
        }

        #[test]
        fn maps_compose(c in prop::collection::btree_set(0u32..1000, 0..30)
            .prop_flat_map(|docs| {
                let n = docs.len();
                prop::collection::vec(1u32..10, n)
                    .prop_map(move |tfs| docs.iter().copied().zip(tfs).collect::<Vec<_>>())
            })) {
            prop_assert!(c.windows(2).all(|w| w[0].0 < w[1].0));
            prop_assert!(c.iter().all(|&(_, tf)| tf >= 1));
        }

        #[test]
        fn assume_rejects(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }

        #[test]
        fn strings_generate(text in ".*") {
            let _: &str = &text;
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::for_case("t", 1);
        let mut b = crate::test_runner::TestRng::for_case("t", 1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failure_panics_with_inputs() {
        proptest! {
            #[allow(unused)]
            fn always_fails(x in 0u32..5) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
