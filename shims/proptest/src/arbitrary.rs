//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite full-range floats; NaN/inf generation isn't needed by
        // any workspace property.
        (rng.unit_f64() - 0.5) * 2e12
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-domain strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: PhantomData }
}
