//! Configuration, RNG, and case outcomes for the shim harness.

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; the shim trades a little
        // coverage for CI latency. Heavier suites override per-file.
        ProptestConfig { cases: 64 }
    }
}

/// Why a case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — retry with fresh inputs, don't count it.
    Reject(String),
    /// `prop_assert!` failed — the property is violated.
    Fail(String),
}

/// SplitMix64 step: bijective mixer used for seeding and generation.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test identifier and case number.
    pub fn for_case(test_id: &str, case: u64) -> Self {
        // FNV-1a over the id, then mix in the case number.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in test_id.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut state = h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        splitmix64(&mut state);
        TestRng { state }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Uniform in `[0, bound)` via the multiply-shift reduction.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
