//! The [`Strategy`] trait and the built-in strategies: numeric ranges,
//! tuples, strings, `Just`, and the `prop_map`/`prop_flat_map`
//! combinators.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Generate an intermediate value, then generate from the strategy
    /// `f` builds out of it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = u64::from(self.end as u64 - self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for Range<usize> {
    type Value = usize;
    fn generate(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

int_range_strategy!(u8, u16, u32);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + ((f64::from(self.end) - f64::from(self.start)) * rng.unit_f64()) as f32
    }
}

macro_rules! tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(S1 / s1);
tuple_strategy!(S1 / s1, S2 / s2);
tuple_strategy!(S1 / s1, S2 / s2, S3 / s3);
tuple_strategy!(S1 / s1, S2 / s2, S3 / s3, S4 / s4);

/// A pattern string used as a strategy (e.g. `".*"`).
///
/// The shim does not implement regex-driven generation; any pattern
/// yields arbitrary short strings mixing ASCII, whitespace, and
/// multi-byte characters, which is what the workspace's only use
/// (`".*"`) needs.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        const ALPHABET: &[char] = &[
            'a', 'b', 'c', 'z', 'A', 'Q', '0', '7', ' ', '\t', '\n', '-', '_', '.', ',', '!', 'é',
            'ß', '中', '🦀', '\u{0}',
        ];
        let len = rng.below(24) as usize;
        (0..len).map(|_| ALPHABET[rng.below(ALPHABET.len() as u64) as usize]).collect()
    }
}
