//! Offline shim for the `criterion` benchmark harness.
//!
//! Provides the subset of criterion's API that the `dwr-bench` benches
//! use — `criterion_group!` / `criterion_main!`, [`Criterion`],
//! benchmark groups, [`BenchmarkId`] and `bench_with_input` — with a
//! simple but honest measurement loop: each benchmark is warmed up,
//! then timed over enough iterations to fill a minimum measurement
//! window, and the mean wall-clock time per iteration is printed.
//! No statistics, plots, or baselines; just numbers on stdout, so the
//! bench trajectory can still be tracked run-over-run.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Warmup time per benchmark.
const WARMUP: Duration = Duration::from_millis(300);
/// Minimum measurement window per benchmark.
const MEASURE: Duration = Duration::from_millis(700);

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Create a harness with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { _parent: self, group: name.to_string() }
    }

    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_bench(name, |b| f(b));
        self
    }
}

/// A named group of benchmarks (prefixes every benchmark id).
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for criterion compatibility; the shim's measurement
    /// window is time-based, so the sample count is ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run a named benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.group, id), |b| f(b));
        self
    }

    /// Run a parameterized benchmark in this group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.group, id), |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// Create an id from a function name and a parameter value.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        BenchmarkId { name: name.into(), param: param.to_string() }
    }

    /// Create an id from a parameter value alone.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId { name: String::new(), param: param.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.name.is_empty() {
            write!(f, "{}", self.param)
        } else {
            write!(f, "{}/{}", self.name, self.param)
        }
    }
}

/// Passed to every benchmark closure; [`Bencher::iter`] runs the routine.
#[derive(Debug)]
pub struct Bencher {
    /// Measured mean nanoseconds per iteration, set by `iter`.
    ns_per_iter: f64,
    iters: u64,
}

impl Bencher {
    /// Time `routine`, first warming up, then measuring over a window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: also estimates the per-iteration cost so the
        // measurement loop can pick a batch size.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP {
            black_box(routine());
            warm_iters += 1;
        }
        let est = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let batch = ((0.05 / est.max(1e-9)) as u64).clamp(1, 1_000_000);

        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while total < MEASURE {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total += t.elapsed();
            iters += batch;
        }
        self.ns_per_iter = total.as_secs_f64() * 1e9 / iters as f64;
        self.iters = iters;
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, mut f: F) {
    let mut b = Bencher { ns_per_iter: 0.0, iters: 0 };
    f(&mut b);
    let ns = b.ns_per_iter;
    let human = if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    };
    println!("bench {name:<48} {human:>12}/iter ({} iters)", b.iters);
}

/// Declare a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::new();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 4).to_string(), "f/4");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}
