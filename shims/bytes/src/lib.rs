//! Offline shim for the `bytes` crate.
//!
//! The workspace vendors its third-party surface as minimal shims so the
//! build never needs a crates.io mirror (the build environment has no
//! network). This crate provides only what `dwr-text` uses: an immutable,
//! cheaply-clonable byte buffer ([`Bytes`], backed by `Arc<[u8]>` so it is
//! `Send + Sync` and O(1) to clone), a growable builder ([`BytesMut`]),
//! and the [`Buf`]/[`BufMut`] cursor traits.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. Cloning is O(1) and the
/// buffer can be shared freely across threads.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

/// A growable byte buffer that freezes into an immutable [`Bytes`].
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Create an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable shared buffer.
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data.into() }
    }
}

/// Read cursor over a byte source.
pub trait Buf {
    /// Remaining readable bytes.
    fn remaining(&self) -> usize;
    /// Read one byte and advance.
    fn get_u8(&mut self) -> u8;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn get_u8(&mut self) -> u8 {
        let (first, rest) = self.split_first().expect("buffer underflow");
        *self = rest;
        *first
    }
}

/// Write cursor over a growable byte sink.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, b: u8);
    /// Append a slice.
    fn put_slice(&mut self, s: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, b: u8) {
        self.data.push(b);
    }
    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_freeze() {
        let mut b = BytesMut::new();
        b.put_u8(1);
        b.put_slice(&[2, 3]);
        let frozen = b.freeze();
        assert_eq!(&frozen[..], &[1, 2, 3]);
        assert_eq!(frozen.len(), 3);
        let c = frozen.clone();
        assert_eq!(&c[..], &frozen[..]);
    }

    #[test]
    fn buf_cursor_advances() {
        let data = [9u8, 8, 7];
        let mut cur: &[u8] = &data;
        assert_eq!(cur.get_u8(), 9);
        assert_eq!(cur.get_u8(), 8);
        assert_eq!(cur.remaining(), 1);
    }

    #[test]
    fn bytes_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Bytes>();
        assert_send_sync::<BytesMut>();
    }
}
