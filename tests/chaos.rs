//! Chaos suite: the query engine under `UpDownProcess`-driven outage
//! schedules, randomized and concurrent.
//!
//! Three properties, per ISSUE 2:
//!
//! 1. the engine **never panics**, whatever the schedule (including
//!    schedules wider than the replica groups they drive);
//! 2. `EngineStats` counters are **consistent** with the observed
//!    [`Served`] outcomes — every query increments exactly one outcome
//!    counter;
//! 3. the parallel scatter path stays **bit-for-bit equal** to the
//!    sequential one under the *same* fault schedule.
//!
//! The four `chaos_fixed_seed_*` tests are the deterministic anchors CI
//! runs; the proptest blocks widen the net locally.

use dwr_avail::UpDownProcess;
use dwr_partition::parted::{Corpus, PartitionedIndex};
use dwr_query::cache::LruCache;
use dwr_query::engine::{DistributedEngine, Served};
use dwr_query::faults::FaultSchedule;
use dwr_sim::{SimRng, SimTime, DAY, HOUR, MINUTE};
use dwr_text::TermId;
use proptest::prelude::*;
use std::sync::Arc;

/// A small random corpus over `terms` distinct terms, spread over
/// `partitions` partitions, all derived from `seed`.
fn build_index(docs: u32, terms: u32, partitions: usize, seed: u64) -> PartitionedIndex {
    let mut rng = SimRng::new(seed);
    let corpus: Corpus = (0..docs)
        .map(|d| {
            // BTreeMap dedups terms (the index builder requires strictly
            // ascending postings per term).
            let mut doc = std::collections::BTreeMap::new();
            doc.insert(TermId(d % terms), 1 + d % 3);
            doc.entry(TermId(rng.below(u64::from(terms)) as u32)).or_insert(1);
            doc.into_iter().collect()
        })
        .collect();
    let assignment: Vec<u32> = (0..docs).map(|_| rng.below(partitions as u64) as u32).collect();
    PartitionedIndex::build(&corpus, &assignment, partitions)
}

fn outcome_total(s: dwr_query::engine::EngineStats) -> u64 {
    s.cache_hits + s.full + s.degraded + s.stale + s.failed
}

/// One deterministic single-threaded chaos pass: drive the clock through
/// the horizon, serve a mixed stream, and check outcome/counter
/// consistency. Returns the engine for further inspection.
fn single_thread_chaos(
    partitions: usize,
    replicas: usize,
    n_queries: usize,
    process: &UpDownProcess,
    seed: u64,
) -> DistributedEngine<LruCache> {
    let pi = build_index(40, 24, partitions, seed);
    let horizon = 4 * DAY;
    let schedule =
        Arc::new(FaultSchedule::generate(partitions, replicas, process, horizon, seed ^ 0xFA17));
    let engine = DistributedEngine::new(&pi, LruCache::new(16), replicas)
        .with_faults(schedule)
        .with_deadline(HOUR);
    let mut rng = SimRng::new(seed ^ 1);
    for i in 0..n_queries {
        let t = i as SimTime * horizon / n_queries as SimTime;
        engine.advance_to(t);
        let terms = [TermId(rng.below(24) as u32)];
        let (hits, served) =
            if i % 3 == 0 { engine.query_stale_ok(&terms, 8) } else { engine.query(&terms, 8) };
        match served {
            Served::Failed => assert!(hits.is_empty(), "failed queries return nothing"),
            Served::Degraded { missing } => {
                assert!(missing >= 1 && missing < partitions.max(2), "missing={missing}");
            }
            Served::Shed => unreachable!("a single-site engine never sheds"),
            Served::Partial { .. } => unreachable!("no gather deadline configured"),
            Served::Routed { .. } => unreachable!("no router configured"),
            Served::CacheHit | Served::Full | Served::StaleFromCache => {}
        }
    }
    assert_eq!(
        outcome_total(engine.stats()),
        n_queries as u64,
        "every query lands in exactly one outcome counter"
    );
    engine
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property 1+2: random schedules, no panics, consistent counters.
    #[test]
    fn random_schedules_never_panic_and_counters_add_up(
        partitions in 1usize..6,
        replicas in 1usize..4,
        n_queries in 1usize..80,
        mtbf_hours in 1u64..48,
        mttr_minutes in 5u64..360,
        bursty in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let process = if bursty {
            UpDownProcess::bursty(mtbf_hours * HOUR, mttr_minutes * MINUTE, 0.7)
        } else {
            UpDownProcess::exponential(mtbf_hours * HOUR, mttr_minutes * MINUTE)
        };
        single_thread_chaos(partitions, replicas, n_queries, &process, seed);
    }

    /// Property 3: the parallel scatter path is bit-for-bit equal to the
    /// sequential one under the *same* fault schedule — hits, `Served`
    /// outcomes, latencies, and final stats.
    #[test]
    fn parallel_equals_sequential_under_same_schedule(
        partitions in 1usize..5,
        replicas in 1usize..4,
        threads in 2usize..5,
        n_queries in 1usize..60,
        mtbf_hours in 1u64..24,
        seed in any::<u64>(),
    ) {
        let pi = build_index(30, 20, partitions, seed);
        let horizon = 2 * DAY;
        let process = UpDownProcess::exponential(mtbf_hours * HOUR, 2 * HOUR);
        let schedule = Arc::new(FaultSchedule::generate(
            partitions, replicas, &process, horizon, seed ^ 0xC4A0,
        ));
        let seq = DistributedEngine::new(&pi, LruCache::new(16), replicas)
            .with_faults(Arc::clone(&schedule));
        let par = DistributedEngine::new(&pi, LruCache::new(16), replicas)
            .with_faults(schedule)
            .with_parallelism(threads);
        let mut rng = SimRng::new(seed ^ 2);
        for i in 0..n_queries {
            let t = i as SimTime * horizon / n_queries as SimTime;
            seq.advance_to(t);
            par.advance_to(t);
            let terms = [TermId(rng.below(20) as u32)];
            if i % 3 == 0 {
                let a = seq.query_stale_ok(&terms, 10);
                let b = par.query_stale_ok(&terms, 10);
                prop_assert_eq!(&a.0, &b.0, "stale hits diverge at t={}", t);
                prop_assert_eq!(a.1, b.1, "stale outcome diverges at t={}", t);
            } else {
                let a = seq.query_full(&terms, 10);
                let b = par.query_full(&terms, 10);
                prop_assert_eq!(&a.hits, &b.hits, "hits diverge at t={}", t);
                prop_assert_eq!(a.served, b.served, "outcome diverges at t={}", t);
                prop_assert_eq!(a.latency, b.latency, "latency diverges at t={}", t);
            }
        }
        prop_assert_eq!(seq.stats(), par.stats());
        prop_assert_eq!(seq.cache_stats(), par.cache_stats());
        prop_assert_eq!(seq.dispatch_counts(), par.dispatch_counts());
    }
}

/// A schedule wider than the engine (more partitions, more replicas)
/// must be harmless: the extra targets are ignored.
#[test]
fn oversized_schedule_cannot_crash_the_engine() {
    let pi = build_index(24, 10, 2, 9);
    let process = UpDownProcess::exponential(HOUR, 30 * MINUTE);
    let schedule = Arc::new(FaultSchedule::generate(5, 6, &process, DAY, 3));
    let engine = DistributedEngine::new(&pi, LruCache::new(8), 2).with_faults(schedule);
    for i in 0..200u64 {
        engine.advance_to(i * DAY / 200);
        engine.query(&[TermId((i % 10) as u32)], 5);
    }
    assert_eq!(outcome_total(engine.stats()), 200);
}

/// The concurrent chaos anchor: client threads serve a query stream
/// while a driver thread advances the fault schedule and a saboteur
/// injects manual (sometimes out-of-range) replica toggles. The engine
/// must never panic and the outcome counters must account for every
/// query issued.
fn concurrent_chaos_run(seed: u64) {
    const CLIENTS: usize = 4;
    const QUERIES_PER_CLIENT: usize = 250;
    let partitions = 4;
    let replicas = 2;
    let horizon = DAY;
    let pi = build_index(48, 24, partitions, seed);
    let process = UpDownProcess::exponential(2 * HOUR, 30 * MINUTE);
    let schedule = Arc::new(FaultSchedule::generate(partitions, replicas, &process, horizon, seed));
    let engine = Arc::new(
        DistributedEngine::new(&pi, LruCache::new(32), replicas)
            .with_faults(schedule)
            .with_deadline(HOUR)
            .with_parallelism(3),
    );
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    std::thread::scope(|s| {
        // Fault driver: sweeps simulated time across the horizon.
        {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut t: SimTime = 0;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    engine.advance_to(t % horizon);
                    t += horizon / 500;
                    std::thread::yield_now();
                }
            });
        }
        // Saboteur: manual toggles racing the schedule, including
        // out-of-range targets that must be ignored gracefully.
        {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut rng = SimRng::new(seed ^ 0x5AB0);
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let p = rng.below(8) as usize; // half out of range
                    let r = rng.below(4) as usize; // half out of range
                    engine.set_replica_alive(p, r, rng.below(2) == 0);
                    std::thread::yield_now();
                }
            });
        }
        let mut handles = Vec::new();
        for c in 0..CLIENTS {
            let engine = Arc::clone(&engine);
            handles.push(s.spawn(move || {
                let mut rng = SimRng::new(seed ^ (c as u64) << 8);
                for i in 0..QUERIES_PER_CLIENT {
                    let terms = [TermId(rng.below(24) as u32)];
                    let (hits, served) = if i % 2 == 0 {
                        engine.query_stale_ok(&terms, 8)
                    } else {
                        engine.query(&terms, 8)
                    };
                    if served == Served::Failed {
                        assert!(hits.is_empty());
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("no client panics under chaos");
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });
    assert_eq!(
        outcome_total(engine.stats()),
        (CLIENTS * QUERIES_PER_CLIENT) as u64,
        "counter totals equal queries served"
    );
}

#[test]
fn chaos_fixed_seed_1() {
    concurrent_chaos_run(0xC4A0_0001);
}

#[test]
fn chaos_fixed_seed_2() {
    concurrent_chaos_run(0xC4A0_0002);
}

#[test]
fn chaos_fixed_seed_3() {
    concurrent_chaos_run(0xC4A0_0003);
}

#[test]
fn chaos_fixed_seed_4() {
    concurrent_chaos_run(0xC4A0_0004);
}
