//! Site-tier chaos suite: the [`MultiSiteEngine`] under whole-site
//! outage traces, randomized and concurrent.
//!
//! Three properties, per ISSUE 3:
//!
//! 1. the site tier **never panics and never loses a query** — every
//!    query lands in exactly one [`MultiSiteStats`] bucket, even with
//!    client threads racing a clock driver over fault-injected inner
//!    engines;
//! 2. `Served::Failed` is impossible while **any site is live**: an
//!    arbitrary outage schedule that leaves at least one site up yields
//!    only served/degraded/shed outcomes;
//! 3. the parallel scatter path inside each site stays **bit-for-bit
//!    equal** to the sequential one under any site-outage schedule — the
//!    PR 1/2 equivalence lifts to the site tier.
//!
//! The four `site_chaos_fixed_seed_*` tests are the deterministic
//! anchors CI runs; the proptest blocks widen the net locally.

use dwr_avail::failure::UpDownProcess;
use dwr_avail::site::{Site, SiteConfig};
use dwr_partition::parted::{Corpus, PartitionedIndex};
use dwr_query::cache::LruCache;
use dwr_query::engine::{DistributedEngine, Served};
use dwr_query::faults::{site_outage_traces, FaultSchedule};
use dwr_query::multisite::{MultiSiteConfig, MultiSiteEngine, SiteEngineSpec};
use dwr_sim::net::Topology;
use dwr_sim::{SimRng, SimTime, DAY, HOUR, MINUTE};
use dwr_text::TermId;
use proptest::prelude::*;
use std::sync::Arc;

/// A small random corpus over `terms` distinct terms, spread over
/// `partitions` partitions, all derived from `seed`.
fn build_index(docs: u32, terms: u32, partitions: usize, seed: u64) -> PartitionedIndex {
    let mut rng = SimRng::new(seed);
    let corpus: Corpus = (0..docs)
        .map(|d| {
            let mut doc = std::collections::BTreeMap::new();
            doc.insert(TermId(d % terms), 1 + d % 3);
            doc.entry(TermId(rng.below(u64::from(terms)) as u32)).or_insert(1);
            doc.into_iter().collect()
        })
        .collect();
    let assignment: Vec<u32> = (0..docs).map(|_| rng.below(partitions as u64) as u32).collect();
    PartitionedIndex::build(&corpus, &assignment, partitions)
}

/// Assemble a site tier: one engine per trace over a shared index, each
/// with its own inner fault schedule, on a geo ring.
fn build_tier(
    pi: &PartitionedIndex,
    traces: Vec<Site>,
    horizon: SimTime,
    inner_threads: usize,
    cfg: MultiSiteConfig,
    seed: u64,
) -> MultiSiteEngine<LruCache> {
    let process = UpDownProcess::exponential(12 * HOUR, HOUR);
    let n = traces.len();
    let sites = traces
        .into_iter()
        .enumerate()
        .map(|(s, outages)| {
            let schedule = Arc::new(FaultSchedule::generate(
                pi.num_partitions(),
                2,
                &process,
                horizon,
                seed ^ ((s as u64) << 32),
            ));
            let mut engine = DistributedEngine::new(pi, LruCache::new(32), 2)
                .with_faults(schedule)
                .with_deadline(HOUR);
            if inner_threads > 1 {
                engine = engine.with_parallelism(inner_threads);
            }
            SiteEngineSpec { region: s as u16, capacity_qps: 200.0, engine, outages }
        })
        .collect();
    MultiSiteEngine::new(sites, Topology::geo_ring(n), cfg)
}

/// The concurrent chaos anchor: client threads serve a query stream from
/// rotating regions while a driver thread sweeps simulated time across
/// BIRN-like site outages and the inner fault schedules. The tier must
/// never panic and must account for every query issued.
fn site_chaos_run(seed: u64) {
    const CLIENTS: usize = 4;
    const QUERIES_PER_CLIENT: usize = 200;
    let horizon = 30 * DAY;
    let pi = build_index(48, 24, 4, seed);
    let traces = site_outage_traces(3, &SiteConfig::birn_like(2), horizon, seed);
    let cfg = MultiSiteConfig { shed_threshold: 0.9, util_window: MINUTE, ..Default::default() };
    let engine = Arc::new(build_tier(&pi, traces, horizon, 3, cfg, seed));
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    std::thread::scope(|s| {
        // Outage driver: sweeps simulated time across the horizon.
        {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut t: SimTime = 0;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    engine.advance_to(t % horizon);
                    t += horizon / 500;
                    std::thread::yield_now();
                }
            });
        }
        let mut handles = Vec::new();
        for c in 0..CLIENTS {
            let engine = Arc::clone(&engine);
            handles.push(s.spawn(move || {
                let mut rng = SimRng::new(seed ^ (c as u64) << 8);
                for _ in 0..QUERIES_PER_CLIENT {
                    let region = rng.below(4) as u16; // sometimes no local site
                    let terms = [TermId(rng.below(24) as u32)];
                    let r = engine.query(region, &terms, 8);
                    match r.served {
                        Served::Failed | Served::Shed => {
                            assert!(r.hits.is_empty(), "no-result outcomes return nothing");
                            assert!(r.site.is_none());
                        }
                        _ => assert!(r.site.is_some(), "served queries name their site"),
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("no client panics under site chaos");
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });
    let stats = engine.stats();
    assert_eq!(
        stats.total(),
        (CLIENTS * QUERIES_PER_CLIENT) as u64,
        "every query lands in exactly one site-tier bucket: {stats:?}"
    );
}

#[test]
fn site_chaos_fixed_seed_1() {
    site_chaos_run(0x517E_0001);
}

#[test]
fn site_chaos_fixed_seed_2() {
    site_chaos_run(0x517E_0002);
}

#[test]
fn site_chaos_fixed_seed_3() {
    site_chaos_run(0x517E_0003);
}

#[test]
fn site_chaos_fixed_seed_4() {
    site_chaos_run(0x517E_0004);
}

/// A single-threaded pass over the tier is reproducible: same seed, same
/// traces, same outcome sequence and counters.
#[test]
fn site_tier_is_deterministic_given_a_seed() {
    let run = |seed: u64| {
        let horizon = 30 * DAY;
        let pi = build_index(40, 20, 4, seed);
        let traces = site_outage_traces(3, &SiteConfig::birn_like(2), horizon, seed);
        let engine = build_tier(&pi, traces, horizon, 1, MultiSiteConfig::default(), seed);
        let mut log = Vec::new();
        for i in 0..300u64 {
            engine.advance_to(i * horizon / 300);
            let r = engine.query((i % 3) as u16, &[TermId((i % 20) as u32)], 8);
            log.push((r.served, r.site, r.wan_hops, r.latency));
        }
        (log, engine.stats())
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7).1, run(8).1, "different seeds explore different schedules");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property 2: any outage schedule that leaves at least one site
    /// live yields zero `Failed` queries — only served, degraded, or
    /// explicitly shed outcomes.
    #[test]
    fn live_site_implies_no_failed_queries(
        n_sites in 2usize..5,
        live_pick in any::<u64>(),
        n_queries in 1usize..80,
        mtbf_hours in 1u64..24,
        mttr_hours in 1u64..48,
        seed in any::<u64>(),
    ) {
        let horizon = 10 * DAY;
        // Aggressive outages everywhere except one always-live site.
        let process = UpDownProcess::exponential(mtbf_hours * HOUR, mttr_hours * HOUR);
        let live = (live_pick % n_sites as u64) as usize;
        let root = SimRng::new(seed);
        let traces: Vec<Site> = (0..n_sites)
            .map(|s| {
                if s == live {
                    Site::always_up(horizon)
                } else {
                    let mut rng = root.fork(s as u64);
                    Site::from_down_intervals(process.down_intervals(horizon, &mut rng), horizon)
                }
            })
            .collect();
        let pi = build_index(32, 16, 3, seed);
        let engine = build_tier(&pi, traces, horizon, 1, MultiSiteConfig::default(), seed);
        let mut rng = SimRng::new(seed ^ 3);
        for i in 0..n_queries {
            let t = i as SimTime * horizon / n_queries as SimTime;
            engine.advance_to(t);
            let region = rng.below(n_sites as u64 + 1) as u16;
            let r = engine.query(region, &[TermId(rng.below(16) as u32)], 8);
            prop_assert_ne!(r.served, Served::Failed, "a live site existed at t={}", t);
        }
        let stats = engine.stats();
        prop_assert_eq!(stats.failed, 0);
        prop_assert_eq!(stats.total(), n_queries as u64);
    }

    /// Property 3: per-site parallel scatter stays bit-for-bit equal to
    /// sequential under the same site-outage schedule — responses, sites,
    /// WAN hops, latencies, and final stats.
    #[test]
    fn parallel_equals_sequential_under_site_outages(
        threads in 2usize..5,
        n_queries in 1usize..60,
        seed in any::<u64>(),
    ) {
        let horizon = 20 * DAY;
        let pi = build_index(36, 18, 4, seed);
        let traces = site_outage_traces(3, &SiteConfig::birn_like(2), horizon, seed);
        let cfg = MultiSiteConfig { shed_threshold: 0.9, util_window: MINUTE, ..Default::default() };
        let seq = build_tier(&pi, traces.clone(), horizon, 1, cfg, seed);
        let par = build_tier(&pi, traces, horizon, threads, cfg, seed);
        let mut rng = SimRng::new(seed ^ 4);
        for i in 0..n_queries {
            let t = i as SimTime * horizon / n_queries as SimTime;
            seq.advance_to(t);
            par.advance_to(t);
            let region = rng.below(3) as u16;
            let terms = [TermId(rng.below(18) as u32)];
            let a = seq.query(region, &terms, 10);
            let b = par.query(region, &terms, 10);
            prop_assert_eq!(&a.hits, &b.hits, "hits diverge at t={}", t);
            prop_assert_eq!(a.served, b.served, "outcome diverges at t={}", t);
            prop_assert_eq!(a.site, b.site, "serving site diverges at t={}", t);
            prop_assert_eq!(a.wan_hops, b.wan_hops, "hops diverge at t={}", t);
            prop_assert_eq!(a.latency, b.latency, "latency diverges at t={}", t);
        }
        prop_assert_eq!(seq.stats(), par.stats());
    }
}
