//! Crawler-tier chaos suite: the distributed crawl under schedule-driven
//! agent churn — repeated crashes *and* recoveries mid-crawl, with
//! consistent-hash host reassignment and politeness-preserving frontier
//! handoff.
//!
//! Three properties, per ISSUE 5:
//!
//! 1. **coverage survives churn** — any fault schedule that keeps at
//!    least one agent alive completes the crawl with coverage within
//!    ε = 0.1 of the no-fault baseline (the survivors inherit every
//!    crashed agent's frontier);
//! 2. **politeness survives handoffs** — from the recorded fetch trace,
//!    no host is ever contacted by two overlapping connections, and
//!    consecutive accesses to one host are at least `politeness_delay`
//!    apart, *across agents and ownership transfers*;
//! 3. **determinism** — the same seed and schedule reproduce the same
//!    crawl, byte for byte, fault accounting included.
//!
//! The `crawl_chaos_fixed_seed_*` tests are the deterministic anchors CI
//! runs; the proptest blocks widen the net locally.

use distributed_web_retrieval::avail::failure::UpDownProcess;
use distributed_web_retrieval::crawler::assign::{ConsistentHashAssigner, HashAssigner};
use distributed_web_retrieval::crawler::sim::{CrawlConfig, CrawlReport, DistributedCrawl};
use distributed_web_retrieval::crawler::AgentSchedule;
use distributed_web_retrieval::sim::{SimTime, MINUTE, SECOND};
use distributed_web_retrieval::webgraph::generate::{generate_web, WebConfig};
use distributed_web_retrieval::webgraph::graph::HostId;
use distributed_web_retrieval::webgraph::qos::QosConfig;
use distributed_web_retrieval::webgraph::SyntheticWeb;
use proptest::prelude::*;
use std::collections::HashMap;

const AGENTS: u32 = 4;

fn chaos_web(seed: u64) -> SyntheticWeb {
    let mut cfg = WebConfig::tiny();
    cfg.num_pages = 600;
    cfg.num_hosts = 30;
    generate_web(&cfg, seed)
}

fn chaos_cfg() -> CrawlConfig {
    CrawlConfig {
        agents: AGENTS,
        connections_per_agent: 8,
        politeness_delay: SECOND / 2,
        batch_size: 20,
        qos: QosConfig { flaky_fraction: 0.0, slow_fraction: 0.0, ..QosConfig::default() },
        record_trace: true,
        ..CrawlConfig::default()
    }
}

fn run(web: &SyntheticWeb, faults: Option<AgentSchedule>, seed: u64) -> CrawlReport {
    let mut cfg = chaos_cfg();
    cfg.faults = faults;
    DistributedCrawl::new(web, ConsistentHashAssigner::new(AGENTS, 64), cfg, seed).run()
}

/// Property 2, checked from the trace: per host, connection spans are
/// disjoint and consecutive accesses sit a full politeness delay apart —
/// no matter which agent (or incarnation) held the connection.
fn assert_politeness(r: &CrawlReport, delay: SimTime) {
    assert_eq!(r.trace.len() as u64, r.attempts, "one span per attempt");
    let mut per_host: HashMap<HostId, Vec<(SimTime, SimTime, u32)>> = HashMap::new();
    for s in &r.trace {
        assert!(s.end >= s.start, "spans run forward");
        per_host.entry(s.host).or_default().push((s.start, s.end, s.agent));
    }
    for (host, mut spans) in per_host {
        spans.sort_unstable();
        for w in spans.windows(2) {
            let (s0, e0, a0) = w[0];
            let (s1, _, a1) = w[1];
            assert!(
                s1 >= e0 + delay,
                "host {host:?} contacted too soon across a handoff: \
                 agent {a0} [{s0}, {e0}] then agent {a1} at {s1} (delay {delay})"
            );
        }
    }
}

/// One full churn scenario: generated schedule, live reassignment,
/// frontier handoffs — coverage, politeness, and accounting all checked.
fn crawl_chaos_run(seed: u64) {
    let web = chaos_web(seed);
    let baseline = run(&web, None, seed);
    assert!(baseline.coverage > 0.9, "baseline must crawl the web: {}", baseline.coverage);

    let process = UpDownProcess::exponential(
        baseline.makespan.max(MINUTE) / 4,
        baseline.makespan.max(MINUTE) / 16,
    );
    let horizon = 4 * baseline.makespan;
    let schedule = AgentSchedule::generate(AGENTS as usize, &process, horizon, seed);
    let r = run(&web, Some(schedule), seed);
    let f = r.faults;
    assert!(f.crashes >= 1, "the schedule must actually crash something: {f:?}");
    assert!(f.hosts_moved > 0, "crashes must move hosts: {f:?}");
    assert!(
        r.coverage > baseline.coverage - 0.1,
        "churn cost too much coverage: {} vs {}",
        r.coverage,
        baseline.coverage
    );
    assert_politeness(&r, chaos_cfg().politeness_delay);
    // Lost-work accounting closes: every crash-lost fetch is a
    // LostInCrash span, and refetches never exceed what was lost.
    let lost_spans = r
        .trace
        .iter()
        .filter(|s| s.outcome == distributed_web_retrieval::crawler::sim::SpanOutcome::LostInCrash)
        .count() as u64;
    assert_eq!(lost_spans, f.lost_inflight);
    assert!(f.refetches <= f.lost_inflight);
}

#[test]
fn crawl_chaos_fixed_seed_1() {
    crawl_chaos_run(0xC4A0_0001);
}

#[test]
fn crawl_chaos_fixed_seed_2() {
    crawl_chaos_run(0xC4A0_0002);
}

#[test]
fn crawl_chaos_fixed_seed_3() {
    crawl_chaos_run(0xC4A0_0003);
}

/// Property 3: the whole churn scenario is reproducible — same seed,
/// same schedule, identical report including the fault accounting and
/// the full fetch trace.
#[test]
fn crawl_chaos_is_deterministic_given_a_seed() {
    let web = chaos_web(99);
    let process = UpDownProcess::exponential(2 * MINUTE, 30 * SECOND);
    let schedule = AgentSchedule::generate(AGENTS as usize, &process, 30 * MINUTE, 99);
    let once = run(&web, Some(schedule.clone()), 99);
    let twice = run(&web, Some(schedule), 99);
    assert_eq!(once.fetched_pages, twice.fetched_pages);
    assert_eq!(once.makespan, twice.makespan);
    assert_eq!(once.faults, twice.faults);
    assert_eq!(once.exchange, twice.exchange);
    assert_eq!(once.trace, twice.trace);

    let other = AgentSchedule::generate(
        AGENTS as usize,
        &UpDownProcess::exponential(2 * MINUTE, 30 * SECOND),
        30 * MINUTE,
        100,
    );
    let third = run(&web, Some(other), 99);
    assert_ne!(once.faults, third.faults, "a different schedule churns differently");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property 1: any generated schedule that leaves at least one agent
    /// alive at all times completes with coverage within ε = 0.1 of the
    /// no-fault baseline.
    #[test]
    fn coverage_survives_any_live_schedule(
        mtbf_min in 1u64..8,
        mttr_min in 1u64..4,
        seed in any::<u64>(),
    ) {
        let web = chaos_web(7);
        let baseline = run(&web, None, 7);
        let process =
            UpDownProcess::exponential(mtbf_min * MINUTE, mttr_min * MINUTE);
        let horizon = 2 * baseline.makespan;
        let schedule = AgentSchedule::generate(AGENTS as usize, &process, horizon, seed);
        prop_assume!(schedule.min_live(AGENTS as usize) >= 1);
        let r = run(&web, Some(schedule), 7);
        prop_assert!(
            r.coverage > baseline.coverage - 0.1,
            "coverage {} vs baseline {} (faults {:?})",
            r.coverage,
            baseline.coverage,
            r.faults
        );
    }

    /// Property 2 at random churn rates and either assignment policy: the
    /// politeness invariant holds in every trace, handoffs included.
    #[test]
    fn politeness_survives_handoffs(
        mtbf_min in 1u64..6,
        mttr_min in 1u64..4,
        use_modulo in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let web = chaos_web(11);
        let process =
            UpDownProcess::exponential(mtbf_min * MINUTE, mttr_min * MINUTE);
        let schedule =
            AgentSchedule::generate(AGENTS as usize, &process, 40 * MINUTE, seed);
        let mut cfg = chaos_cfg();
        cfg.faults = Some(schedule);
        let r = if use_modulo {
            DistributedCrawl::new(&web, HashAssigner::new(AGENTS), cfg, 11).run()
        } else {
            DistributedCrawl::new(&web, ConsistentHashAssigner::new(AGENTS, 64), cfg, 11).run()
        };
        assert_politeness(&r, chaos_cfg().politeness_delay);
    }
}
