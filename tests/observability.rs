//! PR-4 acceptance: observability is *free when off* and *exact when
//! on*.
//!
//! * The default [`NoopRecorder`] is a ZST whose `record` compiles to
//!   nothing: an engine built with it behaves **bit-for-bit** like one
//!   carrying live instruments — hits, `Served` outcomes, simulated
//!   latencies, stats, dispatch ledgers — on the sequential *and* the
//!   parallel scatter path, under fault injection.
//! * A live [`ObsRecorder`] mirrors every offline counter exactly
//!   (engine outcome counters, cache hits/misses, broker query counts,
//!   per-shard busy time to the last bit), and the parallel twin leaves
//!   an identical snapshot because events are emitted only from the
//!   coordinating thread, in deterministic order.

use dwr_avail::UpDownProcess;
use dwr_obs::{NoopRecorder, ObsConfig, ObsRecorder, Snapshot};
use dwr_partition::parted::{Corpus, PartitionedIndex};
use dwr_query::cache::LruCache;
use dwr_query::engine::{DistributedEngine, EngineStats};
use dwr_query::faults::FaultSchedule;
use dwr_sim::{SimRng, SimTime, DAY, HOUR};
use dwr_text::TermId;
use proptest::prelude::*;
use std::sync::Arc;

fn build_partitioned(
    docs: &[std::collections::BTreeMap<u32, u32>],
    k: usize,
    seed: u64,
) -> PartitionedIndex {
    let corpus: Corpus =
        docs.iter().map(|doc| doc.iter().map(|(&t, &tf)| (TermId(t), tf)).collect()).collect();
    let mut rng = SimRng::new(seed);
    let assignment: Vec<u32> = corpus.iter().map(|_| rng.below(k as u64) as u32).collect();
    PartitionedIndex::build(&corpus, &assignment, k)
}

/// Every live counter the recorder keeps must equal the offline mirror
/// the serving crates keep for themselves.
fn assert_live_mirrors_offline(
    snap: &Snapshot,
    stats: EngineStats,
    lookups: u64,
    backend_queries: u64,
) {
    let c = |name: &str| snap.counter(name).unwrap_or(0);
    assert_eq!(c("engine.queries"), lookups, "one QueryStart per serve");
    assert_eq!(c("cache.hits"), stats.cache_hits + stats.stale);
    assert_eq!(c("cache.misses"), lookups - stats.cache_hits - stats.stale);
    assert_eq!(c("engine.served.cache_hit"), stats.cache_hits);
    assert_eq!(c("engine.served.full"), stats.full);
    assert_eq!(c("engine.served.degraded"), stats.degraded);
    assert_eq!(c("engine.served.stale"), stats.stale);
    assert_eq!(c("engine.served.failed"), stats.failed);
    assert_eq!(c("engine.hedges"), stats.hedged);
    assert_eq!(c("broker.queries"), backend_queries);
    assert_eq!(c("scatter.batches"), stats.full + stats.degraded, "one dispatch per evaluation");
    let gathers = snap.histogram("gather.latency_us").map_or(0, |p| p.count());
    assert_eq!(gathers, stats.full + stats.degraded, "one gather per evaluation");
    let outcomes = snap.histogram("engine.latency_us").map_or(0, |p| p.count());
    assert_eq!(outcomes, stats.full + stats.degraded, "latency recorded iff backend answered");
}

#[test]
fn noop_recorder_is_zero_sized() {
    assert_eq!(std::mem::size_of::<NoopRecorder>(), 0);
    // And adding it to the engine adds no state: the recorder field and
    // the broker's copy are both ZSTs.
    assert_eq!(
        std::mem::size_of::<DistributedEngine<LruCache>>(),
        std::mem::size_of::<DistributedEngine<LruCache, NoopRecorder>>(),
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The acceptance property: four engines — {noop, live} ×
    /// {sequential, parallel} — fed the identical fault-injected stream
    /// stay bit-for-bit identical in everything a client or an offline
    /// accountant can observe; and the two live recorders end up with
    /// identical snapshots that mirror the offline stats exactly.
    #[test]
    fn recorders_observe_but_never_steer(
        docs in prop::collection::vec(
            prop::collection::btree_map(0u32..25, 1u32..4, 0..5),
            1..30,
        ),
        k in 1usize..5,
        replicas in 1usize..4,
        threads in 2usize..5,
        n_queries in 1usize..40,
        mtbf_hours in 1u64..24,
        mttr_hours in 1u64..6,
        seed in any::<u64>(),
    ) {
        let pi = build_partitioned(&docs, k, seed);
        let horizon = 2 * DAY;
        let process = UpDownProcess::exponential(mtbf_hours * HOUR, mttr_hours * HOUR);
        let schedule = Arc::new(FaultSchedule::generate(k, replicas, &process, horizon, seed));
        let rec_seq = Arc::new(ObsRecorder::new(ObsConfig::single_site(k).sample(3)));
        let rec_par = Arc::new(ObsRecorder::new(ObsConfig::single_site(k).sample(3)));
        let mk = || DistributedEngine::new(&pi, LruCache::new(16), replicas)
            .with_faults(Arc::clone(&schedule));
        let noop_seq = mk();
        let noop_par = mk().with_parallelism(threads);
        let live_seq = mk().with_obs(Arc::clone(&rec_seq));
        let live_par = mk().with_parallelism(threads).with_obs(Arc::clone(&rec_par));
        let engines = [&noop_seq as &dyn Probe, &noop_par, &live_seq, &live_par];

        let mut rng = SimRng::new(seed ^ 0x000B_5E17);
        for i in 0..n_queries {
            let t = i as SimTime * horizon / n_queries as SimTime;
            for e in engines {
                e.advance(t);
            }
            let terms: Vec<TermId> =
                (0..rng.below(4)).map(|_| TermId(rng.below(30) as u32)).collect();
            let stale_ok = rng.below(4) == 0;
            let a = engines[0].serve(&terms, 10, stale_ok);
            for e in &engines[1..] {
                let b = e.serve(&terms, 10, stale_ok);
                prop_assert_eq!(&a.0, &b.0, "hits diverge on {:?} at t={}", &terms, t);
                prop_assert_eq!(a.1, b.1, "outcome diverges on {:?} at t={}", &terms, t);
                prop_assert_eq!(a.2, b.2, "latency diverges on {:?} at t={}", &terms, t);
            }
        }
        // All four agree on every offline ledger.
        for e in &engines[1..] {
            prop_assert_eq!(engines[0].stats_(), e.stats_());
            prop_assert_eq!(engines[0].dispatches(), e.dispatches());
            prop_assert_eq!(engines[0].busy(), e.busy());
        }
        // The live pair agrees with itself (parallel emits the identical
        // event stream) and with the offline counters.
        prop_assert_eq!(
            rec_seq.snapshot().to_json().render(),
            rec_par.snapshot().to_json().render(),
        );
        let stats = live_seq.stats();
        let cache = live_seq.cache_stats();
        assert_live_mirrors_offline(
            &rec_seq.snapshot(),
            stats,
            cache.hits + cache.misses,
            live_seq.broker().queries_processed(),
        );
        // Busy gauges track the broker's f64 accounting to the last bit.
        let live = rec_seq.busy_us();
        let offline = live_seq.broker().busy_time();
        prop_assert_eq!(live.len(), offline.len());
        for (l, o) in live.iter().zip(&offline) {
            prop_assert_eq!(l.to_bits(), o.to_bits());
        }
        // Span sampling is deterministic: same stream, same spans.
        let render = |r: &ObsRecorder| {
            r.spans().iter().map(dwr_obs::Span::render).collect::<Vec<_>>()
        };
        prop_assert_eq!(render(&rec_seq), render(&rec_par));
    }
}

/// Uniform driving surface over the four engine variants (their types
/// differ in the recorder parameter).
trait Probe {
    fn advance(&self, t: SimTime);
    fn serve(
        &self,
        terms: &[TermId],
        k: usize,
        stale_ok: bool,
    ) -> (Vec<dwr_query::broker::GlobalHit>, dwr_query::engine::Served, Option<SimTime>);
    fn stats_(&self) -> EngineStats;
    fn dispatches(&self) -> Vec<Vec<u64>>;
    fn busy(&self) -> Vec<f64>;
}

impl<R: dwr_obs::Recorder> Probe for DistributedEngine<LruCache, R> {
    fn advance(&self, t: SimTime) {
        self.advance_to(t);
    }
    fn serve(
        &self,
        terms: &[TermId],
        k: usize,
        stale_ok: bool,
    ) -> (Vec<dwr_query::broker::GlobalHit>, dwr_query::engine::Served, Option<SimTime>) {
        if stale_ok {
            let (hits, served) = self.query_stale_ok(terms, k);
            (hits, served, None)
        } else {
            let r = self.query_full(terms, k);
            (r.hits, r.served, r.latency)
        }
    }
    fn stats_(&self) -> EngineStats {
        self.stats()
    }
    fn dispatches(&self) -> Vec<Vec<u64>> {
        self.dispatch_counts()
    }
    fn busy(&self) -> Vec<f64> {
        self.broker().busy_time()
    }
}
