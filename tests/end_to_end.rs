//! Cross-crate integration: the full web → crawl → partition → index →
//! query life cycle, exercised through the public API of the root package.

use distributed_web_retrieval::core::{EngineConfig, SearchEngineLab};
use distributed_web_retrieval::crawler::sim::CrawlConfig;
use distributed_web_retrieval::sim::{HOUR, SECOND};
use distributed_web_retrieval::text::TermId;
use distributed_web_retrieval::webgraph::generate::WebConfig;

fn lab_cfg(seed: u64) -> EngineConfig {
    let mut web = WebConfig::tiny();
    web.num_pages = 800;
    web.num_hosts = 40;
    EngineConfig {
        web,
        crawl: CrawlConfig {
            agents: 3,
            connections_per_agent: 8,
            politeness_delay: SECOND / 2,
            ..CrawlConfig::default()
        },
        partitions: 4,
        replicas: 2,
        cache_capacity: 128,
        query_universe: 300,
        stream_horizon: HOUR / 4,
        query_qps: 1.0,
        seed,
    }
}

#[test]
fn full_lifecycle_is_deterministic_and_consistent() {
    let lab1 = SearchEngineLab::build(lab_cfg(11));
    let lab2 = SearchEngineLab::build(lab_cfg(11));

    // Determinism across identical builds.
    assert_eq!(lab1.crawl_report().fetched_pages, lab2.crawl_report().fetched_pages);
    assert_eq!(lab1.index().sizes(), lab2.index().sizes());

    // Consistency: indexed docs never exceed crawled pages.
    let report = lab1.serve_stream();
    assert!(report.indexed_docs as u64 <= report.crawl.fetched_pages);
    assert_eq!(
        report.serving.cache_hits + report.serving.full + report.serving.degraded,
        report.queries_served
    );
}

#[test]
fn different_seeds_build_different_engines() {
    let a = SearchEngineLab::build(lab_cfg(1));
    let b = SearchEngineLab::build(lab_cfg(2));
    assert_ne!(a.crawl_report().makespan, b.crawl_report().makespan);
}

#[test]
fn search_results_live_in_the_corpus() {
    let lab = SearchEngineLab::build(lab_cfg(3));
    let q = lab.query_model().query(distributed_web_retrieval::querylog::model::QueryId(0));
    let terms: Vec<TermId> = q.terms.iter().map(|t| TermId(t.0)).collect();
    for hit in lab.search(&terms, 10) {
        let doc = &lab.corpus()[hit.doc as usize];
        // Every hit contains at least one query term.
        assert!(
            terms.iter().any(|t| doc.iter().any(|&(dt, _)| dt == *t)),
            "doc {} matches no query term",
            hit.doc
        );
    }
}

#[test]
fn repeated_queries_hit_the_cache() {
    let lab = SearchEngineLab::build(lab_cfg(4));
    let report = lab.serve_stream();
    assert!(report.cache_hit_ratio > 0.05, "hit ratio {}", report.cache_hit_ratio);
}
