//! The tentpole concurrency guarantee, as a property: for *any* corpus,
//! partitioning, replica-failure pattern, and query stream, the parallel
//! scatter-gather path produces **bit-for-bit** the same merged top-k
//! hits, `Served` outcomes, and simulated latencies as the sequential
//! path — and leaves identical busy-time accounting behind.
//!
//! This holds by construction (the gather phase walks partitions in
//! partition order regardless of completion order); the property test
//! keeps it true under refactoring.

use dwr_avail::UpDownProcess;
use dwr_partition::parted::{Corpus, PartitionedIndex};
use dwr_query::cache::LruCache;
use dwr_query::engine::DistributedEngine;
use dwr_query::faults::FaultSchedule;
use dwr_query::DocBroker;
use dwr_sim::{SimRng, SimTime, DAY, HOUR};
use dwr_text::search::EvalStrategy;
use dwr_text::TermId;
use proptest::prelude::*;
use std::sync::Arc;

/// Build a partitioned index from a generated corpus, assigning each doc
/// to a partition with a seed-derived (deterministic) assignment.
fn build_partitioned(
    docs: &[std::collections::BTreeMap<u32, u32>],
    k: usize,
    seed: u64,
) -> PartitionedIndex {
    let corpus: Corpus =
        docs.iter().map(|doc| doc.iter().map(|(&t, &tf)| (TermId(t), tf)).collect()).collect();
    let mut rng = SimRng::new(seed);
    let assignment: Vec<u32> = corpus.iter().map(|_| rng.below(k as u64) as u32).collect();
    PartitionedIndex::build(&corpus, &assignment, k)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Broker level: parallel scatter ≡ sequential scatter on random
    /// corpora and query streams, for hits, latency, and busy time.
    #[test]
    fn broker_parallel_equals_sequential(
        docs in prop::collection::vec(
            prop::collection::btree_map(0u32..30, 1u32..5, 0..6),
            1..40,
        ),
        k in 1usize..6,
        threads in 2usize..5,
        queries in prop::collection::vec(prop::collection::vec(0u32..35, 0..4), 1..25),
        topk in 1usize..15,
        seed in any::<u64>(),
    ) {
        let pi = build_partitioned(&docs, k, seed);
        let seq = DocBroker::single_site(&pi);
        let par = DocBroker::single_site(&pi).parallel(threads);
        for q in &queries {
            let terms: Vec<TermId> = q.iter().map(|&t| TermId(t)).collect();
            let a = seq.query(&terms, topk);
            let b = par.query(&terms, topk);
            prop_assert_eq!(&a.hits, &b.hits, "hits diverge on {:?}", terms);
            prop_assert_eq!(a.latency, b.latency, "latency diverges on {:?}", terms);
            prop_assert_eq!(a.partitions_used, b.partitions_used);
        }
        prop_assert_eq!(seq.busy_time(), par.busy_time());
        prop_assert_eq!(seq.queries_processed(), par.queries_processed());
    }

    /// Engine level: the full stack (cache → replica availability →
    /// scatter-gather) stays equivalent, including `Served` outcomes,
    /// under random replica failures.
    #[test]
    fn engine_parallel_equals_sequential(
        docs in prop::collection::vec(
            prop::collection::btree_map(0u32..25, 1u32..4, 0..5),
            1..30,
        ),
        k in 1usize..5,
        threads in 2usize..5,
        queries in prop::collection::vec(prop::collection::vec(0u32..30, 0..4), 1..30),
        topk in 1usize..12,
        dead_mask in any::<u8>(),
        seed in any::<u64>(),
    ) {
        let pi = build_partitioned(&docs, k, seed);
        let seq = DistributedEngine::new(&pi, LruCache::new(16), 2);
        let par = DistributedEngine::new(&pi, LruCache::new(16), 2).with_parallelism(threads);
        // Identical replica failures on both engines (never the whole
        // pair of a partition: keep at least replica 1 alive so Failed
        // vs Degraded stays reachable but deterministic).
        for p in 0..k {
            if dead_mask & (1 << (p % 8)) != 0 {
                seq.set_replica_alive(p, 0, false);
                par.set_replica_alive(p, 0, false);
            }
        }
        for q in &queries {
            let terms: Vec<TermId> = q.iter().map(|&t| TermId(t)).collect();
            let a = seq.query_full(&terms, topk);
            let b = par.query_full(&terms, topk);
            prop_assert_eq!(&a.hits, &b.hits, "hits diverge on {:?}", terms);
            prop_assert_eq!(a.served, b.served, "outcome diverges on {:?}", terms);
            prop_assert_eq!(a.latency, b.latency, "latency diverges on {:?}", terms);
        }
        prop_assert_eq!(seq.stats(), par.stats());
        prop_assert_eq!(seq.cache_stats(), par.cache_stats());
    }

    /// Evaluator-strategy equivalence through the full stack: a MaxScore
    /// engine and an exhaustive engine return bit-identical responses
    /// and counters on any corpus and query stream (pruning changes the
    /// work performed, never the answer), while never scanning more
    /// postings.
    #[test]
    fn engine_maxscore_equals_exhaustive(
        docs in prop::collection::vec(
            prop::collection::btree_map(0u32..25, 1u32..4, 0..5),
            1..30,
        ),
        k in 1usize..5,
        queries in prop::collection::vec(prop::collection::vec(0u32..30, 0..4), 1..25),
        topk in 1usize..12,
        seed in any::<u64>(),
    ) {
        let pi = build_partitioned(&docs, k, seed);
        let ex = DistributedEngine::new(&pi, LruCache::new(16), 2)
            .with_strategy(EvalStrategy::Exhaustive);
        let ms = DistributedEngine::new(&pi, LruCache::new(16), 2)
            .with_strategy(EvalStrategy::MaxScore);
        for q in &queries {
            let terms: Vec<TermId> = q.iter().map(|&t| TermId(t)).collect();
            let a = ex.query_full(&terms, topk);
            let b = ms.query_full(&terms, topk);
            prop_assert_eq!(&a.hits, &b.hits, "hits diverge on {:?}", terms);
            prop_assert_eq!(a.served, b.served, "outcome diverges on {:?}", terms);
            prop_assert_eq!(a.latency, b.latency, "latency diverges on {:?}", terms);
        }
        prop_assert_eq!(ex.stats(), ms.stats());
        prop_assert_eq!(ex.broker().busy_time(), ms.broker().busy_time());
        prop_assert!(
            ms.broker().eval_stats().postings_scanned
                <= ex.broker().eval_stats().postings_scanned,
            "pruned evaluator scanned more postings than exhaustive"
        );
    }

    /// Batched admission ≡ the query-at-a-time loop, through broker and
    /// engine: same responses, same counters, same per-replica dispatch
    /// ledgers, on any corpus and query stream (duplicates included; the
    /// cache is sized to hold the batch, the documented regime where the
    /// equivalence is exact).
    #[test]
    fn batched_admission_equals_query_loop(
        docs in prop::collection::vec(
            prop::collection::btree_map(0u32..25, 1u32..4, 0..5),
            1..30,
        ),
        k in 1usize..5,
        threads in 2usize..5,
        queries in prop::collection::vec(prop::collection::vec(0u32..30, 0..4), 1..25),
        topk in 1usize..12,
        parallel_batch in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let pi = build_partitioned(&docs, k, seed);
        let terms: Vec<Vec<TermId>> =
            queries.iter().map(|q| q.iter().map(|&t| TermId(t)).collect()).collect();

        // Broker level.
        let seq = DocBroker::single_site(&pi);
        let bat = DocBroker::single_site(&pi);
        let bat = if parallel_batch { bat.parallel(threads) } else { bat };
        let loop_resps: Vec<_> = terms.iter().map(|t| seq.query(t, topk)).collect();
        let batch_resps = bat.query_batch(&terms, topk);
        for (a, b) in loop_resps.iter().zip(&batch_resps) {
            prop_assert_eq!(&a.hits, &b.hits);
            prop_assert_eq!(a.latency, b.latency);
            prop_assert_eq!(a.partitions_used, b.partitions_used);
        }
        prop_assert_eq!(seq.busy_time(), bat.busy_time());
        prop_assert_eq!(seq.eval_stats(), bat.eval_stats());

        // Engine level (cache wide enough for the whole batch).
        let looped = DistributedEngine::new(&pi, LruCache::new(64), 2);
        let batched = DistributedEngine::new(&pi, LruCache::new(64), 2);
        let batched = if parallel_batch { batched.with_parallelism(threads) } else { batched };
        let a: Vec<_> = terms.iter().map(|t| looped.query_full(t, topk)).collect();
        let b = batched.query_batch(&terms, topk);
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(&x.hits, &y.hits);
            prop_assert_eq!(x.served, y.served);
            prop_assert_eq!(x.latency, y.latency);
        }
        prop_assert_eq!(looped.stats(), batched.stats());
        prop_assert_eq!(looped.cache_stats(), batched.cache_stats());
        prop_assert_eq!(looped.dispatch_counts(), batched.dispatch_counts());
        prop_assert_eq!(looped.broker().eval_stats(), batched.broker().eval_stats());
    }

    /// Engine level, fault-injected: under one `UpDownProcess`-derived
    /// schedule applied to both engines (same `Arc`, same `advance_to`
    /// instants), sequential and parallel serving stay identical —
    /// hits, `Served` outcomes, latencies (including hedge penalties),
    /// stats, and per-replica dispatch ledgers.
    #[test]
    fn engine_parallel_equals_sequential_under_fault_schedule(
        docs in prop::collection::vec(
            prop::collection::btree_map(0u32..25, 1u32..4, 0..5),
            1..30,
        ),
        k in 1usize..5,
        replicas in 1usize..4,
        threads in 2usize..5,
        n_queries in 1usize..40,
        mtbf_hours in 1u64..24,
        mttr_hours in 1u64..6,
        seed in any::<u64>(),
    ) {
        let pi = build_partitioned(&docs, k, seed);
        let horizon = 2 * DAY;
        let process = UpDownProcess::exponential(mtbf_hours * HOUR, mttr_hours * HOUR);
        let schedule = Arc::new(FaultSchedule::generate(k, replicas, &process, horizon, seed));
        let seq = DistributedEngine::new(&pi, LruCache::new(16), replicas)
            .with_faults(Arc::clone(&schedule));
        let par = DistributedEngine::new(&pi, LruCache::new(16), replicas)
            .with_faults(schedule)
            .with_parallelism(threads);
        let mut rng = SimRng::new(seed ^ 0xE0_FA_17);
        for i in 0..n_queries {
            let t = i as SimTime * horizon / n_queries as SimTime;
            seq.advance_to(t);
            par.advance_to(t);
            let terms: Vec<TermId> =
                (0..rng.below(4)).map(|_| TermId(rng.below(30) as u32)).collect();
            let a = seq.query_full(&terms, 10);
            let b = par.query_full(&terms, 10);
            prop_assert_eq!(&a.hits, &b.hits, "hits diverge on {:?} at t={}", &terms, t);
            prop_assert_eq!(a.served, b.served, "outcome diverges on {:?} at t={}", &terms, t);
            prop_assert_eq!(a.latency, b.latency, "latency diverges on {:?} at t={}", &terms, t);
        }
        prop_assert_eq!(seq.stats(), par.stats());
        prop_assert_eq!(seq.cache_stats(), par.cache_stats());
        prop_assert_eq!(seq.dispatch_counts(), par.dispatch_counts());
    }
}
