//! Cross-crate integration: partitioners, selectors and both distributed
//! query architectures agree with the monolithic reference index.

use distributed_web_retrieval::partition::doc::{DocPartitioner, RandomPartitioner};
use distributed_web_retrieval::partition::parted::{corpus_from_web, PartitionedIndex};
use distributed_web_retrieval::partition::quality::{global_top_k, size_balance};
use distributed_web_retrieval::partition::repart::{RepartIndex, SplitFate};
use distributed_web_retrieval::partition::select::CoriSelector;
use distributed_web_retrieval::partition::stats::{
    query_global_stats, query_local_stats, result_overlap,
};
use distributed_web_retrieval::partition::term::{
    BinPackingTermPartitioner, QueryWorkload, TermPartitioner,
};
use distributed_web_retrieval::query::broker::DocBroker;
use distributed_web_retrieval::query::pipeline::PipelinedTermEngine;
use distributed_web_retrieval::querylog::model::QueryModel;
use distributed_web_retrieval::sim::net::{SiteId, Topology};
use distributed_web_retrieval::sim::stats::Imbalance;
use distributed_web_retrieval::sim::SimRng;
use distributed_web_retrieval::text::index::build_index;
use distributed_web_retrieval::text::score::Bm25;
use distributed_web_retrieval::text::search::search_or;
use distributed_web_retrieval::text::TermId;
use distributed_web_retrieval::webgraph::content::ContentModel;
use distributed_web_retrieval::webgraph::generate::{generate_web, WebConfig};

const K: usize = 4;
const SEED: u64 = 31337;

struct Setup {
    corpus: Vec<Vec<(TermId, u32)>>,
    queries: Vec<Vec<TermId>>,
}

fn setup() -> Setup {
    let web = generate_web(&WebConfig::tiny(), SEED);
    let content = ContentModel::small(8);
    let corpus = corpus_from_web(&web, &content, SEED);
    let model = QueryModel::generate(&content, 200, 0.8, 0.9, SEED);
    let mut rng = SimRng::new(SEED);
    let queries = (0..30)
        .map(|_| {
            let q = model.sample(&mut rng);
            model.query(q).terms.iter().map(|t| TermId(t.0)).collect()
        })
        .collect();
    Setup { corpus, queries }
}

#[test]
fn doc_broker_closely_tracks_monolithic_result_sets() {
    // The broker scores with *local* statistics (one-round protocol), so
    // documents at the top-k boundary may swap with near-ties — the exact
    // divergence the paper's two-round protocol exists to remove (tested
    // below). Random partitioning keeps the overlap high.
    let s = setup();
    let assignment = RandomPartitioner { seed: SEED }.assign(&s.corpus, K);
    let pi = PartitionedIndex::build(&s.corpus, &assignment, K);
    let reference = build_index(&s.corpus);
    let broker = DocBroker::single_site(&pi);
    let mut overlap_acc = 0.0;
    let mut counted = 0usize;
    for q in &s.queries {
        let got: std::collections::HashSet<u32> =
            broker.query(q, 10).hits.iter().map(|h| h.doc).collect();
        let want: Vec<u32> = search_or(&reference, q, 10, &Bm25::default(), &reference)
            .into_iter()
            .map(|h| h.doc.0)
            .collect();
        if want.is_empty() {
            continue;
        }
        let inter = want.iter().filter(|d| got.contains(d)).count();
        overlap_acc += inter as f64 / want.len() as f64;
        counted += 1;
    }
    let mean = overlap_acc / counted as f64;
    assert!(mean > 0.9, "mean top-10 overlap {mean}");
}

#[test]
fn pipelined_term_engine_matches_monolithic_exactly() {
    let s = setup();
    let reference = build_index(&s.corpus);
    let workload = QueryWorkload { queries: s.queries.iter().map(|q| (q.clone(), 1.0)).collect() };
    let assignment = BinPackingTermPartitioner.assign(&reference, &workload, K);
    let mut eng = PipelinedTermEngine::single_site(&reference, assignment, K);
    for q in &s.queries {
        let got: Vec<u32> = eng.query(q, 10).hits.iter().map(|h| h.doc).collect();
        let want: Vec<u32> = search_or(&reference, q, 10, &Bm25::default(), &reference)
            .into_iter()
            .map(|h| h.doc.0)
            .collect();
        assert_eq!(got, want, "query {q:?}");
    }
}

#[test]
fn two_round_protocol_restores_global_ranking() {
    let s = setup();
    let assignment = RandomPartitioner { seed: SEED }.assign(&s.corpus, K);
    let pi = PartitionedIndex::build(&s.corpus, &assignment, K);
    let reference = build_index(&s.corpus);
    let topo = Topology::single_site();
    let site0 = |_: usize| SiteId(0);
    for q in &s.queries {
        let (global, cost) = query_global_stats(&pi, q, 10, &topo, SiteId(0), &site0);
        let want: Vec<u32> = search_or(&reference, q, 10, &Bm25::default(), &reference)
            .into_iter()
            .map(|h| h.doc.0)
            .collect();
        let got: Vec<u32> = global.iter().map(|h| h.doc).collect();
        assert_eq!(got, want, "two-round must equal monolithic for {q:?}");
        assert_eq!(cost.rounds, 2);
    }
}

#[test]
fn local_stats_rankings_are_close_on_random_partitions() {
    // Random partitioning keeps local df proportional to global df, so the
    // one-round protocol should rarely diverge much.
    let s = setup();
    let assignment = RandomPartitioner { seed: SEED }.assign(&s.corpus, K);
    let pi = PartitionedIndex::build(&s.corpus, &assignment, K);
    let topo = Topology::single_site();
    let site0 = |_: usize| SiteId(0);
    let mut total = 0.0;
    for q in &s.queries {
        let (local, _) = query_local_stats(&pi, q, 10, &topo, SiteId(0), &site0);
        let (global, _) = query_global_stats(&pi, q, 10, &topo, SiteId(0), &site0);
        total += result_overlap(&local, &global, 10);
    }
    let mean = total / s.queries.len() as f64;
    assert!(mean > 0.8, "mean overlap {mean}");
}

#[test]
fn post_split_children_inherit_parent_quality() {
    let s = setup();
    let assignment = RandomPartitioner { seed: SEED }.assign(&s.corpus, K);
    let before = PartitionedIndex::build(&s.corpus, &assignment, K);
    let pre_balance = size_balance(&before);

    let repart = RepartIndex::build(s.corpus.clone(), &assignment, K, K + 2);
    let parent = repart.split_target().expect("a splittable partition exists");
    let report = repart.split(parent, SplitFate::Commit).expect("capacity provisioned");
    let after = repart.snapshot();
    after.validate_epoch().expect("exactly-once invariant holds post-split");
    let children = &report.children;

    // Balance over the *active* layout. A split of the largest
    // partition into near-equal halves (the pippin discipline) cannot
    // raise the max, and only shifts the mean by the +1-partition
    // factor; the max/mean ratio is therefore bounded by exactly that.
    let sizes = after.sizes();
    let (c0, c1) = (sizes[children[0] as usize], sizes[children[1] as usize]);
    assert_eq!(c0 + c1, report.docs_split, "children partition the parent's documents");
    assert!(c0.abs_diff(c1) <= 1, "children are near-equal halves: {c0} vs {c1}");
    let active_sizes: Vec<f64> =
        after.active_parts().iter().map(|&p| sizes[p as usize] as f64).collect();
    let post_balance = Imbalance::of(&active_sizes);
    let mean_shift = (K as f64 + 1.0) / K as f64;
    assert!(
        post_balance.max_over_mean <= pre_balance.max_over_mean * mean_shift + 1e-9,
        "balance degraded beyond the mean shift: {} -> {}",
        pre_balance.max_over_mean,
        post_balance.max_over_mean
    );

    // Recall@partitions is inherited exactly: a global-top-k doc lived
    // in the parent iff it now lives in one of its children, so any
    // selection that swaps the parent for its children sees identical
    // recall (ε = 0), query by query.
    for q in &s.queries {
        let topk = global_top_k(&s.corpus, q, 10);
        let in_parent = topk.iter().filter(|&&d| before.partition_of(d) == parent).count();
        let in_children =
            topk.iter().filter(|&&d| children.contains(&after.partition_of(d))).count();
        assert_eq!(in_parent, in_children, "recall moved across the split for {q:?}");
        // Untouched partitions keep their documents verbatim.
        for &d in &topk {
            if before.partition_of(d) != parent {
                assert_eq!(before.partition_of(d), after.partition_of(d));
            }
        }
    }
}

#[test]
fn cori_selection_prunes_work_without_losing_everything() {
    let s = setup();
    let assignment = RandomPartitioner { seed: SEED }.assign(&s.corpus, K);
    let pi = PartitionedIndex::build(&s.corpus, &assignment, K);
    let cori = CoriSelector::from_partitions(&pi);
    let broker = DocBroker::single_site(&pi);
    for q in &s.queries {
        let full = broker.query(q, 10);
        let pruned = broker.query_with_selection(q, 10, &cori, 2);
        assert_eq!(pruned.partitions_used, 2);
        if !full.hits.is_empty() {
            // Random partitions spread answers, so half the partitions
            // must still return something for non-empty queries.
            assert!(!pruned.hits.is_empty(), "selection lost everything for {q:?}");
        }
    }
}
