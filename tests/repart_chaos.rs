//! Repartitioning chaos suite: shard splits under live traffic, per
//! ISSUE 8.
//!
//! Three properties:
//!
//! 1. **Oracle equivalence, exactly once** — at any interleaving of
//!    splits and queries, on sequential and parallel scatter and on
//!    batch and loop admission, a live engine returns the bit-identical
//!    result set a static oracle broker built from the current snapshot
//!    returns, and a full-coverage query sees every document exactly
//!    once (no doc duplicated across the split boundary, none lost).
//! 2. **Crash-safe splits** — replica faults racing split storms
//!    (before-publish and after-publish crash fates) never leave a torn
//!    `PartitionMap`: every observable snapshot validates, and the
//!    epoch only moves forward.
//! 3. **Concurrency** — the `repart_fixed_seed_*` tests are the
//!    deterministic CI anchors: client threads serve a query stream
//!    while a driver thread fires scheduled splits and fault churn;
//!    the proptest blocks widen the net locally.

use dwr_avail::UpDownProcess;
use dwr_partition::parted::Corpus;
use dwr_partition::repart::{RepartIndex, SplitFate, SplitSchedule};
use dwr_query::broker::DocBroker;
use dwr_query::cache::LruCache;
use dwr_query::engine::{DistributedEngine, Served};
use dwr_query::faults::FaultSchedule;
use dwr_sim::{SimRng, SimTime, DAY, HOUR, MINUTE};
use dwr_text::TermId;
use proptest::prelude::*;
use std::sync::Arc;

/// A corpus where **every** document contains `TermId(0)` (so a
/// `[TermId(0)]` query with `k = docs` must cover the whole corpus)
/// plus per-doc random topical terms from `1..terms`.
fn exactly_once_corpus(docs: u32, terms: u32, seed: u64) -> Corpus {
    let mut rng = SimRng::new(seed);
    (0..docs)
        .map(|d| {
            let mut doc = std::collections::BTreeMap::new();
            doc.insert(TermId(0), 1 + d % 3);
            doc.insert(TermId(1 + rng.below(u64::from(terms - 1)) as u32), 1 + d % 2);
            doc.into_iter().collect()
        })
        .collect()
}

/// A live index over `parts` initial partitions with headroom for
/// splits, all derived from `seed`.
fn build_live(docs: u32, terms: u32, parts: usize, capacity: usize, seed: u64) -> Arc<RepartIndex> {
    let corpus = exactly_once_corpus(docs, terms, seed);
    let mut rng = SimRng::new(seed ^ 0xA551);
    let assignment: Vec<u32> = (0..docs).map(|_| rng.below(parts as u64) as u32).collect();
    Arc::new(RepartIndex::build(corpus, &assignment, parts, capacity))
}

/// The static oracle for the current epoch: a plain single-site broker
/// over the snapshot, scoring with the corpus-wide statistics (exactly
/// what the live engine's shards use), built purely from public APIs.
fn oracle_for(repart: &RepartIndex) -> DocBroker {
    DocBroker::single_site(&repart.snapshot()).with_global_stats(repart.corpus_stats())
}

/// Assert one full-coverage query sees every document exactly once.
fn assert_exactly_once(hits: &[dwr_query::broker::GlobalHit], docs: u32, ctx: &str) {
    let mut seen: Vec<u32> = hits.iter().map(|h| h.doc).collect();
    seen.sort_unstable();
    let before = seen.len();
    seen.dedup();
    assert_eq!(before, seen.len(), "{ctx}: a document was returned twice");
    assert_eq!(seen.len(), docs as usize, "{ctx}: coverage is not the whole corpus");
    assert!(seen.iter().enumerate().all(|(i, &d)| d == i as u32), "{ctx}: unexpected doc ids");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property 1, single-threaded form: an arbitrary interleaving of
    /// splits and queries, served simultaneously on a sequential and a
    /// parallel engine sharing one live index, stays bit-identical to
    /// the per-epoch static oracle; full-coverage queries see every doc
    /// exactly once at every interleaving point.
    #[test]
    fn any_split_query_interleaving_matches_static_oracle(
        parts in 1usize..4,
        docs in 8u32..40,
        n_steps in 1usize..25,
        threads in 2usize..5,
        k_raw in 1usize..24,
        seed in any::<u64>(),
    ) {
        // The result cache is keyed by terms only, so one k serves the
        // whole case (a cached pre-split answer must equal the
        // post-split oracle — that is the split-invariance on trial).
        let k = k_raw.min(docs as usize);
        let capacity = parts + 2 * n_steps; // never refuse a split for capacity
        let repart = build_live(docs, 8, parts, capacity, seed);
        let seq = DistributedEngine::new_live(&repart, LruCache::new(8), 2);
        let par = DistributedEngine::new_live(&repart, LruCache::new(8), 2)
            .with_parallelism(threads);
        let mut rng = SimRng::new(seed ^ 0x1EAF);
        for step in 0..n_steps {
            if rng.below(3) == 0 {
                if let Some(p) = repart.split_target() {
                    repart.split(p, SplitFate::Commit).expect("capacity provisioned");
                }
            }
            let oracle = oracle_for(&repart);
            // Term 0 is reserved for the full-coverage probe (same
            // cache-key-by-terms reason).
            let terms = [TermId(1 + rng.below(7) as u32)];
            let want = oracle.query(&terms, k);
            let a = seq.query_full(&terms, k);
            let b = par.query_full(&terms, k);
            prop_assert_eq!(&a.hits, &want.hits, "sequential diverges from oracle at step {}", step);
            prop_assert_eq!(&b.hits, &want.hits, "parallel diverges from oracle at step {}", step);
            let all = seq.query_full(&[TermId(0)], docs as usize);
            prop_assert!(matches!(all.served, Served::Full | Served::CacheHit));
            assert_exactly_once(&all.hits, docs, &format!("step {step}"));
        }
        repart.validate().expect("map intact after the storm");
    }

    /// Property 1, batch form: batched admission equals the query loop
    /// across split boundaries — same hits, same outcomes, same
    /// latencies, same counters — on two identically-built live indexes
    /// splitting in lockstep.
    #[test]
    fn batch_equals_loop_across_split_boundaries(
        parts in 1usize..4,
        docs in 8u32..32,
        rounds in 1usize..6,
        batch in 1usize..8,
        seed in any::<u64>(),
    ) {
        let capacity = parts + 2 * rounds;
        let r_loop = build_live(docs, 8, parts, capacity, seed);
        let r_batch = build_live(docs, 8, parts, capacity, seed);
        let e_loop = DistributedEngine::new_live(&r_loop, LruCache::new(16), 2);
        let e_batch = DistributedEngine::new_live(&r_batch, LruCache::new(16), 2);
        let mut rng = SimRng::new(seed ^ 0xBA7C);
        for round in 0..rounds {
            if rng.below(2) == 0 {
                // Same deterministic target on both: states are equal.
                if let Some(p) = r_loop.split_target() {
                    r_loop.split(p, SplitFate::Commit).expect("capacity provisioned");
                    r_batch.split(p, SplitFate::Commit).expect("capacity provisioned");
                }
            }
            let queries: Vec<Vec<TermId>> =
                (0..batch).map(|_| vec![TermId(rng.below(8) as u32)]).collect();
            let k = 1 + rng.below(u64::from(docs)) as usize;
            let a: Vec<_> = queries.iter().map(|t| e_loop.query_full(t, k)).collect();
            let b = e_batch.query_batch(&queries, k);
            for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                prop_assert_eq!(&x.hits, &y.hits, "hits diverge, round {} query {}", round, i);
                prop_assert_eq!(x.served, y.served, "outcome diverges, round {} query {}", round, i);
                prop_assert_eq!(x.latency, y.latency, "latency diverges, round {} query {}", round, i);
            }
            prop_assert_eq!(r_loop.epoch(), r_batch.epoch());
        }
        prop_assert_eq!(e_loop.stats(), e_batch.stats());
        prop_assert_eq!(e_loop.cache_stats(), e_batch.cache_stats());
    }

    /// Property 2: split storms with injected crash fates racing replica
    /// fault schedules never tear the partition map — every snapshot
    /// validates, the epoch is monotone, and the engine's outcome
    /// counters account for every query.
    #[test]
    fn faulty_split_storms_never_tear_the_map(
        parts in 1usize..4,
        docs in 8u32..40,
        splits in 1usize..8,
        n_queries in 1usize..60,
        crash_rate in 0.0f64..1.0,
        mtbf_hours in 1u64..24,
        seed in any::<u64>(),
    ) {
        let horizon = 2 * DAY;
        let capacity = parts + 2 * splits;
        let repart = build_live(docs, 8, parts, capacity, seed);
        let process = UpDownProcess::exponential(mtbf_hours * HOUR, 2 * HOUR);
        let faults = Arc::new(FaultSchedule::generate(
            capacity, 2, &process, horizon, seed ^ 0xFA17,
        ));
        let schedule = Arc::new(SplitSchedule::generate_with_crashes(
            splits, horizon, seed ^ 0x59A7, crash_rate,
        ));
        let engine = DistributedEngine::new_live(&repart, LruCache::new(16), 2)
            .with_faults(faults)
            .with_splits(schedule);
        let mut rng = SimRng::new(seed ^ 3);
        let mut last_epoch = repart.epoch();
        for i in 0..n_queries {
            let t = i as SimTime * horizon / n_queries as SimTime;
            engine.advance_to(t);
            let epoch = repart.epoch();
            prop_assert!(epoch >= last_epoch, "epoch moved backward");
            last_epoch = epoch;
            repart.validate().expect("snapshot validates mid-storm");
            let terms = [TermId(rng.below(8) as u32)];
            let (hits, served) = engine.query(&terms, 8);
            if served == Served::Failed {
                prop_assert!(hits.is_empty());
            }
        }
        let s = engine.stats();
        prop_assert_eq!(
            s.cache_hits + s.full + s.degraded + s.stale + s.failed,
            n_queries as u64,
            "every query lands in exactly one outcome counter"
        );
        // Offline ledger agrees with what actually happened.
        let rs = repart.repart_stats();
        prop_assert!(rs.splits_committed + rs.splits_aborted <= splits as u64);
        prop_assert_eq!(rs.children_created, 2 * rs.splits_committed);
        prop_assert_eq!(rs.epoch, rs.splits_committed);
    }
}

/// The concurrent anchor: clients hammer a live engine (mixed point
/// and full-coverage queries, loop and batch admission) while a driver
/// thread sweeps simulated time, firing scheduled splits (with crash
/// fates) and fault churn. No panics; every full-coverage answer that
/// reports `Full` covers each document exactly once; no answer ever
/// duplicates a document; the map validates throughout.
fn concurrent_repart_run(seed: u64) {
    const CLIENTS: usize = 4;
    const QUERIES_PER_CLIENT: usize = 200;
    const DOCS: u32 = 48;
    let parts = 2;
    let splits = 6;
    let capacity = parts + 2 * splits;
    let horizon = DAY;
    let repart = build_live(DOCS, 12, parts, capacity, seed);
    let process = UpDownProcess::exponential(4 * HOUR, 30 * MINUTE);
    let faults = Arc::new(FaultSchedule::generate(capacity, 2, &process, horizon, seed));
    let schedule =
        Arc::new(SplitSchedule::generate_with_crashes(splits, horizon, seed ^ 0x59A7, 0.4));
    let engine = Arc::new(
        DistributedEngine::new_live(&repart, LruCache::new(32), 2)
            .with_faults(faults)
            .with_splits(schedule)
            .with_parallelism(3),
    );
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    std::thread::scope(|s| {
        // Driver: sweeps simulated time, firing splits and fault churn.
        {
            let engine = Arc::clone(&engine);
            let repart = Arc::clone(&repart);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut t: SimTime = 0;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    engine.advance_to(t % horizon);
                    repart.validate().expect("no torn map observable mid-storm");
                    t += horizon / 400;
                    std::thread::yield_now();
                }
            });
        }
        let mut handles = Vec::new();
        for c in 0..CLIENTS {
            let engine = Arc::clone(&engine);
            handles.push(s.spawn(move || {
                let mut rng = SimRng::new(seed ^ ((c as u64) << 8));
                for i in 0..QUERIES_PER_CLIENT {
                    if i % 7 == 0 {
                        // Full-coverage query: the exactly-once probe.
                        let r = engine.query_full(&[TermId(0)], DOCS as usize);
                        let mut seen: Vec<u32> = r.hits.iter().map(|h| h.doc).collect();
                        seen.sort_unstable();
                        let n = seen.len();
                        seen.dedup();
                        assert_eq!(n, seen.len(), "a doc crossed the split boundary twice");
                        if r.served == Served::Full {
                            assert_eq!(n, DOCS as usize, "Full answer must cover the corpus");
                        }
                    } else if i % 11 == 0 {
                        let qs: Vec<Vec<TermId>> =
                            (0..3).map(|j| vec![TermId(((i + j) % 12) as u32)]).collect();
                        engine.query_batch(&qs, 8);
                    } else {
                        let terms = [TermId(rng.below(12) as u32)];
                        let (hits, served) = engine.query(&terms, 8);
                        if served == Served::Failed {
                            assert!(hits.is_empty());
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("no client panics under split storms");
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });
    repart.validate().expect("map intact after the storm");
    let rs = repart.repart_stats();
    assert_eq!(rs.children_created, 2 * rs.splits_committed);
    assert_eq!(rs.epoch, rs.splits_committed);
}

#[test]
fn repart_fixed_seed_1() {
    concurrent_repart_run(0x9E9A_0001);
}

#[test]
fn repart_fixed_seed_2() {
    concurrent_repart_run(0x9E9A_0002);
}

#[test]
fn repart_fixed_seed_3() {
    concurrent_repart_run(0x9E9A_0003);
}
