//! Regression tests pinning the paper's headline *shapes* at small scale.
//!
//! The full experiments live in `dwr-bench` binaries; these tests keep the
//! central qualitative results under CI so a refactor cannot silently
//! invert a conclusion. Each test states the paper claim it guards.

use distributed_web_retrieval::partition::doc::{DocPartitioner, RandomPartitioner};
use distributed_web_retrieval::partition::parted::{corpus_from_web, PartitionedIndex};
use distributed_web_retrieval::partition::term::{
    evaluate_term_partition, BinPackingTermPartitioner, QueryWorkload, RandomTermPartitioner,
    TermPartitioner,
};
use distributed_web_retrieval::query::broker::DocBroker;
use distributed_web_retrieval::query::pipeline::PipelinedTermEngine;
use distributed_web_retrieval::querylog::model::QueryModel;
use distributed_web_retrieval::queueing::ggc::GgcModel;
use distributed_web_retrieval::sim::stats::Imbalance;
use distributed_web_retrieval::sim::SimRng;
use distributed_web_retrieval::text::index::build_index;
use distributed_web_retrieval::text::TermId;
use distributed_web_retrieval::webgraph::content::ContentModel;
use distributed_web_retrieval::webgraph::generate::{generate_web, WebConfig};

const SEED: u64 = 20070415;
const SERVERS: usize = 8;

struct World {
    corpus: Vec<Vec<(TermId, u32)>>,
    stream: Vec<Vec<TermId>>,
}

fn world() -> World {
    let web = generate_web(&WebConfig::tiny(), SEED);
    let content = ContentModel::small(8);
    let corpus = corpus_from_web(&web, &content, SEED);
    let model = QueryModel::generate(&content, 800, 0.8, 0.9, SEED);
    let mut rng = SimRng::new(SEED);
    let stream = (0..1_500)
        .map(|_| {
            let q = model.sample(&mut rng);
            model.query(q).terms.iter().map(|t| TermId(t.0)).collect()
        })
        .collect();
    World { corpus, stream }
}

/// Figure 2's core contrast: the same Zipf stream leaves document
/// partitioning balanced and pipelined term partitioning visibly skewed.
#[test]
fn figure2_shape_doc_balanced_term_skewed() {
    let w = world();
    let assignment = RandomPartitioner { seed: SEED }.assign(&w.corpus, SERVERS);
    let pi = PartitionedIndex::build(&w.corpus, &assignment, SERVERS);
    let broker = DocBroker::single_site(&pi);
    for q in &w.stream {
        broker.query(q, 10);
    }
    let doc = Imbalance::of(&broker.busy_load_normalized());

    let global = build_index(&w.corpus);
    let workload = QueryWorkload { queries: w.stream.iter().map(|q| (q.clone(), 1.0)).collect() };
    let term_assign = RandomTermPartitioner.assign(&global, &workload, SERVERS);
    let mut pipe = PipelinedTermEngine::single_site(&global, term_assign, SERVERS);
    for q in &w.stream {
        pipe.query(q, 10);
    }
    let term = Imbalance::of(&pipe.busy_load_normalized());

    // Thresholds are small-scale-safe; the full-scale contrast (1.01 vs
    // 2.34 at 20k docs) lives in the fig2 binary.
    assert!(doc.max_over_mean < 1.15, "doc partitioning balanced: {doc:?}");
    assert!(term.max_over_mean > 1.25, "term partitioning skewed: {term:?}");
    assert!(term.cv > 3.0 * doc.cv, "doc cv={} term cv={}", doc.cv, term.cv);
}

/// Moffat et al.'s fix: bin-packing flattens the term-partition load.
#[test]
fn binpacking_shape_flattens_term_load() {
    let w = world();
    let global = build_index(&w.corpus);
    let workload = QueryWorkload { queries: w.stream.iter().map(|q| (q.clone(), 1.0)).collect() };
    let random = evaluate_term_partition(
        &global,
        &workload,
        &RandomTermPartitioner.assign(&global, &workload, SERVERS),
        SERVERS,
    );
    let packed = evaluate_term_partition(
        &global,
        &workload,
        &BinPackingTermPartitioner.assign(&global, &workload, SERVERS),
        SERVERS,
    );
    let g_random = Imbalance::of(&random.load).gini;
    let g_packed = Imbalance::of(&packed.load).gini;
    assert!(g_packed < g_random / 2.0, "packed={g_packed} random={g_random}");
}

/// Figure 6's anchors: 15 q/ms at 10 ms service, ~1.5 at 100 ms.
#[test]
fn figure6_shape_capacity_anchors() {
    let at10 = GgcModel::front_end_150(0.010).max_capacity() / 1000.0;
    let at100 = GgcModel::front_end_150(0.100).max_capacity() / 1000.0;
    assert!((at10 - 15.0).abs() < 1e-9);
    assert!((at100 - 1.5).abs() < 1e-9);
}

/// The introduction's arithmetic: ~3,000 machines per cluster, >= 30,000
/// overall, > $100M.
#[test]
fn intro_cost_model_shape() {
    let r = distributed_web_retrieval::queueing::cost::CostModel::paper_2007().evaluate();
    assert!((r.machines_per_cluster - 3_000.0).abs() <= 1.0);
    assert!(r.total_machines >= 30_000.0);
    assert!(r.hardware_dollars > 100e6);
}

/// Figure 5's anchor: ~10 of 16 sites see an outage in an average month.
#[test]
fn figure5_shape_site_outage_rate() {
    use distributed_web_retrieval::avail::monthly::{availability_histogram, monthly_availability};
    use distributed_web_retrieval::avail::site::SiteConfig;
    let sites: Vec<SiteConfig> = (0..16).map(|_| SiteConfig::birn_like(2)).collect();
    let mut acc = 0.0;
    let runs = 6;
    for r in 0..runs {
        let m = monthly_availability(&sites, 8, SEED + r);
        acc += availability_histogram(&m, &[1.0])[0];
    }
    let avg = acc / runs as f64;
    assert!((avg - 10.0).abs() < 2.0, "avg sites with outage = {avg}");
}
