//! Routing chaos suite: selective search on the serving path, per
//! ISSUE 9.
//!
//! Three properties:
//!
//! 1. **t = all ≡ unrouted** — a router whose width covers every active
//!    partition is bit-identical to the unrouted `serve` path: hits,
//!    `Served` outcomes, latencies, and every counter, under sequential
//!    and parallel scatter and under batch and loop admission, with
//!    fault schedules racing the stream.
//! 2. **Epoch oracle equivalence** — a routed query racing a live split
//!    returns exactly what [`ShardRouter::oracle_query`] replays offline
//!    against the same epoch snapshot: same hits, same summed cascade
//!    latency, same shards contacted, same broadening rounds.
//! 3. **Concurrency** — the `route_fixed_seed_*` tests are the
//!    deterministic CI anchors: client threads serve a mixed stream
//!    (point, stale-ok, batch) while a driver sweeps simulated time,
//!    firing scheduled splits (with crash fates), fault churn, and the
//!    drift-driven profile refresh. Outcome counters account for every
//!    query, and the live `route.*` instruments agree exactly with the
//!    router's own counters.

use dwr_avail::UpDownProcess;
use dwr_obs::{ObsConfig, ObsRecorder};
use dwr_partition::doc::TrainingResults;
use dwr_partition::parted::{Corpus, PartitionedIndex};
use dwr_partition::repart::{RepartIndex, SplitFate, SplitSchedule};
use dwr_query::broker::DocBroker;
use dwr_query::cache::LruCache;
use dwr_query::engine::{query_key, DistributedEngine, Served};
use dwr_query::faults::FaultSchedule;
use dwr_query::route::{DriftRefresh, ShardRouter};
use dwr_querylog::drift::TopicDrift;
use dwr_sim::{SimRng, SimTime, DAY, HOUR, MINUTE};
use dwr_text::TermId;
use proptest::prelude::*;
use std::sync::Arc;

/// A small random corpus over `terms` distinct terms spread over
/// `partitions` partitions, all derived from `seed`.
fn build_index(docs: u32, terms: u32, partitions: usize, seed: u64) -> PartitionedIndex {
    let mut rng = SimRng::new(seed);
    let corpus: Corpus = (0..docs)
        .map(|d| {
            let mut doc = std::collections::BTreeMap::new();
            doc.insert(TermId(d % terms), 1 + d % 3);
            doc.entry(TermId(rng.below(u64::from(terms)) as u32)).or_insert(1);
            doc.into_iter().collect()
        })
        .collect();
    let assignment: Vec<u32> = (0..docs).map(|_| rng.below(partitions as u64) as u32).collect();
    PartitionedIndex::build(&corpus, &assignment, partitions)
}

/// A live index over `parts` initial partitions with headroom for
/// splits.
fn build_live(docs: u32, terms: u32, parts: usize, capacity: usize, seed: u64) -> Arc<RepartIndex> {
    let mut rng = SimRng::new(seed);
    let corpus: Corpus = (0..docs)
        .map(|d| {
            let mut doc = std::collections::BTreeMap::new();
            doc.insert(TermId(d % terms), 1 + d % 3);
            doc.entry(TermId(rng.below(u64::from(terms)) as u32)).or_insert(1);
            doc.into_iter().collect()
        })
        .collect();
    let assignment: Vec<u32> = (0..docs).map(|_| rng.below(parts as u64) as u32).collect();
    Arc::new(RepartIndex::build(corpus, &assignment, parts, capacity))
}

/// A query-driven training log replayed against the exhaustive oracle
/// for the index's initial epoch: one training query per term, weighted
/// uniformly, with the oracle's top-`k` global doc ids as results.
fn oracle_training(repart: &RepartIndex, terms: u32, k: usize) -> TrainingResults {
    let oracle =
        DocBroker::single_site(&repart.snapshot()).with_global_stats(repart.corpus_stats());
    let queries = (0..terms)
        .map(|t| {
            let hits = oracle.query(&[TermId(t)], k).hits;
            (vec![TermId(t)], 1.0, hits.into_iter().map(|h| h.doc).collect())
        })
        .collect();
    TrainingResults { queries }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property 1, scatter form: routing with t = all partitions is
    /// bit-identical to the unrouted serve path — hits, outcomes,
    /// latencies, engine stats, cache stats, and per-replica dispatch
    /// counts — on sequential and parallel scatter, under the same
    /// fault schedule, on both selector sources.
    #[test]
    fn routing_with_t_all_matches_unrouted_serve(
        partitions in 1usize..5,
        replicas in 1usize..4,
        threads in 2usize..5,
        n_queries in 1usize..60,
        mtbf_hours in 1u64..24,
        query_driven in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let pi = build_index(30, 20, partitions, seed);
        let horizon = 2 * DAY;
        let process = UpDownProcess::exponential(mtbf_hours * HOUR, 2 * HOUR);
        let schedule = Arc::new(FaultSchedule::generate(
            partitions, replicas, &process, horizon, seed ^ 0xC4A0,
        ));
        let router = || -> Arc<ShardRouter> {
            Arc::new(if query_driven {
                // Empty training: every query is cold and delegates to
                // the CORI fallback — the profile path still runs.
                ShardRouter::query_driven(TrainingResults::default(), partitions)
            } else {
                ShardRouter::cori(partitions)
            })
        };
        let plain = DistributedEngine::new(&pi, LruCache::new(16), replicas)
            .with_faults(Arc::clone(&schedule));
        let routed = DistributedEngine::new(&pi, LruCache::new(16), replicas)
            .with_faults(Arc::clone(&schedule))
            .with_router(router());
        let routed_par = DistributedEngine::new(&pi, LruCache::new(16), replicas)
            .with_faults(schedule)
            .with_router(router())
            .with_parallelism(threads);
        let mut rng = SimRng::new(seed ^ 2);
        for i in 0..n_queries {
            let t = i as SimTime * horizon / n_queries as SimTime;
            plain.advance_to(t);
            routed.advance_to(t);
            routed_par.advance_to(t);
            let terms = [TermId(rng.below(20) as u32)];
            if i % 3 == 0 {
                let a = plain.query_stale_ok(&terms, 10);
                let b = routed.query_stale_ok(&terms, 10);
                let c = routed_par.query_stale_ok(&terms, 10);
                prop_assert_eq!(&a, &b, "routed stale path diverges at t={}", t);
                prop_assert_eq!(&a, &c, "parallel routed stale path diverges at t={}", t);
            } else {
                let a = plain.query_full(&terms, 10);
                let b = routed.query_full(&terms, 10);
                let c = routed_par.query_full(&terms, 10);
                prop_assert_eq!(&a.hits, &b.hits, "hits diverge at t={}", t);
                prop_assert_eq!(a.served, b.served, "outcome diverges at t={}", t);
                prop_assert_eq!(a.latency, b.latency, "latency diverges at t={}", t);
                prop_assert_eq!(&a.hits, &c.hits, "parallel hits diverge at t={}", t);
                prop_assert_eq!(a.served, c.served, "parallel outcome diverges at t={}", t);
                prop_assert_eq!(a.latency, c.latency, "parallel latency diverges at t={}", t);
            }
        }
        // Every counter: the routed engines must not even count a
        // `Routed` outcome (full width covers every active partition)
        // nor a broadening round.
        prop_assert_eq!(plain.stats(), routed.stats());
        prop_assert_eq!(plain.stats(), routed_par.stats());
        prop_assert_eq!(routed.stats().routed, 0);
        prop_assert_eq!(routed.stats().broadenings, 0);
        prop_assert_eq!(plain.cache_stats(), routed.cache_stats());
        prop_assert_eq!(plain.cache_stats(), routed_par.cache_stats());
        prop_assert_eq!(plain.dispatch_counts(), routed.dispatch_counts());
        prop_assert_eq!(plain.dispatch_counts(), routed_par.dispatch_counts());
    }

    /// Property 1, admission form: batched admission equals the query
    /// loop on routed engines at **any** width (the cascade resolves
    /// per query at resolution time), and at t = all the routed batch
    /// equals the unrouted batch bit-for-bit.
    #[test]
    fn routed_batch_equals_loop_at_any_width(
        partitions in 1usize..5,
        width in 1usize..6,
        rounds in 1usize..5,
        batch in 1usize..8,
        seed in any::<u64>(),
    ) {
        let pi = build_index(30, 12, partitions, seed);
        let e_loop = DistributedEngine::new(&pi, LruCache::new(64), 2)
            .with_router(Arc::new(ShardRouter::cori(width)));
        let e_batch = DistributedEngine::new(&pi, LruCache::new(64), 2)
            .with_router(Arc::new(ShardRouter::cori(width)));
        let e_plain_batch = DistributedEngine::new(&pi, LruCache::new(64), 2);
        let mut rng = SimRng::new(seed ^ 0xBA7C);
        for round in 0..rounds {
            let queries: Vec<Vec<TermId>> =
                (0..batch).map(|_| vec![TermId(rng.below(12) as u32)]).collect();
            let a: Vec<_> = queries.iter().map(|t| e_loop.query_full(t, 8)).collect();
            let b = e_batch.query_batch(&queries, 8);
            let p = e_plain_batch.query_batch(&queries, 8);
            for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                prop_assert_eq!(&x.hits, &y.hits, "hits diverge, round {} query {}", round, i);
                prop_assert_eq!(x.served, y.served, "outcome diverges, round {} query {}", round, i);
                prop_assert_eq!(x.latency, y.latency, "latency diverges, round {} query {}", round, i);
            }
            if width >= partitions {
                for (i, (x, y)) in b.iter().zip(&p).enumerate() {
                    prop_assert_eq!(&x.hits, &y.hits, "t=all batch hits diverge, round {} query {}", round, i);
                    prop_assert_eq!(x.served, y.served, "t=all batch outcome diverges, round {} query {}", round, i);
                    prop_assert_eq!(x.latency, y.latency, "t=all batch latency diverges, round {} query {}", round, i);
                }
            }
        }
        prop_assert_eq!(e_loop.stats(), e_batch.stats());
        prop_assert_eq!(e_loop.cache_stats(), e_batch.cache_stats());
        prop_assert_eq!(e_loop.dispatch_counts(), e_batch.dispatch_counts());
        // The two routers audited identical streams.
        let (rl, rb) = (
            e_loop.router().expect("routed").stats(),
            e_batch.router().expect("routed").stats(),
        );
        prop_assert_eq!(rl, rb);
        if width >= partitions {
            prop_assert_eq!(e_batch.stats(), e_plain_batch.stats());
            prop_assert_eq!(e_batch.cache_stats(), e_plain_batch.cache_stats());
        }
    }

    /// Property 2: a routed query racing a live split stays bit-identical
    /// to its epoch oracle — [`ShardRouter::oracle_query`] replayed
    /// against a static broker over the same snapshot reproduces hits,
    /// summed cascade latency, shards contacted, and broadening rounds.
    #[test]
    fn routed_queries_racing_splits_match_epoch_oracle(
        parts in 1usize..4,
        docs in 8u32..40,
        n_steps in 1usize..25,
        width in 1usize..5,
        k_raw in 1usize..16,
        query_driven in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let k = k_raw.min(docs as usize);
        let capacity = parts + 2 * n_steps;
        let repart = build_live(docs, 8, parts, capacity, seed);
        let router = Arc::new(if query_driven {
            ShardRouter::query_driven(oracle_training(&repart, 8, k), width)
        } else {
            ShardRouter::cori(width)
        });
        // Cache of 1 so nearly every query evaluates cold (a repeated
        // term may still hit; those are skipped — a cached pre-split
        // routed answer legitimately differs from the new epoch's).
        let engine = DistributedEngine::new_live(&repart, LruCache::new(1), 2)
            .with_router(Arc::clone(&router));
        let mut rng = SimRng::new(seed ^ 0x1EAF);
        let mut issued = 0u64;
        for step in 0..n_steps {
            if rng.below(3) == 0 {
                if let Some(p) = repart.split_target() {
                    repart.split(p, SplitFate::Commit).expect("capacity provisioned");
                }
            }
            let snap = repart.snapshot();
            let oracle = DocBroker::single_site(&snap).with_global_stats(repart.corpus_stats());
            let terms = [TermId(rng.below(8) as u32)];
            let want = router.oracle_query(&oracle, &snap, &terms, k, query_key(&terms), 0);
            let r = engine.query_full(&terms, k);
            issued += 1;
            if r.served == Served::CacheHit {
                continue;
            }
            prop_assert_eq!(&r.hits, &want.hits, "hits diverge from epoch oracle at step {}", step);
            prop_assert_eq!(r.latency, Some(want.latency), "cascade latency diverges at step {}", step);
            let active = snap.active_parts().len();
            match r.served {
                Served::Routed { partitions_contacted } => {
                    prop_assert_eq!(partitions_contacted, want.contacted);
                    prop_assert!(want.contacted < active, "Routed must mean partitions were skipped");
                }
                Served::Full => prop_assert_eq!(want.contacted, active),
                other => prop_assert!(false, "unexpected outcome without faults: {:?}", other),
            }
        }
        repart.validate().expect("map intact after the storm");
        let s = engine.stats();
        prop_assert_eq!(
            s.cache_hits + s.full + s.degraded + s.stale + s.failed + s.partial + s.routed,
            issued,
            "every query lands in exactly one outcome counter"
        );
        // The router audited exactly the cold evaluations, and its
        // broadening count is the engine's.
        let rs = router.stats();
        prop_assert_eq!(rs.queries, s.full + s.routed + s.degraded + s.failed + s.partial);
        prop_assert_eq!(rs.broadenings, s.broadenings);
    }
}

/// The concurrent anchor: clients hammer a routed live engine (point,
/// stale-ok, and batch admission) while a driver sweeps simulated time,
/// firing scheduled splits (with crash fates), fault churn, and the
/// drift-driven profile refresh. No panics; the outcome counters
/// account for every query issued; the live `route.*` instruments agree
/// exactly with the router's own counters; the partition map validates
/// throughout.
fn concurrent_route_run(seed: u64) {
    const CLIENTS: usize = 4;
    const QUERIES_PER_CLIENT: usize = 220;
    const TERMS: u32 = 12;
    let parts = 2;
    let splits = 5;
    let capacity = parts + 2 * splits;
    let horizon = DAY;
    let repart = build_live(48, TERMS, parts, capacity, seed);
    let process = UpDownProcess::exponential(4 * HOUR, 30 * MINUTE);
    let faults = Arc::new(FaultSchedule::generate(capacity, 2, &process, horizon, seed));
    let schedule =
        Arc::new(SplitSchedule::generate_with_crashes(splits, horizon, seed ^ 0x59A7, 0.3));
    let training = oracle_training(&repart, TERMS, 8);
    let retrain_log = training.clone();
    let router = Arc::new(ShardRouter::query_driven(training, 2).with_refresh(DriftRefresh {
        drift: TopicDrift::reversal(&[0.7, 0.3], horizon),
        interval: horizon / 50,
        threshold: 0.2,
        retrain: Arc::new(move |_| retrain_log.clone()),
    }));
    let rec = Arc::new(ObsRecorder::new(ObsConfig::single_site(capacity).with_route()));
    let engine = Arc::new(
        DistributedEngine::new_live(&repart, LruCache::new(32), 2)
            .with_faults(faults)
            .with_splits(schedule)
            .with_parallelism(3)
            .with_router(Arc::clone(&router))
            .with_obs(Arc::clone(&rec)),
    );
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    std::thread::scope(|s| {
        // Driver: sweeps simulated time, firing splits, fault churn,
        // and the router's drift check.
        {
            let engine = Arc::clone(&engine);
            let repart = Arc::clone(&repart);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut t: SimTime = 0;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    engine.advance_to(t % horizon);
                    repart.validate().expect("no torn map observable mid-storm");
                    t += horizon / 400;
                    std::thread::yield_now();
                }
            });
        }
        let mut handles = Vec::new();
        for c in 0..CLIENTS {
            let engine = Arc::clone(&engine);
            handles.push(s.spawn(move || {
                let mut rng = SimRng::new(seed ^ ((c as u64) << 8));
                for i in 0..QUERIES_PER_CLIENT {
                    if i % 11 == 0 {
                        // Batch admission: three queries, counted three.
                        let qs: Vec<Vec<TermId>> =
                            (0..3).map(|j| vec![TermId(((i + j) as u32) % TERMS)]).collect();
                        engine.query_batch(&qs, 8);
                    } else if i % 5 == 0 {
                        engine.query_stale_ok(&[TermId(rng.below(u64::from(TERMS)) as u32)], 8);
                    } else {
                        let terms = [TermId(rng.below(u64::from(TERMS)) as u32)];
                        let (hits, served) = engine.query(&terms, 8);
                        if served == Served::Failed {
                            assert!(hits.is_empty());
                        }
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("no client panics under routed split storms");
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
    });
    repart.validate().expect("map intact after the storm");
    // Batch iterations issue 3 queries, the rest 1.
    let batches_per_client = QUERIES_PER_CLIENT.div_ceil(11);
    let issued = (CLIENTS * (QUERIES_PER_CLIENT + 2 * batches_per_client)) as u64;
    let s = engine.stats();
    assert_eq!(
        s.cache_hits + s.full + s.degraded + s.stale + s.failed + s.partial + s.routed,
        issued,
        "counter totals equal queries issued"
    );
    // Live `route.*` instruments agree exactly with the router's own
    // counters — the cross-check `exp_selective` also asserts offline.
    let rs = router.stats();
    let snap = rec.snapshot();
    assert_eq!(snap.counter("route.queries"), Some(rs.queries));
    assert_eq!(snap.counter("route.shards_contacted"), Some(rs.shards_contacted));
    assert_eq!(snap.counter("route.broadenings"), Some(rs.broadenings));
    assert_eq!(snap.counter("route.covered"), Some(rs.covered));
    assert_eq!(snap.counter("route.profiles"), Some(rs.profiles_built));
    assert_eq!(snap.counter("route.retrains"), Some(rs.retrains));
    assert_eq!(snap.counter("engine.served.routed"), Some(s.routed));
    assert_eq!(rs.broadenings, s.broadenings, "router and engine agree on cascade rounds");
    assert_eq!(
        rs.queries,
        s.full + s.routed + s.degraded + s.failed + s.partial,
        "the router audited exactly the cold evaluations"
    );
    let contacted = snap.histogram("route.contacted").expect("contacted histogram");
    assert_eq!(contacted.count(), rs.queries);
}

#[test]
fn route_fixed_seed_1() {
    concurrent_route_run(0x9075_0001);
}

#[test]
fn route_fixed_seed_2() {
    concurrent_route_run(0x9075_0002);
}

#[test]
fn route_fixed_seed_3() {
    concurrent_route_run(0x9075_0003);
}
