//! Cross-crate integration: failures everywhere — crawler agents, index
//! replicas, whole sites — and the system's mitigation machinery.

use distributed_web_retrieval::avail::failure::UpDownProcess;
use distributed_web_retrieval::avail::site::{Site, SiteConfig};
use distributed_web_retrieval::crawler::assign::{AgentId, ConsistentHashAssigner};
use distributed_web_retrieval::crawler::sim::{CrawlConfig, DistributedCrawl};
use distributed_web_retrieval::partition::doc::{DocPartitioner, RandomPartitioner};
use distributed_web_retrieval::partition::parted::{corpus_from_web, PartitionedIndex};
use distributed_web_retrieval::query::cache::LruCache;
use distributed_web_retrieval::query::engine::{DistributedEngine, Served};
use distributed_web_retrieval::sim::{SimRng, DAY, SECOND};
use distributed_web_retrieval::text::TermId;
use distributed_web_retrieval::webgraph::content::ContentModel;
use distributed_web_retrieval::webgraph::generate::{generate_web, WebConfig};
use distributed_web_retrieval::webgraph::qos::QosConfig;

const SEED: u64 = 90210;

#[test]
fn crawl_survives_agent_crash_and_flaky_servers() {
    let mut web_cfg = WebConfig::tiny();
    web_cfg.num_pages = 600;
    web_cfg.num_hosts = 30;
    let web = generate_web(&web_cfg, SEED);
    let cfg = CrawlConfig {
        agents: 4,
        connections_per_agent: 8,
        politeness_delay: SECOND / 2,
        qos: QosConfig { flaky_fraction: 0.2, flaky_failure_prob: 0.3, ..QosConfig::default() },
        crash: Some((AgentId(1), 20 * 60 * SECOND)),
        ..CrawlConfig::default()
    };
    let r = DistributedCrawl::new(&web, ConsistentHashAssigner::new(4, 64), cfg, SEED).run();
    assert!(r.coverage > 0.5, "coverage {}", r.coverage);
    assert!(r.transient_failures > 0, "failures should have been injected");
}

#[test]
fn replicated_engine_degrades_gracefully_and_recovers() {
    let web = generate_web(&WebConfig::tiny(), SEED);
    let content = ContentModel::small(8);
    let corpus = corpus_from_web(&web, &content, SEED);
    let assignment = RandomPartitioner { seed: SEED }.assign(&corpus, 4);
    let pi = PartitionedIndex::build(&corpus, &assignment, 4);
    let engine = DistributedEngine::new(&pi, LruCache::new(64), 2);

    let terms = [TermId(5), TermId(20_001)];
    let (full, s) = engine.query(&terms, 20);
    assert_eq!(s, Served::Full);

    // One replica down: still full.
    engine.set_replica_alive(2, 0, false);
    let (_, s) = engine.query(&[TermId(6)], 20);
    assert_eq!(s, Served::Full);

    // Whole group down: degraded, and missing exactly partition 2's docs.
    engine.set_replica_alive(2, 1, false);
    let (degraded, s) = engine.query(&[TermId(5), TermId(20_001), TermId(7)], 500);
    assert!(matches!(s, Served::Degraded { missing: 1 }));
    assert!(degraded.iter().all(|h| pi.partition_of(h.doc) != 2));

    // Recovery restores the original results (served from cache here,
    // which is exactly the coordinator's fast path for repeat queries).
    engine.set_replica_alive(2, 0, true);
    let (recovered, s) = engine.query(&terms, 20);
    assert!(matches!(s, Served::Full | Served::CacheHit));
    assert_eq!(recovered, full, "same query, same results after recovery");
}

#[test]
fn site_availability_feeds_query_routing_shape() {
    // Availability simulation and interval bookkeeping stay consistent
    // over long horizons with bursty (Weibull) failures.
    let cfg = SiteConfig {
        servers: 2,
        network: UpDownProcess::bursty(20 * DAY, DAY / 4, 0.7),
        server: UpDownProcess::exponential(40 * DAY, DAY / 2),
    };
    let mut rng = SimRng::new(SEED);
    let site = Site::simulate(&cfg, 365 * DAY, &mut rng);
    let a = site.availability();
    assert!(a > 0.9 && a < 1.0, "availability {a}");
    // Point queries agree with interval accounting.
    let mid_outage = site.down_intervals().first().map(|iv| (iv.start + iv.end) / 2);
    if let Some(t) = mid_outage {
        assert!(!site.is_up(t));
    }
}
