//! Full-system soak under simultaneous churn at every tier.
//!
//! The single-tier chaos suites (crawl_chaos, repart_chaos, site_chaos,
//! route_chaos, tail_chaos) each prove one mechanism in isolation; this
//! suite turns everything on at once — agent churn in the crawl, live
//! shard splits with crash fates, per-replica faults, whole-site
//! outages, shard routing, hedging, stragglers, and gather deadlines —
//! and asserts the end-state invariants from the trace:
//!
//! - zero politeness violations across crawler frontier handoffs;
//! - no `Failed` query while at least one site was live;
//! - every query in exactly one outcome bucket, and the site tier's
//!   own counters telling the same story;
//! - freshness lag bounded by the refresh interval at every refresh;
//! - exactly-once epoch coverage of the partition map;
//! - live `crawl.*` / `repart.*` / `route.*` / `site.*` instruments
//!   equal to the offline stats bitwise.
//!
//! Anchors additionally pin the whole run bit-for-bit: a rerun with the
//! same config reproduces the entire report (every fetch span, query
//! digest, window snapshot), and a parallel-scatter rerun reproduces
//! the query trace and all stats.

use distributed_web_retrieval::query::engine::HedgePolicy;
use distributed_web_retrieval::soak::{SoakConfig, SoakInvariants, SoakScenario};
use proptest::prelude::*;

/// One fixed-seed anchor: invariants clean, rerun bit-identical,
/// sequential scatter ≡ parallel scatter.
fn soak_anchor(seed: u64) {
    let cfg = SoakConfig::smoke(seed);
    let report = SoakScenario::new(cfg.clone()).run();

    let inv = SoakInvariants::check(&report);
    inv.assert_clean();

    // The storm actually stormed: queries arrived and were answered.
    assert!(!report.queries.is_empty(), "no queries arrived");
    let outcomes = report.outcomes();
    assert!(outcomes.full_fidelity() > 0, "nothing served at full fidelity");
    assert!(report.crawl_coverage > 0.9, "churned crawl lost coverage");
    assert!(!report.refreshes.is_empty(), "no index refreshes");
    assert_eq!(
        report.freshness.curve.last().map(|&(_, c)| c),
        Some(1.0),
        "probe query never reached full completeness"
    );

    // Bit-for-bit determinism: the entire report — fetch spans, refresh
    // ledger, query digests, window snapshots, final snapshot — is
    // reproduced by a rerun.
    let again = SoakScenario::new(cfg.clone()).run();
    assert_eq!(report, again, "soak rerun diverged");

    // Parallel scatter changes only the thread schedule, never the
    // results: the query trace and every stats struct are identical.
    let par = SoakScenario::new(SoakConfig { parallelism: 4, ..cfg }).run();
    assert_eq!(report.queries, par.queries, "parallel scatter changed query results");
    assert_eq!(report.site_stats, par.site_stats);
    assert_eq!(report.engine_stats, par.engine_stats);
    assert_eq!(report.router_stats, par.router_stats);
    assert_eq!(report.repart_stats, par.repart_stats);
    assert_eq!(report.crawl_trace, par.crawl_trace);
    SoakInvariants::check(&par).assert_clean();
}

#[test]
fn soak_fixed_seed_1() {
    soak_anchor(0x50A6_0001);
}

#[test]
fn soak_fixed_seed_2() {
    soak_anchor(0x50A6_0002);
}

/// The churn-free arm is also clean and serves everything it answers at
/// full fidelity more often than not.
#[test]
fn soak_calm_baseline_is_clean() {
    let report = SoakScenario::new(SoakConfig {
        serve_horizon: distributed_web_retrieval::sim::HOUR * 6,
        ..SoakConfig::calm(0x50A6_0003)
    })
    .run();
    SoakInvariants::check(&report).assert_clean();
    assert_eq!(report.repart_stats.epoch, 0, "calm arm must not split");
    assert!(report.full_fidelity_fraction() > 0.5);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Any interleaving of crawl churn, splits, outages, replica
    /// faults, routing, and hedging preserves every soak invariant, and
    /// sequential scatter stays equivalent to parallel scatter.
    #[test]
    fn soak_invariants_hold_under_arbitrary_churn(
        seed in any::<u64>(),
        agents in 2u32..5,
        sites in 1usize..4,
        splits in 0usize..4,
        width_sel in 0usize..3,
        hedge_sel in 0u8..3,
        crawl_churn in any::<bool>(),
        site_outages in any::<bool>(),
        replica_churn in any::<bool>(),
    ) {
        let cfg = SoakConfig {
            agents,
            sites,
            splits,
            // 0 = exhaustive fan-out, otherwise a routed width.
            route_width: (width_sel > 0).then_some(width_sel),
            hedge: match hedge_sel {
                0 => HedgePolicy::Never,
                1 => HedgePolicy::OnDeath,
                _ => HedgePolicy::PercentileTrigger(95.0),
            },
            crawl_churn,
            site_outages,
            replica_churn,
            // Keep proptest cases quick: a shorter day than the anchors.
            serve_horizon: distributed_web_retrieval::sim::HOUR * 3,
            ..SoakConfig::smoke(seed)
        };
        let report = SoakScenario::new(cfg.clone()).run();
        SoakInvariants::check(&report).assert_clean();

        let par = SoakScenario::new(SoakConfig { parallelism: 3, ..cfg }).run();
        prop_assert_eq!(&report.queries, &par.queries);
        prop_assert_eq!(&report.site_stats, &par.site_stats);
        prop_assert_eq!(&report.repart_stats, &par.repart_stats);
    }
}
