//! Tail-tolerance suite: the engine under heavy-tailed straggler models,
//! hedging policies, and deadline-aware gather, randomized.
//!
//! Four properties, per ISSUE 7:
//!
//! 1. with no gather deadline, no straggler model, and the default
//!    [`HedgePolicy::OnDeath`], the reworked dispatch path is
//!    **bit-identical** to the pre-tail baseline — the default-constructed
//!    engine and the explicit-policy engine agree on hits, outcomes,
//!    latencies, and every counter (the PR 6 chaos anchors in `chaos.rs`
//!    pin the baseline itself);
//! 2. parallel scatter stays **bit-for-bit equal** to sequential under
//!    every policy × straggler × deadline combination;
//! 3. `query_batch` stays **bit-for-bit equal** to the query-at-a-time
//!    loop under the same combinations;
//! 4. [`Served::Partial`] coverage counts are **exact**: an oracle built
//!    from the public `FaultSchedule` + `StragglerModel` + `service_time`
//!    APIs predicts which partitions make the deadline, and the engine's
//!    `partitions_answered` (and the partition membership of every hit)
//!    must match it.

use dwr_avail::UpDownProcess;
use dwr_partition::doc::{DocPartitioner, RoundRobinPartitioner};
use dwr_partition::parted::{Corpus, PartitionedIndex};
use dwr_query::cache::LruCache;
use dwr_query::engine::{query_key, DistributedEngine, HedgePolicy, Served};
use dwr_query::faults::FaultSchedule;
use dwr_query::straggler::{StragglerModel, TailParams};
use dwr_sim::{SimRng, SimTime, DAY, HOUR, MINUTE};
use dwr_text::TermId;
use proptest::prelude::*;
use std::sync::Arc;

/// Round-robin corpus: doc `d` holds term `d % terms`, so partition
/// membership is `d % partitions` and the coverage oracle can name the
/// partition of every hit.
fn build_rr_index(docs: u32, terms: u32, partitions: usize) -> PartitionedIndex {
    let corpus: Corpus = (0..docs).map(|d| vec![(TermId(d % terms), 1 + d % 3)]).collect();
    let assignment = RoundRobinPartitioner.assign(&corpus, partitions);
    PartitionedIndex::build(&corpus, &assignment, partitions)
}

/// The policy grid the equivalence properties sweep.
fn policy(ix: usize) -> HedgePolicy {
    match ix % 5 {
        0 => HedgePolicy::Never,
        1 => HedgePolicy::OnDeath,
        2 => HedgePolicy::FixedDelay(500),
        3 => HedgePolicy::PercentileTrigger(90.0),
        _ => HedgePolicy::Tied,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property 1: the default engine and the explicit `OnDeath` engine
    /// are indistinguishable under random fault schedules — response by
    /// response and counter by counter.
    #[test]
    fn default_policy_is_bit_identical_to_explicit_on_death(
        partitions in 1usize..5,
        replicas in 1usize..4,
        n_queries in 1usize..60,
        mtbf_hours in 1u64..24,
        seed in any::<u64>(),
    ) {
        let pi = build_rr_index(36, 18, partitions);
        let horizon = 2 * DAY;
        let process = UpDownProcess::exponential(mtbf_hours * HOUR, 90 * MINUTE);
        let schedule = Arc::new(FaultSchedule::generate(
            partitions, replicas, &process, horizon, seed ^ 0x7A11,
        ));
        let baseline = DistributedEngine::new(&pi, LruCache::new(16), replicas)
            .with_faults(Arc::clone(&schedule))
            .with_deadline(HOUR);
        let explicit = DistributedEngine::new(&pi, LruCache::new(16), replicas)
            .with_faults(schedule)
            .with_deadline(HOUR)
            .with_hedge_policy(HedgePolicy::OnDeath);
        let mut rng = SimRng::new(seed ^ 3);
        for i in 0..n_queries {
            let t = i as SimTime * horizon / n_queries as SimTime;
            baseline.advance_to(t);
            explicit.advance_to(t);
            let terms = [TermId(rng.below(18) as u32)];
            let a = baseline.query_full(&terms, 10);
            let b = explicit.query_full(&terms, 10);
            prop_assert_eq!(&a.hits, &b.hits, "hits diverge at t={}", t);
            prop_assert_eq!(a.served, b.served, "outcome diverges at t={}", t);
            prop_assert_eq!(a.latency, b.latency, "latency diverges at t={}", t);
        }
        prop_assert_eq!(baseline.stats(), explicit.stats());
        prop_assert_eq!(baseline.cache_stats(), explicit.cache_stats());
        prop_assert_eq!(baseline.dispatch_counts(), explicit.dispatch_counts());
    }

    /// Property 2: parallel ≡ sequential under stragglers, every hedging
    /// policy, faults, and (half the time) a gather deadline.
    #[test]
    fn parallel_equals_sequential_under_stragglers_and_policies(
        partitions in 1usize..5,
        replicas in 1usize..4,
        threads in 2usize..5,
        n_queries in 1usize..50,
        policy_ix in 0usize..5,
        with_deadline in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let pi = build_rr_index(30, 15, partitions);
        let horizon = 2 * DAY;
        let process = UpDownProcess::exponential(8 * HOUR, HOUR);
        let schedule = Arc::new(FaultSchedule::generate(
            partitions, replicas, &process, horizon, seed ^ 0x7A12,
        ));
        let model = Arc::new(StragglerModel::drawn(seed ^ 0x7A13, TailParams::heavy()));
        let build = || {
            let e = DistributedEngine::new(&pi, LruCache::new(16), replicas)
                .with_faults(Arc::clone(&schedule))
                .with_stragglers(Arc::clone(&model))
                .with_hedge_policy(policy(policy_ix));
            if with_deadline { e.with_gather_deadline(1_500) } else { e }
        };
        let seq = build();
        let par = build().with_parallelism(threads);
        let mut rng = SimRng::new(seed ^ 4);
        for i in 0..n_queries {
            let t = i as SimTime * horizon / n_queries as SimTime;
            seq.advance_to(t);
            par.advance_to(t);
            let terms = [TermId(rng.below(15) as u32)];
            let a = seq.query_full(&terms, 10);
            let b = par.query_full(&terms, 10);
            prop_assert_eq!(&a.hits, &b.hits, "hits diverge at t={}", t);
            prop_assert_eq!(a.served, b.served, "outcome diverges at t={}", t);
            prop_assert_eq!(a.latency, b.latency, "latency diverges at t={}", t);
        }
        prop_assert_eq!(seq.stats(), par.stats());
        prop_assert_eq!(seq.cache_stats(), par.cache_stats());
        prop_assert_eq!(seq.dispatch_counts(), par.dispatch_counts());
    }

    /// Property 3: batch ≡ query-at-a-time loop under the same straggler
    /// × policy × deadline grid, down to every counter.
    #[test]
    fn batch_equals_loop_under_stragglers_and_policies(
        partitions in 1usize..5,
        replicas in 1usize..4,
        n_queries in 1usize..40,
        policy_ix in 0usize..5,
        with_deadline in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let pi = build_rr_index(30, 15, partitions);
        let process = UpDownProcess::exponential(8 * HOUR, HOUR);
        let schedule = Arc::new(FaultSchedule::generate(
            partitions, replicas, &process, DAY, seed ^ 0x7A14,
        ));
        let model = Arc::new(StragglerModel::drawn(seed ^ 0x7A15, TailParams::heavy()));
        let build = || {
            let e = DistributedEngine::new(&pi, LruCache::new(16), replicas)
                .with_faults(Arc::clone(&schedule))
                .with_stragglers(Arc::clone(&model))
                .with_hedge_policy(policy(policy_ix));
            if with_deadline { e.with_gather_deadline(1_500) } else { e }
        };
        let batched = build();
        let looped = build();
        let mut rng = SimRng::new(seed ^ 5);
        let queries: Vec<Vec<TermId>> = (0..n_queries)
            .map(|_| vec![TermId(rng.below(15) as u32)])
            .collect();
        let t = rng.below(DAY);
        batched.advance_to(t);
        looped.advance_to(t);
        let from_batch = batched.query_batch(&queries, 10);
        let from_loop: Vec<_> =
            queries.iter().map(|q| looped.query_full(q, 10)).collect();
        prop_assert_eq!(from_batch.len(), from_loop.len());
        for (i, (a, b)) in from_batch.iter().zip(&from_loop).enumerate() {
            prop_assert_eq!(&a.hits, &b.hits, "hits diverge at query {}", i);
            prop_assert_eq!(a.served, b.served, "outcome diverges at query {}", i);
            prop_assert_eq!(a.latency, b.latency, "latency diverges at query {}", i);
        }
        prop_assert_eq!(batched.stats(), looped.stats());
        prop_assert_eq!(batched.cache_stats(), looped.cache_stats());
        prop_assert_eq!(batched.dispatch_counts(), looped.dispatch_counts());
    }

    /// Property 4: `Served::Partial` coverage counts are exact. With one
    /// replica per partition and `HedgePolicy::Never`, the public APIs
    /// fully determine each partition's fate: down at dispatch → missing,
    /// dies mid-service → missing, completes after the deadline → dropped,
    /// otherwise answered. The engine must report exactly that.
    #[test]
    fn partial_coverage_counts_are_exact(
        partitions in 1usize..6,
        n_queries in 1usize..40,
        deadline in 400u64..3_000,
        mtbf_hours in 1u64..24,
        seed in any::<u64>(),
    ) {
        let docs = 48u32;
        let pi = build_rr_index(docs, docs, partitions);
        let horizon = 2 * DAY;
        let process = UpDownProcess::exponential(mtbf_hours * HOUR, HOUR);
        let schedule = Arc::new(FaultSchedule::generate(
            partitions, 1, &process, horizon, seed ^ 0x7A16,
        ));
        let model = Arc::new(StragglerModel::drawn(seed ^ 0x7A17, TailParams::heavy()));
        let engine = DistributedEngine::new(&pi, LruCache::new(4), 1)
            .with_faults(Arc::clone(&schedule))
            .with_stragglers(Arc::clone(&model))
            .with_hedge_policy(HedgePolicy::Never)
            .with_gather_deadline(deadline);
        let mut expected_partials = 0u64;
        for i in 0..n_queries {
            let t = i as SimTime * horizon / n_queries as SimTime;
            engine.advance_to(t);
            // Distinct term per query: the cache never interferes.
            let terms = [TermId(i as u32 % docs)];
            let qid = query_key(&terms);
            // Oracle: classify every partition from public APIs alone.
            let mut served_parts = 0usize;
            let mut answered = Vec::new();
            for p in 0..partitions {
                if schedule.is_down(p, 0, t) {
                    continue; // no live replica to dispatch to
                }
                let base = engine.broker().service_time(p, &terms);
                let c1 = model.cost(base, p, 0, qid);
                if schedule.fails_during(p, 0, t, t + c1) {
                    continue; // dies mid-service; Never policy won't hedge
                }
                served_parts += 1;
                if c1 <= deadline {
                    answered.push(p);
                }
            }
            let r = engine.query_full(&terms, 16);
            if served_parts == 0 {
                prop_assert_eq!(r.served, Served::Failed, "query {}", i);
                continue;
            }
            if answered.len() < served_parts {
                prop_assert_eq!(
                    r.served,
                    Served::Partial { partitions_answered: answered.len() },
                    "query {} at t={}", i, t
                );
                prop_assert!(
                    r.latency.unwrap() >= deadline,
                    "partials release at the deadline, got {:?}", r.latency
                );
                expected_partials += 1;
            } else if served_parts < partitions {
                prop_assert_eq!(
                    r.served,
                    Served::Degraded { missing: partitions - served_parts },
                    "query {}", i
                );
            } else {
                prop_assert_eq!(r.served, Served::Full, "query {}", i);
            }
            // Every hit must come from a partition the oracle says answered.
            for h in &r.hits {
                prop_assert!(
                    answered.contains(&(h.doc as usize % partitions)),
                    "hit doc {} from unanswered partition (answered {:?})",
                    h.doc, answered
                );
            }
        }
        prop_assert_eq!(engine.stats().partial, expected_partials);
    }
}

/// Deterministic anchor: a fixed-seed tail pass where every outcome —
/// including `Partial` — lands in exactly one counter, and at least one
/// partial actually occurs.
#[test]
fn tail_fixed_seed_outcomes_account_for_every_query() {
    let partitions = 4;
    let pi = build_rr_index(48, 24, partitions);
    let horizon = 2 * DAY;
    let process = UpDownProcess::exponential(6 * HOUR, HOUR);
    let schedule = Arc::new(FaultSchedule::generate(partitions, 2, &process, horizon, 0x7A11_0001));
    let model = Arc::new(StragglerModel::drawn(0x7A11_0002, TailParams::heavy()));
    let engine = DistributedEngine::new(&pi, LruCache::new(16), 2)
        .with_faults(schedule)
        .with_stragglers(model)
        .with_hedge_policy(HedgePolicy::FixedDelay(800))
        .with_gather_deadline(1_200);
    let n = 400u64;
    let mut rng = SimRng::new(0x7A11_0003);
    for i in 0..n {
        engine.advance_to(i * horizon / n);
        // The second term is absent from the corpus: it leaves the hits
        // unchanged but makes every query key — and therefore every
        // straggler draw — distinct, so the tail actually gets sampled.
        engine.query(&[TermId(rng.below(24) as u32), TermId(1_000 + i as u32)], 8);
    }
    let s = engine.stats();
    let total = s.cache_hits + s.full + s.degraded + s.stale + s.failed + s.partial;
    assert_eq!(total, n, "every query lands in exactly one outcome counter: {s:?}");
    assert!(s.partial > 0, "the anchor exercises deadline-dropped gathers: {s:?}");
    assert!(s.hedged > 0, "the anchor exercises straggler hedges: {s:?}");
    assert_eq!(engine.stats(), s, "stats snapshots are stable once the stream ends");
}
