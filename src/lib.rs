//! # distributed-web-retrieval (ocean)
//!
//! Root facade of the `ocean` workspace: re-exports every subsystem crate so
//! examples and downstream users can depend on a single package.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every reproduced table and figure.

pub use dwr_avail as avail;
pub use dwr_core as core;
pub use dwr_crawler as crawler;
pub use dwr_obs as obs;
pub use dwr_partition as partition;
pub use dwr_query as query;
pub use dwr_querylog as querylog;
pub use dwr_queueing as queueing;
pub use dwr_sim as sim;
pub use dwr_soak as soak;
pub use dwr_text as text;
pub use dwr_webgraph as webgraph;
