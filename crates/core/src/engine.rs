//! The end-to-end laboratory: web → crawl → partition → index → query.
//!
//! [`SearchEngineLab`] runs the complete life cycle of a distributed Web
//! search engine on a synthetic Web, wiring every subsystem crate
//! together. It is both the top-level public API (the quickstart example
//! uses nothing else) and the integration substrate for cross-crate tests.

use dwr_crawler::assign::ConsistentHashAssigner;
use dwr_crawler::sim::{CrawlConfig, CrawlReport, DistributedCrawl};
use dwr_partition::doc::{DocPartitioner, RandomPartitioner};
use dwr_partition::parted::{corpus_from_web, Corpus, PartitionedIndex};
use dwr_query::broker::GlobalHit;
use dwr_query::cache::LruCache;
use dwr_query::engine::{DistributedEngine, EngineStats, Served};
use dwr_querylog::arrival::DiurnalProfile;
use dwr_querylog::log::QueryLog;
use dwr_querylog::model::QueryModel;
use dwr_sim::{SimTime, HOUR};
use dwr_text::TermId;
use dwr_webgraph::content::ContentModel;
use dwr_webgraph::generate::{generate_web, WebConfig};
use dwr_webgraph::SyntheticWeb;

/// Configuration of a full laboratory run.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Synthetic web parameters.
    pub web: WebConfig,
    /// Crawl parameters.
    pub crawl: CrawlConfig,
    /// Number of index partitions / query processors.
    pub partitions: usize,
    /// Replicas per partition.
    pub replicas: usize,
    /// Result-cache capacity (entries).
    pub cache_capacity: usize,
    /// Distinct queries in the universe.
    pub query_universe: usize,
    /// Length of the simulated query stream.
    pub stream_horizon: SimTime,
    /// Mean arrival rate of queries, per second.
    pub query_qps: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            web: WebConfig::tiny(),
            crawl: CrawlConfig::default(),
            partitions: 4,
            replicas: 2,
            cache_capacity: 256,
            query_universe: 1_000,
            stream_horizon: HOUR,
            query_qps: 1.0,
            seed: 42,
        }
    }
}

/// How a query stream is driven through the engine.
#[derive(Debug, Clone, Copy)]
pub struct StreamOptions {
    /// Worker threads for per-query parallel scatter-gather inside the
    /// broker (`None` = evaluate partitions sequentially). Either way
    /// the results and simulated latencies are identical.
    pub scatter_threads: Option<usize>,
    /// Client threads driving the shared engine concurrently. With one
    /// client the stream is replayed in log order (deterministic cache
    /// behaviour); with more, clients split the log and race.
    pub clients: usize,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions { scatter_threads: None, clients: 1 }
    }
}

/// Report of an end-to-end run.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Crawl outcome.
    pub crawl: CrawlReport,
    /// Documents actually indexed (crawled pages only).
    pub indexed_docs: usize,
    /// Query-serving counters.
    pub serving: EngineStats,
    /// Result-cache hit ratio over the stream.
    pub cache_hit_ratio: f64,
    /// Queries in the stream.
    pub queries_served: u64,
    /// Queries that reached the backend (cache misses that evaluated).
    pub backend_queries: u64,
    /// Mean simulated backend latency (µs) over `backend_queries`.
    pub backend_latency_mean_us: f64,
}

/// The assembled laboratory.
pub struct SearchEngineLab {
    web: SyntheticWeb,
    content: ContentModel,
    corpus: Corpus,
    index: PartitionedIndex,
    query_model: QueryModel,
    crawl_report: CrawlReport,
    cfg: EngineConfig,
}

impl SearchEngineLab {
    /// Build the laboratory: generates the web, crawls it, and indexes the
    /// crawled documents into a document-partitioned index.
    ///
    /// Pages the crawler failed to reach are indexed as empty documents
    /// (they exist in the id space but match nothing), mirroring a real
    /// engine whose index only covers its crawl.
    pub fn build(cfg: EngineConfig) -> Self {
        let web = generate_web(&cfg.web, cfg.seed);
        let content = ContentModel::small(cfg.web.num_topics);

        // Crawl.
        let assigner = ConsistentHashAssigner::new(cfg.crawl.agents, 64);
        let crawl_report = DistributedCrawl::new(&web, assigner, cfg.crawl.clone(), cfg.seed).run();

        // Corpus of *crawled* pages; uncrawled pages are empty docs.
        // Re-run the crawl cheaply is not possible (report only), so we
        // approximate coverage: the fetched count tells us how many pages
        // made it; we index the full corpus when coverage is high. For
        // faithful accounting we zero out a deterministic sample of
        // (1 - coverage) pages.
        let mut corpus = corpus_from_web(&web, &content, cfg.seed);
        let missing = corpus.len() - crawl_report.fetched_pages.min(corpus.len() as u64) as usize;
        if missing > 0 {
            let mut rng = dwr_sim::SimRng::new(cfg.seed).fork_named("uncrawled");
            let holes = rng.sample_indices(corpus.len(), missing);
            for h in holes {
                corpus[h].clear();
            }
        }

        // Partition + index.
        let assignment = RandomPartitioner { seed: cfg.seed }.assign(&corpus, cfg.partitions);
        let index = PartitionedIndex::build(&corpus, &assignment, cfg.partitions);

        // Query universe.
        let query_model =
            QueryModel::generate(&content, cfg.query_universe, 0.8, 0.9, cfg.seed ^ 0xABCD);

        SearchEngineLab { web, content, corpus, index, query_model, crawl_report, cfg }
    }

    /// The synthetic web.
    pub fn web(&self) -> &SyntheticWeb {
        &self.web
    }

    /// The content model.
    pub fn content(&self) -> &ContentModel {
        &self.content
    }

    /// The indexed corpus.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// The partitioned index.
    pub fn index(&self) -> &PartitionedIndex {
        &self.index
    }

    /// The query model.
    pub fn query_model(&self) -> &QueryModel {
        &self.query_model
    }

    /// The crawl report of the build phase.
    pub fn crawl_report(&self) -> &CrawlReport {
        &self.crawl_report
    }

    /// Answer a single ad-hoc query (no cache), top-k global hits.
    pub fn search(&self, terms: &[TermId], k: usize) -> Vec<GlobalHit> {
        let broker = dwr_query::broker::DocBroker::single_site(&self.index);
        broker.query(terms, k).hits
    }

    /// Serve a realistic query stream through the full engine (cache +
    /// replicated partitions) and report. Sequential drive, sequential
    /// scatter — the deterministic baseline.
    pub fn serve_stream(&self) -> EngineReport {
        self.serve_stream_with(StreamOptions::default())
    }

    /// Serve the query stream with explicit concurrency options: a
    /// worker pool for per-query scatter-gather, and/or multiple client
    /// threads sharing one engine. The engine is `Send + Sync`, so the
    /// clients drive it through a plain shared reference.
    pub fn serve_stream_with(&self, opts: StreamOptions) -> EngineReport {
        assert!(opts.clients >= 1, "at least one client");
        let profiles =
            vec![DiurnalProfile { mean_qps: self.cfg.query_qps, amplitude: 0.6, phase: 0.0 }];
        let log = QueryLog::generate(
            &self.query_model,
            &profiles,
            self.cfg.stream_horizon,
            None,
            self.cfg.seed ^ 0xBEEF,
        );
        // Resolve term vectors up front: shared read-only input for the
        // client threads.
        let stream: Vec<Vec<TermId>> = log
            .records()
            .iter()
            .map(|rec| {
                let q = self.query_model.query(rec.query);
                q.terms.iter().map(|t| TermId(t.0)).collect()
            })
            .collect();
        let cache = LruCache::new(self.cfg.cache_capacity);
        let mut engine = DistributedEngine::new(&self.index, cache, self.cfg.replicas);
        if let Some(threads) = opts.scatter_threads {
            engine = engine.with_parallelism(threads);
        }
        let engine = &engine;

        let mut served = 0u64;
        let mut backend_queries = 0u64;
        let mut latency_sum = 0u128;
        if opts.clients == 1 {
            for terms in &stream {
                let r = engine.query_full(terms, 10);
                debug_assert!(!matches!(r.served, Served::Failed));
                served += 1;
                if let Some(l) = r.latency {
                    backend_queries += 1;
                    latency_sum += u128::from(l);
                }
            }
        } else {
            let chunk = stream.len().div_ceil(opts.clients);
            let per_client: Vec<(u64, u64, u128)> = std::thread::scope(|s| {
                let handles: Vec<_> = stream
                    .chunks(chunk.max(1))
                    .map(|slice| {
                        s.spawn(move || {
                            let mut served = 0u64;
                            let mut backend = 0u64;
                            let mut lat = 0u128;
                            for terms in slice {
                                let r = engine.query_full(terms, 10);
                                debug_assert!(!matches!(r.served, Served::Failed));
                                served += 1;
                                if let Some(l) = r.latency {
                                    backend += 1;
                                    lat += u128::from(l);
                                }
                            }
                            (served, backend, lat)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("client thread panicked")).collect()
            });
            for (s, b, l) in per_client {
                served += s;
                backend_queries += b;
                latency_sum += l;
            }
        }
        EngineReport {
            crawl: self.crawl_report.clone(),
            indexed_docs: self.corpus.iter().filter(|d| !d.is_empty()).count(),
            serving: engine.stats(),
            cache_hit_ratio: engine.cache_stats().hit_ratio(),
            queries_served: served,
            backend_queries,
            backend_latency_mean_us: if backend_queries == 0 {
                0.0
            } else {
                latency_sum as f64 / backend_queries as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> EngineConfig {
        let mut web = WebConfig::tiny();
        web.num_pages = 600;
        web.num_hosts = 30;
        EngineConfig {
            web,
            crawl: CrawlConfig {
                agents: 2,
                connections_per_agent: 8,
                politeness_delay: dwr_sim::SECOND / 2,
                ..CrawlConfig::default()
            },
            partitions: 3,
            replicas: 2,
            cache_capacity: 64,
            query_universe: 200,
            stream_horizon: HOUR / 2,
            query_qps: 0.5,
            seed: 7,
        }
    }

    #[test]
    fn end_to_end_builds_and_serves() {
        let lab = SearchEngineLab::build(small_cfg());
        assert!(lab.crawl_report().coverage > 0.4);
        let report = lab.serve_stream();
        assert!(report.queries_served > 0);
        assert!(report.indexed_docs > 0);
        assert_eq!(
            report.serving.full + report.serving.cache_hits + report.serving.degraded,
            report.queries_served
        );
        // Zipf query stream must produce cache hits.
        assert!(report.cache_hit_ratio > 0.1, "hit ratio {}", report.cache_hit_ratio);
    }

    #[test]
    fn search_returns_ranked_hits() {
        let lab = SearchEngineLab::build(small_cfg());
        let q = lab.query_model().query(dwr_querylog::model::QueryId(0));
        let terms: Vec<TermId> = q.terms.iter().map(|t| TermId(t.0)).collect();
        let hits = lab.search(&terms, 10);
        assert!(hits.len() <= 10);
        assert!(hits.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn deterministic_build() {
        let a = SearchEngineLab::build(small_cfg());
        let b = SearchEngineLab::build(small_cfg());
        assert_eq!(a.crawl_report().fetched_pages, b.crawl_report().fetched_pages);
        assert_eq!(a.index().sizes(), b.index().sizes());
    }

    #[test]
    fn parallel_scatter_stream_matches_sequential() {
        let lab = SearchEngineLab::build(small_cfg());
        let seq = lab.serve_stream();
        let par = lab.serve_stream_with(StreamOptions { scatter_threads: Some(4), clients: 1 });
        assert_eq!(seq.queries_served, par.queries_served);
        assert_eq!(seq.serving, par.serving);
        assert_eq!(seq.backend_queries, par.backend_queries);
        assert_eq!(seq.backend_latency_mean_us, par.backend_latency_mean_us);
        assert_eq!(seq.cache_hit_ratio, par.cache_hit_ratio);
    }

    #[test]
    fn concurrent_clients_serve_the_whole_stream() {
        let lab = SearchEngineLab::build(small_cfg());
        let baseline = lab.serve_stream();
        let report = lab.serve_stream_with(StreamOptions { scatter_threads: None, clients: 4 });
        assert_eq!(report.queries_served, baseline.queries_served);
        // Every query is accounted exactly once across the shared engine.
        let s = report.serving;
        assert_eq!(s.full + s.cache_hits + s.degraded + s.stale, report.queries_served);
        assert_eq!(s.failed, 0);
        assert!(report.backend_queries > 0);
        assert!(report.backend_latency_mean_us > 0.0);
    }
}
