//! # dwr-core — the assembled distributed Web retrieval laboratory
//!
//! Everything the other crates provide, wired end-to-end:
//!
//! * [`taxonomy`](mod@taxonomy) — Table 1 of the paper as data: the module × issue
//!   matrix with the exact entries the paper lists;
//! * [`engine`] — the full life cycle: generate a synthetic Web → crawl it
//!   with distributed agents → partition and index the crawled documents →
//!   serve a query stream through caches, collection selection and
//!   replicated partitions, reporting the metrics every experiment needs.
//!
//! See `DESIGN.md` at the repository root for the system inventory and
//! `EXPERIMENTS.md` for the paper-vs-measured record.

pub mod engine;
pub mod taxonomy;

pub use engine::{EngineConfig, EngineReport, SearchEngineLab, StreamOptions};
pub use taxonomy::{taxonomy, Issue, Module, TaxonomyEntry};
