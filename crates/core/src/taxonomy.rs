//! Table 1 of the paper as data.
//!
//! "Table 1. Main modules of a distributed Web retrieval system, and key
//! issues for each module." The table cross-tabulates the three system
//! modules (crawling, indexing, querying) against the four high-level
//! issues (partitioning, communication, dependability/synchronization,
//! external factors). Encoding it as data keeps the survey's structure
//! testable and lets the `table1` bench binary print it verbatim.

/// The three main system modules (rows of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Module {
    /// Section 3.
    Crawling,
    /// Section 4.
    Indexing,
    /// Section 5.
    Querying,
}

impl Module {
    /// All modules in paper order.
    pub fn all() -> [Module; 3] {
        [Module::Crawling, Module::Indexing, Module::Querying]
    }

    /// The paper section covering the module.
    pub fn section(&self) -> u8 {
        match self {
            Module::Crawling => 3,
            Module::Indexing => 4,
            Module::Querying => 5,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Module::Crawling => "Crawling",
            Module::Indexing => "Indexing",
            Module::Querying => "Querying",
        }
    }
}

/// The four high-level issues (columns of Table 1), "all of them crucial
/// for the scalability of the system".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Issue {
    /// Data scalability.
    Partitioning,
    /// Processing scalability.
    Communication,
    /// Freedom from failures (reliability, availability, safety, security).
    Dependability,
    /// External constraints on the system.
    ExternalFactors,
}

impl Issue {
    /// All issues in paper order.
    pub fn all() -> [Issue; 4] {
        [Issue::Partitioning, Issue::Communication, Issue::Dependability, Issue::ExternalFactors]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Issue::Partitioning => "Partitioning",
            Issue::Communication => "Communication",
            Issue::Dependability => "Dependability (synchronization)",
            Issue::ExternalFactors => "External factors",
        }
    }
}

/// One cell of Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaxonomyEntry {
    /// Row.
    pub module: Module,
    /// Column.
    pub issue: Issue,
    /// The paper's cell contents.
    pub topics: Vec<&'static str>,
    /// Where in this repository each topic is implemented.
    pub implemented_in: &'static str,
}

/// The complete Table 1, row-major.
pub fn taxonomy() -> Vec<TaxonomyEntry> {
    use Issue::*;
    use Module::*;
    vec![
        TaxonomyEntry {
            module: Crawling,
            issue: Partitioning,
            topics: vec!["URL assignment"],
            implemented_in: "dwr-crawler::assign",
        },
        TaxonomyEntry {
            module: Crawling,
            issue: Communication,
            topics: vec!["Re-crawling"],
            implemented_in: "dwr-crawler::recrawl",
        },
        TaxonomyEntry {
            module: Crawling,
            issue: Dependability,
            topics: vec!["URL exchanges"],
            implemented_in: "dwr-crawler::{exchange, sim}",
        },
        TaxonomyEntry {
            module: Crawling,
            issue: ExternalFactors,
            topics: vec![
                "Web growth",
                "Content change",
                "Network topology",
                "Bandwidth",
                "DNS",
                "QoS of Web servers",
            ],
            implemented_in: "dwr-webgraph::{evolve, dns, qos, sitemap}, dwr-sim::net",
        },
        TaxonomyEntry {
            module: Indexing,
            issue: Partitioning,
            topics: vec!["Document partitioning", "Term partitioning"],
            implemented_in: "dwr-partition::{doc, term}",
        },
        TaxonomyEntry {
            module: Indexing,
            issue: Communication,
            topics: vec!["Re-indexing"],
            implemented_in: "dwr-partition::build",
        },
        TaxonomyEntry {
            module: Indexing,
            issue: Dependability,
            topics: vec!["Partial indexing", "Updating", "Merging"],
            implemented_in: "dwr-text::{index, dynamic}, dwr-partition::build",
        },
        TaxonomyEntry {
            module: Indexing,
            issue: ExternalFactors,
            topics: vec!["Web growth", "Content change", "Global statistics"],
            implemented_in: "dwr-webgraph::evolve, dwr-partition::stats",
        },
        TaxonomyEntry {
            module: Querying,
            issue: Partitioning,
            topics: vec!["Query routing", "Collection selection", "Load balancing"],
            implemented_in:
                "dwr-query::{broker, site, routing, arch}, dwr-partition::select, dwr-text::langid",
        },
        TaxonomyEntry {
            module: Querying,
            issue: Communication,
            topics: vec!["Replication", "Caching"],
            implemented_in: "dwr-query::{replica, cache, hierarchy}",
        },
        TaxonomyEntry {
            module: Querying,
            issue: Dependability,
            topics: vec!["Rank aggregation", "Personalization"],
            implemented_in: "dwr-query::{broker, replica, personalize}",
        },
        TaxonomyEntry {
            module: Querying,
            issue: ExternalFactors,
            topics: vec!["Changing user needs", "User base growth", "DNS"],
            implemented_in: "dwr-querylog::drift, dwr-queueing::capacity",
        },
    ]
}

/// Render Table 1 as aligned plain text (what `--bin table1` prints).
pub fn render_table1() -> String {
    let mut out = String::new();
    out.push_str(
        "Table 1. Main modules of a distributed Web retrieval system, and key issues for each module.\n\n",
    );
    for module in Module::all() {
        out.push_str(&format!("{} (Sec. {})\n", module.name(), module.section()));
        for entry in taxonomy().iter().filter(|e| e.module == module) {
            out.push_str(&format!("  {:<34} {}\n", entry.issue.name(), entry.topics.join(", ")));
            out.push_str(&format!("  {:<34}   -> {}\n", "", entry.implemented_in));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_complete_3_by_4() {
        let t = taxonomy();
        assert_eq!(t.len(), 12);
        for m in Module::all() {
            for i in Issue::all() {
                assert!(
                    t.iter().any(|e| e.module == m && e.issue == i),
                    "missing cell ({m:?}, {i:?})"
                );
            }
        }
    }

    #[test]
    fn every_cell_has_topics_and_implementation() {
        for e in taxonomy() {
            assert!(!e.topics.is_empty());
            assert!(!e.implemented_in.is_empty());
        }
    }

    #[test]
    fn paper_cells_spot_checked() {
        let t = taxonomy();
        let cell = |m, i| {
            t.iter().find(|e| e.module == m && e.issue == i).expect("cell exists").topics.clone()
        };
        assert_eq!(cell(Module::Crawling, Issue::Partitioning), vec!["URL assignment"]);
        assert_eq!(
            cell(Module::Indexing, Issue::Partitioning),
            vec!["Document partitioning", "Term partitioning"]
        );
        assert!(cell(Module::Querying, Issue::Communication).contains(&"Caching"));
        assert!(cell(Module::Crawling, Issue::ExternalFactors).contains(&"DNS"));
    }

    #[test]
    fn sections_match_paper() {
        assert_eq!(Module::Crawling.section(), 3);
        assert_eq!(Module::Indexing.section(), 4);
        assert_eq!(Module::Querying.section(), 5);
    }

    #[test]
    fn render_contains_all_modules() {
        let s = render_table1();
        for m in Module::all() {
            assert!(s.contains(m.name()));
        }
        assert!(s.contains("Collection selection"));
    }
}
