//! Property-based tests of the IR core's invariants.

use dwr_text::index::{build_index, merge_indexes, sort_based_build};
use dwr_text::postings::PostingListBuilder;
use dwr_text::score::Bm25;
use dwr_text::search::{search_and, search_or};
use dwr_text::token::{term_frequencies, tokenize};
use dwr_text::topk::TopK;
use dwr_text::{DocId, TermId};
use proptest::prelude::*;

/// Strategy: a sorted, strictly ascending (doc, tf) posting vector.
fn postings_strategy() -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::btree_set(0u32..1_000_000, 0..100).prop_flat_map(|docs| {
        let docs: Vec<u32> = docs.into_iter().collect();
        let n = docs.len();
        prop::collection::vec(1u32..10_000, n)
            .prop_map(move |tfs| docs.iter().copied().zip(tfs).collect())
    })
}

/// Strategy: a random small corpus.
fn corpus_strategy() -> impl Strategy<Value = Vec<Vec<(TermId, u32)>>> {
    prop::collection::vec(
        prop::collection::btree_map(0u32..200, 1u32..5, 0..20)
            .prop_map(|m| m.into_iter().map(|(t, tf)| (TermId(t), tf)).collect()),
        0..40,
    )
}

proptest! {
    /// Codec roundtrip: decode(encode(postings)) == postings, and df/cf
    /// match.
    #[test]
    fn postings_roundtrip(postings in postings_strategy()) {
        let mut b = PostingListBuilder::new();
        for &(d, tf) in &postings {
            b.push(DocId(d), tf);
        }
        let list = b.finish();
        prop_assert_eq!(list.df() as usize, postings.len());
        prop_assert_eq!(list.cf(), postings.iter().map(|&(_, tf)| u64::from(tf)).sum::<u64>());
        let decoded: Vec<(u32, u32)> = list.iter().map(|p| (p.doc.0, p.tf)).collect();
        prop_assert_eq!(decoded, postings);
    }

    /// TopK equals a full sort-and-truncate.
    #[test]
    fn topk_matches_sort(entries in prop::collection::vec((any::<u32>(), -1e6f32..1e6), 0..200), k in 1usize..20) {
        let mut top = TopK::new(k);
        for &(key, score) in &entries {
            top.push(key, score);
        }
        let got = top.into_sorted_vec();
        let mut want = entries.clone();
        want.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        want.dedup();
        // dedup only adjacent duplicates of identical (key, score) pairs —
        // duplicates are legal inputs, so compare prefix by values instead.
        let want: Vec<(u32, f32)> = {
            let mut w = entries.clone();
            w.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
            w.truncate(k);
            w
        };
        prop_assert_eq!(got, want);
    }

    /// Building an index via any strategy yields identical statistics.
    #[test]
    fn builders_agree(corpus in corpus_strategy()) {
        let a = build_index(&corpus);
        let b = sort_based_build(&corpus);
        prop_assert_eq!(a.num_docs(), b.num_docs());
        prop_assert_eq!(a.num_terms(), b.num_terms());
        for (t, list) in a.terms() {
            let other = b.postings(t).expect("term in both");
            prop_assert_eq!(list.to_vec(), other.to_vec());
        }
    }

    /// Merging chunked sub-indexes reproduces the monolithic index.
    #[test]
    fn merge_equals_monolithic(corpus in corpus_strategy(), cut in 0usize..40) {
        let cut = cut.min(corpus.len());
        let merged = merge_indexes(&[build_index(&corpus[..cut]), build_index(&corpus[cut..])]);
        let mono = build_index(&corpus);
        prop_assert_eq!(merged.num_docs(), mono.num_docs());
        for (t, list) in mono.terms() {
            let other = merged.postings(t).expect("term present");
            prop_assert_eq!(list.to_vec(), other.to_vec());
        }
    }

    /// The tokenizer is total and only emits tokens of length >= 2 without
    /// separators.
    #[test]
    fn tokenizer_total(text in ".*") {
        let tokens = tokenize(&text);
        for t in tokens {
            prop_assert!(t.chars().count() >= 2);
            prop_assert!(t.chars().all(char::is_alphanumeric));
        }
    }

    /// term_frequencies output is sorted, unique, and conserves tokens.
    #[test]
    fn term_frequencies_conserve(tokens in prop::collection::vec(0u32..50, 0..100)) {
        let ids: Vec<TermId> = tokens.iter().map(|&t| TermId(t)).collect();
        let tf = term_frequencies(&ids);
        prop_assert!(tf.windows(2).all(|w| w[0].0 < w[1].0));
        let total: u32 = tf.iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(total as usize, tokens.len());
    }

    /// AND results are a subset of OR results with identical scores.
    #[test]
    fn and_subset_of_or(corpus in corpus_strategy(), t1 in 0u32..200, t2 in 0u32..200) {
        let idx = build_index(&corpus);
        let terms = [TermId(t1), TermId(t2)];
        let bm = Bm25::default();
        let and_hits = search_and(&idx, &terms, 1000, &bm, &idx);
        let or_hits = search_or(&idx, &terms, 1000, &bm, &idx);
        for a in &and_hits {
            let o = or_hits.iter().find(|h| h.doc == a.doc);
            prop_assert!(o.is_some(), "AND hit missing from OR");
            prop_assert!((o.unwrap().score - a.score).abs() < 1e-4);
        }
    }

    /// BM25 scores are finite and non-negative for any stats combination.
    #[test]
    fn bm25_sane(tf in 1u32..1000, doc_len in 0u32..100_000) {
        let idx = build_index(&[vec![(TermId(0), 1)], vec![(TermId(1), 2)]]);
        let bm = Bm25::default();
        let s = bm.score(&idx, TermId(0), tf, doc_len);
        prop_assert!(s.is_finite() && s >= 0.0);
    }
}
