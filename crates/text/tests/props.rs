//! Property-based tests of the IR core's invariants.

use dwr_text::index::{build_index, merge_indexes, sort_based_build};
use dwr_text::postings::{PostingList, PostingListBuilder};
use dwr_text::score::{Bm25, GlobalStats};
use dwr_text::search::{
    search_and, search_and_exhaustive, search_or, search_or_with, EvalStats, EvalStrategy,
};
use dwr_text::token::{term_frequencies, tokenize};
use dwr_text::topk::TopK;
use dwr_text::{DocId, TermId};
use proptest::prelude::*;

/// Strategy: a sorted, strictly ascending (doc, tf) posting vector.
fn postings_strategy() -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::btree_set(0u32..1_000_000, 0..100).prop_flat_map(|docs| {
        let docs: Vec<u32> = docs.into_iter().collect();
        let n = docs.len();
        prop::collection::vec(1u32..10_000, n)
            .prop_map(move |tfs| docs.iter().copied().zip(tfs).collect())
    })
}

/// Strategy: a random small corpus.
fn corpus_strategy() -> impl Strategy<Value = Vec<Vec<(TermId, u32)>>> {
    prop::collection::vec(
        prop::collection::btree_map(0u32..200, 1u32..5, 0..20)
            .prop_map(|m| m.into_iter().map(|(t, tf)| (TermId(t), tf)).collect()),
        0..40,
    )
}

proptest! {
    /// Codec roundtrip: decode(encode(postings)) == postings, and df/cf
    /// match.
    #[test]
    fn postings_roundtrip(postings in postings_strategy()) {
        let mut b = PostingListBuilder::new();
        for &(d, tf) in &postings {
            b.push(DocId(d), tf);
        }
        let list = b.finish();
        prop_assert_eq!(list.df() as usize, postings.len());
        prop_assert_eq!(list.cf(), postings.iter().map(|&(_, tf)| u64::from(tf)).sum::<u64>());
        let decoded: Vec<(u32, u32)> = list.iter().map(|p| (p.doc.0, p.tf)).collect();
        prop_assert_eq!(decoded, postings);
    }

    /// TopK equals a full sort-and-truncate.
    #[test]
    fn topk_matches_sort(entries in prop::collection::vec((any::<u32>(), -1e6f32..1e6), 0..200), k in 1usize..20) {
        let mut top = TopK::new(k);
        for &(key, score) in &entries {
            top.push(key, score);
        }
        let got = top.into_sorted_vec();
        let mut want = entries.clone();
        want.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        want.dedup();
        // dedup only adjacent duplicates of identical (key, score) pairs —
        // duplicates are legal inputs, so compare prefix by values instead.
        let want: Vec<(u32, f32)> = {
            let mut w = entries.clone();
            w.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
            w.truncate(k);
            w
        };
        prop_assert_eq!(got, want);
    }

    /// Building an index via any strategy yields identical statistics.
    #[test]
    fn builders_agree(corpus in corpus_strategy()) {
        let a = build_index(&corpus);
        let b = sort_based_build(&corpus);
        prop_assert_eq!(a.num_docs(), b.num_docs());
        prop_assert_eq!(a.num_terms(), b.num_terms());
        for (t, list) in a.terms() {
            let other = b.postings(t).expect("term in both");
            prop_assert_eq!(list.to_vec(), other.to_vec());
        }
    }

    /// Merging chunked sub-indexes reproduces the monolithic index.
    #[test]
    fn merge_equals_monolithic(corpus in corpus_strategy(), cut in 0usize..40) {
        let cut = cut.min(corpus.len());
        let merged = merge_indexes(&[build_index(&corpus[..cut]), build_index(&corpus[cut..])]);
        let mono = build_index(&corpus);
        prop_assert_eq!(merged.num_docs(), mono.num_docs());
        for (t, list) in mono.terms() {
            let other = merged.postings(t).expect("term present");
            prop_assert_eq!(list.to_vec(), other.to_vec());
        }
    }

    /// The tokenizer is total and only emits tokens of length >= 2 without
    /// separators.
    #[test]
    fn tokenizer_total(text in ".*") {
        let tokens = tokenize(&text);
        for t in tokens {
            prop_assert!(t.chars().count() >= 2);
            prop_assert!(t.chars().all(char::is_alphanumeric));
        }
    }

    /// term_frequencies output is sorted, unique, and conserves tokens.
    #[test]
    fn term_frequencies_conserve(tokens in prop::collection::vec(0u32..50, 0..100)) {
        let ids: Vec<TermId> = tokens.iter().map(|&t| TermId(t)).collect();
        let tf = term_frequencies(&ids);
        prop_assert!(tf.windows(2).all(|w| w[0].0 < w[1].0));
        let total: u32 = tf.iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(total as usize, tokens.len());
    }

    /// AND results are a subset of OR results with identical scores.
    #[test]
    fn and_subset_of_or(corpus in corpus_strategy(), t1 in 0u32..200, t2 in 0u32..200) {
        let idx = build_index(&corpus);
        let terms = [TermId(t1), TermId(t2)];
        let bm = Bm25::default();
        let and_hits = search_and(&idx, &terms, 1000, &bm, &idx);
        let or_hits = search_or(&idx, &terms, 1000, &bm, &idx);
        for a in &and_hits {
            let o = or_hits.iter().find(|h| h.doc == a.doc);
            prop_assert!(o.is_some(), "AND hit missing from OR");
            // Exact, not approximate: both evaluators fold the same f64
            // contributions in canonical term order and round to f32 once.
            prop_assert_eq!(o.unwrap().score, a.score);
        }
    }

    /// BM25 scores are finite and non-negative for any stats combination.
    #[test]
    fn bm25_sane(tf in 1u32..1000, doc_len in 0u32..100_000) {
        let idx = build_index(&[vec![(TermId(0), 1)], vec![(TermId(1), 2)]]);
        let bm = Bm25::default();
        let s = bm.score(&idx, TermId(0), tf, doc_len);
        prop_assert!(s.is_finite() && s >= 0.0);
    }

    /// Old≡new decode equivalence: the blocked cursor walked posting by
    /// posting reproduces the flat iterator exactly, and re-admitting the
    /// encoded bytes via `from_encoded` reproduces the same list.
    #[test]
    fn cursor_walk_equals_iterator(postings in postings_strategy()) {
        let mut b = PostingListBuilder::new();
        for &(d, tf) in &postings {
            b.push(DocId(d), tf);
        }
        let list = b.finish();
        let mut via_cursor = Vec::with_capacity(postings.len());
        let mut c = list.cursor();
        while c.valid() {
            via_cursor.push((c.doc().0, c.tf()));
            c.next();
        }
        let via_iter: Vec<(u32, u32)> = list.iter().map(|p| (p.doc.0, p.tf)).collect();
        prop_assert_eq!(&via_cursor, &via_iter);
        // Wire roundtrip: re-admitting the same bytes reproduces the
        // postings and the block ladder's skip keys.
        let wire = PostingList::from_encoded(list.encoded(), list.df()).expect("valid stream");
        prop_assert_eq!(wire.to_vec(), list.to_vec());
        prop_assert_eq!(wire.cf(), list.cf());
        let wire_keys: Vec<u32> = wire.blocks().iter().map(|m| m.last_doc).collect();
        let own_keys: Vec<u32> = list.blocks().iter().map(|m| m.last_doc).collect();
        prop_assert_eq!(wire_keys, own_keys);
    }

    /// `next_geq` lands on exactly the posting a linear scan would find,
    /// for any list and any (sorted) probe sequence.
    #[test]
    fn next_geq_matches_linear_scan(
        postings in postings_strategy(),
        probes in prop::collection::btree_set(0u32..1_100_000, 0..40),
    ) {
        let mut b = PostingListBuilder::new();
        for &(d, tf) in &postings {
            b.push(DocId(d), tf);
        }
        let list = b.finish();
        let docs: Vec<u32> = postings.iter().map(|&(d, _)| d).collect();
        let mut c = list.cursor();
        let mut floor = 0u32; // cursors never move backwards
        for &p in &probes {
            let target = p.max(floor);
            let want = docs.iter().copied().find(|&d| d >= target);
            let got = c.next_geq(DocId(target)).then(|| c.doc().0);
            prop_assert_eq!(got, want, "target {}", target);
            if let Some(d) = got {
                floor = d;
            } else {
                break;
            }
        }
    }

    /// Satellite: MaxScore-pruned and exhaustive `search_or` return
    /// identical `(doc, score)` vectors — docs, f32 scores, and tie-break
    /// order — over arbitrary indexes, term multisets (duplicates
    /// included), and k, under local statistics.
    #[test]
    fn maxscore_equals_exhaustive_local_stats(
        corpus in corpus_strategy(),
        terms in prop::collection::vec(0u32..200, 0..6),
        k in 1usize..20,
    ) {
        let idx = build_index(&corpus);
        let terms: Vec<TermId> = terms.into_iter().map(TermId).collect();
        let bm = Bm25::default();
        let mut ex = EvalStats::default();
        let mut ms = EvalStats::default();
        let a = search_or_with(EvalStrategy::Exhaustive, &idx, &terms, k, &bm, &idx, &mut ex);
        let b = search_or_with(EvalStrategy::MaxScore, &idx, &terms, k, &bm, &idx, &mut ms);
        prop_assert_eq!(a, b, "evaluators diverge on {:?} k={}", &terms, k);
        prop_assert!(ms.postings_scanned <= ex.postings_scanned,
            "pruned evaluator never scans more: {} vs {}",
            ms.postings_scanned, ex.postings_scanned);
    }

    /// Same equivalence under aggregated `GlobalStats` (the two-round
    /// broker protocol's statistics source): pruning bounds must be
    /// computed against the *same* statistics evaluation uses.
    #[test]
    fn maxscore_equals_exhaustive_global_stats(
        corpus_a in corpus_strategy(),
        corpus_b in corpus_strategy(),
        terms in prop::collection::vec(0u32..200, 0..6),
        k in 1usize..20,
    ) {
        let pa = build_index(&corpus_a);
        let pb = build_index(&corpus_b);
        let terms: Vec<TermId> = terms.into_iter().map(TermId).collect();
        let g = GlobalStats::for_terms(&[&pa, &pb], &terms);
        let bm = Bm25::default();
        for idx in [&pa, &pb] {
            let mut ex = EvalStats::default();
            let mut ms = EvalStats::default();
            let a = search_or_with(EvalStrategy::Exhaustive, idx, &terms, k, &bm, &g, &mut ex);
            let b = search_or_with(EvalStrategy::MaxScore, idx, &terms, k, &bm, &g, &mut ms);
            prop_assert_eq!(a, b, "evaluators diverge under global stats on {:?}", &terms);
        }
    }

    /// The galloping conjunctive evaluator matches the decode-everything
    /// reference bit for bit.
    #[test]
    fn and_galloping_equals_exhaustive(
        corpus in corpus_strategy(),
        terms in prop::collection::vec(0u32..200, 0..5),
        k in 1usize..20,
    ) {
        let idx = build_index(&corpus);
        let terms: Vec<TermId> = terms.into_iter().map(TermId).collect();
        let bm = Bm25::default();
        let a = search_and(&idx, &terms, k, &bm, &idx);
        let b = search_and_exhaustive(&idx, &terms, k, &bm, &idx);
        prop_assert_eq!(a, b, "AND evaluators diverge on {:?} k={}", &terms, k);
    }
}
