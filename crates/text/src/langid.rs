//! N-gram language identification (Cavnar & Trenkle \[36\]).
//!
//! Section 5 (partitioning): "identifying the languages in a document can
//! be performed automatically by comparing n-gram language models for each
//! of the target languages and the document (...) Similar techniques
//! enable the identification of the languages in queries, even though the
//! amount of text per query (...) is very limited, and such process may
//! introduce errors."
//!
//! The classic out-of-place rank distance over character n-gram profiles:
//! train a ranked n-gram profile per language, rank the test text's
//! n-grams, sum the rank displacements. Short texts (queries) genuinely
//! degrade accuracy — the experiment the paper's caveat predicts.

use std::collections::HashMap;

/// A ranked character n-gram profile.
#[derive(Debug, Clone)]
pub struct NGramProfile {
    /// n-gram → rank (0 = most frequent). Bounded to `depth` entries.
    ranks: HashMap<String, u32>,
    depth: u32,
    n_lo: usize,
    n_hi: usize,
}

fn extract_ngrams(text: &str, n_lo: usize, n_hi: usize) -> HashMap<String, u64> {
    // Normalize: lowercase, collapse non-alphanumerics to a boundary mark.
    let norm: String = text
        .chars()
        .map(|c| if c.is_alphanumeric() { c.to_lowercase().next().unwrap_or(c) } else { '_' })
        .collect();
    let chars: Vec<char> = norm.chars().collect();
    let mut counts: HashMap<String, u64> = HashMap::new();
    for n in n_lo..=n_hi {
        if chars.len() < n {
            continue;
        }
        for w in chars.windows(n) {
            let g: String = w.iter().collect();
            if g.chars().all(|c| c == '_') {
                continue;
            }
            *counts.entry(g).or_insert(0) += 1;
        }
    }
    counts
}

impl NGramProfile {
    /// Train a profile from sample text, keeping the `depth` most frequent
    /// n-grams of sizes `n_lo..=n_hi` (Cavnar–Trenkle use 1..=5, depth 300).
    pub fn train(text: &str, n_lo: usize, n_hi: usize, depth: u32) -> Self {
        assert!(n_lo >= 1 && n_hi >= n_lo && depth > 0);
        let counts = extract_ngrams(text, n_lo, n_hi);
        let mut ranked: Vec<(String, u64)> = counts.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        ranked.truncate(depth as usize);
        let ranks = ranked.into_iter().enumerate().map(|(r, (g, _))| (g, r as u32)).collect();
        NGramProfile { ranks, depth, n_lo, n_hi }
    }

    /// The standard configuration.
    pub fn standard(text: &str) -> Self {
        Self::train(text, 1, 4, 300)
    }

    /// Out-of-place distance from `text` to this profile (lower = closer).
    pub fn distance(&self, text: &str) -> u64 {
        let counts = extract_ngrams(text, self.n_lo, self.n_hi);
        let mut ranked: Vec<(String, u64)> = counts.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        ranked.truncate(self.depth as usize);
        let max_penalty = u64::from(self.depth);
        ranked
            .iter()
            .enumerate()
            .map(|(r, (g, _))| match self.ranks.get(g) {
                Some(&pr) => u64::from(pr).abs_diff(r as u64),
                None => max_penalty,
            })
            .sum()
    }
}

/// A set of language profiles with classification.
#[derive(Debug, Clone, Default)]
pub struct LanguageIdentifier {
    languages: Vec<(String, NGramProfile)>,
}

impl LanguageIdentifier {
    /// Create an empty identifier.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a language from training text.
    pub fn add_language(&mut self, name: &str, sample: &str) {
        self.languages.push((name.to_owned(), NGramProfile::standard(sample)));
    }

    /// Number of registered languages.
    pub fn len(&self) -> usize {
        self.languages.len()
    }

    /// Whether no languages are registered.
    pub fn is_empty(&self) -> bool {
        self.languages.is_empty()
    }

    /// Classify `text`: the closest language and all distances.
    pub fn classify(&self, text: &str) -> Option<(&str, Vec<(&str, u64)>)> {
        if self.languages.is_empty() {
            return None;
        }
        let dists: Vec<(&str, u64)> =
            self.languages.iter().map(|(name, p)| (name.as_str(), p.distance(text))).collect();
        let best = dists
            .iter()
            .min_by_key(|&&(name, d)| (d, name))
            .map(|&(name, _)| name)
            .expect("non-empty");
        Some((best, dists))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Miniature corpora with distinct character statistics.
    const ENGLISH: &str = "the quick brown fox jumps over the lazy dog and then \
        the small dog chases the fox through the green fields while the sun \
        shines over the quiet village and children play near the old stone \
        bridge with their friends during the long summer afternoon";
    const PSEUDO_GERMAN: &str = "der schnelle braune fuchs springt ueber den \
        faulen hund und dann jagt der kleine hund den fuchs durch die gruenen \
        felder waehrend die sonne ueber dem stillen dorf scheint und kinder \
        spielen an der alten steinbruecke mit ihren freunden waehrend des \
        langen sommernachmittags";
    const PSEUDO_FINNISH: &str = "nopea ruskea kettu hyppaeae laiskan koiran \
        yli ja sitten pieni koira jahtaa kettua vihreiden peltojen halki kun \
        aurinko paistaa hiljaisen kylaen yllae ja lapset leikkivaet vanhan \
        kivisillan luona ystaeviensae kanssa pitkaenae kesaeiltapaeivaenae";

    fn identifier() -> LanguageIdentifier {
        let mut id = LanguageIdentifier::new();
        id.add_language("en", ENGLISH);
        id.add_language("de", PSEUDO_GERMAN);
        id.add_language("fi", PSEUDO_FINNISH);
        id
    }

    #[test]
    fn classifies_held_out_sentences() {
        let id = identifier();
        let (l, _) = id.classify("the bridge over the river was old and made of stone").unwrap();
        assert_eq!(l, "en");
        let (l, _) = id.classify("die bruecke ueber den fluss war alt und aus stein").unwrap();
        assert_eq!(l, "de");
        let (l, _) = id.classify("silta joen yli oli vanha ja kivestae tehty").unwrap();
        assert_eq!(l, "fi");
    }

    #[test]
    fn training_text_classifies_as_itself() {
        let id = identifier();
        for (name, text) in [("en", ENGLISH), ("de", PSEUDO_GERMAN), ("fi", PSEUDO_FINNISH)] {
            let (l, _) = id.classify(text).unwrap();
            assert_eq!(l, name);
        }
    }

    #[test]
    fn short_queries_are_harder() {
        // The paper's caveat: "the amount of text per query ... is very
        // limited, and such process may introduce errors". Distances from
        // a 2-word query are much less separated than from a sentence.
        let id = identifier();
        let sep = |text: &str| -> f64 {
            let (_, dists) = id.classify(text).unwrap();
            let mut ds: Vec<u64> = dists.iter().map(|&(_, d)| d).collect();
            ds.sort_unstable();
            ds[1] as f64 / ds[0].max(1) as f64 // margin of best over runner-up
        };
        let long = sep("the children played near the old stone bridge during the afternoon");
        let short = sep("stone bridge");
        assert!(long > short, "long margin {long} vs short {short}");
    }

    #[test]
    fn multilingual_text_sits_between_profiles() {
        // "Web pages describing technical content can have a number of
        // English terms, even though the primary language is a different
        // one" — a mixed text's best-vs-runner-up margin shrinks.
        let id = identifier();
        let pure = "der kleine hund jagt den fuchs durch die felder und spielt an der bruecke";
        let mixed =
            "der kleine hund download server jagt den fuchs browser update durch die felder";
        let margin = |text: &str| {
            let (_, dists) = id.classify(text).unwrap();
            let mut ds: Vec<u64> = dists.iter().map(|&(_, d)| d).collect();
            ds.sort_unstable();
            ds[1] - ds[0]
        };
        assert!(margin(pure) > margin(mixed), "pure {} mixed {}", margin(pure), margin(mixed));
    }

    #[test]
    fn empty_identifier_returns_none() {
        assert!(LanguageIdentifier::new().classify("anything").is_none());
    }

    #[test]
    fn distance_is_zero_ish_for_identical_profiles() {
        let p = NGramProfile::standard(ENGLISH);
        assert_eq!(p.distance(ENGLISH), 0);
        assert!(p.distance(PSEUDO_FINNISH) > 1000);
    }

    #[test]
    fn garbage_input_is_total() {
        let id = identifier();
        // Classification never panics, even on punctuation soup.
        let _ = id.classify("!!! ??? ###");
        let _ = id.classify("");
    }
}
