//! Online index maintenance with geometric partitioning.
//!
//! Section 4 (communication): for collections "such as news articles, and
//! blogs, where updates are so frequent that there is usually some kind of
//! online index maintenance strategy. This dynamic index structure
//! constrains the capacity and the response time of the system since the
//! update operation usually requires locking the index".
//!
//! [`DynamicIndex`] implements the geometric-partitioning strategy of
//! Lester, Moffat & Zobel \[15\]: an in-memory buffer plus on-"disk"
//! segments whose sizes grow geometrically; a flush cascades merges until
//! the size invariant holds. Each merge locks the structure for a time
//! proportional to the postings moved — the lock-stall accounting is the
//! input to the online-maintenance experiment (E14), including the
//! paper's observation that term partitioning *amplifies* the lockout
//! because one document's terms spread over many servers.

use crate::index::{build_index, merge_indexes, InvertedIndex};
use crate::score::GlobalStats;
use crate::search::{search_or, SearchHit};
use crate::{DocId, TermId};

/// Merge policies for the dynamic index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergePolicy {
    /// Geometric partitioning with ratio `r`: segment `g` holds at most
    /// `r^(g+1) × buffer_cap` documents; overflow cascades upward.
    Geometric {
        /// Growth ratio (Lester et al. use 2–4).
        r: u32,
    },
    /// Re-merge everything into one segment at every flush (the "rebuild
    /// from scratch" default the paper says production systems use).
    AlwaysMerge,
    /// Never merge: every flush appends a new segment (fast updates,
    /// query cost grows linearly with segments).
    NoMerge,
}

/// Cost accounting of the maintenance work so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Buffer flushes performed.
    pub flushes: u64,
    /// Merge operations performed.
    pub merges: u64,
    /// Total documents rewritten by merges (the write amplification).
    pub docs_rewritten: u64,
    /// Total simulated time (µs) the index was write-locked.
    pub lock_time_us: u64,
}

/// Microseconds of lock time charged per document rewritten in a merge.
pub const US_PER_DOC_MERGED: u64 = 50;
/// Microseconds of lock time charged per document in a buffer flush.
pub const US_PER_DOC_FLUSHED: u64 = 20;

struct Segment {
    /// Global id of this segment's first document.
    base: u32,
    index: InvertedIndex,
}

/// An incrementally updatable index.
pub struct DynamicIndex {
    policy: MergePolicy,
    buffer_cap: usize,
    buffer: Vec<Vec<(TermId, u32)>>,
    /// Global id of the first buffered document.
    buffer_base: u32,
    /// Segments ordered oldest (lowest doc ids) first.
    segments: Vec<Segment>,
    next_doc: u32,
    stats: MaintenanceStats,
}

impl DynamicIndex {
    /// Create an empty dynamic index that flushes after `buffer_cap` docs.
    pub fn new(policy: MergePolicy, buffer_cap: usize) -> Self {
        assert!(buffer_cap > 0);
        if let MergePolicy::Geometric { r } = policy {
            assert!(r >= 2, "geometric ratio must be >= 2");
        }
        DynamicIndex {
            policy,
            buffer_cap,
            buffer: Vec::with_capacity(buffer_cap),
            buffer_base: 0,
            segments: Vec::new(),
            next_doc: 0,
            stats: MaintenanceStats::default(),
        }
    }

    /// Number of documents inserted so far.
    pub fn num_docs(&self) -> u32 {
        self.next_doc
    }

    /// Current number of on-disk segments (excluding the buffer).
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Maintenance cost counters.
    pub fn stats(&self) -> MaintenanceStats {
        self.stats
    }

    /// Insert one document; returns its global id. May trigger a flush
    /// and cascade of merges (accounted in [`Self::stats`]).
    pub fn insert(&mut self, doc: Vec<(TermId, u32)>) -> DocId {
        let id = DocId(self.next_doc);
        self.next_doc += 1;
        self.buffer.push(doc);
        if self.buffer.len() >= self.buffer_cap {
            self.flush();
        }
        id
    }

    /// Force a buffer flush (no-op when the buffer is empty).
    pub fn flush(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        let docs = std::mem::take(&mut self.buffer);
        let flushed = docs.len() as u64;
        let seg = Segment { base: self.buffer_base, index: build_index(&docs) };
        self.buffer_base = self.next_doc;
        self.buffer = Vec::with_capacity(self.buffer_cap);
        self.segments.push(seg);
        self.stats.flushes += 1;
        self.stats.lock_time_us += flushed * US_PER_DOC_FLUSHED;
        self.apply_policy();
    }

    fn merge_last_two(&mut self) {
        let newer = self.segments.pop().expect("two segments");
        let older = self.segments.pop().expect("two segments");
        debug_assert_eq!(older.base + older.index.num_docs(), newer.base);
        let merged_docs = u64::from(older.index.num_docs()) + u64::from(newer.index.num_docs());
        let merged = merge_indexes(&[older.index, newer.index]);
        self.segments.push(Segment { base: older.base, index: merged });
        self.stats.merges += 1;
        self.stats.docs_rewritten += merged_docs;
        self.stats.lock_time_us += merged_docs * US_PER_DOC_MERGED;
    }

    fn apply_policy(&mut self) {
        match self.policy {
            MergePolicy::NoMerge => {}
            MergePolicy::AlwaysMerge => {
                while self.segments.len() > 1 {
                    self.merge_last_two();
                }
            }
            MergePolicy::Geometric { r } => {
                // Invariant: walking from newest to oldest, each segment
                // must be at least r× the combined size of everything
                // newer; otherwise merge the two newest.
                loop {
                    let n = self.segments.len();
                    if n < 2 {
                        break;
                    }
                    let newest = u64::from(self.segments[n - 1].index.num_docs());
                    let older = u64::from(self.segments[n - 2].index.num_docs());
                    if older >= u64::from(r) * newest {
                        break;
                    }
                    self.merge_last_two();
                }
            }
        }
    }

    /// Ranked OR search across all segments and the buffer, scored with
    /// collection-wide (global) statistics so results match a monolithic
    /// index bit-for-bit.
    pub fn search(&self, terms: &[TermId], k: usize) -> Vec<SearchHit> {
        use crate::topk::TopK;
        // Gather global statistics over segments + a temp buffer index.
        let buffer_index = build_index(&self.buffer);
        let mut parts: Vec<&InvertedIndex> = self.segments.iter().map(|s| &s.index).collect();
        parts.push(&buffer_index);
        let stats = GlobalStats::for_terms(&parts, terms);
        let bm = crate::score::Bm25::default();

        let mut top = TopK::new(k.max(1));
        for (base, idx) in self
            .segments
            .iter()
            .map(|s| (s.base, &s.index))
            .chain(std::iter::once((self.buffer_base, &buffer_index)))
        {
            for h in search_or(idx, terms, k, &bm, &stats) {
                top.push(base + h.doc.0, h.score);
            }
        }
        top.into_sorted_vec()
            .into_iter()
            .map(|(doc, score)| SearchHit { doc: DocId(doc), score })
            .collect()
    }

    /// The per-query overhead proxy: one fixed cost per live segment
    /// (open + seek + small-read amplification of fragmented indexes).
    pub fn query_overhead_segments(&self) -> usize {
        self.segments.len() + usize::from(!self.buffer.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(t: u32) -> Vec<(TermId, u32)> {
        vec![(TermId(t % 7), 1 + t % 3), (TermId(100 + t % 3), 1)]
    }

    fn filled(policy: MergePolicy, n: u32) -> DynamicIndex {
        let mut d = DynamicIndex::new(policy, 8);
        for t in 0..n {
            d.insert(doc(t));
        }
        d
    }

    #[test]
    fn search_matches_monolithic_rebuild() {
        for policy in
            [MergePolicy::Geometric { r: 2 }, MergePolicy::AlwaysMerge, MergePolicy::NoMerge]
        {
            let d = filled(policy, 100);
            let corpus: Vec<Vec<(TermId, u32)>> = (0..100).map(doc).collect();
            let mono = build_index(&corpus);
            for q in [vec![TermId(1)], vec![TermId(2), TermId(101)]] {
                let got: Vec<(u32, String)> =
                    d.search(&q, 10).iter().map(|h| (h.doc.0, format!("{:.4}", h.score))).collect();
                let want: Vec<(u32, String)> =
                    search_or(&mono, &q, 10, &crate::score::Bm25::default(), &mono)
                        .iter()
                        .map(|h| (h.doc.0, format!("{:.4}", h.score)))
                        .collect();
                assert_eq!(got, want, "policy {policy:?} query {q:?}");
            }
        }
    }

    #[test]
    fn geometric_keeps_logarithmic_segments() {
        let d = filled(MergePolicy::Geometric { r: 2 }, 1000);
        // 1000 docs, buffer 8 → 125 flushes; geometric keeps O(log) segs.
        assert!(d.num_segments() <= 10, "segments={}", d.num_segments());
    }

    #[test]
    fn no_merge_accumulates_segments() {
        let d = filled(MergePolicy::NoMerge, 256);
        assert_eq!(d.num_segments(), 256 / 8);
        assert_eq!(d.stats().merges, 0);
    }

    #[test]
    fn always_merge_has_one_segment_but_high_write_amplification() {
        let always = filled(MergePolicy::AlwaysMerge, 512);
        let geo = filled(MergePolicy::Geometric { r: 3 }, 512);
        assert_eq!(always.num_segments(), 1);
        assert!(always.stats().docs_rewritten > 3 * geo.stats().docs_rewritten);
        assert!(always.stats().lock_time_us > geo.stats().lock_time_us);
    }

    #[test]
    fn geometric_beats_no_merge_on_query_overhead() {
        let geo = filled(MergePolicy::Geometric { r: 2 }, 512);
        let nom = filled(MergePolicy::NoMerge, 512);
        assert!(geo.query_overhead_segments() < nom.query_overhead_segments() / 3);
    }

    #[test]
    fn buffer_is_searchable_before_flush() {
        let mut d = DynamicIndex::new(MergePolicy::Geometric { r: 2 }, 100);
        d.insert(vec![(TermId(42), 3)]);
        let hits = d.search(&[TermId(42)], 5);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].doc, DocId(0));
    }

    #[test]
    fn doc_ids_are_stable_across_merges() {
        let mut d = DynamicIndex::new(MergePolicy::Geometric { r: 2 }, 4);
        let mut rare_doc = None;
        for t in 0..200u32 {
            let id = if t == 57 {
                let id = d.insert(vec![(TermId(9999), 1)]);
                rare_doc = Some(id);
                id
            } else {
                d.insert(doc(t))
            };
            let _ = id;
        }
        let hits = d.search(&[TermId(9999)], 5);
        assert_eq!(hits.len(), 1);
        assert_eq!(Some(hits[0].doc), rare_doc);
    }

    #[test]
    fn stats_accumulate_monotonically() {
        let mut d = DynamicIndex::new(MergePolicy::Geometric { r: 2 }, 4);
        let mut prev = 0u64;
        for t in 0..64u32 {
            d.insert(doc(t));
            let now = d.stats().lock_time_us;
            assert!(now >= prev);
            prev = now;
        }
        assert!(d.stats().flushes >= 16);
    }
}
