//! Ranked and Boolean query evaluation over one index.
//!
//! `search_or` is the ranked disjunctive evaluation every query processor
//! in the laboratory runs locally; brokers then merge the per-partition
//! top-k lists (Section 5). `search_and` is Boolean conjunctive matching
//! via ascending-postings intersection.

use crate::index::InvertedIndex;
use crate::score::{Bm25, CollectionStats};
use crate::topk::TopK;
use crate::{DocId, TermId};
use std::collections::HashMap;

/// One result: a document and its score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchHit {
    /// Matching document (local to the queried index).
    pub doc: DocId,
    /// BM25 score.
    pub score: f32,
}

/// Ranked disjunctive (OR) evaluation: score every document containing at
/// least one query term, return the top `k` by BM25.
///
/// `stats` supplies the collection statistics — pass the index itself for
/// local statistics or a [`crate::score::GlobalStats`] for global ones.
pub fn search_or(
    index: &InvertedIndex,
    terms: &[TermId],
    k: usize,
    bm25: &Bm25,
    stats: &impl CollectionStats,
) -> Vec<SearchHit> {
    // Term-at-a-time with score accumulators, sized from df sums.
    let cap: usize = terms.iter().map(|&t| index.df(t) as usize).sum();
    let mut acc: HashMap<u32, f32> = HashMap::with_capacity(cap.min(1 << 20));
    for &t in terms {
        let Some(list) = index.postings(t) else { continue };
        for p in list.iter() {
            let s = bm25.score(stats, t, p.tf, index.doc_len(p.doc)) as f32;
            *acc.entry(p.doc.0).or_insert(0.0) += s;
        }
    }
    let mut top = TopK::new(k.max(1));
    for (doc, score) in acc {
        top.push(doc, score);
    }
    top.into_sorted_vec()
        .into_iter()
        .map(|(doc, score)| SearchHit { doc: DocId(doc), score })
        .collect()
}

/// Boolean conjunctive (AND) evaluation: documents containing *all* query
/// terms, scored and ranked.
pub fn search_and(
    index: &InvertedIndex,
    terms: &[TermId],
    k: usize,
    bm25: &Bm25,
    stats: &impl CollectionStats,
) -> Vec<SearchHit> {
    if terms.is_empty() {
        return Vec::new();
    }
    // Gather the lists, shortest first to keep the intersection cheap.
    let mut lists: Vec<(TermId, &crate::postings::PostingList)> = Vec::with_capacity(terms.len());
    for &t in terms {
        match index.postings(t) {
            Some(l) => lists.push((t, l)),
            None => return Vec::new(), // a missing term empties the AND
        }
    }
    lists.sort_by_key(|(_, l)| l.df());

    // Start from the shortest list; probe the rest.
    let (first_term, first_list) = lists[0];
    let mut candidates: Vec<(DocId, f32)> = first_list
        .iter()
        .map(|p| {
            let s = bm25.score(stats, first_term, p.tf, index.doc_len(p.doc)) as f32;
            (p.doc, s)
        })
        .collect();

    for &(term, list) in &lists[1..] {
        if candidates.is_empty() {
            return Vec::new();
        }
        // Decode this list once into a tf lookup over surviving candidates.
        let want: HashMap<u32, ()> = candidates.iter().map(|&(d, _)| (d.0, ())).collect();
        let mut tfs: HashMap<u32, u32> = HashMap::with_capacity(want.len());
        for p in list.iter() {
            if want.contains_key(&p.doc.0) {
                tfs.insert(p.doc.0, p.tf);
            }
        }
        candidates.retain_mut(|(d, s)| {
            if let Some(&tf) = tfs.get(&d.0) {
                *s += bm25.score(stats, term, tf, index.doc_len(*d)) as f32;
                true
            } else {
                false
            }
        });
    }

    let mut top = TopK::new(k.max(1));
    for &(d, s) in &candidates {
        top.push(d.0, s);
    }
    top.into_sorted_vec()
        .into_iter()
        .map(|(doc, score)| SearchHit { doc: DocId(doc), score })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::build_index;

    fn idx() -> InvertedIndex {
        build_index(&[
            /* 0 */ vec![(TermId(1), 3), (TermId(2), 1)],
            /* 1 */ vec![(TermId(1), 1)],
            /* 2 */ vec![(TermId(2), 2), (TermId(3), 1)],
            /* 3 */ vec![(TermId(1), 1), (TermId(2), 1), (TermId(3), 2)],
            /* 4 */ vec![(TermId(4), 1)],
        ])
    }

    #[test]
    fn or_returns_all_matching_ranked() {
        let i = idx();
        let hits = search_or(&i, &[TermId(1), TermId(2)], 10, &Bm25::default(), &i);
        let docs: Vec<u32> = hits.iter().map(|h| h.doc.0).collect();
        // docs 0,1,2,3 contain term 1 or 2; doc 4 does not.
        assert_eq!(hits.len(), 4);
        assert!(!docs.contains(&4));
        // Scores descending.
        assert!(hits.windows(2).all(|w| w[0].score >= w[1].score));
        // Doc 0 (tf=3 of term1 + term2) should beat doc 1 (single tf=1).
        let pos0 = docs.iter().position(|&d| d == 0).unwrap();
        let pos1 = docs.iter().position(|&d| d == 1).unwrap();
        assert!(pos0 < pos1);
    }

    #[test]
    fn or_respects_k() {
        let i = idx();
        let hits = search_or(&i, &[TermId(1), TermId(2)], 2, &Bm25::default(), &i);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn or_unknown_term_is_empty() {
        let i = idx();
        assert!(search_or(&i, &[TermId(99)], 5, &Bm25::default(), &i).is_empty());
        assert!(search_or(&i, &[], 5, &Bm25::default(), &i).is_empty());
    }

    #[test]
    fn and_intersects() {
        let i = idx();
        let hits = search_and(&i, &[TermId(1), TermId(2)], 10, &Bm25::default(), &i);
        let mut docs: Vec<u32> = hits.iter().map(|h| h.doc.0).collect();
        docs.sort_unstable();
        assert_eq!(docs, vec![0, 3]);
    }

    #[test]
    fn and_with_missing_term_is_empty() {
        let i = idx();
        assert!(search_and(&i, &[TermId(1), TermId(99)], 10, &Bm25::default(), &i).is_empty());
    }

    #[test]
    fn and_three_terms() {
        let i = idx();
        let hits = search_and(&i, &[TermId(1), TermId(2), TermId(3)], 10, &Bm25::default(), &i);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].doc, DocId(3));
    }

    #[test]
    fn and_subset_of_or() {
        let i = idx();
        let and_hits = search_and(&i, &[TermId(1), TermId(2)], 10, &Bm25::default(), &i);
        let or_hits = search_or(&i, &[TermId(1), TermId(2)], 10, &Bm25::default(), &i);
        let or_docs: Vec<u32> = or_hits.iter().map(|h| h.doc.0).collect();
        for h in &and_hits {
            assert!(or_docs.contains(&h.doc.0));
        }
    }

    #[test]
    fn and_score_equals_or_score_for_full_matches() {
        let i = idx();
        let and_hits = search_and(&i, &[TermId(1), TermId(2)], 10, &Bm25::default(), &i);
        let or_hits = search_or(&i, &[TermId(1), TermId(2)], 10, &Bm25::default(), &i);
        for ah in &and_hits {
            let oh = or_hits.iter().find(|h| h.doc == ah.doc).unwrap();
            assert!((ah.score - oh.score).abs() < 1e-5);
        }
    }
}
