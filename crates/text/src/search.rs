//! Ranked and Boolean query evaluation over one index.
//!
//! `search_or` is the ranked disjunctive evaluation every query processor
//! in the laboratory runs locally; brokers then merge the per-partition
//! top-k lists (Section 5). `search_and` is Boolean conjunctive matching
//! via block-skipping leapfrog intersection.
//!
//! # Query semantics: bag-of-words collapses to a set
//!
//! Repeated query terms are deduplicated before evaluation (first
//! occurrence wins, preserving order): a query is a *set* of distinct
//! terms, so `[a, a, b]` scores exactly like `[a, b]`. Besides matching
//! what web engines do, this keeps pruning bounds tight — duplicated
//! terms would double their upper-bound contribution without changing
//! which documents can win — and stops the accumulator capacity estimate
//! from being inflated by duplicates.
//!
//! # Two evaluators, one answer
//!
//! [`EvalStrategy::Exhaustive`] is the reference: term-at-a-time, every
//! posting of every term decoded and accumulated.
//! [`EvalStrategy::MaxScore`] is the hot path: document-at-a-time with
//! MaxScore pruning over the block-max metadata of
//! [`crate::postings::PostingList`]. Both return **bit-identical** top-k
//! vectors — same docs, same `f32` scores, same tie-breaks — which the
//! property suite pins. Three mechanisms make that exactness possible
//! rather than approximate:
//!
//! 1. **Canonical accumulation order.** A document's score is the `f64`
//!    sum of its per-term BM25 contributions folded in the deduplicated
//!    query's term order, converted to `f32` once at top-k insertion.
//!    Both evaluators perform the identical float operation sequence per
//!    scored document, so even non-associativity cannot split them.
//! 2. **Strict pruning against the threshold.** A candidate is skipped
//!    only when its score upper bound, converted to `f32`, is *strictly
//!    below* [`TopK::threshold`]. `f64 → f32` rounding is monotone, so
//!    the candidate's real `f32` score is also strictly below the
//!    threshold and could never be admitted (ties at the threshold can
//!    be admitted on a lower doc id, so `<=` would be wrong).
//! 3. **Inflated bound sums.** Upper-bound sums are multiplied by
//!    `1 + 1e-9` before the comparison, absorbing the non-associativity
//!    of summing bounds in sorted order versus canonical order.

use crate::index::InvertedIndex;
use crate::postings::{PostingCursor, PostingList};
use crate::score::{Bm25, CollectionStats};
use crate::topk::TopK;
use crate::{DocId, TermId};
use std::collections::HashMap;

/// One result: a document and its score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchHit {
    /// Matching document (local to the queried index).
    pub doc: DocId,
    /// BM25 score.
    pub score: f32,
}

/// Which ranked-retrieval evaluator to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalStrategy {
    /// Decode-everything term-at-a-time accumulation (the reference).
    Exhaustive,
    /// Block-max MaxScore pruning, document-at-a-time (the hot path).
    #[default]
    MaxScore,
}

/// Work counters for one evaluation; the broker aggregates these into the
/// throughput experiments (`exp_throughput`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Postings decoded and inspected.
    pub postings_scanned: u64,
    /// Blocks decoded.
    pub blocks_decoded: u64,
    /// Blocks hopped over without decoding.
    pub blocks_skipped: u64,
    /// Candidate documents discarded by a bound check before full scoring.
    pub candidates_pruned: u64,
}

impl EvalStats {
    /// Accumulate another evaluation's counters.
    pub fn merge(&mut self, other: &EvalStats) {
        self.postings_scanned += other.postings_scanned;
        self.blocks_decoded += other.blocks_decoded;
        self.blocks_skipped += other.blocks_skipped;
        self.candidates_pruned += other.candidates_pruned;
    }
}

/// Headroom factor applied to upper-bound *sums* before comparing against
/// the `f32` threshold, absorbing f64 non-associativity between the
/// sorted-order bound sum and the canonical-order score sum.
const BOUND_INFLATE: f64 = 1.0 + 1e-9;

/// Deduplicate query terms preserving first-occurrence order (the
/// canonical term order both evaluators fold scores in).
fn dedup_terms(terms: &[TermId]) -> Vec<TermId> {
    let mut canon: Vec<TermId> = Vec::with_capacity(terms.len());
    for &t in terms {
        if !canon.contains(&t) {
            canon.push(t);
        }
    }
    canon
}

/// Ranked disjunctive (OR) evaluation: score every document containing at
/// least one query term, return the top `k` by BM25.
///
/// This is the exhaustive reference evaluator; production callers go
/// through [`search_or_with`] to pick a strategy and collect counters.
///
/// `stats` supplies the collection statistics — pass the index itself for
/// local statistics or a [`crate::score::GlobalStats`] for global ones.
pub fn search_or(
    index: &InvertedIndex,
    terms: &[TermId],
    k: usize,
    bm25: &Bm25,
    stats: &impl CollectionStats,
) -> Vec<SearchHit> {
    let mut ev = EvalStats::default();
    search_or_with(EvalStrategy::Exhaustive, index, terms, k, bm25, stats, &mut ev)
}

/// Ranked disjunctive evaluation under an explicit [`EvalStrategy`],
/// accumulating work counters into `ev`.
///
/// Both strategies return bit-identical results (see module docs).
pub fn search_or_with(
    strategy: EvalStrategy,
    index: &InvertedIndex,
    terms: &[TermId],
    k: usize,
    bm25: &Bm25,
    stats: &impl CollectionStats,
    ev: &mut EvalStats,
) -> Vec<SearchHit> {
    let canon = dedup_terms(terms);
    match strategy {
        EvalStrategy::Exhaustive => search_or_exhaustive(index, &canon, k, bm25, stats, ev),
        EvalStrategy::MaxScore => search_or_maxscore(index, &canon, k, bm25, stats, ev),
    }
}

/// Term-at-a-time reference: decode every posting of every term.
fn search_or_exhaustive(
    index: &InvertedIndex,
    canon: &[TermId],
    k: usize,
    bm25: &Bm25,
    stats: &impl CollectionStats,
    ev: &mut EvalStats,
) -> Vec<SearchHit> {
    let cap: usize = canon.iter().map(|&t| index.df(t) as usize).sum();
    // f64 accumulators; terms are walked in canonical order, so each
    // document's sum is the canonical fold (see module docs).
    let mut acc: HashMap<u32, f64> = HashMap::with_capacity(cap.min(1 << 20));
    for &t in canon {
        let Some(list) = index.postings(t) else { continue };
        ev.postings_scanned += u64::from(list.df());
        ev.blocks_decoded += list.blocks().len() as u64;
        for p in list.iter() {
            let s = bm25.score(stats, t, p.tf, index.doc_len(p.doc));
            *acc.entry(p.doc.0).or_insert(0.0) += s;
        }
    }
    let mut top = TopK::new(k.max(1));
    for (doc, score) in acc {
        top.push(doc, score as f32);
    }
    into_hits(top)
}

/// One query term's state inside the MaxScore evaluator.
struct TermState<'a> {
    /// Position in the canonical (deduplicated) term order.
    canon: usize,
    term: TermId,
    /// Max over the list's block upper bounds: the term's score ceiling.
    ub: f64,
    cursor: PostingCursor<'a>,
}

/// Document-at-a-time MaxScore: terms are kept sorted ascending by their
/// score ceiling; a growing prefix (the *non-essential* terms) is proven
/// unable to lift any document into the top-k on its own and is only ever
/// probed via `next_geq`, never scanned. Candidates come from the
/// essential suffix; bound checks discard them before full scoring.
fn search_or_maxscore(
    index: &InvertedIndex,
    canon: &[TermId],
    k: usize,
    bm25: &Bm25,
    stats: &impl CollectionStats,
    ev: &mut EvalStats,
) -> Vec<SearchHit> {
    let mut ts: Vec<TermState<'_>> = Vec::with_capacity(canon.len());
    for (i, &t) in canon.iter().enumerate() {
        let Some(list) = index.postings(t) else { continue };
        if list.is_empty() {
            continue;
        }
        let ub = list
            .blocks()
            .iter()
            .map(|b| bm25.block_upper_bound(stats, t, b))
            .fold(0.0f64, f64::max);
        ts.push(TermState { canon: i, term: t, ub, cursor: list.cursor() });
    }
    let mut top = TopK::new(k.max(1));
    if ts.is_empty() {
        return into_hits(top);
    }
    // Ascending by ceiling; canonical position tie-break keeps the sort
    // deterministic (ub is non-NaN: BM25 of finite inputs).
    ts.sort_by(|a, b| a.ub.partial_cmp(&b.ub).expect("non-NaN bound").then(a.canon.cmp(&b.canon)));
    let n = ts.len();
    // prefix_ub[i] = sum of the i smallest ceilings: the most the first
    // i terms can jointly contribute to any document.
    let mut prefix_ub = vec![0.0f64; n + 1];
    for i in 0..n {
        prefix_ub[i + 1] = prefix_ub[i] + ts[i].ub;
    }
    // Number of non-essential terms (prefix of `ts`); grows as the
    // threshold rises, never shrinks (thresholds are monotone).
    let mut ne = 0usize;
    // Scratch: per-candidate (canonical position, contribution) pairs.
    let mut parts: Vec<(usize, f64)> = Vec::with_capacity(n);
    loop {
        if let Some(thr) = top.threshold() {
            // A term moves to the non-essential set when even a document
            // matching *all* non-essential terms at their ceilings stays
            // strictly below the threshold.
            while ne < n && ((prefix_ub[ne + 1] * BOUND_INFLATE) as f32) < thr {
                ne += 1;
            }
            if ne == n {
                break; // no unseen document can enter the top-k
            }
        }
        // Next candidate: smallest current doc among essential cursors.
        let mut cand: Option<DocId> = None;
        for t in &ts[ne..] {
            if t.cursor.valid() {
                let d = t.cursor.doc();
                cand = Some(cand.map_or(d, |c| c.min(d)));
            }
        }
        let Some(cand) = cand else {
            break; // essential lists exhausted; the rest is non-essential
        };
        let doc_len = index.doc_len(cand);
        parts.clear();
        // Essential contributions are already positioned on `cand`.
        let mut actual = 0.0f64; // bound-check sum only, order-insensitive
        for t in &ts[ne..] {
            if t.cursor.valid() && t.cursor.doc() == cand {
                let c = bm25.score(stats, t.term, t.cursor.tf(), doc_len);
                parts.push((t.canon, c));
                actual += c;
            }
        }
        // Probe non-essential terms from the largest ceiling down; stop
        // as soon as the remaining ceilings cannot save the candidate.
        let mut pruned = false;
        let mut j = ne;
        while j > 0 {
            if let Some(thr) = top.threshold() {
                if (((actual + prefix_ub[j]) * BOUND_INFLATE) as f32) < thr {
                    pruned = true;
                    break;
                }
            }
            j -= 1;
            let t = &mut ts[j];
            if t.cursor.next_geq(cand) && t.cursor.doc() == cand {
                let c = bm25.score(stats, t.term, t.cursor.tf(), doc_len);
                parts.push((t.canon, c));
                actual += c;
            }
        }
        if pruned {
            ev.candidates_pruned += 1;
        } else {
            // Full score: canonical-order f64 fold (identical operation
            // sequence to the exhaustive accumulator), f32 once.
            parts.sort_unstable_by_key(|&(c, _)| c);
            let mut score = 0.0f64;
            for &(_, c) in &parts {
                score += c;
            }
            top.push(cand.0, score as f32);
        }
        // Advance every essential cursor sitting on the candidate.
        for t in &mut ts[ne..] {
            if t.cursor.valid() && t.cursor.doc() == cand {
                t.cursor.next();
            }
        }
    }
    for t in &ts {
        let s = t.cursor.stats();
        ev.postings_scanned += s.postings_decoded;
        ev.blocks_decoded += s.blocks_decoded;
        ev.blocks_skipped += s.blocks_skipped;
    }
    into_hits(top)
}

fn into_hits(top: TopK) -> Vec<SearchHit> {
    top.into_sorted_vec()
        .into_iter()
        .map(|(doc, score)| SearchHit { doc: DocId(doc), score })
        .collect()
}

/// Boolean conjunctive (AND) evaluation: documents containing *all* query
/// terms, scored and ranked.
///
/// Skip-aware leapfrog: the cursors gallop to each other's positions via
/// `next_geq`, so blocks with no common document are never decoded.
/// Bit-identical to [`search_and_exhaustive`] (and to the scores
/// [`search_or`] assigns full matches), pinned by tests.
pub fn search_and(
    index: &InvertedIndex,
    terms: &[TermId],
    k: usize,
    bm25: &Bm25,
    stats: &impl CollectionStats,
) -> Vec<SearchHit> {
    let canon = dedup_terms(terms);
    if canon.is_empty() {
        return Vec::new();
    }
    let mut lists: Vec<(usize, TermId, &PostingList)> = Vec::with_capacity(canon.len());
    for (i, &t) in canon.iter().enumerate() {
        match index.postings(t) {
            Some(l) if !l.is_empty() => lists.push((i, t, l)),
            _ => return Vec::new(), // a missing term empties the AND
        }
    }
    // Shortest list drives the leapfrog.
    lists.sort_by_key(|&(_, _, l)| l.df());
    let mut cursors: Vec<(usize, TermId, PostingCursor<'_>)> =
        lists.into_iter().map(|(c, t, l)| (c, t, l.cursor())).collect();

    let mut top = TopK::new(k.max(1));
    let mut parts: Vec<(usize, f64)> = Vec::with_capacity(cursors.len());
    let mut cand = cursors[0].2.doc();
    'leapfrog: loop {
        // One full pass with no overshoot ⇒ every cursor sits on `cand`.
        let mut agreed = true;
        for (_, _, c) in &mut cursors {
            if !c.next_geq(cand) {
                break 'leapfrog;
            }
            let d = c.doc();
            if d > cand {
                cand = d;
                agreed = false;
            }
        }
        if !agreed {
            continue;
        }
        let doc_len = index.doc_len(cand);
        parts.clear();
        for (canon_pos, t, c) in &cursors {
            parts.push((*canon_pos, bm25.score(stats, *t, c.tf(), doc_len)));
        }
        parts.sort_unstable_by_key(|&(c, _)| c);
        let mut score = 0.0f64;
        for &(_, s) in &parts {
            score += s;
        }
        top.push(cand.0, score as f32);
        // Advance the driver past the match; the others will gallop.
        if !cursors[0].2.next() {
            break;
        }
        cand = cursors[0].2.doc();
    }
    into_hits(top)
}

/// Decode-everything conjunctive reference: intersects via hash probes
/// over fully decoded lists. Kept as the correctness baseline for
/// [`search_and`] and as the legacy side of the intersection benchmarks.
pub fn search_and_exhaustive(
    index: &InvertedIndex,
    terms: &[TermId],
    k: usize,
    bm25: &Bm25,
    stats: &impl CollectionStats,
) -> Vec<SearchHit> {
    let canon = dedup_terms(terms);
    if canon.is_empty() {
        return Vec::new();
    }
    let mut lists: Vec<(usize, TermId, &PostingList)> = Vec::with_capacity(canon.len());
    for (i, &t) in canon.iter().enumerate() {
        match index.postings(t) {
            Some(l) if !l.is_empty() => lists.push((i, t, l)),
            _ => return Vec::new(),
        }
    }
    lists.sort_by_key(|&(_, _, l)| l.df());

    // Start from the shortest list; probe the rest.
    let (first_canon, first_term, first_list) = lists[0];
    let mut candidates: Vec<(DocId, Vec<(usize, f64)>)> = first_list
        .iter()
        .map(|p| {
            let s = bm25.score(stats, first_term, p.tf, index.doc_len(p.doc));
            (p.doc, vec![(first_canon, s)])
        })
        .collect();

    for &(canon_pos, term, list) in &lists[1..] {
        if candidates.is_empty() {
            return Vec::new();
        }
        // Decode this list once into a tf lookup over surviving candidates.
        let want: HashMap<u32, ()> = candidates.iter().map(|&(d, _)| (d.0, ())).collect();
        let mut tfs: HashMap<u32, u32> = HashMap::with_capacity(want.len());
        for p in list.iter() {
            if want.contains_key(&p.doc.0) {
                tfs.insert(p.doc.0, p.tf);
            }
        }
        candidates.retain_mut(|(d, parts)| {
            if let Some(&tf) = tfs.get(&d.0) {
                parts.push((canon_pos, bm25.score(stats, term, tf, index.doc_len(*d))));
                true
            } else {
                false
            }
        });
    }

    let mut top = TopK::new(k.max(1));
    for (d, parts) in &mut candidates {
        parts.sort_unstable_by_key(|&(c, _)| c);
        let mut score = 0.0f64;
        for &(_, s) in parts.iter() {
            score += s;
        }
        top.push(d.0, score as f32);
    }
    into_hits(top)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::build_index;

    fn idx() -> InvertedIndex {
        build_index(&[
            /* 0 */ vec![(TermId(1), 3), (TermId(2), 1)],
            /* 1 */ vec![(TermId(1), 1)],
            /* 2 */ vec![(TermId(2), 2), (TermId(3), 1)],
            /* 3 */ vec![(TermId(1), 1), (TermId(2), 1), (TermId(3), 2)],
            /* 4 */ vec![(TermId(4), 1)],
        ])
    }

    fn or_both(
        index: &InvertedIndex,
        terms: &[TermId],
        k: usize,
    ) -> (Vec<SearchHit>, Vec<SearchHit>) {
        let bm = Bm25::default();
        let mut e1 = EvalStats::default();
        let mut e2 = EvalStats::default();
        let a = search_or_with(EvalStrategy::Exhaustive, index, terms, k, &bm, index, &mut e1);
        let b = search_or_with(EvalStrategy::MaxScore, index, terms, k, &bm, index, &mut e2);
        (a, b)
    }

    #[test]
    fn or_returns_all_matching_ranked() {
        let i = idx();
        let hits = search_or(&i, &[TermId(1), TermId(2)], 10, &Bm25::default(), &i);
        let docs: Vec<u32> = hits.iter().map(|h| h.doc.0).collect();
        // docs 0,1,2,3 contain term 1 or 2; doc 4 does not.
        assert_eq!(hits.len(), 4);
        assert!(!docs.contains(&4));
        // Scores descending.
        assert!(hits.windows(2).all(|w| w[0].score >= w[1].score));
        // Doc 0 (tf=3 of term1 + term2) should beat doc 1 (single tf=1).
        let pos0 = docs.iter().position(|&d| d == 0).unwrap();
        let pos1 = docs.iter().position(|&d| d == 1).unwrap();
        assert!(pos0 < pos1);
    }

    #[test]
    fn or_respects_k() {
        let i = idx();
        let hits = search_or(&i, &[TermId(1), TermId(2)], 2, &Bm25::default(), &i);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn or_unknown_term_is_empty() {
        let i = idx();
        assert!(search_or(&i, &[TermId(99)], 5, &Bm25::default(), &i).is_empty());
        assert!(search_or(&i, &[], 5, &Bm25::default(), &i).is_empty());
    }

    #[test]
    fn maxscore_matches_exhaustive_bitwise() {
        let i = idx();
        for k in 1..=6 {
            let (a, b) = or_both(&i, &[TermId(1), TermId(2), TermId(3)], k);
            assert_eq!(a, b, "k={k}");
        }
    }

    #[test]
    fn maxscore_handles_unknown_and_empty() {
        let i = idx();
        let (a, b) = or_both(&i, &[TermId(99)], 5);
        assert_eq!(a, b);
        assert!(b.is_empty());
        let (a, b) = or_both(&i, &[], 5);
        assert_eq!(a, b);
    }

    #[test]
    fn duplicate_terms_score_once() {
        let i = idx();
        let once = search_or(&i, &[TermId(1), TermId(2)], 10, &Bm25::default(), &i);
        let twice =
            search_or(&i, &[TermId(1), TermId(2), TermId(1), TermId(1)], 10, &Bm25::default(), &i);
        assert_eq!(once, twice, "set semantics: duplicates are ignored");
        let (a, b) = or_both(&i, &[TermId(2), TermId(1), TermId(2)], 3);
        assert_eq!(a, b);
    }

    #[test]
    fn maxscore_prunes_on_larger_index() {
        // Many docs containing a common term; a rare term distinguishes
        // a handful. With k small, most common-only docs are prunable.
        let mut corpus: Vec<Vec<(TermId, u32)>> = Vec::new();
        for d in 0..4000u32 {
            let mut doc = vec![(TermId(1), 1 + d % 2)];
            if d % 397 == 0 {
                doc.push((TermId(2), 3));
            }
            corpus.push(doc);
        }
        let i = build_index(&corpus);
        let bm = Bm25::default();
        let mut ex = EvalStats::default();
        let mut ms = EvalStats::default();
        let terms = [TermId(1), TermId(2)];
        let a = search_or_with(EvalStrategy::Exhaustive, &i, &terms, 5, &bm, &i, &mut ex);
        let b = search_or_with(EvalStrategy::MaxScore, &i, &terms, 5, &bm, &i, &mut ms);
        assert_eq!(a, b, "pruning must not change results");
        assert!(
            ms.postings_scanned < ex.postings_scanned,
            "maxscore must scan fewer postings: {} vs {}",
            ms.postings_scanned,
            ex.postings_scanned
        );
        assert!(ms.blocks_skipped > 0, "expected whole blocks to be skipped");
    }

    #[test]
    fn and_intersects() {
        let i = idx();
        let hits = search_and(&i, &[TermId(1), TermId(2)], 10, &Bm25::default(), &i);
        let mut docs: Vec<u32> = hits.iter().map(|h| h.doc.0).collect();
        docs.sort_unstable();
        assert_eq!(docs, vec![0, 3]);
    }

    #[test]
    fn and_with_missing_term_is_empty() {
        let i = idx();
        assert!(search_and(&i, &[TermId(1), TermId(99)], 10, &Bm25::default(), &i).is_empty());
    }

    #[test]
    fn and_three_terms() {
        let i = idx();
        let hits = search_and(&i, &[TermId(1), TermId(2), TermId(3)], 10, &Bm25::default(), &i);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].doc, DocId(3));
    }

    #[test]
    fn and_galloping_matches_exhaustive_bitwise() {
        let i = idx();
        let bm = Bm25::default();
        for terms in [
            vec![TermId(1)],
            vec![TermId(1), TermId(2)],
            vec![TermId(2), TermId(3)],
            vec![TermId(1), TermId(2), TermId(3)],
            vec![TermId(3), TermId(3), TermId(1)],
        ] {
            for k in 1..=4 {
                let a = search_and(&i, &terms, k, &bm, &i);
                let b = search_and_exhaustive(&i, &terms, k, &bm, &i);
                assert_eq!(a, b, "terms={terms:?} k={k}");
            }
        }
    }

    #[test]
    fn and_subset_of_or() {
        let i = idx();
        let and_hits = search_and(&i, &[TermId(1), TermId(2)], 10, &Bm25::default(), &i);
        let or_hits = search_or(&i, &[TermId(1), TermId(2)], 10, &Bm25::default(), &i);
        let or_docs: Vec<u32> = or_hits.iter().map(|h| h.doc.0).collect();
        for h in &and_hits {
            assert!(or_docs.contains(&h.doc.0));
        }
    }

    #[test]
    fn and_score_equals_or_score_for_full_matches() {
        let i = idx();
        let and_hits = search_and(&i, &[TermId(1), TermId(2)], 10, &Bm25::default(), &i);
        let or_hits = search_or(&i, &[TermId(1), TermId(2)], 10, &Bm25::default(), &i);
        for ah in &and_hits {
            let oh = or_hits.iter().find(|h| h.doc == ah.doc).unwrap();
            // Exact: both fold the same f64 contributions in canonical
            // term order and round once (no tolerance needed).
            assert_eq!(ah.score, oh.score, "doc {:?}", ah.doc);
        }
    }
}
