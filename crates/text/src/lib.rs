//! # dwr-text — the IR core
//!
//! "Typically, an inverted index is the reference structure for storing
//! indexes in IR systems" (Section 4). This crate implements that reference
//! structure from scratch:
//!
//! * [`token`] — a fault-tolerant tokenizer (the paper stresses that "it is
//!   very important that the HTML parser is tolerant to all sort of
//!   errors"; our tokenizer never fails, it only emits fewer tokens);
//! * [`postings`] — delta + varint compressed posting lists with term
//!   frequencies in a block-max layout (per-block last-doc/max-tf/
//!   min-doc-len metadata plus a block-skipping `next_geq` cursor), the
//!   Lexicon/PostingList pair the paper describes;
//! * [`index`] — sort-based and single-pass index builders, plus index
//!   merging (the building blocks of Section 4's distributed construction
//!   strategies) and a parallel builder;
//! * [`score`] — BM25 with pluggable collection statistics, so the
//!   "local vs. global statistics" experiments (Section 4, external
//!   factors) can swap the statistics source under the same scorer;
//! * [`topk`] — a bounded top-k heap;
//! * [`search`] — ranked disjunctive and Boolean conjunctive evaluation,
//!   with an exhaustive reference evaluator and a block-max MaxScore
//!   evaluator returning bit-identical top-k;
//! * [`positions`] — positional postings and phrase search (the
//!   communication-heavy case of Section 5's pipelined evaluation);
//! * [`dynamic`] — online index maintenance with geometric partitioning
//!   \[15\] and lock-time accounting (Section 4's update problem);
//! * [`skips`] — the legacy decoded skip-list path, kept as the baseline
//!   the blocked-cursor intersection is benchmarked against;
//! * [`langid`] — Cavnar–Trenkle n-gram language identification for the
//!   language-routing discussion of Section 5.

pub mod dynamic;
pub mod index;
pub mod langid;
pub mod positions;
pub mod postings;
pub mod score;
pub mod search;
pub mod skips;
pub mod token;
pub mod topk;

/// Identifier of a document within one index (dense, `0..num_docs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId(pub u32);

/// Identifier of a term. Layout-compatible with
/// `dwr_webgraph::content::TermId`; kept separate so this crate stands
/// alone as an IR library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

pub use index::{IndexBuilder, InvertedIndex};
pub use postings::{BlockMeta, CursorStats, DecodeError, PostingCursor, PostingList, BLOCK_LEN};
pub use score::{Bm25, CollectionStats, GlobalStats};
pub use search::{
    search_and, search_and_exhaustive, search_or, search_or_with, EvalStats, EvalStrategy,
    SearchHit,
};
