//! Positional postings and phrase search.
//!
//! Section 5 (communication): "When position information is used for
//! proximity or phrase search, however, the communication overhead
//! between servers increases greatly because it includes both the
//! position of terms and the partially resolved query. In such a case,
//! the position information needs to be compressed efficiently."
//!
//! Positions are stored per posting as delta+varint lists (the efficient
//! compression the paper asks for); [`PositionalIndex::phrase_search`]
//! intersects positional lists, and the encoded sizes feed the
//! pipelined-engine communication experiment (E13).

use crate::DocId;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// One positional posting: document plus the ascending token positions at
/// which the term occurs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PositionalPosting {
    /// Document containing the term.
    pub doc: DocId,
    /// Ascending 0-based token positions.
    pub positions: Vec<u32>,
}

fn put_varint(buf: &mut BytesMut, mut v: u32) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(buf: &mut impl Buf) -> u32 {
    let mut v = 0u32;
    let mut shift = 0;
    loop {
        let byte = buf.get_u8();
        v |= u32::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return v;
        }
        shift += 7;
        debug_assert!(shift < 35);
    }
}

/// An immutable compressed positional posting list: per posting, the doc
/// delta, the position count, and delta-encoded positions.
#[derive(Debug, Clone, Default)]
pub struct PositionalList {
    data: Bytes,
    df: u32,
}

impl PositionalList {
    /// Document frequency.
    pub fn df(&self) -> u32 {
        self.df
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.df == 0
    }

    /// Encoded size in bytes — what shipping this list (or its slice)
    /// between servers costs.
    pub fn encoded_bytes(&self) -> usize {
        self.data.len()
    }

    /// Decode the full list.
    pub fn to_vec(&self) -> Vec<PositionalPosting> {
        let mut buf = &self.data[..];
        let mut out = Vec::with_capacity(self.df as usize);
        let mut prev_doc = 0u32;
        for _ in 0..self.df {
            let delta = get_varint(&mut buf);
            prev_doc = prev_doc.wrapping_add(delta);
            let n = get_varint(&mut buf);
            let mut positions = Vec::with_capacity(n as usize);
            let mut prev_pos = 0u32;
            for i in 0..n {
                let pd = get_varint(&mut buf);
                prev_pos = if i == 0 { pd } else { prev_pos + pd };
                positions.push(prev_pos);
            }
            out.push(PositionalPosting { doc: DocId(prev_doc), positions });
        }
        out
    }
}

/// Builder for a [`PositionalList`]; docs strictly ascending, positions
/// strictly ascending within a doc.
#[derive(Debug, Default)]
pub struct PositionalListBuilder {
    buf: BytesMut,
    prev_doc: Option<u32>,
    df: u32,
}

impl PositionalListBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one document's positions.
    ///
    /// # Panics
    /// Panics on out-of-order docs, empty positions, or unsorted positions.
    pub fn push(&mut self, doc: DocId, positions: &[u32]) {
        assert!(!positions.is_empty(), "positional posting needs positions");
        assert!(positions.windows(2).all(|w| w[0] < w[1]), "positions must be strictly ascending");
        let delta = match self.prev_doc {
            None => doc.0,
            Some(prev) => {
                assert!(doc.0 > prev, "docs must be strictly ascending");
                doc.0 - prev
            }
        };
        put_varint(&mut self.buf, delta);
        put_varint(&mut self.buf, positions.len() as u32);
        let mut prev = 0u32;
        for (i, &p) in positions.iter().enumerate() {
            put_varint(&mut self.buf, if i == 0 { p } else { p - prev });
            prev = p;
        }
        self.prev_doc = Some(doc.0);
        self.df += 1;
    }

    /// Finish encoding.
    pub fn finish(self) -> PositionalList {
        PositionalList { data: self.buf.freeze(), df: self.df }
    }
}

/// A positional index over token streams: term → positional list.
#[derive(Debug, Default)]
pub struct PositionalIndex {
    lists: std::collections::HashMap<u32, PositionalList>,
    num_docs: u32,
}

impl PositionalIndex {
    /// Build from documents given as token-id sequences.
    pub fn build(docs: &[Vec<u32>]) -> Self {
        // Gather (term, doc, position) and encode per term.
        let mut occurrences: std::collections::HashMap<u32, Vec<(u32, u32)>> =
            std::collections::HashMap::new();
        for (d, tokens) in docs.iter().enumerate() {
            for (pos, &t) in tokens.iter().enumerate() {
                occurrences.entry(t).or_default().push((d as u32, pos as u32));
            }
        }
        let lists = occurrences
            .into_iter()
            .map(|(t, occ)| {
                // occ is already sorted by (doc, pos) thanks to scan order.
                let mut b = PositionalListBuilder::new();
                let mut i = 0;
                while i < occ.len() {
                    let doc = occ[i].0;
                    let mut positions = Vec::new();
                    while i < occ.len() && occ[i].0 == doc {
                        positions.push(occ[i].1);
                        i += 1;
                    }
                    b.push(DocId(doc), &positions);
                }
                (t, b.finish())
            })
            .collect();
        PositionalIndex { lists, num_docs: docs.len() as u32 }
    }

    /// Number of indexed documents.
    pub fn num_docs(&self) -> u32 {
        self.num_docs
    }

    /// The positional list of a term.
    pub fn list(&self, term: u32) -> Option<&PositionalList> {
        self.lists.get(&term)
    }

    /// Total encoded bytes of all positional lists.
    pub fn encoded_bytes(&self) -> usize {
        self.lists.values().map(PositionalList::encoded_bytes).sum()
    }

    /// Documents containing the exact phrase (consecutive positions).
    pub fn phrase_search(&self, phrase: &[u32]) -> Vec<DocId> {
        if phrase.is_empty() {
            return Vec::new();
        }
        let mut lists = Vec::with_capacity(phrase.len());
        for &t in phrase {
            match self.lists.get(&t) {
                Some(l) => lists.push(l.to_vec()),
                None => return Vec::new(),
            }
        }
        // Intersect by doc, then check position chains.
        let mut out = Vec::new();
        let first = &lists[0];
        for p0 in first {
            // All other terms must contain this doc.
            let mut chains: Vec<&[u32]> = Vec::with_capacity(phrase.len());
            chains.push(&p0.positions);
            let mut ok = true;
            for l in &lists[1..] {
                match l.iter().find(|p| p.doc == p0.doc) {
                    Some(p) => chains.push(&p.positions),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                continue;
            }
            // Position chain: exists pos in chains[0] with pos+i in chains[i].
            let found = chains[0].iter().any(|&start| {
                chains
                    .iter()
                    .enumerate()
                    .skip(1)
                    .all(|(i, c)| c.binary_search(&(start + i as u32)).is_ok())
            });
            if found {
                out.push(p0.doc);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs() -> Vec<Vec<u32>> {
        vec![
            vec![1, 2, 3, 1, 2], // "a b c a b"
            vec![2, 1, 2, 3],    // "b a b c"
            vec![3, 3, 3],       // "c c c"
            vec![],              // empty
            vec![1, 2],          // "a b"
        ]
    }

    #[test]
    fn roundtrip_positions() {
        let mut b = PositionalListBuilder::new();
        b.push(DocId(0), &[0, 3, 7]);
        b.push(DocId(5), &[2]);
        let l = b.finish();
        assert_eq!(l.df(), 2);
        let v = l.to_vec();
        assert_eq!(v[0], PositionalPosting { doc: DocId(0), positions: vec![0, 3, 7] });
        assert_eq!(v[1], PositionalPosting { doc: DocId(5), positions: vec![2] });
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn rejects_unsorted_positions() {
        PositionalListBuilder::new().push(DocId(0), &[3, 1]);
    }

    #[test]
    fn phrase_matches_consecutive_only() {
        let idx = PositionalIndex::build(&docs());
        // "a b" (1, 2) occurs in docs 0, 1, 4.
        let hits = idx.phrase_search(&[1, 2]);
        assert_eq!(hits, vec![DocId(0), DocId(1), DocId(4)]);
        // "b c" occurs in docs 0 and 1.
        assert_eq!(idx.phrase_search(&[2, 3]), vec![DocId(0), DocId(1)]);
        // "a c" never consecutive.
        assert!(idx.phrase_search(&[1, 3]).is_empty());
    }

    #[test]
    fn three_term_phrase() {
        let idx = PositionalIndex::build(&docs());
        // "a b c": doc 0 at positions 0..2 and doc 1 ("b a b c") at 1..3.
        assert_eq!(idx.phrase_search(&[1, 2, 3]), vec![DocId(0), DocId(1)]);
        // "b a b" only in doc 1.
        assert_eq!(idx.phrase_search(&[2, 1, 2]), vec![DocId(1)]);
    }

    #[test]
    fn single_term_phrase_is_containment() {
        let idx = PositionalIndex::build(&docs());
        assert_eq!(idx.phrase_search(&[3]), vec![DocId(0), DocId(1), DocId(2)]);
    }

    #[test]
    fn missing_term_empties_phrase() {
        let idx = PositionalIndex::build(&docs());
        assert!(idx.phrase_search(&[1, 99]).is_empty());
        assert!(idx.phrase_search(&[]).is_empty());
    }

    #[test]
    fn repeated_term_runs() {
        let idx = PositionalIndex::build(&docs());
        // "c c" in doc 2 only.
        assert_eq!(idx.phrase_search(&[3, 3]), vec![DocId(2)]);
    }

    #[test]
    fn positional_bytes_exceed_plain_postings() {
        // The communication-cost point of Section 5: positions cost real
        // bytes beyond doc+tf postings.
        let idx = PositionalIndex::build(&docs());
        let tf_docs: Vec<Vec<(crate::TermId, u32)>> = docs()
            .iter()
            .map(|tokens| {
                crate::token::term_frequencies(
                    &tokens.iter().map(|&t| crate::TermId(t)).collect::<Vec<_>>(),
                )
            })
            .collect();
        let plain = crate::index::build_index(&tf_docs);
        assert!(idx.encoded_bytes() > plain.encoded_bytes());
    }
}
