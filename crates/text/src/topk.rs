//! Bounded top-k selection.
//!
//! Query processors keep only the k best-scoring documents; brokers merge
//! several such lists (Section 5's result merging). `TopK` is a bounded
//! min-heap: O(log k) insertion, O(k log k) extraction, never more than k
//! live entries.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An entry in a top-k heap: a score plus an opaque payload.
///
/// Ordering is by score, then by payload key *ascending* so ties are
/// deterministic (lower doc id wins, matching what production engines do).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    score: f32,
    key: u32,
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Total order: NaN scores are rejected at insertion.
        self.score
            .partial_cmp(&other.score)
            .expect("scores are non-NaN")
            .then(other.key.cmp(&self.key)) // lower key = better on ties
    }
}

/// Bounded top-k accumulator over `(key, score)` pairs.
#[derive(Debug)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<Reverse<Entry>>,
}

impl TopK {
    /// Create an accumulator retaining the `k` best entries.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "top-0 is meaningless");
        TopK { k, heap: BinaryHeap::with_capacity(k + 1) }
    }

    /// Offer an entry.
    ///
    /// # Panics
    /// Panics on a NaN score.
    pub fn push(&mut self, key: u32, score: f32) {
        assert!(!score.is_nan(), "NaN score");
        let e = Entry { score, key };
        if self.heap.len() < self.k {
            self.heap.push(Reverse(e));
        } else if let Some(&Reverse(worst)) = self.heap.peek() {
            if e > worst {
                self.heap.pop();
                self.heap.push(Reverse(e));
            }
        }
    }

    /// Number of retained entries (≤ k).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The current k-th best score, if k entries are held — the admission
    /// threshold for further candidates.
    pub fn threshold(&self) -> Option<f32> {
        if self.heap.len() < self.k {
            None
        } else {
            self.heap.peek().map(|&Reverse(e)| e.score)
        }
    }

    /// Extract the retained entries, best first.
    pub fn into_sorted_vec(self) -> Vec<(u32, f32)> {
        let mut v: Vec<Entry> = self.heap.into_iter().map(|Reverse(e)| e).collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v.into_iter().map(|e| (e.key, e.score)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_best_k() {
        let mut t = TopK::new(3);
        for (i, s) in [1.0f32, 5.0, 3.0, 2.0, 4.0].iter().enumerate() {
            t.push(i as u32, *s);
        }
        let got = t.into_sorted_vec();
        assert_eq!(got.iter().map(|&(k, _)| k).collect::<Vec<_>>(), vec![1, 4, 2]);
        assert_eq!(got[0].1, 5.0);
    }

    #[test]
    fn fewer_than_k_is_fine() {
        let mut t = TopK::new(10);
        t.push(7, 1.5);
        let got = t.into_sorted_vec();
        assert_eq!(got, vec![(7, 1.5)]);
    }

    #[test]
    fn ties_break_by_lower_key() {
        let mut t = TopK::new(2);
        t.push(9, 1.0);
        t.push(3, 1.0);
        t.push(5, 1.0);
        let got = t.into_sorted_vec();
        assert_eq!(got.iter().map(|&(k, _)| k).collect::<Vec<_>>(), vec![3, 5]);
    }

    #[test]
    fn threshold_reports_kth_score() {
        let mut t = TopK::new(2);
        assert_eq!(t.threshold(), None);
        t.push(0, 5.0);
        assert_eq!(t.threshold(), None);
        t.push(1, 3.0);
        assert_eq!(t.threshold(), Some(3.0));
        t.push(2, 4.0);
        assert_eq!(t.threshold(), Some(4.0));
    }

    #[test]
    fn equal_to_threshold_with_higher_key_not_admitted() {
        let mut t = TopK::new(1);
        t.push(1, 2.0);
        t.push(5, 2.0); // same score, higher key: loses
        assert_eq!(t.into_sorted_vec(), vec![(1, 2.0)]);
    }

    #[test]
    fn equal_to_threshold_with_lower_key_admitted() {
        let mut t = TopK::new(1);
        t.push(5, 2.0);
        t.push(1, 2.0); // same score, lower key: wins
        assert_eq!(t.into_sorted_vec(), vec![(1, 2.0)]);
    }

    #[test]
    #[should_panic(expected = "top-0")]
    fn rejects_k_zero() {
        TopK::new(0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan() {
        TopK::new(1).push(0, f32::NAN);
    }

    #[test]
    fn large_stream_matches_full_sort() {
        let mut t = TopK::new(10);
        let scores: Vec<f32> = (0..1000u32)
            .map(|i| ((i.wrapping_mul(2654435761u32.wrapping_mul(i))) % 997) as f32)
            .collect();
        for (i, &s) in scores.iter().enumerate() {
            t.push(i as u32, s);
        }
        let got = t.into_sorted_vec();
        let mut want: Vec<(u32, f32)> =
            scores.iter().enumerate().map(|(i, &s)| (i as u32, s)).collect();
        want.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        want.truncate(10);
        assert_eq!(got, want);
    }
}
