//! BM25 scoring with pluggable collection statistics.
//!
//! Section 4 (external factors): "in a document partitioned IR system (...)
//! it might be necessary to compute values for some global parameters such
//! as the collection frequency or the inverse document frequency of a
//! term". The scorer therefore takes its statistics through the
//! [`CollectionStats`] trait: an [`InvertedIndex`] provides *local*
//! statistics, while [`GlobalStats`] aggregates several partitions —
//! exactly the two configurations the paper's two-round broker protocol
//! switches between. Experiment E7 measures the result-set divergence.

use crate::index::InvertedIndex;
use crate::TermId;

/// Source of the corpus-level statistics a ranking function needs.
pub trait CollectionStats {
    /// Number of documents in the (logical) collection.
    fn num_docs(&self) -> u64;
    /// Document frequency of a term across the (logical) collection.
    fn df(&self, term: TermId) -> u64;
    /// Average document length across the (logical) collection.
    fn avg_doc_len(&self) -> f64;
}

impl CollectionStats for InvertedIndex {
    fn num_docs(&self) -> u64 {
        u64::from(InvertedIndex::num_docs(self))
    }
    fn df(&self, term: TermId) -> u64 {
        u64::from(InvertedIndex::df(self, term))
    }
    fn avg_doc_len(&self) -> f64 {
        InvertedIndex::avg_doc_len(self)
    }
}

/// Aggregated ("global") statistics over several index partitions.
///
/// This is what the broker assembles in the first round of the two-round
/// protocol and piggybacks onto the second-round query messages.
#[derive(Debug, Clone, Default)]
pub struct GlobalStats {
    num_docs: u64,
    total_tokens: u64,
    df: std::collections::HashMap<u32, u64>,
}

impl GlobalStats {
    /// Aggregate the statistics of all partitions for the given query
    /// terms only (that is all the broker requests over the wire).
    pub fn for_terms(parts: &[&InvertedIndex], terms: &[TermId]) -> Self {
        let mut df = std::collections::HashMap::with_capacity(terms.len());
        let mut num_docs = 0u64;
        let mut total_tokens = 0u64;
        for p in parts {
            num_docs += u64::from(p.num_docs());
            total_tokens += (p.avg_doc_len() * f64::from(p.num_docs())) as u64;
            for &t in terms {
                *df.entry(t.0).or_insert(0) += u64::from(p.df(t));
            }
        }
        GlobalStats { num_docs, total_tokens, df }
    }

    /// Wire size of the statistics payload in bytes (terms × (id + df)).
    pub fn payload_bytes(&self) -> u64 {
        16 + self.df.len() as u64 * 12
    }
}

impl CollectionStats for GlobalStats {
    fn num_docs(&self) -> u64 {
        self.num_docs
    }
    fn df(&self, term: TermId) -> u64 {
        self.df.get(&term.0).copied().unwrap_or(0)
    }
    fn avg_doc_len(&self) -> f64 {
        if self.num_docs == 0 {
            0.0
        } else {
            self.total_tokens as f64 / self.num_docs as f64
        }
    }
}

/// Okapi BM25 parameters.
#[derive(Debug, Clone, Copy)]
pub struct Bm25 {
    /// Term-frequency saturation (typical 0.9–2.0).
    pub k1: f64,
    /// Length normalization strength in `[0, 1]`.
    pub b: f64,
}

impl Default for Bm25 {
    fn default() -> Self {
        Bm25 { k1: 1.2, b: 0.75 }
    }
}

impl Bm25 {
    /// IDF with the standard +0.5 smoothing, floored at 0 so that terms in
    /// more than half the collection contribute nothing (rather than
    /// negative scores, which break top-k merging across partitions).
    pub fn idf(&self, stats: &impl CollectionStats, term: TermId) -> f64 {
        let n = stats.num_docs() as f64;
        let df = stats.df(term) as f64;
        (((n - df + 0.5) / (df + 0.5)) + 1.0).ln().max(0.0)
    }

    /// Score one term occurrence.
    pub fn score(&self, stats: &impl CollectionStats, term: TermId, tf: u32, doc_len: u32) -> f64 {
        let idf = self.idf(stats, term);
        let avg = stats.avg_doc_len().max(1.0);
        let tf = f64::from(tf);
        let norm = self.k1 * (1.0 - self.b + self.b * f64::from(doc_len) / avg);
        idf * tf * (self.k1 + 1.0) / (tf + norm)
    }

    /// Upper bound on the score any posting inside a block can reach.
    ///
    /// **Pruning invariant.** BM25 is monotone *increasing* in `tf`
    /// (∂/∂tf = idf·(k1+1)·norm/(tf+norm)² > 0) and monotone *decreasing*
    /// in `doc_len` (longer documents only grow `norm`). Evaluating the
    /// scorer at the block's `max_tf` and `min_doc_len` therefore
    /// dominates every real posting in the block — *for the same `stats`*.
    /// Because the bound is computed at query time against whatever
    /// [`CollectionStats`] the evaluation itself uses (local or
    /// [`GlobalStats`]), the index never bakes in a statistics source and
    /// the bound stays sound under the two-round global-statistics
    /// protocol. A `min_doc_len` of 0 (lists built without lengths, or
    /// re-admitted from the wire) is simply the loosest sound bound.
    pub fn block_upper_bound(
        &self,
        stats: &impl CollectionStats,
        term: TermId,
        block: &crate::postings::BlockMeta,
    ) -> f64 {
        self.score(stats, term, block.max_tf, block.min_doc_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::build_index;

    fn idx() -> InvertedIndex {
        build_index(&[
            vec![(TermId(1), 2), (TermId(2), 1)],
            vec![(TermId(1), 1)],
            vec![(TermId(2), 5), (TermId(3), 1)],
            vec![(TermId(3), 1)],
        ])
    }

    #[test]
    fn rarer_terms_score_higher() {
        let i = idx();
        let bm = Bm25::default();
        // df(1) = 2, df(9) would be 0; compare df(1)=2 vs df(2)=2 vs df(3)=2:
        // craft: term 1 appears in 2 docs, make a rarer one
        let rare = bm.score(&i, TermId(3), 1, 2);
        let common = bm.score(&i, TermId(1), 1, 2);
        // identical df here — instead test idf monotonicity directly:
        assert!((bm.idf(&i, TermId(3)) - bm.idf(&i, TermId(1))).abs() < 1e-12);
        assert!(rare > 0.0 && common > 0.0);
    }

    #[test]
    fn idf_decreases_with_df() {
        let i = build_index(&[
            vec![(TermId(1), 1), (TermId(2), 1)],
            vec![(TermId(1), 1)],
            vec![(TermId(1), 1)],
        ]);
        let bm = Bm25::default();
        assert!(bm.idf(&i, TermId(2)) > bm.idf(&i, TermId(1)));
    }

    #[test]
    fn tf_saturates() {
        let i = idx();
        let bm = Bm25::default();
        let s1 = bm.score(&i, TermId(1), 1, 3);
        let s2 = bm.score(&i, TermId(1), 2, 3);
        let s10 = bm.score(&i, TermId(1), 10, 3);
        assert!(s2 > s1);
        assert!(s10 > s2);
        // Per-unit-of-tf gains shrink as tf grows.
        assert!((s10 - s2) / 8.0 < s2 - s1, "diminishing returns");
    }

    #[test]
    fn longer_docs_penalized() {
        let i = idx();
        let bm = Bm25::default();
        let short = bm.score(&i, TermId(1), 1, 2);
        let long = bm.score(&i, TermId(1), 1, 50);
        assert!(short > long);
    }

    #[test]
    fn idf_never_negative() {
        // Term in every document.
        let i = build_index(&[vec![(TermId(1), 1)], vec![(TermId(1), 1)]]);
        let bm = Bm25::default();
        assert!(bm.idf(&i, TermId(1)) >= 0.0);
    }

    #[test]
    fn global_stats_aggregate_partitions() {
        let p1 = build_index(&[vec![(TermId(1), 1)], vec![(TermId(2), 1)]]);
        let p2 = build_index(&[vec![(TermId(1), 3)], vec![(TermId(1), 1), (TermId(3), 1)]]);
        let g = GlobalStats::for_terms(&[&p1, &p2], &[TermId(1), TermId(2), TermId(3)]);
        assert_eq!(g.num_docs(), 4);
        assert_eq!(g.df(TermId(1)), 3);
        assert_eq!(g.df(TermId(2)), 1);
        assert_eq!(g.df(TermId(3)), 1);
        assert_eq!(g.df(TermId(9)), 0);
        assert!(g.payload_bytes() > 0);
    }

    #[test]
    fn local_vs_global_idf_differ_on_skewed_partitions() {
        // Term 1 is rare locally in p1 but common overall.
        let p1 = build_index(&[
            vec![(TermId(1), 1)],
            vec![(TermId(2), 1)],
            vec![(TermId(2), 1)],
            vec![(TermId(2), 1)],
        ]);
        let p2 = build_index(&[
            vec![(TermId(1), 1)],
            vec![(TermId(1), 1)],
            vec![(TermId(1), 1)],
            vec![(TermId(1), 1)],
        ]);
        let g = GlobalStats::for_terms(&[&p1, &p2], &[TermId(1)]);
        let bm = Bm25::default();
        let local_idf = bm.idf(&p1, TermId(1));
        let global_idf = bm.idf(&g, TermId(1));
        assert!(local_idf > global_idf, "local={local_idf} global={global_idf}");
    }
}
