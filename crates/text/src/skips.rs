//! Skip-augmented posting lists — the **legacy** skip path.
//!
//! Section 4: "depending on how the index is organized, it may also
//! contain information on how to efficiently access the index (e.g.,
//! skip-lists)". A [`SkipList`] stores the decoded postings of one term
//! together with a sparse ladder of skip pointers every `stride` entries;
//! [`SkipList::seek`] advances to the first posting at or beyond a target
//! document in O(√n)-ish time.
//!
//! This module predates the block-max layout: skipping now lives directly
//! on the compressed list via [`crate::postings::PostingCursor::next_geq`]
//! (which hops block metadata without decoding, instead of requiring the
//! fully decoded side structure kept here), and that cursor is what
//! `search_and` and the MaxScore evaluator use. `SkipList` is retained as
//! the *legacy* baseline the intersection benchmarks compare against —
//! see `benches/bench_intersect.rs` — alongside [`intersect_blocked`],
//! the cursor-based equivalent.

use crate::postings::{Posting, PostingList};
use crate::DocId;

/// A decoded posting list with a skip ladder.
#[derive(Debug, Clone)]
pub struct SkipList {
    postings: Vec<Posting>,
    /// `skips[i]` = (doc of entry `i*stride`, index `i*stride`).
    skips: Vec<(u32, u32)>,
    stride: usize,
}

impl SkipList {
    /// Decode `list` and build skips every `stride` postings.
    ///
    /// # Panics
    /// Panics if `stride == 0`.
    pub fn from_postings(list: &PostingList, stride: usize) -> Self {
        assert!(stride > 0, "stride must be positive");
        let postings = list.to_vec();
        let skips =
            postings.iter().enumerate().step_by(stride).map(|(i, p)| (p.doc.0, i as u32)).collect();
        SkipList { postings, skips, stride }
    }

    /// Build with the classic √n stride.
    pub fn with_sqrt_stride(list: &PostingList) -> Self {
        let stride = (f64::from(list.df()).sqrt().ceil() as usize).max(1);
        Self::from_postings(list, stride)
    }

    /// Number of postings.
    pub fn len(&self) -> usize {
        self.postings.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.postings.is_empty()
    }

    /// All postings.
    pub fn postings(&self) -> &[Posting] {
        &self.postings
    }

    /// Index of the first posting with `doc >= target`, starting the scan
    /// from `from` (a previous result; pass 0 initially). Uses the skip
    /// ladder to jump, then scans within a block. Returns `len()` when no
    /// such posting exists.
    pub fn seek(&self, target: DocId, from: usize) -> usize {
        let n = self.postings.len();
        if from >= n {
            return n;
        }
        // Jump along the ladder from the current block.
        let mut block = from / self.stride;
        while block + 1 < self.skips.len() && self.skips[block + 1].0 < target.0 {
            block += 1;
        }
        let mut i = (block * self.stride).max(from);
        while i < n && self.postings[i].doc.0 < target.0 {
            i += 1;
        }
        i
    }
}

/// Intersect two skip lists, driving from the shorter one. Returns the
/// matching `(doc, tf_a, tf_b)` triples in ascending doc order.
pub fn intersect(a: &SkipList, b: &SkipList) -> Vec<(DocId, u32, u32)> {
    let (short, long, swapped) = if a.len() <= b.len() { (a, b, false) } else { (b, a, true) };
    let mut out = Vec::new();
    let mut j = 0usize;
    for p in short.postings() {
        j = long.seek(p.doc, j);
        if j >= long.len() {
            break;
        }
        let q = long.postings()[j];
        if q.doc == p.doc {
            if swapped {
                out.push((p.doc, q.tf, p.tf));
            } else {
                out.push((p.doc, p.tf, q.tf));
            }
        }
    }
    out
}

/// Intersect two lists via their block-skipping cursors, driving from the
/// shorter one. Unlike [`intersect`], nothing is pre-decoded: blocks of
/// the longer list with no common document are skipped outright. Returns
/// the matching `(doc, tf_a, tf_b)` triples in ascending doc order.
pub fn intersect_blocked(a: &PostingList, b: &PostingList) -> Vec<(DocId, u32, u32)> {
    let swapped = a.df() > b.df();
    let (short, long) = if swapped { (b, a) } else { (a, b) };
    let mut out = Vec::new();
    if short.is_empty() || long.is_empty() {
        return out;
    }
    let mut sc = short.cursor();
    let mut lc = long.cursor();
    loop {
        if !lc.next_geq(sc.doc()) {
            break;
        }
        if lc.doc() == sc.doc() {
            if swapped {
                out.push((sc.doc(), lc.tf(), sc.tf()));
            } else {
                out.push((sc.doc(), sc.tf(), lc.tf()));
            }
            if !sc.next() {
                break;
            }
        } else if !sc.next_geq(lc.doc()) {
            // The long side overshot: gallop the short side to catch up.
            break;
        }
    }
    out
}

/// Baseline: linear two-pointer merge intersection (no skips).
pub fn intersect_scan(a: &PostingList, b: &PostingList) -> Vec<(DocId, u32, u32)> {
    let av = a.to_vec();
    let bv = b.to_vec();
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < av.len() && j < bv.len() {
        match av[i].doc.cmp(&bv[j].doc) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push((av[i].doc, av[i].tf, bv[j].tf));
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::postings::PostingListBuilder;

    fn list(docs: &[u32]) -> PostingList {
        let mut b = PostingListBuilder::new();
        for &d in docs {
            b.push(DocId(d), 1 + d % 3);
        }
        b.finish()
    }

    #[test]
    fn seek_finds_first_at_or_after() {
        let s = SkipList::from_postings(&list(&[2, 5, 9, 14, 20, 33, 47]), 3);
        assert_eq!(s.seek(DocId(0), 0), 0);
        assert_eq!(s.seek(DocId(5), 0), 1);
        assert_eq!(s.seek(DocId(6), 0), 2);
        assert_eq!(s.seek(DocId(33), 0), 5);
        assert_eq!(s.seek(DocId(48), 0), 7, "past the end");
    }

    #[test]
    fn seek_respects_from() {
        let s = SkipList::from_postings(&list(&[2, 5, 9, 14]), 2);
        // Starting beyond an earlier match must not go backwards.
        assert_eq!(s.seek(DocId(2), 2), 2);
    }

    #[test]
    fn intersect_matches_scan() {
        let a = list(&[1, 4, 6, 9, 12, 40, 41, 90]);
        let b = list(&(0..100).step_by(3).collect::<Vec<_>>());
        let sa = SkipList::with_sqrt_stride(&a);
        let sb = SkipList::with_sqrt_stride(&b);
        assert_eq!(intersect(&sa, &sb), intersect_scan(&a, &b));
        // Symmetric.
        let sym: Vec<(DocId, u32, u32)> =
            intersect(&sb, &sa).into_iter().map(|(d, x, y)| (d, y, x)).collect();
        assert_eq!(sym, intersect_scan(&a, &b));
    }

    #[test]
    fn disjoint_lists_intersect_empty() {
        let a = SkipList::with_sqrt_stride(&list(&[1, 3, 5]));
        let b = SkipList::with_sqrt_stride(&list(&[2, 4, 6]));
        assert!(intersect(&a, &b).is_empty());
    }

    #[test]
    fn identical_lists_intersect_fully() {
        let l = list(&[7, 8, 9]);
        let s = SkipList::with_sqrt_stride(&l);
        assert_eq!(intersect(&s, &s).len(), 3);
    }

    #[test]
    fn empty_list_handled() {
        let e = SkipList::with_sqrt_stride(&PostingListBuilder::new().finish());
        let b = SkipList::with_sqrt_stride(&list(&[1, 2]));
        assert!(intersect(&e, &b).is_empty());
        assert!(e.is_empty());
        assert_eq!(e.seek(DocId(0), 0), 0);
    }

    #[test]
    fn tf_pairs_preserved() {
        let a = list(&[3, 6]);
        let b = list(&[6]);
        let got = intersect(&SkipList::with_sqrt_stride(&a), &SkipList::with_sqrt_stride(&b));
        // tf = 1 + d % 3: doc 6 has tf 1 in both.
        assert_eq!(got, vec![(DocId(6), 1, 1)]);
    }

    #[test]
    fn blocked_intersection_matches_scan() {
        let a = list(&[1, 4, 6, 9, 12, 40, 41, 90, 500, 9001]);
        let b = list(&(0..10_000).step_by(3).collect::<Vec<_>>());
        assert_eq!(intersect_blocked(&a, &b), intersect_scan(&a, &b));
        let sym: Vec<(DocId, u32, u32)> =
            intersect_blocked(&b, &a).into_iter().map(|(d, x, y)| (d, y, x)).collect();
        assert_eq!(sym, intersect_scan(&a, &b));
    }

    #[test]
    fn blocked_intersection_edge_cases() {
        let e = PostingListBuilder::new().finish();
        let b = list(&[1, 2]);
        assert!(intersect_blocked(&e, &b).is_empty());
        assert!(intersect_blocked(&b, &e).is_empty());
        assert!(intersect_blocked(&list(&[1, 3, 5]), &list(&[2, 4, 6])).is_empty());
        assert_eq!(intersect_blocked(&b, &b).len(), 2);
    }

    #[test]
    fn stride_one_is_plain_scan() {
        let a = list(&[1, 5, 9, 13]);
        let s = SkipList::from_postings(&a, 1);
        assert_eq!(s.seek(DocId(9), 0), 2);
    }
}
