//! Inverted-index construction: single-pass, sort-based, merged, parallel.
//!
//! Section 4 frames indexing as "a 'sort' operation on a set of records
//! representing term occurrences" and points at sort-based \[14\] and
//! single-pass \[15\] construction, pipelined distributed builds \[25\], and
//! map-reduce \[26\]. This module provides the local building blocks:
//!
//! * [`IndexBuilder`] — single-pass: per-term encoders fed documents in
//!   ascending id order;
//! * [`sort_based_build`] — materializes `(term, doc, tf)` records, sorts,
//!   then encodes (same output, different cost profile — benchmarked in
//!   `dwr-bench`);
//! * [`merge_indexes`] — k-way merge of sub-indexes over disjoint doc-id
//!   ranges, the primitive behind distributed construction;
//! * [`parallel_build`] — chunks the corpus across threads (std scoped
//!   threads) and merges, a faithful single-machine analogue of the
//!   map-reduce build.

use crate::postings::{PostingList, PostingListBuilder};
use crate::{DocId, TermId};
use std::collections::HashMap;

/// An immutable inverted index over documents `0..num_docs`.
#[derive(Debug, Default, Clone)]
pub struct InvertedIndex {
    postings: HashMap<u32, PostingList>,
    doc_len: Vec<u32>,
    total_tokens: u64,
}

impl InvertedIndex {
    /// Number of indexed documents.
    pub fn num_docs(&self) -> u32 {
        self.doc_len.len() as u32
    }

    /// Number of distinct terms with a non-empty posting list.
    pub fn num_terms(&self) -> usize {
        self.postings.len()
    }

    /// Token length of a document.
    pub fn doc_len(&self, doc: DocId) -> u32 {
        self.doc_len[doc.0 as usize]
    }

    /// Average document length in tokens (0 for an empty index).
    pub fn avg_doc_len(&self) -> f64 {
        if self.doc_len.is_empty() {
            0.0
        } else {
            self.total_tokens as f64 / self.doc_len.len() as f64
        }
    }

    /// The posting list of a term, if present.
    pub fn postings(&self, term: TermId) -> Option<&PostingList> {
        self.postings.get(&term.0)
    }

    /// Document frequency of a term (0 when absent).
    pub fn df(&self, term: TermId) -> u32 {
        self.postings.get(&term.0).map_or(0, PostingList::df)
    }

    /// Collection frequency of a term (0 when absent).
    pub fn cf(&self, term: TermId) -> u64 {
        self.postings.get(&term.0).map_or(0, PostingList::cf)
    }

    /// Iterate over `(term, posting list)` pairs in unspecified order.
    pub fn terms(&self) -> impl Iterator<Item = (TermId, &PostingList)> {
        self.postings.iter().map(|(&t, l)| (TermId(t), l))
    }

    /// Total encoded size of all posting lists, in bytes.
    pub fn encoded_bytes(&self) -> usize {
        self.postings.values().map(PostingList::encoded_bytes).sum()
    }
}

/// Single-pass in-memory index builder.
///
/// Documents must be added in ascending [`DocId`] order starting at 0
/// (enforced), which keeps every per-term encoder append-only.
#[derive(Debug, Default)]
pub struct IndexBuilder {
    builders: HashMap<u32, PostingListBuilder>,
    doc_len: Vec<u32>,
    total_tokens: u64,
}

impl IndexBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add the next document's `(term, tf)` vector. Terms may be in any
    /// order but must be unique within the document.
    pub fn add_document(&mut self, terms: &[(TermId, u32)]) -> DocId {
        let doc = DocId(self.doc_len.len() as u32);
        // Length first, so every posting carries it into block metadata
        // (tight `min_doc_len` ⇒ tight block-max bounds).
        let len: u64 = terms.iter().map(|&(_, tf)| u64::from(tf)).sum();
        for &(t, tf) in terms {
            self.builders.entry(t.0).or_default().push_with_len(doc, tf, len as u32);
        }
        self.doc_len.push(len as u32);
        self.total_tokens += len;
        doc
    }

    /// Finish into an immutable index.
    pub fn finish(self) -> InvertedIndex {
        InvertedIndex {
            postings: self.builders.into_iter().map(|(t, b)| (t, b.finish())).collect(),
            doc_len: self.doc_len,
            total_tokens: self.total_tokens,
        }
    }
}

/// Build an index from a corpus via the single-pass builder.
pub fn build_index(corpus: &[Vec<(TermId, u32)>]) -> InvertedIndex {
    let mut b = IndexBuilder::new();
    for doc in corpus {
        b.add_document(doc);
    }
    b.finish()
}

/// Sort-based construction: materialize `(term, doc, tf)` records, sort by
/// `(term, doc)`, then encode runs. Produces exactly the same index as
/// [`build_index`]; exists so the two strategies can be compared under the
/// benchmark harness, as in Section 4's discussion.
pub fn sort_based_build(corpus: &[Vec<(TermId, u32)>]) -> InvertedIndex {
    let total: usize = corpus.iter().map(Vec::len).sum();
    let mut records: Vec<(u32, u32, u32)> = Vec::with_capacity(total);
    let mut doc_len = Vec::with_capacity(corpus.len());
    let mut total_tokens = 0u64;
    for (d, doc) in corpus.iter().enumerate() {
        let mut len = 0u64;
        for &(t, tf) in doc {
            records.push((t.0, d as u32, tf));
            len += u64::from(tf);
        }
        doc_len.push(len as u32);
        total_tokens += len;
    }
    records.sort_unstable();
    let mut postings = HashMap::new();
    let mut i = 0;
    while i < records.len() {
        let term = records[i].0;
        let mut b = PostingListBuilder::new();
        while i < records.len() && records[i].0 == term {
            let (_, d, tf) = records[i];
            b.push_with_len(DocId(d), tf, doc_len[d as usize]);
            i += 1;
        }
        postings.insert(term, b.finish());
    }
    InvertedIndex { postings, doc_len, total_tokens }
}

/// Merge sub-indexes built over consecutive corpus chunks into one index.
///
/// `parts[i]` must cover documents `[offsets[i], offsets[i] + parts[i].num_docs())`
/// of the final id space, with offsets ascending and contiguous.
pub fn merge_indexes(parts: &[InvertedIndex]) -> InvertedIndex {
    let mut doc_len = Vec::new();
    let mut total_tokens = 0u64;
    // term -> per-part builders in order; since parts cover ascending
    // disjoint ranges, appending in part order keeps doc ids ascending.
    let mut merged: HashMap<u32, PostingListBuilder> = HashMap::new();
    let mut offset = 0u32;
    for part in parts {
        for (term, list) in part.terms() {
            let b = merged.entry(term.0).or_default();
            for p in list.iter() {
                b.push_with_len(DocId(p.doc.0 + offset), p.tf, part.doc_len(p.doc));
            }
        }
        doc_len.extend_from_slice(&part.doc_len);
        total_tokens += part.total_tokens;
        offset += part.num_docs();
    }
    InvertedIndex {
        postings: merged.into_iter().map(|(t, b)| (t, b.finish())).collect(),
        doc_len,
        total_tokens,
    }
}

/// Parallel build: split the corpus into `threads` contiguous chunks,
/// build each on its own thread, then merge. The in-process analogue of
/// the map-reduce construction of \[26\].
pub fn parallel_build(corpus: &[Vec<(TermId, u32)>], threads: usize) -> InvertedIndex {
    assert!(threads > 0);
    if corpus.is_empty() {
        return InvertedIndex::default();
    }
    let chunk = corpus.len().div_ceil(threads);
    let parts: Vec<InvertedIndex> = std::thread::scope(|s| {
        let handles: Vec<_> =
            corpus.chunks(chunk).map(|c| s.spawn(move || build_index(c))).collect();
        handles.into_iter().map(|h| h.join().expect("index worker panicked")).collect()
    });
    merge_indexes(&parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<Vec<(TermId, u32)>> {
        vec![
            vec![(TermId(1), 2), (TermId(3), 1)],
            vec![(TermId(1), 1), (TermId(2), 4)],
            vec![(TermId(3), 3)],
            vec![],
            vec![(TermId(2), 1), (TermId(3), 1), (TermId(9), 1)],
        ]
    }

    #[test]
    fn build_and_stats() {
        let idx = build_index(&corpus());
        assert_eq!(idx.num_docs(), 5);
        assert_eq!(idx.num_terms(), 4);
        assert_eq!(idx.df(TermId(1)), 2);
        assert_eq!(idx.cf(TermId(1)), 3);
        assert_eq!(idx.df(TermId(3)), 3);
        assert_eq!(idx.df(TermId(42)), 0);
        assert_eq!(idx.doc_len(DocId(0)), 3);
        assert_eq!(idx.doc_len(DocId(3)), 0);
        assert!((idx.avg_doc_len() - 14.0 / 5.0).abs() < 1e-9);
    }

    #[test]
    fn postings_are_ascending() {
        let idx = build_index(&corpus());
        for (_, list) in idx.terms() {
            let docs: Vec<u32> = list.iter().map(|p| p.doc.0).collect();
            assert!(docs.windows(2).all(|w| w[0] < w[1]));
        }
    }

    fn index_eq(a: &InvertedIndex, b: &InvertedIndex) -> bool {
        if a.num_docs() != b.num_docs() || a.num_terms() != b.num_terms() {
            return false;
        }
        if a.doc_len != b.doc_len {
            return false;
        }
        a.terms().all(|(t, l)| b.postings(t).is_some_and(|lb| l.to_vec() == lb.to_vec()))
    }

    #[test]
    fn sort_based_matches_single_pass() {
        let c = corpus();
        assert!(index_eq(&build_index(&c), &sort_based_build(&c)));
    }

    #[test]
    fn merge_matches_monolithic() {
        let c = corpus();
        let p1 = build_index(&c[..2]);
        let p2 = build_index(&c[2..]);
        let merged = merge_indexes(&[p1, p2]);
        assert!(index_eq(&build_index(&c), &merged));
    }

    #[test]
    fn parallel_matches_monolithic() {
        let c: Vec<Vec<(TermId, u32)>> =
            (0..97).map(|i| vec![(TermId(i % 13), 1 + i % 3), (TermId(100 + i % 7), 1)]).collect();
        for threads in [1, 2, 3, 8] {
            assert!(index_eq(&build_index(&c), &parallel_build(&c, threads)), "threads={threads}");
        }
    }

    #[test]
    fn empty_corpus() {
        let idx = build_index(&[]);
        assert_eq!(idx.num_docs(), 0);
        assert_eq!(idx.avg_doc_len(), 0.0);
        let p = parallel_build(&[], 4);
        assert_eq!(p.num_docs(), 0);
    }

    #[test]
    fn merge_of_empty_parts() {
        let merged = merge_indexes(&[build_index(&[]), build_index(&corpus())]);
        assert!(index_eq(&merged, &build_index(&corpus())));
    }
}
