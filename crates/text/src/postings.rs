//! Compressed posting lists in a block-max layout.
//!
//! Each posting is a `(doc, tf)` pair; documents are stored as varint
//! deltas (ascending doc ids) and term frequencies as varints. This is the
//! minimal production layout the paper describes ("each element of a list,
//! a posting, contains in its minimal form the identifier of the document
//! containing the terms (...) often keep more information, such as the
//! number of occurrences").
//!
//! # Block layout
//!
//! On top of the flat varint stream, the list is organized into
//! fixed-size **blocks** of [`BLOCK_LEN`] postings. The byte stream is
//! *identical* to the unblocked encoding (deltas chain across block
//! boundaries); blocks only add per-block metadata on the side:
//!
//! ```text
//! data:   |d0 tf0 d1 tf1 ... d127 tf127|d128 tf128 ...          |...
//!          `------- block 0 ----------' `------ block 1 ------'
//! blocks: [ {offset, last_doc, max_tf, min_doc_len} , {...} , ... ]
//! ```
//!
//! `offset` is the byte position where the block's first delta starts and
//! `last_doc` the doc id of its final posting, so any block can be decoded
//! independently (the delta base of block `b` is `blocks[b-1].last_doc`).
//! `max_tf` and `min_doc_len` dominate every posting in the block for any
//! monotone scorer — [`crate::score::Bm25::block_upper_bound`] turns them
//! into a per-block score ceiling, the *block-max* metadata that the
//! MaxScore evaluator in [`crate::search`] prunes with.
//!
//! [`PostingCursor`] is the skip-aware access path: `next_geq(target)`
//! consults `last_doc` to hop over whole blocks without decoding them
//! (subsuming the decoded skip ladder that used to live in
//! [`crate::skips`], which is retained only as a benchmark baseline).

use crate::DocId;
use bytes::{BufMut, Bytes, BytesMut};

/// Postings per block. 128 keeps a decoded block (1 KiB of `Posting`)
/// inside L1 while making the metadata overhead ~3% of a dense list.
pub const BLOCK_LEN: usize = 128;

/// One decoded posting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Posting {
    /// Document containing the term.
    pub doc: DocId,
    /// Number of occurrences of the term in the document.
    pub tf: u32,
}

/// Why a varint stream failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The stream ended inside a varint (or before `df` postings).
    Truncated,
    /// A varint ran past the 5 bytes a `u32` can occupy, or its fifth
    /// byte carried bits beyond bit 31.
    Overlong,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "posting data truncated mid-varint"),
            DecodeError::Overlong => write!(f, "varint longer than a u32 permits"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn put_varint(buf: &mut BytesMut, mut v: u32) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Decode one varint from `data` starting at `*pos`, advancing `*pos`.
///
/// Unlike the pre-hardening version (which panicked on truncation via the
/// buffer and looped past 5 bytes in release builds), corrupt input is a
/// first-class [`DecodeError`] in every build profile.
fn get_varint(data: &[u8], pos: &mut usize) -> Result<u32, DecodeError> {
    let mut v = 0u32;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = data.get(*pos) else {
            return Err(DecodeError::Truncated);
        };
        *pos += 1;
        if shift == 28 {
            // Fifth byte: must terminate and fit in the 4 bits left.
            if byte & 0xf0 != 0 {
                return Err(DecodeError::Overlong);
            }
            return Ok(v | (u32::from(byte) << 28));
        }
        v |= u32::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Per-block metadata: everything a pruning evaluator needs to decide
/// whether a block is worth decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockMeta {
    /// Doc id of the block's last posting (skip key for `next_geq`).
    pub last_doc: u32,
    /// Maximum term frequency within the block.
    pub max_tf: u32,
    /// Minimum token length over the block's documents; `0` when the
    /// builder was not given lengths (the conservative, always-sound
    /// default: BM25 is maximal at length 0).
    pub min_doc_len: u32,
    /// Byte offset of the block's first delta in the encoded stream.
    offset: u32,
}

/// An immutable compressed posting list with block-max metadata.
#[derive(Debug, Clone, Default)]
pub struct PostingList {
    data: Bytes,
    /// Document frequency (number of postings).
    df: u32,
    /// Collection frequency (sum of tf over postings).
    cf: u64,
    /// Per-block metadata, one entry per `BLOCK_LEN` postings.
    blocks: Vec<BlockMeta>,
}

impl PostingList {
    /// Document frequency: number of documents in the list.
    pub fn df(&self) -> u32 {
        self.df
    }

    /// Collection frequency: total occurrences across documents.
    pub fn cf(&self) -> u64 {
        self.cf
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.df == 0
    }

    /// Encoded size in bytes (what a broker would ship over the network).
    pub fn encoded_bytes(&self) -> usize {
        self.data.len()
    }

    /// The encoded byte stream itself (cheaply cloned; `Bytes` is
    /// reference counted). Feed it back through
    /// [`PostingList::from_encoded`] to re-admit it after a network hop.
    pub fn encoded(&self) -> Bytes {
        self.data.clone()
    }

    /// The block-max metadata ladder, one entry per [`BLOCK_LEN`]
    /// postings (the last block may be partial).
    pub fn blocks(&self) -> &[BlockMeta] {
        &self.blocks
    }

    /// Number of postings in block `b` (all blocks are full except
    /// possibly the last).
    pub fn block_len(&self, b: usize) -> usize {
        debug_assert!(b < self.blocks.len());
        if b + 1 == self.blocks.len() {
            self.df as usize - b * BLOCK_LEN
        } else {
            BLOCK_LEN
        }
    }

    /// Iterate over the decoded postings in ascending doc order.
    ///
    /// On corrupt data the iterator stops early; [`PostingIter::error`]
    /// reports why. Lists built by [`PostingListBuilder`] or admitted via
    /// [`PostingList::from_encoded`] never trip this.
    pub fn iter(&self) -> PostingIter<'_> {
        PostingIter { data: &self.data[..], pos: 0, prev_doc: 0, remaining: self.df, error: None }
    }

    /// Decode everything into a vector (convenience for tests/merging).
    pub fn to_vec(&self) -> Vec<Posting> {
        self.iter().collect()
    }

    /// A block-skipping cursor positioned on the first posting (invalid
    /// for an empty list).
    pub fn cursor(&self) -> PostingCursor<'_> {
        PostingCursor::new(self)
    }

    /// Re-admit a wire-encoded stream (the payload a document broker
    /// ships between sites). The stream is fully validated — truncated or
    /// overlong varints surface as [`DecodeError`] instead of looping or
    /// panicking — and the block-max ladder is rebuilt locally (document
    /// lengths are not on the wire, so `min_doc_len` is the conservative
    /// `0`).
    pub fn from_encoded(data: Bytes, df: u32) -> Result<Self, DecodeError> {
        let mut pos = 0usize;
        let mut prev_doc = 0u32;
        let mut cf = 0u64;
        let mut blocks = Vec::with_capacity((df as usize).div_ceil(BLOCK_LEN));
        let mut cur: Option<BlockMeta> = None;
        let mut in_block = 0usize;
        for i in 0..df {
            let start = pos;
            let delta = get_varint(&data[..], &mut pos)?;
            let tf =
                get_varint(&data[..], &mut pos)?.checked_add(1).ok_or(DecodeError::Overlong)?;
            prev_doc = if i == 0 { delta } else { prev_doc.wrapping_add(delta) };
            cf += u64::from(tf);
            let meta = cur.get_or_insert(BlockMeta {
                last_doc: prev_doc,
                max_tf: tf,
                min_doc_len: 0,
                offset: start as u32,
            });
            meta.last_doc = prev_doc;
            meta.max_tf = meta.max_tf.max(tf);
            in_block += 1;
            if in_block == BLOCK_LEN {
                blocks.push(cur.take().expect("block in progress"));
                in_block = 0;
            }
        }
        if let Some(meta) = cur {
            blocks.push(meta);
        }
        Ok(PostingList { data, df, cf, blocks })
    }
}

/// Decoding iterator over a [`PostingList`].
#[derive(Debug)]
pub struct PostingIter<'a> {
    data: &'a [u8],
    pos: usize,
    prev_doc: u32,
    remaining: u32,
    error: Option<DecodeError>,
}

impl PostingIter<'_> {
    /// The decode error that terminated iteration early, if any.
    pub fn error(&self) -> Option<DecodeError> {
        self.error
    }
}

impl Iterator for PostingIter<'_> {
    type Item = Posting;

    fn next(&mut self) -> Option<Posting> {
        if self.remaining == 0 {
            return None;
        }
        let decoded = get_varint(self.data, &mut self.pos)
            .and_then(|delta| get_varint(self.data, &mut self.pos).map(|tf| (delta, tf)));
        match decoded {
            Ok((delta, tf)) => {
                self.remaining -= 1;
                self.prev_doc = self.prev_doc.wrapping_add(delta);
                Some(Posting { doc: DocId(self.prev_doc), tf: tf + 1 })
            }
            Err(e) => {
                self.error = Some(e);
                self.remaining = 0;
                None
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

impl ExactSizeIterator for PostingIter<'_> {}

/// Work counters a [`PostingCursor`] accumulates; the broker aggregates
/// these into the queries/sec experiments (`exp_throughput`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CursorStats {
    /// Postings decoded (block decodes count every posting in the block).
    pub postings_decoded: u64,
    /// Blocks decoded.
    pub blocks_decoded: u64,
    /// Blocks hopped over by `next_geq` without decoding.
    pub blocks_skipped: u64,
}

/// A block-skipping cursor over one posting list.
///
/// The cursor is positioned *on* a posting; [`PostingCursor::doc`] /
/// [`PostingCursor::tf`] read it, [`PostingCursor::next`] advances by
/// one, and [`PostingCursor::next_geq`] advances to the first posting
/// with `doc >= target`, decoding only the destination block.
#[derive(Debug)]
pub struct PostingCursor<'a> {
    list: &'a PostingList,
    /// Index of the decoded block.
    block: usize,
    /// Decoded postings of the current block.
    entries: Vec<Posting>,
    /// Position within `entries`.
    pos: usize,
    exhausted: bool,
    stats: CursorStats,
}

impl<'a> PostingCursor<'a> {
    fn new(list: &'a PostingList) -> Self {
        let mut c = PostingCursor {
            list,
            block: 0,
            entries: Vec::new(),
            pos: 0,
            exhausted: list.is_empty(),
            stats: CursorStats::default(),
        };
        if !c.exhausted {
            c.decode_block(0);
        }
        c
    }

    fn decode_block(&mut self, b: usize) {
        let n = self.list.block_len(b);
        let meta = &self.list.blocks[b];
        let mut pos = meta.offset as usize;
        let mut prev = if b == 0 { 0 } else { self.list.blocks[b - 1].last_doc };
        self.entries.clear();
        self.entries.reserve(n);
        for i in 0..n {
            let Ok(delta) = get_varint(&self.list.data[..], &mut pos) else { break };
            let Ok(tf) = get_varint(&self.list.data[..], &mut pos) else { break };
            prev = if b == 0 && i == 0 { delta } else { prev.wrapping_add(delta) };
            self.entries.push(Posting { doc: DocId(prev), tf: tf + 1 });
        }
        self.block = b;
        self.pos = 0;
        self.stats.blocks_decoded += 1;
        self.stats.postings_decoded += self.entries.len() as u64;
        // Corrupt data (impossible for builder-produced lists) shows up
        // as a short block; treat it as end-of-list rather than panicking.
        self.exhausted = self.entries.is_empty();
    }

    /// Whether the cursor is on a posting.
    pub fn valid(&self) -> bool {
        !self.exhausted
    }

    /// Current document.
    ///
    /// # Panics
    /// Panics if the cursor is exhausted.
    pub fn doc(&self) -> DocId {
        debug_assert!(!self.exhausted, "cursor exhausted");
        self.entries[self.pos].doc
    }

    /// Current term frequency.
    pub fn tf(&self) -> u32 {
        debug_assert!(!self.exhausted, "cursor exhausted");
        self.entries[self.pos].tf
    }

    /// Metadata of the block the cursor is in.
    pub fn block_meta(&self) -> &BlockMeta {
        &self.list.blocks[self.block]
    }

    /// Advance one posting; `false` when the list is exhausted.
    ///
    /// Deliberately *not* `Iterator::next`: a DAAT cursor is positional
    /// (`doc()`/`tf()` read the current posting in place, `next_geq`
    /// jumps), which an `Option`-returning iterator cannot express.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> bool {
        if self.exhausted {
            return false;
        }
        self.pos += 1;
        if self.pos < self.entries.len() {
            return true;
        }
        if self.block + 1 < self.list.blocks.len() {
            self.decode_block(self.block + 1);
            !self.exhausted
        } else {
            self.exhausted = true;
            false
        }
    }

    /// Advance to the first posting with `doc >= target` (never moves
    /// backwards); `false` when no such posting exists. Blocks whose
    /// `last_doc < target` are hopped over without decoding.
    pub fn next_geq(&mut self, target: DocId) -> bool {
        if self.exhausted {
            return false;
        }
        if self.entries[self.pos].doc >= target {
            return true;
        }
        let blocks = &self.list.blocks;
        if blocks[self.block].last_doc < target.0 {
            // Hop along the metadata ladder; blocks strictly between the
            // current one and the destination are never decoded.
            let mut b = self.block + 1;
            while b < blocks.len() && blocks[b].last_doc < target.0 {
                b += 1;
            }
            self.stats.blocks_skipped += (b - self.block - 1) as u64;
            if b == blocks.len() {
                self.exhausted = true;
                return false;
            }
            self.decode_block(b);
            if self.exhausted {
                return false;
            }
        }
        // Within the block: binary search from the current position.
        let tail = &self.entries[self.pos..];
        self.pos += tail.partition_point(|p| p.doc < target);
        debug_assert!(self.pos < self.entries.len(), "block last_doc promised a hit");
        self.pos < self.entries.len() || {
            self.exhausted = true;
            false
        }
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> CursorStats {
        self.stats
    }
}

/// Incremental encoder for one term's postings.
///
/// Documents must be appended in strictly ascending order; the first
/// document is encoded as a delta from zero. Block-max metadata is built
/// as postings stream in; [`PostingListBuilder::push_with_len`] threads
/// the document length through so blocks carry a tight `min_doc_len`
/// (plain [`PostingListBuilder::push`] records the sound-but-loose `0`).
#[derive(Debug, Default)]
pub struct PostingListBuilder {
    buf: BytesMut,
    prev_doc: Option<u32>,
    df: u32,
    cf: u64,
    blocks: Vec<BlockMeta>,
    cur: Option<BlockMeta>,
    in_block: usize,
}

impl PostingListBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a posting with an unknown document length (block metadata
    /// then records `min_doc_len = 0`, the loosest sound bound).
    ///
    /// # Panics
    /// Panics if `doc` is not strictly greater than the previous doc, or if
    /// `tf == 0`.
    pub fn push(&mut self, doc: DocId, tf: u32) {
        self.push_with_len(doc, tf, 0);
    }

    /// Append a posting whose document has `doc_len` tokens, tightening
    /// the block's `min_doc_len` (and therefore its block-max score
    /// bound).
    ///
    /// # Panics
    /// Panics if `doc` is not strictly greater than the previous doc, or if
    /// `tf == 0`.
    pub fn push_with_len(&mut self, doc: DocId, tf: u32, doc_len: u32) {
        assert!(tf > 0, "a posting must have at least one occurrence");
        let delta = match self.prev_doc {
            None => doc.0,
            Some(prev) => {
                assert!(
                    doc.0 > prev,
                    "postings must be strictly ascending: {} after {prev}",
                    doc.0
                );
                doc.0 - prev
            }
        };
        let offset = self.buf.len() as u32;
        put_varint(&mut self.buf, delta);
        put_varint(&mut self.buf, tf - 1);
        self.prev_doc = Some(doc.0);
        self.df += 1;
        self.cf += u64::from(tf);
        let meta = self.cur.get_or_insert(BlockMeta {
            last_doc: doc.0,
            max_tf: tf,
            min_doc_len: doc_len,
            offset,
        });
        meta.last_doc = doc.0;
        meta.max_tf = meta.max_tf.max(tf);
        meta.min_doc_len = meta.min_doc_len.min(doc_len);
        self.in_block += 1;
        if self.in_block == BLOCK_LEN {
            self.blocks.push(self.cur.take().expect("block in progress"));
            self.in_block = 0;
        }
    }

    /// Current number of postings.
    pub fn df(&self) -> u32 {
        self.df
    }

    /// Finish encoding.
    pub fn finish(mut self) -> PostingList {
        if let Some(meta) = self.cur.take() {
            self.blocks.push(meta);
        }
        PostingList { data: self.buf.freeze(), df: self.df, cf: self.cf, blocks: self.blocks }
    }
}

/// Merge several posting lists whose doc-id spaces are disjoint and
/// ascending across inputs (the common case when concatenating partition
/// sub-indexes with remapped ids). More general k-way merging for
/// overlapping spaces lives in `index::merge_indexes`.
pub fn concat_lists(lists: &[&PostingList]) -> PostingList {
    let mut b = PostingListBuilder::new();
    for l in lists {
        for p in l.iter() {
            b.push(p.doc, p.tf);
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(postings: &[(u32, u32)]) -> Vec<Posting> {
        let mut b = PostingListBuilder::new();
        for &(d, tf) in postings {
            b.push(DocId(d), tf);
        }
        b.finish().to_vec()
    }

    fn list_of(docs: &[u32]) -> PostingList {
        let mut b = PostingListBuilder::new();
        for &d in docs {
            b.push(DocId(d), 1 + d % 3);
        }
        b.finish()
    }

    #[test]
    fn empty_list() {
        let l = PostingListBuilder::new().finish();
        assert!(l.is_empty());
        assert_eq!(l.df(), 0);
        assert_eq!(l.to_vec(), vec![]);
        assert!(l.blocks().is_empty());
        assert!(!l.cursor().valid());
    }

    #[test]
    fn single_posting() {
        let got = roundtrip(&[(0, 1)]);
        assert_eq!(got, vec![Posting { doc: DocId(0), tf: 1 }]);
    }

    #[test]
    fn basic_roundtrip() {
        let input = [(0, 3), (5, 1), (6, 2), (1000, 7), (70_000, 1)];
        let got = roundtrip(&input);
        assert_eq!(got.len(), 5);
        for (p, &(d, tf)) in got.iter().zip(&input) {
            assert_eq!(p.doc, DocId(d));
            assert_eq!(p.tf, tf);
        }
    }

    #[test]
    fn df_cf_tracked() {
        let mut b = PostingListBuilder::new();
        b.push(DocId(1), 2);
        b.push(DocId(9), 5);
        let l = b.finish();
        assert_eq!(l.df(), 2);
        assert_eq!(l.cf(), 7);
    }

    #[test]
    fn large_doc_ids_roundtrip() {
        let input = [(u32::MAX - 10, 1), (u32::MAX - 1, 300_000)];
        let got = roundtrip(&input);
        assert_eq!(got[1].doc, DocId(u32::MAX - 1));
        assert_eq!(got[1].tf, 300_000);
    }

    #[test]
    fn compression_beats_naive_for_dense_lists() {
        let mut b = PostingListBuilder::new();
        for d in 0..10_000u32 {
            b.push(DocId(d), 1);
        }
        let l = b.finish();
        // Naive layout would be 8 bytes/posting; deltas of 1 with tf 1 take 2.
        assert!(l.encoded_bytes() <= 2 * 10_000);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn rejects_unsorted() {
        let mut b = PostingListBuilder::new();
        b.push(DocId(5), 1);
        b.push(DocId(5), 1);
    }

    #[test]
    #[should_panic(expected = "at least one occurrence")]
    fn rejects_zero_tf() {
        PostingListBuilder::new().push(DocId(0), 0);
    }

    #[test]
    fn concat_disjoint_lists() {
        let mut a = PostingListBuilder::new();
        a.push(DocId(0), 1);
        a.push(DocId(2), 2);
        let mut b = PostingListBuilder::new();
        b.push(DocId(10), 3);
        let merged = concat_lists(&[&a.finish(), &b.finish()]);
        assert_eq!(merged.df(), 3);
        assert_eq!(merged.cf(), 6);
        assert_eq!(merged.to_vec().iter().map(|p| p.doc.0).collect::<Vec<_>>(), vec![0, 2, 10]);
    }

    #[test]
    fn iterator_size_hint_exact() {
        let mut b = PostingListBuilder::new();
        for d in [1u32, 4, 9] {
            b.push(DocId(d), 1);
        }
        let l = b.finish();
        let mut it = l.iter();
        assert_eq!(it.len(), 3);
        it.next();
        assert_eq!(it.len(), 2);
    }

    // ----- block metadata -----

    #[test]
    fn block_metadata_covers_every_posting() {
        let docs: Vec<u32> = (0..1000u32).map(|i| i * 7 + i % 5).collect();
        let mut b = PostingListBuilder::new();
        for (i, &d) in docs.iter().enumerate() {
            b.push_with_len(DocId(d), 1 + (i as u32 % 9), 10 + (i as u32 % 40));
        }
        let l = b.finish();
        assert_eq!(l.blocks().len(), docs.len().div_ceil(BLOCK_LEN));
        let decoded = l.to_vec();
        for (bi, meta) in l.blocks().iter().enumerate() {
            let lo = bi * BLOCK_LEN;
            let hi = (lo + l.block_len(bi)).min(decoded.len());
            let chunk = &decoded[lo..hi];
            assert_eq!(meta.last_doc, chunk.last().unwrap().doc.0);
            assert_eq!(meta.max_tf, chunk.iter().map(|p| p.tf).max().unwrap());
            assert!(chunk.iter().all(|p| p.tf <= meta.max_tf));
        }
    }

    #[test]
    fn min_doc_len_is_min_over_block() {
        let mut b = PostingListBuilder::new();
        b.push_with_len(DocId(0), 1, 30);
        b.push_with_len(DocId(1), 1, 7);
        b.push_with_len(DocId(2), 1, 12);
        let l = b.finish();
        assert_eq!(l.blocks()[0].min_doc_len, 7);
    }

    #[test]
    fn plain_push_records_loose_zero_len() {
        let l = list_of(&[1, 2, 3]);
        assert_eq!(l.blocks()[0].min_doc_len, 0);
    }

    // ----- cursor -----

    #[test]
    fn cursor_walks_whole_list() {
        let docs: Vec<u32> = (0..777u32).map(|i| i * 3).collect();
        let l = list_of(&docs);
        let mut c = l.cursor();
        let mut got = Vec::new();
        while c.valid() {
            got.push((c.doc().0, c.tf()));
            c.next();
        }
        let want: Vec<(u32, u32)> = l.iter().map(|p| (p.doc.0, p.tf)).collect();
        assert_eq!(got, want);
        assert_eq!(c.stats().postings_decoded, docs.len() as u64);
        assert_eq!(c.stats().blocks_skipped, 0);
    }

    #[test]
    fn next_geq_finds_first_at_or_after() {
        let l = list_of(&[2, 5, 9, 14, 20, 33, 47]);
        let mut c = l.cursor();
        assert!(c.next_geq(DocId(0)));
        assert_eq!(c.doc(), DocId(2));
        assert!(c.next_geq(DocId(6)));
        assert_eq!(c.doc(), DocId(9));
        assert!(c.next_geq(DocId(33)));
        assert_eq!(c.doc(), DocId(33));
        assert!(!c.next_geq(DocId(48)), "past the end");
        assert!(!c.valid());
    }

    #[test]
    fn next_geq_skips_whole_blocks_without_decoding() {
        let docs: Vec<u32> = (0..10 * BLOCK_LEN as u32).collect();
        let l = list_of(&docs);
        let mut c = l.cursor();
        // Jump straight into the last block: 8 interior blocks skipped.
        assert!(c.next_geq(DocId(9 * BLOCK_LEN as u32 + 3)));
        assert_eq!(c.doc().0, 9 * BLOCK_LEN as u32 + 3);
        let s = c.stats();
        assert_eq!(s.blocks_skipped, 8);
        assert_eq!(s.blocks_decoded, 2, "first block + destination block");
        assert_eq!(s.postings_decoded, 2 * BLOCK_LEN as u64);
    }

    #[test]
    fn next_geq_never_moves_backwards() {
        let l = list_of(&[2, 5, 9, 14]);
        let mut c = l.cursor();
        assert!(c.next_geq(DocId(9)));
        assert_eq!(c.doc(), DocId(9));
        assert!(c.next_geq(DocId(2)), "earlier target keeps the position");
        assert_eq!(c.doc(), DocId(9));
    }

    // ----- hardened decode -----

    #[test]
    fn truncated_stream_is_an_error_not_a_hang() {
        let good = list_of(&[10, 20, 30, 40]);
        // Chop the tail off the valid encoding: decoding must stop with
        // Truncated (in release builds too), never loop or panic.
        let cut = good.encoded_bytes() - 1;
        let bad = Bytes::from(good.data[..cut].to_vec());
        let err = PostingList::from_encoded(bad, good.df()).unwrap_err();
        assert_eq!(err, DecodeError::Truncated);
    }

    #[test]
    fn df_larger_than_stream_is_truncated() {
        let good = list_of(&[1, 2]);
        let err = PostingList::from_encoded(good.data.clone(), good.df() + 5).unwrap_err();
        assert_eq!(err, DecodeError::Truncated);
    }

    #[test]
    fn overlong_varint_is_an_error() {
        // Six continuation bytes: a varint no u32 can hold.
        let bad = Bytes::from(vec![0xff, 0xff, 0xff, 0xff, 0xff, 0x01]);
        let err = PostingList::from_encoded(bad, 1).unwrap_err();
        assert_eq!(err, DecodeError::Overlong);
        // Five bytes whose fifth carries bits past bit 31.
        let bad = Bytes::from(vec![0xff, 0xff, 0xff, 0xff, 0x7f, 0x00]);
        let err = PostingList::from_encoded(bad, 1).unwrap_err();
        assert_eq!(err, DecodeError::Overlong);
    }

    #[test]
    fn iterator_stops_cleanly_on_corrupt_payload() {
        let good = list_of(&[100, 200, 300]);
        let cut = good.encoded_bytes() - 1;
        let corrupt = PostingList {
            data: Bytes::from(good.data[..cut].to_vec()),
            df: good.df(),
            cf: good.cf(),
            blocks: good.blocks.clone(),
        };
        let mut it = corrupt.iter();
        let n = it.by_ref().count();
        assert!(n < 3, "the damaged posting is not produced");
        assert_eq!(it.error(), Some(DecodeError::Truncated));
    }

    #[test]
    fn from_encoded_roundtrips_valid_streams() {
        let docs: Vec<u32> = (0..300u32).map(|i| i * 11).collect();
        let l = list_of(&docs);
        let wire = PostingList::from_encoded(l.data.clone(), l.df()).expect("valid stream");
        assert_eq!(wire.cf(), l.cf());
        assert_eq!(wire.to_vec(), l.to_vec());
        assert_eq!(wire.blocks().len(), l.blocks().len());
        for (a, b) in wire.blocks().iter().zip(l.blocks()) {
            assert_eq!(a.last_doc, b.last_doc);
            assert_eq!(a.max_tf, b.max_tf);
            assert_eq!(a.min_doc_len, 0, "lengths are not on the wire");
        }
    }

    #[test]
    fn five_byte_varint_at_u32_max_roundtrips() {
        let mut b = PostingListBuilder::new();
        b.push(DocId(u32::MAX), 1);
        let l = b.finish();
        assert_eq!(l.to_vec()[0].doc, DocId(u32::MAX));
        let wire = PostingList::from_encoded(l.data.clone(), 1).expect("valid");
        assert_eq!(wire.to_vec()[0].doc, DocId(u32::MAX));
    }
}
