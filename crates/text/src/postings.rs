//! Compressed posting lists.
//!
//! Each posting is a `(doc, tf)` pair; documents are stored as varint
//! deltas (ascending doc ids) and term frequencies as varints. This is the
//! minimal production layout the paper describes ("each element of a list,
//! a posting, contains in its minimal form the identifier of the document
//! containing the terms (...) often keep more information, such as the
//! number of occurrences").

use crate::DocId;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// One decoded posting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Posting {
    /// Document containing the term.
    pub doc: DocId,
    /// Number of occurrences of the term in the document.
    pub tf: u32,
}

fn put_varint(buf: &mut BytesMut, mut v: u32) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(buf: &mut impl Buf) -> u32 {
    let mut v = 0u32;
    let mut shift = 0;
    loop {
        let byte = buf.get_u8();
        v |= u32::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return v;
        }
        shift += 7;
        debug_assert!(shift < 35, "varint too long");
    }
}

/// An immutable compressed posting list.
#[derive(Debug, Clone, Default)]
pub struct PostingList {
    data: Bytes,
    /// Document frequency (number of postings).
    df: u32,
    /// Collection frequency (sum of tf over postings).
    cf: u64,
}

impl PostingList {
    /// Document frequency: number of documents in the list.
    pub fn df(&self) -> u32 {
        self.df
    }

    /// Collection frequency: total occurrences across documents.
    pub fn cf(&self) -> u64 {
        self.cf
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.df == 0
    }

    /// Encoded size in bytes (what a broker would ship over the network).
    pub fn encoded_bytes(&self) -> usize {
        self.data.len()
    }

    /// Iterate over the decoded postings in ascending doc order.
    pub fn iter(&self) -> PostingIter<'_> {
        PostingIter { data: &self.data[..], prev_doc: 0, remaining: self.df }
    }

    /// Decode everything into a vector (convenience for tests/merging).
    pub fn to_vec(&self) -> Vec<Posting> {
        self.iter().collect()
    }
}

/// Decoding iterator over a [`PostingList`].
#[derive(Debug)]
pub struct PostingIter<'a> {
    data: &'a [u8],
    prev_doc: u32,
    remaining: u32,
}

impl Iterator for PostingIter<'_> {
    type Item = Posting;

    fn next(&mut self) -> Option<Posting> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let delta = get_varint(&mut self.data);
        let tf = get_varint(&mut self.data) + 1;
        self.prev_doc = self.prev_doc.wrapping_add(delta);
        Some(Posting { doc: DocId(self.prev_doc), tf })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

impl ExactSizeIterator for PostingIter<'_> {}

/// Incremental encoder for one term's postings.
///
/// Documents must be appended in strictly ascending order; the first
/// document is encoded as a delta from zero.
#[derive(Debug, Default)]
pub struct PostingListBuilder {
    buf: BytesMut,
    prev_doc: Option<u32>,
    df: u32,
    cf: u64,
}

impl PostingListBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a posting.
    ///
    /// # Panics
    /// Panics if `doc` is not strictly greater than the previous doc, or if
    /// `tf == 0`.
    pub fn push(&mut self, doc: DocId, tf: u32) {
        assert!(tf > 0, "a posting must have at least one occurrence");
        let delta = match self.prev_doc {
            None => doc.0,
            Some(prev) => {
                assert!(
                    doc.0 > prev,
                    "postings must be strictly ascending: {} after {prev}",
                    doc.0
                );
                doc.0 - prev
            }
        };
        put_varint(&mut self.buf, delta);
        put_varint(&mut self.buf, tf - 1);
        self.prev_doc = Some(doc.0);
        self.df += 1;
        self.cf += u64::from(tf);
    }

    /// Current number of postings.
    pub fn df(&self) -> u32 {
        self.df
    }

    /// Finish encoding.
    pub fn finish(self) -> PostingList {
        PostingList { data: self.buf.freeze(), df: self.df, cf: self.cf }
    }
}

/// Merge several posting lists whose doc-id spaces are disjoint and
/// ascending across inputs (the common case when concatenating partition
/// sub-indexes with remapped ids). More general k-way merging for
/// overlapping spaces lives in `index::merge_indexes`.
pub fn concat_lists(lists: &[&PostingList]) -> PostingList {
    let mut b = PostingListBuilder::new();
    for l in lists {
        for p in l.iter() {
            b.push(p.doc, p.tf);
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(postings: &[(u32, u32)]) -> Vec<Posting> {
        let mut b = PostingListBuilder::new();
        for &(d, tf) in postings {
            b.push(DocId(d), tf);
        }
        b.finish().to_vec()
    }

    #[test]
    fn empty_list() {
        let l = PostingListBuilder::new().finish();
        assert!(l.is_empty());
        assert_eq!(l.df(), 0);
        assert_eq!(l.to_vec(), vec![]);
    }

    #[test]
    fn single_posting() {
        let got = roundtrip(&[(0, 1)]);
        assert_eq!(got, vec![Posting { doc: DocId(0), tf: 1 }]);
    }

    #[test]
    fn basic_roundtrip() {
        let input = [(0, 3), (5, 1), (6, 2), (1000, 7), (70_000, 1)];
        let got = roundtrip(&input);
        assert_eq!(got.len(), 5);
        for (p, &(d, tf)) in got.iter().zip(&input) {
            assert_eq!(p.doc, DocId(d));
            assert_eq!(p.tf, tf);
        }
    }

    #[test]
    fn df_cf_tracked() {
        let mut b = PostingListBuilder::new();
        b.push(DocId(1), 2);
        b.push(DocId(9), 5);
        let l = b.finish();
        assert_eq!(l.df(), 2);
        assert_eq!(l.cf(), 7);
    }

    #[test]
    fn large_doc_ids_roundtrip() {
        let input = [(u32::MAX - 10, 1), (u32::MAX - 1, 300_000)];
        let got = roundtrip(&input);
        assert_eq!(got[1].doc, DocId(u32::MAX - 1));
        assert_eq!(got[1].tf, 300_000);
    }

    #[test]
    fn compression_beats_naive_for_dense_lists() {
        let mut b = PostingListBuilder::new();
        for d in 0..10_000u32 {
            b.push(DocId(d), 1);
        }
        let l = b.finish();
        // Naive layout would be 8 bytes/posting; deltas of 1 with tf 1 take 2.
        assert!(l.encoded_bytes() <= 2 * 10_000);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn rejects_unsorted() {
        let mut b = PostingListBuilder::new();
        b.push(DocId(5), 1);
        b.push(DocId(5), 1);
    }

    #[test]
    #[should_panic(expected = "at least one occurrence")]
    fn rejects_zero_tf() {
        PostingListBuilder::new().push(DocId(0), 0);
    }

    #[test]
    fn concat_disjoint_lists() {
        let mut a = PostingListBuilder::new();
        a.push(DocId(0), 1);
        a.push(DocId(2), 2);
        let mut b = PostingListBuilder::new();
        b.push(DocId(10), 3);
        let merged = concat_lists(&[&a.finish(), &b.finish()]);
        assert_eq!(merged.df(), 3);
        assert_eq!(merged.cf(), 6);
        assert_eq!(merged.to_vec().iter().map(|p| p.doc.0).collect::<Vec<_>>(), vec![0, 2, 10]);
    }

    #[test]
    fn iterator_size_hint_exact() {
        let mut b = PostingListBuilder::new();
        for d in [1u32, 4, 9] {
            b.push(DocId(d), 1);
        }
        let l = b.finish();
        let mut it = l.iter();
        assert_eq!(it.len(), 3);
        it.next();
        assert_eq!(it.len(), 2);
    }
}
