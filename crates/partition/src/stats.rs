//! The two-round global-statistics protocol.
//!
//! "The broker usually resolves queries using a two-round protocol. In the
//! first round the broker requests local statistics from each server, in
//! the second round it requests results from each server, piggybacking the
//! global statistics onto the second message containing the query"
//! (Section 4, external factors). This module implements both broker
//! configurations — local-only (one round) and global (two rounds) — and
//! accounts for their communication costs, so E7 can quantify what the
//! extra round buys in ranking agreement.

use crate::parted::PartitionedIndex;
use dwr_sim::net::{SiteId, Topology};
use dwr_sim::SimTime;
use dwr_text::score::{Bm25, GlobalStats};
use dwr_text::search::{search_or, SearchHit};
use dwr_text::topk::TopK;
use dwr_text::TermId;

/// One merged result: global doc id + score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MergedHit {
    /// Global document id.
    pub doc: u32,
    /// Score under the broker's statistics regime.
    pub score: f32,
}

/// Cost accounting of a broker round trip.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProtocolCost {
    /// Protocol rounds used (1 = local stats, 2 = global stats).
    pub rounds: u32,
    /// Total bytes moved between broker and partitions.
    pub bytes: u64,
    /// Simulated wall-clock latency of the exchange (max over parallel
    /// partition round-trips, summed over rounds).
    pub latency: SimTime,
}

fn merge_hits(
    pi: &PartitionedIndex,
    per_part: Vec<(usize, Vec<SearchHit>)>,
    k: usize,
) -> Vec<MergedHit> {
    let mut top = TopK::new(k.max(1));
    for (p, hits) in per_part {
        for h in hits {
            top.push(pi.to_global(p, h.doc), h.score);
        }
    }
    top.into_sorted_vec().into_iter().map(|(doc, score)| MergedHit { doc, score }).collect()
}

const QUERY_BYTES: u64 = 64;
const HIT_BYTES: u64 = 12;

/// One-round evaluation: every partition scores with its own *local*
/// statistics; the broker merges blindly.
pub fn query_local_stats(
    pi: &PartitionedIndex,
    terms: &[TermId],
    k: usize,
    topo: &Topology,
    broker: SiteId,
    part_site: &dyn Fn(usize) -> SiteId,
) -> (Vec<MergedHit>, ProtocolCost) {
    let bm = Bm25::default();
    let mut per_part = Vec::with_capacity(pi.num_partitions());
    let mut bytes = 0u64;
    let mut latency: SimTime = 0;
    for p in 0..pi.num_partitions() {
        let idx = pi.part(p);
        let hits = search_or(idx, terms, k, &bm, idx);
        bytes += QUERY_BYTES + hits.len() as u64 * HIT_BYTES;
        let rtt = topo.rtt(broker, part_site(p), QUERY_BYTES, hits.len() as u64 * HIT_BYTES);
        latency = latency.max(rtt);
        per_part.push((p, hits));
    }
    (merge_hits(pi, per_part, k), ProtocolCost { rounds: 1, bytes, latency })
}

/// Two-round evaluation: round 1 collects per-term df from every
/// partition; round 2 ships the query again with the aggregated *global*
/// statistics piggybacked, and partitions score with those.
pub fn query_global_stats(
    pi: &PartitionedIndex,
    terms: &[TermId],
    k: usize,
    topo: &Topology,
    broker: SiteId,
    part_site: &dyn Fn(usize) -> SiteId,
) -> (Vec<MergedHit>, ProtocolCost) {
    let bm = Bm25::default();
    let parts: Vec<&dwr_text::index::InvertedIndex> =
        (0..pi.num_partitions()).map(|p| pi.part(p)).collect();
    let global = GlobalStats::for_terms(&parts, terms);

    // Round 1: stats request/response per partition.
    let stats_bytes = global.payload_bytes();
    let mut bytes = 0u64;
    let mut lat1: SimTime = 0;
    for p in 0..pi.num_partitions() {
        let resp = 8 + terms.len() as u64 * 12;
        bytes += QUERY_BYTES + resp;
        lat1 = lat1.max(topo.rtt(broker, part_site(p), QUERY_BYTES, resp));
    }

    // Round 2: query + piggybacked globals, results back.
    let mut per_part = Vec::with_capacity(pi.num_partitions());
    let mut lat2: SimTime = 0;
    for p in 0..pi.num_partitions() {
        let idx = pi.part(p);
        let hits = search_or(idx, terms, k, &bm, &global);
        bytes += QUERY_BYTES + stats_bytes + hits.len() as u64 * HIT_BYTES;
        let rtt = topo.rtt(
            broker,
            part_site(p),
            QUERY_BYTES + stats_bytes,
            hits.len() as u64 * HIT_BYTES,
        );
        lat2 = lat2.max(rtt);
        per_part.push((p, hits));
    }
    (merge_hits(pi, per_part, k), ProtocolCost { rounds: 2, bytes, latency: lat1 + lat2 })
}

/// Overlap@k between two result lists: |intersection| / k — the paper's
/// suggested way "to measure this effect [of local statistics]:
/// comparing the result set computed on the global statistics with the
/// result set computed using only local statistics".
pub fn result_overlap(a: &[MergedHit], b: &[MergedHit], k: usize) -> f64 {
    if k == 0 {
        return 1.0;
    }
    let sa: std::collections::HashSet<u32> = a.iter().take(k).map(|h| h.doc).collect();
    let inter = b.iter().take(k).filter(|h| sa.contains(&h.doc)).count();
    inter as f64 / k.min(a.len().max(b.len()).max(1)) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parted::Corpus;

    /// A corpus where term 7's df is wildly skewed across partitions, so
    /// local IDF differs strongly from global IDF.
    fn skewed() -> (Corpus, PartitionedIndex) {
        let mut corpus: Corpus = Vec::new();
        // Partition 0 (docs 0..10): term 7 rare (1 doc), term 8 common.
        for d in 0..10u32 {
            if d == 0 {
                corpus.push(vec![(TermId(7), 1), (TermId(8), 1)]);
            } else {
                corpus.push(vec![(TermId(8), 2), (TermId(9), 1)]);
            }
        }
        // Partition 1 (docs 10..20): term 7 everywhere.
        for _ in 10..20u32 {
            corpus.push(vec![(TermId(7), 2), (TermId(9), 1)]);
        }
        let assignment: Vec<u32> = (0..20).map(|d| u32::from(d >= 10)).collect();
        let pi = PartitionedIndex::build(&corpus, &assignment, 2);
        (corpus, pi)
    }

    fn site0(_: usize) -> SiteId {
        SiteId(0)
    }

    #[test]
    fn two_rounds_cost_more() {
        let (_, pi) = skewed();
        let topo = Topology::single_site();
        let terms = [TermId(7), TermId(8)];
        let (_, c1) = query_local_stats(&pi, &terms, 10, &topo, SiteId(0), &site0);
        let (_, c2) = query_global_stats(&pi, &terms, 10, &topo, SiteId(0), &site0);
        assert_eq!(c1.rounds, 1);
        assert_eq!(c2.rounds, 2);
        assert!(c2.bytes > c1.bytes);
        assert!(c2.latency > c1.latency);
    }

    #[test]
    fn rankings_diverge_under_skewed_statistics() {
        let (_, pi) = skewed();
        let topo = Topology::single_site();
        let terms = [TermId(7), TermId(8)];
        let (local, _) = query_local_stats(&pi, &terms, 10, &topo, SiteId(0), &site0);
        let (global, _) = query_global_stats(&pi, &terms, 10, &topo, SiteId(0), &site0);
        let overlap = result_overlap(&local, &global, 5);
        assert!(overlap < 1.0, "expected divergence, overlap={overlap}");
    }

    #[test]
    fn global_matches_monolithic_ranking() {
        // The whole point of the second round: scoring with global stats
        // reproduces the single-index ranking.
        let (corpus, pi) = skewed();
        let topo = Topology::single_site();
        let terms = [TermId(7), TermId(8)];
        let (global, _) = query_global_stats(&pi, &terms, 10, &topo, SiteId(0), &site0);
        let mono = crate::quality::global_top_k(&corpus, &terms, 10);
        let got: Vec<u32> = global.iter().map(|h| h.doc).collect();
        assert_eq!(got, mono);
    }

    #[test]
    fn overlap_bounds() {
        let a = vec![MergedHit { doc: 1, score: 1.0 }, MergedHit { doc: 2, score: 0.5 }];
        let b = vec![MergedHit { doc: 2, score: 1.0 }, MergedHit { doc: 3, score: 0.5 }];
        let o = result_overlap(&a, &b, 2);
        assert!((o - 0.5).abs() < 1e-12);
        assert_eq!(result_overlap(&a, &a, 2), 1.0);
        assert_eq!(result_overlap(&a, &b, 0), 1.0);
    }

    #[test]
    fn wan_latency_dominates_lan() {
        let (_, pi) = skewed();
        let terms = [TermId(7)];
        let lan = Topology::single_site();
        let wan = Topology::geo_ring(3);
        let far = |p: usize| SiteId((p % 2 + 1) as u32);
        let (_, c_lan) = query_local_stats(&pi, &terms, 10, &lan, SiteId(0), &site0);
        let (_, c_wan) = query_local_stats(&pi, &terms, 10, &wan, SiteId(0), &far);
        assert!(c_wan.latency > 10 * c_lan.latency);
    }
}
