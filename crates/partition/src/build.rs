//! Distributed index construction strategies with cost accounting.
//!
//! "A possible approach to create an index in a distributed fashion is to
//! organize the servers in a pipeline \[25\]. Alternatively, Dean et al.
//! \[26\] propose a traditional parallel computing paradigm (map-reduce)"
//! (Section 4). All strategies produce the *same* partitioned index (the
//! tests assert it); what differs — and what this module accounts for — is
//! the wall-clock and network cost of getting there.

use crate::parted::{Corpus, PartitionedIndex};
use dwr_sim::net::Link;
use dwr_sim::SimTime;

/// How the distributed build is organized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildStrategy {
    /// Each indexing node builds the index of its own document chunk
    /// locally; no shuffle (document partitioning's natural build).
    Local,
    /// Nodes are a pipeline: node `i` indexes its chunk, then streams its
    /// partial index to node `i+1`, which merges and forwards \[25\].
    Pipelined,
    /// Map-reduce \[26\]: mappers emit postings for every document, a
    /// shuffle routes them by term to reducers, reducers build final
    /// posting lists. All postings cross the network once.
    MapReduce,
}

/// Cost report of a distributed build.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BuildReport {
    /// Strategy used.
    pub strategy: BuildStrategy,
    /// Simulated wall-clock time.
    pub wall_time: SimTime,
    /// Bytes moved between nodes.
    pub network_bytes: u64,
}

/// CPU cost model: microseconds to index one token locally.
const US_PER_TOKEN: f64 = 2.0;
/// Bytes per posting on the wire (doc id + tf, uncompressed shuffle).
const BYTES_PER_POSTING: u64 = 8;

fn chunk_tokens(corpus: &Corpus, assignment: &[u32], k: usize) -> Vec<u64> {
    let mut tokens = vec![0u64; k];
    for (d, doc) in corpus.iter().enumerate() {
        let t: u64 = doc.iter().map(|&(_, tf)| u64::from(tf)).sum();
        tokens[assignment[d] as usize] += t;
    }
    tokens
}

fn chunk_postings(corpus: &Corpus, assignment: &[u32], k: usize) -> Vec<u64> {
    let mut postings = vec![0u64; k];
    for (d, doc) in corpus.iter().enumerate() {
        postings[assignment[d] as usize] += doc.len() as u64;
    }
    postings
}

/// Run a distributed build: returns the identical [`PartitionedIndex`]
/// regardless of strategy, plus its cost report.
pub fn distributed_build(
    corpus: &Corpus,
    assignment: &[u32],
    k: usize,
    strategy: BuildStrategy,
    link: Link,
) -> (PartitionedIndex, BuildReport) {
    let pi = PartitionedIndex::build(corpus, assignment, k);
    let tokens = chunk_tokens(corpus, assignment, k);
    let postings = chunk_postings(corpus, assignment, k);
    let index_time = |toks: u64| -> SimTime { (toks as f64 * US_PER_TOKEN) as SimTime };

    let report = match strategy {
        BuildStrategy::Local => {
            // Parallel local builds; wall time = slowest node; no traffic.
            let wall = tokens.iter().map(|&t| index_time(t)).max().unwrap_or(0);
            BuildReport { strategy, wall_time: wall, network_bytes: 0 }
        }
        BuildStrategy::Pipelined => {
            // Node i indexes, then ships its *accumulated* partial index
            // down the pipe. Stage i transfer carries the sum of postings
            // of nodes 0..=i.
            let mut wall: SimTime = 0;
            let mut accumulated: u64 = 0;
            let mut bytes = 0u64;
            for i in 0..k {
                let build = index_time(tokens[i]);
                accumulated += postings[i] * BYTES_PER_POSTING;
                let transfer = if i + 1 < k { link.transfer_time(accumulated) } else { 0 };
                if i + 1 < k {
                    bytes += accumulated;
                }
                wall += build.max(transfer);
            }
            BuildReport { strategy, wall_time: wall, network_bytes: bytes }
        }
        BuildStrategy::MapReduce => {
            // Map phase: parallel, wall = slowest mapper (tokenize ≈ index
            // cost). Shuffle: every posting crosses the wire once, all
            // nodes in parallel (bottleneck = busiest node's traffic).
            // Reduce: parallel merge ≈ half the indexing cost.
            let map = tokens.iter().map(|&t| index_time(t)).max().unwrap_or(0);
            let total_postings: u64 = postings.iter().sum();
            let per_node = total_postings * BYTES_PER_POSTING / k.max(1) as u64;
            let shuffle = link.transfer_time(per_node);
            let reduce = tokens.iter().map(|&t| index_time(t) / 2).max().unwrap_or(0);
            BuildReport {
                strategy,
                wall_time: map + shuffle + reduce,
                network_bytes: total_postings * BYTES_PER_POSTING,
            }
        }
    };
    (pi, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwr_text::TermId;

    fn corpus() -> Corpus {
        (0..40).map(|d| vec![(TermId(d % 7), 1 + d % 3), (TermId(100 + d % 5), 1)]).collect()
    }

    fn rr(n: usize, k: usize) -> Vec<u32> {
        (0..n).map(|d| (d % k) as u32).collect()
    }

    #[test]
    fn all_strategies_build_identical_indexes() {
        let c = corpus();
        let a = rr(c.len(), 4);
        let (local, _) = distributed_build(&c, &a, 4, BuildStrategy::Local, Link::lan());
        let (pipe, _) = distributed_build(&c, &a, 4, BuildStrategy::Pipelined, Link::lan());
        let (mr, _) = distributed_build(&c, &a, 4, BuildStrategy::MapReduce, Link::lan());
        for p in 0..4 {
            assert_eq!(local.part(p).num_docs(), pipe.part(p).num_docs());
            assert_eq!(local.part(p).num_docs(), mr.part(p).num_docs());
            assert_eq!(local.part(p).num_terms(), mr.part(p).num_terms());
        }
    }

    #[test]
    fn local_build_moves_no_bytes() {
        let c = corpus();
        let a = rr(c.len(), 4);
        let (_, r) = distributed_build(&c, &a, 4, BuildStrategy::Local, Link::lan());
        assert_eq!(r.network_bytes, 0);
        assert!(r.wall_time > 0);
    }

    #[test]
    fn mapreduce_ships_every_posting() {
        let c = corpus();
        let total_postings: u64 = c.iter().map(|d| d.len() as u64).sum();
        let a = rr(c.len(), 4);
        let (_, r) = distributed_build(&c, &a, 4, BuildStrategy::MapReduce, Link::lan());
        assert_eq!(r.network_bytes, total_postings * BYTES_PER_POSTING);
    }

    #[test]
    fn pipeline_slower_than_local() {
        let c = corpus();
        let a = rr(c.len(), 4);
        let (_, local) = distributed_build(&c, &a, 4, BuildStrategy::Local, Link::wan());
        let (_, pipe) = distributed_build(&c, &a, 4, BuildStrategy::Pipelined, Link::wan());
        assert!(pipe.wall_time > local.wall_time);
        assert!(pipe.network_bytes > 0);
    }

    #[test]
    fn slow_links_hurt_shuffle_heavy_strategies_more() {
        let c = corpus();
        let a = rr(c.len(), 4);
        let slow = Link { latency_us: 50_000, bandwidth_bps: 1_000_000, jitter: 0.0 };
        let (_, mr_lan) = distributed_build(&c, &a, 4, BuildStrategy::MapReduce, Link::lan());
        let (_, mr_slow) = distributed_build(&c, &a, 4, BuildStrategy::MapReduce, slow);
        let (_, local_lan) = distributed_build(&c, &a, 4, BuildStrategy::Local, Link::lan());
        let (_, local_slow) = distributed_build(&c, &a, 4, BuildStrategy::Local, slow);
        assert_eq!(local_lan.wall_time, local_slow.wall_time, "local is link-independent");
        assert!(mr_slow.wall_time > mr_lan.wall_time);
    }

    #[test]
    fn skewed_assignment_stretches_local_build() {
        let c = corpus();
        let balanced = rr(c.len(), 4);
        let skewed: Vec<u32> = (0..c.len()).map(|d| u32::from(d >= c.len() - 4)).collect();
        let (_, b) = distributed_build(&c, &balanced, 4, BuildStrategy::Local, Link::lan());
        let (_, s) = distributed_build(&c, &skewed, 4, BuildStrategy::Local, Link::lan());
        assert!(
            s.wall_time > b.wall_time,
            "stragglers dominate: {} vs {}",
            s.wall_time,
            b.wall_time
        );
    }
}
