//! Partition and selection quality metrics.
//!
//! The measurements Section 4 leaves open: how balanced is a partitioning,
//! and — the crux of collection selection — how much of the *true* global
//! top-k can be recovered when only the best `m` partitions are searched
//! ("the chosen subset should be able to provide a high number of relevant
//! documents").

use crate::parted::{Corpus, PartitionedIndex};
use crate::select::CollectionSelector;
use dwr_sim::stats::Imbalance;
use dwr_text::index::build_index;
use dwr_text::score::Bm25;
use dwr_text::search::search_or;
use dwr_text::TermId;

/// Balance of document counts across partitions.
pub fn size_balance(pi: &PartitionedIndex) -> Imbalance {
    let sizes: Vec<f64> = pi.sizes().iter().map(|&s| s as f64).collect();
    Imbalance::of(&sizes)
}

/// The global reference ranking: top-k of the whole corpus in one index.
/// Returns global doc ids.
pub fn global_top_k(corpus: &Corpus, terms: &[TermId], k: usize) -> Vec<u32> {
    let idx = build_index(corpus);
    search_or(&idx, terms, k, &Bm25::default(), &idx).into_iter().map(|h| h.doc.0).collect()
}

/// Recall@m-partitions of one query: the fraction of the global top-k that
/// lives in the `m` partitions a selector ranks first.
pub fn recall_at_partitions(
    pi: &PartitionedIndex,
    selector: &dyn CollectionSelector,
    terms: &[TermId],
    global_topk: &[u32],
    m: usize,
) -> f64 {
    if global_topk.is_empty() {
        return 1.0;
    }
    let chosen: Vec<u32> = selector.rank(terms).into_iter().take(m).map(|(p, _)| p).collect();
    let hit = global_topk.iter().filter(|&&d| chosen.contains(&pi.partition_of(d))).count();
    hit as f64 / global_topk.len() as f64
}

/// The whole recall curve for a batch of test queries: element `m-1` is
/// the mean recall when searching the top `m` partitions.
pub fn recall_curve(
    pi: &PartitionedIndex,
    selector: &dyn CollectionSelector,
    corpus: &Corpus,
    queries: &[Vec<TermId>],
    k: usize,
) -> Vec<f64> {
    let nparts = pi.num_partitions();
    let mut acc = vec![0f64; nparts];
    let mut counted = 0usize;
    let reference = build_index(corpus);
    for terms in queries {
        let topk: Vec<u32> = search_or(&reference, terms, k, &Bm25::default(), &reference)
            .into_iter()
            .map(|h| h.doc.0)
            .collect();
        if topk.is_empty() {
            continue;
        }
        counted += 1;
        let ranked = selector.rank(terms);
        let mut seen_parts: Vec<u32> = Vec::with_capacity(nparts);
        for (m, &(p, _)) in ranked.iter().enumerate() {
            seen_parts.push(p);
            let hit = topk.iter().filter(|&&d| seen_parts.contains(&pi.partition_of(d))).count();
            acc[m] += hit as f64 / topk.len() as f64;
        }
    }
    if counted == 0 {
        return vec![0.0; nparts];
    }
    acc.into_iter().map(|a| a / counted as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::CoriSelector;

    fn topical_setup() -> (Corpus, PartitionedIndex) {
        let corpus: Corpus = (0..30)
            .map(|d| {
                let base = (d % 3) as u32 * 100;
                vec![(TermId(base + d as u32 % 5), 2), (TermId(base + (d as u32 + 1) % 5), 1)]
            })
            .collect();
        let assignment: Vec<u32> = (0..30).map(|d| (d % 3) as u32).collect();
        let pi = PartitionedIndex::build(&corpus, &assignment, 3);
        (corpus, pi)
    }

    #[test]
    fn size_balance_of_even_partitioning() {
        let (_, pi) = topical_setup();
        let b = size_balance(&pi);
        assert!((b.max_over_mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn global_topk_nonempty_for_present_terms() {
        let (corpus, _) = topical_setup();
        let topk = global_top_k(&corpus, &[TermId(1)], 5);
        assert!(!topk.is_empty());
        assert!(topk.len() <= 5);
    }

    #[test]
    fn perfect_selector_reaches_full_recall_at_one_partition() {
        let (corpus, pi) = topical_setup();
        let cori = CoriSelector::from_partitions(&pi);
        // Terms of topic block 0 only occur in partition 0's docs.
        let topk = global_top_k(&corpus, &[TermId(1), TermId(2)], 5);
        let r1 = recall_at_partitions(&pi, &cori, &[TermId(1), TermId(2)], &topk, 1);
        assert!((r1 - 1.0).abs() < 1e-12, "r1={r1}");
    }

    #[test]
    fn recall_curve_monotone_and_complete() {
        let (corpus, pi) = topical_setup();
        let cori = CoriSelector::from_partitions(&pi);
        let queries: Vec<Vec<TermId>> =
            vec![vec![TermId(1)], vec![TermId(101)], vec![TermId(201), TermId(202)]];
        let curve = recall_curve(&pi, &cori, &corpus, &queries, 5);
        assert_eq!(curve.len(), 3);
        assert!(curve.windows(2).all(|w| w[0] <= w[1] + 1e-12), "{curve:?}");
        assert!((curve[2] - 1.0).abs() < 1e-12, "all partitions = full recall");
    }

    #[test]
    fn empty_topk_counts_as_full_recall() {
        let (_, pi) = topical_setup();
        let cori = CoriSelector::from_partitions(&pi);
        assert_eq!(recall_at_partitions(&pi, &cori, &[TermId(1)], &[], 1), 1.0);
    }
}
