//! # dwr-partition — distributed indexing (Section 4)
//!
//! "According to the way servers partition the T×D matrix, we can have two
//! different types of distributed indexes": **document partitioning**
//! (horizontal) and **term partitioning** (vertical) — Figure 1 of the
//! paper. This crate implements both families plus everything Section 4
//! hangs off them:
//!
//! * [`doc`] — document partitioners: random, round-robin, topical k-means
//!   \[17, 18\], and query-driven co-clustering à la Puppin et al. \[19\]
//!   (including the "53% of documents are never recalled by any query"
//!   observation);
//! * [`term`] — term partitioners: random, query-weighted bin-packing à la
//!   Moffat et al. \[21\], and co-occurrence-aware packing à la Lucchese et
//!   al. \[22\];
//! * [`select`] — collection selection: CORI \[24\] and the query-driven
//!   selector, both behind one trait so E6 can compare them;
//! * [`parted`] — the partitioned index structure shared with the query
//!   crate (global↔local doc-id mapping, per-partition `InvertedIndex`);
//! * [`build`] — distributed index construction strategies (local,
//!   pipelined \[25\], map-reduce-like \[26\]) with communication cost
//!   accounting;
//! * [`stats`] — the two-round global-statistics broker protocol
//!   (Section 4, external factors);
//! * [`quality`] — partition quality metrics: balance, recall@partitions,
//!   never-recalled fraction;
//! * [`repart`] — online repartitioning: the epoch-stamped
//!   [`repart::PartitionMap`], crash-safe [`repart::RepartIndex`] splits
//!   published by one atomic swap (pippin discipline: subdivide, never
//!   mutate), corpus-wide split-invariant [`repart::CorpusStats`], and
//!   label-forked [`repart::SplitSchedule`]s for deterministic split
//!   storms under live traffic.

pub mod build;
pub mod doc;
pub mod parted;
pub mod quality;
pub mod repart;
pub mod select;
pub mod stats;
pub mod term;

pub use doc::DocPartitioner;
pub use parted::{corpus_from_web, Corpus, PartitionedIndex};
pub use repart::{CorpusStats, RepartIndex, SplitFate, SplitSchedule};
pub use select::CollectionSelector;
pub use term::TermPartitioner;
