//! The partitioned-index structure and corpus plumbing.
//!
//! A [`PartitionedIndex`] is the realization of Figure 1: the corpus's
//! T×D matrix sliced horizontally into `k` sub-collections, each with its
//! own [`InvertedIndex`] over local doc ids, plus the global↔local id
//! mapping brokers need to merge results.
//!
//! # Ownership model
//!
//! Each partition is an [`IndexShard`] behind an `Arc`, so query
//! processors on different threads hold their shard independently — no
//! lifetime ties the serving path to the structure that built the index.
//! The [`PartitionedIndex`] itself is a cheap, `Clone`-able view (a
//! vector of `Arc` shards plus `Arc`-shared id maps); cloning it costs
//! `k + 2` reference-count bumps, never a postings copy. Everything is
//! immutable after `build`, hence `Send + Sync` for free.

use dwr_text::index::{build_index, InvertedIndex};
use dwr_text::{DocId, TermId};
use dwr_webgraph::content::ContentModel;
use dwr_webgraph::SyntheticWeb;
use std::sync::Arc;

/// A corpus: per-document sorted `(term, tf)` vectors, indexed by global
/// document id (= page id in web-derived corpora).
pub type Corpus = Vec<Vec<(TermId, u32)>>;

/// Generate the corpus of a synthetic web in `dwr-text` term space.
pub fn corpus_from_web(web: &SyntheticWeb, content: &ContentModel, seed: u64) -> Corpus {
    content
        .corpus(web, seed)
        .into_iter()
        .map(|doc| doc.into_iter().map(|(t, tf)| (TermId(t.0), tf)).collect())
        .collect()
}

/// One self-contained partition: its inverted index over local doc ids
/// plus the local→global id map a merger needs.
///
/// A shard is immutable after build and always held behind an `Arc`, so
/// any number of query-processor threads can evaluate against it
/// concurrently without locks.
#[derive(Debug)]
pub struct IndexShard {
    index: InvertedIndex,
    /// `global_of[local_doc]` = global doc id.
    global_of: Vec<u32>,
}

impl IndexShard {
    /// The shard's inverted index (local doc-id space).
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// Documents in the shard.
    pub fn num_docs(&self) -> usize {
        self.global_of.len()
    }

    /// Translate a shard-local doc id to the global doc id.
    pub fn to_global(&self, local: DocId) -> u32 {
        self.global_of[local.0 as usize]
    }
}

/// A document-partitioned index: `Arc`-owned shards plus shared id maps.
#[derive(Debug, Clone)]
pub struct PartitionedIndex {
    shards: Vec<Arc<IndexShard>>,
    /// `assignment[global_doc]` = partition.
    assignment: Arc<[u32]>,
    /// `local_of[global_doc]` = doc id within its partition.
    local_of: Arc<[DocId]>,
}

impl PartitionedIndex {
    /// Build `k` partition indexes from a corpus and an assignment vector.
    ///
    /// # Panics
    /// Panics if `assignment.len() != corpus.len()` or any partition id is
    /// `>= k`.
    pub fn build(corpus: &Corpus, assignment: &[u32], k: usize) -> Self {
        assert_eq!(corpus.len(), assignment.len(), "assignment arity mismatch");
        assert!(k > 0);
        assert!(assignment.iter().all(|&p| (p as usize) < k), "partition id out of range");
        let mut global_of: Vec<Vec<u32>> = vec![Vec::new(); k];
        let mut local_of = vec![DocId(0); corpus.len()];
        for (doc, &p) in assignment.iter().enumerate() {
            local_of[doc] = DocId(global_of[p as usize].len() as u32);
            global_of[p as usize].push(doc as u32);
        }
        let shards: Vec<Arc<IndexShard>> = global_of
            .into_iter()
            .map(|globals| {
                let sub: Corpus = globals.iter().map(|&g| corpus[g as usize].clone()).collect();
                Arc::new(IndexShard { index: build_index(&sub), global_of: globals })
            })
            .collect();
        PartitionedIndex { shards, assignment: assignment.into(), local_of: local_of.into() }
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.shards.len()
    }

    /// Total documents across partitions.
    pub fn num_docs(&self) -> usize {
        self.assignment.len()
    }

    /// The index of one partition.
    pub fn part(&self, p: usize) -> &InvertedIndex {
        &self.shards[p].index
    }

    /// Shared ownership of one partition's shard: the handle a
    /// query-processor thread holds while evaluating.
    pub fn shard(&self, p: usize) -> Arc<IndexShard> {
        Arc::clone(&self.shards[p])
    }

    /// All shards, in partition order.
    pub fn shards(&self) -> &[Arc<IndexShard>] {
        &self.shards
    }

    /// Partition of a global document.
    pub fn partition_of(&self, global_doc: u32) -> u32 {
        self.assignment[global_doc as usize]
    }

    /// Translate a partition-local hit to the global doc id.
    pub fn to_global(&self, partition: usize, local: DocId) -> u32 {
        self.shards[partition].to_global(local)
    }

    /// Translate a global doc to its partition-local id.
    pub fn to_local(&self, global_doc: u32) -> (u32, DocId) {
        (self.assignment[global_doc as usize], self.local_of[global_doc as usize])
    }

    /// Documents per partition.
    pub fn sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.num_docs()).collect()
    }

    /// Sum of posting-list df of `term` over all partitions (= global df).
    pub fn global_df(&self, term: TermId) -> u64 {
        self.shards.iter().map(|s| u64::from(s.index.df(term))).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Corpus {
        vec![
            vec![(TermId(1), 1)],
            vec![(TermId(1), 2), (TermId(2), 1)],
            vec![(TermId(3), 1)],
            vec![(TermId(2), 1), (TermId(3), 4)],
            vec![(TermId(1), 1), (TermId(3), 1)],
        ]
    }

    #[test]
    fn build_and_mappings_roundtrip() {
        let c = corpus();
        let assignment = vec![0, 1, 0, 1, 2];
        let pi = PartitionedIndex::build(&c, &assignment, 3);
        assert_eq!(pi.num_partitions(), 3);
        assert_eq!(pi.num_docs(), 5);
        assert_eq!(pi.sizes(), vec![2, 2, 1]);
        for g in 0..5u32 {
            let (p, local) = pi.to_local(g);
            assert_eq!(p, assignment[g as usize]);
            assert_eq!(pi.to_global(p as usize, local), g);
        }
    }

    #[test]
    fn partition_indexes_cover_their_docs() {
        let c = corpus();
        let pi = PartitionedIndex::build(&c, &[0, 0, 1, 1, 1], 2);
        assert_eq!(pi.part(0).num_docs(), 2);
        assert_eq!(pi.part(1).num_docs(), 3);
        // Term 1 appears in docs 0, 1 (part 0) and 4 (part 1).
        assert_eq!(pi.part(0).df(TermId(1)), 2);
        assert_eq!(pi.part(1).df(TermId(1)), 1);
        assert_eq!(pi.global_df(TermId(1)), 3);
    }

    #[test]
    fn empty_partition_allowed() {
        let c = corpus();
        let pi = PartitionedIndex::build(&c, &[0, 0, 0, 0, 0], 3);
        assert_eq!(pi.sizes(), vec![5, 0, 0]);
        assert_eq!(pi.part(1).num_docs(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_partition_id() {
        PartitionedIndex::build(&corpus(), &[0, 0, 0, 0, 9], 3);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn rejects_wrong_assignment_len() {
        PartitionedIndex::build(&corpus(), &[0, 0], 2);
    }
}
