//! The partitioned-index structure and corpus plumbing.
//!
//! A [`PartitionedIndex`] is the realization of Figure 1: the corpus's
//! T×D matrix sliced horizontally into `k` sub-collections, each with its
//! own [`InvertedIndex`] over local doc ids, plus the global↔local id
//! mapping brokers need to merge results.
//!
//! # Ownership model
//!
//! Each partition is an [`IndexShard`] behind an `Arc`, so query
//! processors on different threads hold their shard independently — no
//! lifetime ties the serving path to the structure that built the index.
//! The [`PartitionedIndex`] itself is a cheap, `Clone`-able view (a
//! vector of `Arc` shards plus `Arc`-shared id maps); cloning it costs
//! `k + 2` reference-count bumps, never a postings copy. Everything is
//! immutable after `build`, hence `Send + Sync` for free.

use crate::repart::{PartStatus, PartitionMap, SplitError, SPLIT_FANOUT};
use dwr_text::index::{build_index, InvertedIndex};
use dwr_text::{DocId, TermId};
use dwr_webgraph::content::ContentModel;
use dwr_webgraph::SyntheticWeb;
use std::fmt;
use std::sync::Arc;

/// A corpus: per-document sorted `(term, tf)` vectors, indexed by global
/// document id (= page id in web-derived corpora).
pub type Corpus = Vec<Vec<(TermId, u32)>>;

/// Generate the corpus of a synthetic web in `dwr-text` term space.
pub fn corpus_from_web(web: &SyntheticWeb, content: &ContentModel, seed: u64) -> Corpus {
    content
        .corpus(web, seed)
        .into_iter()
        .map(|doc| doc.into_iter().map(|(t, tf)| (TermId(t.0), tf)).collect())
        .collect()
}

/// One self-contained partition: its inverted index over local doc ids
/// plus the local→global id map a merger needs.
///
/// A shard is immutable after build and always held behind an `Arc`, so
/// any number of query-processor threads can evaluate against it
/// concurrently without locks.
#[derive(Debug)]
pub struct IndexShard {
    index: InvertedIndex,
    /// `global_of[local_doc]` = global doc id.
    global_of: Vec<u32>,
}

impl IndexShard {
    /// The shard's inverted index (local doc-id space).
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// Documents in the shard.
    pub fn num_docs(&self) -> usize {
        self.global_of.len()
    }

    /// Translate a shard-local doc id to the global doc id.
    pub fn to_global(&self, local: DocId) -> u32 {
        self.global_of[local.0 as usize]
    }
}

/// Why [`PartitionedIndex::try_build`] refused its inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildError {
    /// `assignment.len() != corpus.len()`.
    ArityMismatch {
        /// Documents in the corpus.
        docs: usize,
        /// Entries in the assignment vector.
        assignments: usize,
    },
    /// `k == 0`: a zero-partition index cannot hold any document and
    /// breaks downstream per-partition accounting.
    ZeroPartitions,
    /// A document was assigned to a partition `>= k`.
    PartOutOfRange {
        /// The offending document.
        doc: usize,
        /// Its assigned partition.
        part: u32,
        /// The partition count.
        k: usize,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::ArityMismatch { docs, assignments } => {
                write!(f, "assignment arity mismatch: {docs} docs, {assignments} assignments")
            }
            BuildError::ZeroPartitions => write!(f, "cannot build a zero-partition index"),
            BuildError::PartOutOfRange { doc, part, k } => {
                write!(f, "partition id out of range: doc {doc} assigned to {part} with k={k}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// A document-partitioned index: `Arc`-owned shards plus shared id maps
/// and the epoch-stamped [`PartitionMap`] describing which shard slots
/// are active.
///
/// Fresh builds are epoch 0 with every partition active;
/// [`Self::with_split`] derives the next epoch. Closed slots keep their
/// shards (stale readers may still hold them) but are excluded from
/// [`Self::active_parts`], which is the set brokers scatter over.
#[derive(Debug, Clone)]
pub struct PartitionedIndex {
    shards: Vec<Arc<IndexShard>>,
    /// `assignment[global_doc]` = partition (always an *active* one).
    assignment: Arc<[u32]>,
    /// `local_of[global_doc]` = doc id within its partition.
    local_of: Arc<[DocId]>,
    /// Epoch-stamped lifecycle metadata, one entry per shard slot.
    map: Arc<PartitionMap>,
}

impl PartitionedIndex {
    /// Build `k` partition indexes from a corpus and an assignment vector.
    ///
    /// # Panics
    /// Panics if `assignment.len() != corpus.len()`, `k == 0`, or any
    /// partition id is `>= k`. Use [`Self::try_build`] for a
    /// non-panicking variant.
    pub fn build(corpus: &Corpus, assignment: &[u32], k: usize) -> Self {
        match Self::try_build(corpus, assignment, k) {
            Ok(pi) => pi,
            Err(e) => panic!("{e}"),
        }
    }

    /// As [`Self::build`], returning degenerate inputs as a
    /// [`BuildError`] instead of panicking. `k` larger than the corpus
    /// is fine (trailing partitions are empty); an empty corpus with
    /// `k >= 1` is fine (every partition is empty).
    pub fn try_build(corpus: &Corpus, assignment: &[u32], k: usize) -> Result<Self, BuildError> {
        if corpus.len() != assignment.len() {
            return Err(BuildError::ArityMismatch {
                docs: corpus.len(),
                assignments: assignment.len(),
            });
        }
        if k == 0 {
            return Err(BuildError::ZeroPartitions);
        }
        if let Some((doc, &part)) = assignment.iter().enumerate().find(|&(_, &p)| (p as usize) >= k)
        {
            return Err(BuildError::PartOutOfRange { doc, part, k });
        }
        let mut global_of: Vec<Vec<u32>> = vec![Vec::new(); k];
        let mut local_of = vec![DocId(0); corpus.len()];
        for (doc, &p) in assignment.iter().enumerate() {
            local_of[doc] = DocId(global_of[p as usize].len() as u32);
            global_of[p as usize].push(doc as u32);
        }
        let shards: Vec<Arc<IndexShard>> = global_of
            .into_iter()
            .map(|globals| {
                let sub: Corpus = globals.iter().map(|&g| corpus[g as usize].clone()).collect();
                Arc::new(IndexShard { index: build_index(&sub), global_of: globals })
            })
            .collect();
        let sizes: Vec<usize> = shards.iter().map(|s| s.num_docs()).collect();
        Ok(PartitionedIndex {
            shards,
            assignment: assignment.into(),
            local_of: local_of.into(),
            map: Arc::new(PartitionMap::initial(&sizes)),
        })
    }

    /// Derive the next-epoch index: `parent` closed, its documents
    /// subdivided into [`SPLIT_FANOUT`] fresh child shards appended at
    /// the end. `self` is untouched (pippin rule: subdivide, never
    /// mutate) — stale readers keep a consistent epoch.
    ///
    /// The parent's documents interleave round-robin over the children
    /// in local order, so each child inherits the parent's topical mix
    /// and sizes differ by at most one document.
    ///
    /// `corpus` must be the corpus this index was built from.
    pub fn with_split(&self, corpus: &Corpus, parent: u32) -> Result<Self, SplitError> {
        assert_eq!(corpus.len(), self.num_docs(), "corpus arity mismatch");
        let pu = parent as usize;
        if pu >= self.shards.len() {
            return Err(SplitError::OutOfRange(parent));
        }
        if !self.map.is_active(parent) {
            return Err(SplitError::NotActive(parent));
        }
        let parent_shard = &self.shards[pu];
        let n = parent_shard.num_docs();
        if n < SPLIT_FANOUT {
            return Err(SplitError::TooSmall { part: parent, docs: n });
        }
        let base = self.shards.len() as u32;
        let mut child_globals: Vec<Vec<u32>> =
            (0..SPLIT_FANOUT).map(|_| Vec::with_capacity(n / SPLIT_FANOUT + 1)).collect();
        for local in 0..n {
            child_globals[local % SPLIT_FANOUT].push(parent_shard.to_global(DocId(local as u32)));
        }
        let mut assignment: Vec<u32> = self.assignment.to_vec();
        let mut local_of: Vec<DocId> = self.local_of.to_vec();
        let mut shards = self.shards.clone();
        let mut child_sizes = Vec::with_capacity(SPLIT_FANOUT);
        for (c, globals) in child_globals.into_iter().enumerate() {
            let id = base + c as u32;
            for (local, &g) in globals.iter().enumerate() {
                assignment[g as usize] = id;
                local_of[g as usize] = DocId(local as u32);
            }
            child_sizes.push(globals.len());
            let sub: Corpus = globals.iter().map(|&g| corpus[g as usize].clone()).collect();
            shards.push(Arc::new(IndexShard { index: build_index(&sub), global_of: globals }));
        }
        Ok(PartitionedIndex {
            shards,
            assignment: assignment.into(),
            local_of: local_of.into(),
            map: Arc::new(self.map.with_split(parent, &child_sizes)),
        })
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.shards.len()
    }

    /// Total documents across partitions.
    pub fn num_docs(&self) -> usize {
        self.assignment.len()
    }

    /// The index of one partition.
    pub fn part(&self, p: usize) -> &InvertedIndex {
        &self.shards[p].index
    }

    /// Shared ownership of one partition's shard: the handle a
    /// query-processor thread holds while evaluating.
    pub fn shard(&self, p: usize) -> Arc<IndexShard> {
        Arc::clone(&self.shards[p])
    }

    /// All shards, in partition order.
    pub fn shards(&self) -> &[Arc<IndexShard>] {
        &self.shards
    }

    /// Partition of a global document.
    pub fn partition_of(&self, global_doc: u32) -> u32 {
        self.assignment[global_doc as usize]
    }

    /// Translate a partition-local hit to the global doc id.
    pub fn to_global(&self, partition: usize, local: DocId) -> u32 {
        self.shards[partition].to_global(local)
    }

    /// Translate a global doc to its partition-local id.
    pub fn to_local(&self, global_doc: u32) -> (u32, DocId) {
        (self.assignment[global_doc as usize], self.local_of[global_doc as usize])
    }

    /// Documents per partition.
    pub fn sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.num_docs()).collect()
    }

    /// Sum of posting-list df of `term` over all partitions (= global df).
    ///
    /// Closed parents and their active children would double-count, so
    /// the sum runs over active partitions only; on an epoch-0 index
    /// that is all of them.
    pub fn global_df(&self, term: TermId) -> u64 {
        self.active_parts()
            .into_iter()
            .map(|p| u64::from(self.shards[p as usize].index.df(term)))
            .sum()
    }

    /// The epoch-stamped partition lifecycle map.
    pub fn map(&self) -> &PartitionMap {
        &self.map
    }

    /// Map epoch: number of splits applied since the initial build.
    pub fn epoch(&self) -> u64 {
        self.map.epoch()
    }

    /// Active partition ids in ascending order — the set that exactly
    /// partitions the document space at this epoch, and therefore the
    /// set a broker must scatter over for exactly-once results.
    pub fn active_parts(&self) -> Vec<u32> {
        self.map.active()
    }

    /// Whether shard slot `p` exists and is active (out-of-range ids
    /// are inactive, not a panic).
    pub fn is_active(&self, p: u32) -> bool {
        self.map.is_active(p)
    }

    /// The global-doc → partition assignment vector.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Structural self-check of the exactly-once invariant: every
    /// document lives in exactly one *active* partition, id mappings
    /// round-trip, entry sizes match shards, and closed entries point
    /// at younger children that point back. `Err` carries the first
    /// violation found.
    pub fn validate_epoch(&self) -> Result<(), String> {
        let map = &self.map;
        if map.len() != self.shards.len() {
            return Err(format!(
                "map has {} entries, index {} shards",
                map.len(),
                self.shards.len()
            ));
        }
        if self.shards.is_empty() {
            return Err("zero-partition index".into());
        }
        let mut per_part = vec![0usize; self.shards.len()];
        for g in 0..self.num_docs() as u32 {
            let (p, local) = self.to_local(g);
            if !map.is_active(p) {
                return Err(format!("doc {g} assigned to non-active partition {p}"));
            }
            if self.shards[p as usize].to_global(local) != g {
                return Err(format!("doc {g} id mapping does not round-trip via partition {p}"));
            }
            per_part[p as usize] += 1;
        }
        for e in map.entries() {
            let shard_docs = self.shards[e.id as usize].num_docs();
            match &e.status {
                PartStatus::Active => {
                    if e.docs != shard_docs {
                        return Err(format!(
                            "active entry {} records {} docs, shard holds {shard_docs}",
                            e.id, e.docs
                        ));
                    }
                    if per_part[e.id as usize] != shard_docs {
                        return Err(format!(
                            "partition {}: {} docs assigned, shard holds {shard_docs}",
                            e.id, per_part[e.id as usize]
                        ));
                    }
                }
                PartStatus::Closed { children } => {
                    if children.len() != SPLIT_FANOUT {
                        return Err(format!(
                            "closed entry {} has {} children",
                            e.id,
                            children.len()
                        ));
                    }
                    for &c in children {
                        let child = map
                            .entry(c)
                            .ok_or_else(|| format!("entry {} names missing child {c}", e.id))?;
                        if child.parent != Some(e.id) {
                            return Err(format!(
                                "child {c} does not point back at parent {}",
                                e.id
                            ));
                        }
                        if child.epoch <= e.epoch {
                            return Err(format!(
                                "child {c} epoch {} not younger than parent epoch {}",
                                child.epoch, e.epoch
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Corpus {
        vec![
            vec![(TermId(1), 1)],
            vec![(TermId(1), 2), (TermId(2), 1)],
            vec![(TermId(3), 1)],
            vec![(TermId(2), 1), (TermId(3), 4)],
            vec![(TermId(1), 1), (TermId(3), 1)],
        ]
    }

    #[test]
    fn build_and_mappings_roundtrip() {
        let c = corpus();
        let assignment = vec![0, 1, 0, 1, 2];
        let pi = PartitionedIndex::build(&c, &assignment, 3);
        assert_eq!(pi.num_partitions(), 3);
        assert_eq!(pi.num_docs(), 5);
        assert_eq!(pi.sizes(), vec![2, 2, 1]);
        for g in 0..5u32 {
            let (p, local) = pi.to_local(g);
            assert_eq!(p, assignment[g as usize]);
            assert_eq!(pi.to_global(p as usize, local), g);
        }
    }

    #[test]
    fn partition_indexes_cover_their_docs() {
        let c = corpus();
        let pi = PartitionedIndex::build(&c, &[0, 0, 1, 1, 1], 2);
        assert_eq!(pi.part(0).num_docs(), 2);
        assert_eq!(pi.part(1).num_docs(), 3);
        // Term 1 appears in docs 0, 1 (part 0) and 4 (part 1).
        assert_eq!(pi.part(0).df(TermId(1)), 2);
        assert_eq!(pi.part(1).df(TermId(1)), 1);
        assert_eq!(pi.global_df(TermId(1)), 3);
    }

    #[test]
    fn empty_partition_allowed() {
        let c = corpus();
        let pi = PartitionedIndex::build(&c, &[0, 0, 0, 0, 0], 3);
        assert_eq!(pi.sizes(), vec![5, 0, 0]);
        assert_eq!(pi.part(1).num_docs(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_partition_id() {
        PartitionedIndex::build(&corpus(), &[0, 0, 0, 0, 9], 3);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn rejects_wrong_assignment_len() {
        PartitionedIndex::build(&corpus(), &[0, 0], 2);
    }

    #[test]
    fn try_build_reports_degenerate_inputs_gracefully() {
        let c = corpus();
        assert!(matches!(
            PartitionedIndex::try_build(&c, &[0, 0], 2),
            Err(BuildError::ArityMismatch { docs: 5, assignments: 2 })
        ));
        assert!(matches!(
            PartitionedIndex::try_build(&c, &[0; 5], 0),
            Err(BuildError::ZeroPartitions)
        ));
        assert!(matches!(
            PartitionedIndex::try_build(&c, &[0, 0, 0, 0, 9], 3),
            Err(BuildError::PartOutOfRange { doc: 4, part: 9, k: 3 })
        ));
        // k > #docs and an empty corpus are fine, not errors.
        let wide = PartitionedIndex::try_build(&c, &[0, 1, 2, 3, 4], 9).expect("k > docs ok");
        assert_eq!(wide.sizes().iter().sum::<usize>(), 5);
        let empty = PartitionedIndex::try_build(&Vec::new(), &[], 2).expect("empty corpus ok");
        assert_eq!(empty.num_docs(), 0);
        assert_eq!(empty.active_parts(), vec![0, 1]);
        empty.validate_epoch().expect("empty index valid");
    }

    #[test]
    fn fresh_build_is_epoch_zero_with_all_parts_active() {
        let pi = PartitionedIndex::build(&corpus(), &[0, 1, 0, 1, 2], 3);
        assert_eq!(pi.epoch(), 0);
        assert_eq!(pi.active_parts(), vec![0, 1, 2]);
        assert!(pi.is_active(2) && !pi.is_active(3));
        pi.validate_epoch().expect("fresh build valid");
    }

    #[test]
    fn with_split_subdivides_without_mutating_parent_epoch() {
        let c = corpus();
        let pi = PartitionedIndex::build(&c, &[0, 0, 0, 1, 1], 2);
        let next = pi.with_split(&c, 0).expect("split");
        assert_eq!(next.epoch(), 1);
        assert_eq!(next.num_partitions(), 4);
        assert_eq!(next.active_parts(), vec![1, 2, 3]);
        next.validate_epoch().expect("split valid");
        // Every doc reachable exactly once via active partitions, and
        // postings agree with the parent: same global df.
        assert_eq!(next.global_df(TermId(1)), pi.global_df(TermId(1)));
        // The parent index is untouched.
        assert_eq!(pi.epoch(), 0);
        assert_eq!(pi.active_parts(), vec![0, 1]);
        // A closed partition cannot be re-split.
        assert!(matches!(next.with_split(&c, 0), Err(SplitError::NotActive(0))));
    }
}
