//! Document partitioning strategies.
//!
//! "For document partitioned systems, there has not been much work on the
//! problem of assigning documents to partitions. The majority of the
//! proposed approaches in the literature adopt a simple approach, where
//! documents are randomly partitioned, and each query uses all the
//! servers" — random and round-robin are the baselines here. The
//! structured alternatives are k-means clustering by content \[17, 18\] and
//! Puppin et al.'s query-driven co-clustering \[19\], which "represent\[s\]
//! each document with all the queries that return that document as an
//! answer".

use crate::parted::Corpus;
use dwr_sim::SimRng;
use dwr_text::TermId;
use std::collections::HashMap;

/// A document partitioning strategy: maps every document to one of `k`
/// partitions.
pub trait DocPartitioner {
    /// Compute the assignment vector (`len == corpus.len()`, values `< k`).
    fn assign(&self, corpus: &Corpus, k: usize) -> Vec<u32>;
    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Uniform random assignment (the literature's default).
#[derive(Debug, Clone, Copy)]
pub struct RandomPartitioner {
    /// RNG seed.
    pub seed: u64,
}

impl DocPartitioner for RandomPartitioner {
    fn assign(&self, corpus: &Corpus, k: usize) -> Vec<u32> {
        assert!(k > 0);
        let mut rng = SimRng::new(self.seed).fork_named("random-part");
        (0..corpus.len()).map(|_| rng.below(k as u64) as u32).collect()
    }
    fn name(&self) -> &'static str {
        "random"
    }
}

/// Round-robin assignment: perfectly balanced by construction.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobinPartitioner;

impl DocPartitioner for RoundRobinPartitioner {
    fn assign(&self, corpus: &Corpus, k: usize) -> Vec<u32> {
        assert!(k > 0);
        (0..corpus.len()).map(|d| (d % k) as u32).collect()
    }
    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Content k-means: documents are embedded as term-block histograms
/// (buckets of contiguous term ids), normalized, and clustered by cosine
/// distance with deterministic seeding. Topically coherent corpora — where
/// related terms share id blocks — cluster into topical partitions without
/// the partitioner knowing the topic structure.
#[derive(Debug, Clone, Copy)]
pub struct KMeansPartitioner {
    /// Feature buckets (dimensionality of the embedding).
    pub buckets: usize,
    /// k-means iterations.
    pub iterations: usize,
    /// RNG seed for centroid initialization.
    pub seed: u64,
}

impl Default for KMeansPartitioner {
    fn default() -> Self {
        KMeansPartitioner { buckets: 64, iterations: 12, seed: 42 }
    }
}

impl KMeansPartitioner {
    fn features(&self, corpus: &Corpus) -> (Vec<Vec<f32>>, usize) {
        let max_term =
            corpus.iter().flat_map(|d| d.iter().map(|&(t, _)| t.0)).max().unwrap_or(0) as usize + 1;
        let width = max_term.div_ceil(self.buckets).max(1);
        let feats = corpus
            .iter()
            .map(|doc| {
                let mut v = vec![0f32; self.buckets];
                for &(t, tf) in doc {
                    v[(t.0 as usize / width).min(self.buckets - 1)] += tf as f32;
                }
                normalize(&mut v);
                v
            })
            .collect();
        (feats, self.buckets)
    }
}

fn normalize(v: &mut [f32]) {
    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Dense k-means with cosine similarity: farthest-point initialization and
/// multiple restarts, keeping the assignment with the highest total
/// within-cluster similarity. Returns assignments.
fn kmeans(features: &[Vec<f32>], k: usize, iterations: usize, rng: &mut SimRng) -> Vec<u32> {
    let n = features.len();
    if n == 0 {
        return Vec::new();
    }
    let mut best: Option<(f32, Vec<u32>)> = None;
    for _restart in 0..3 {
        let (assign, objective) = kmeans_once(features, k, iterations, rng);
        if best.as_ref().is_none_or(|(obj, _)| objective > *obj) {
            best = Some((objective, assign));
        }
    }
    best.expect("at least one restart ran").1
}

fn kmeans_once(
    features: &[Vec<f32>],
    k: usize,
    iterations: usize,
    rng: &mut SimRng,
) -> (Vec<u32>, f32) {
    let n = features.len();
    let dim = features[0].len();
    // Farthest-point init: first centroid random, each subsequent one the
    // document with the lowest max-similarity to the chosen set.
    let mut centroids: Vec<Vec<f32>> = Vec::with_capacity(k);
    centroids.push(features[rng.index(n)].clone());
    // max_sim[i] = highest similarity of doc i to any chosen centroid.
    let mut max_sim: Vec<f32> = features.iter().map(|f| dot(&centroids[0], f)).collect();
    while centroids.len() < k {
        let far = (0..n)
            .min_by(|&a, &b| max_sim[a].partial_cmp(&max_sim[b]).expect("finite").then(a.cmp(&b)))
            .expect("non-empty");
        centroids.push(features[far].clone());
        for (i, f) in features.iter().enumerate() {
            max_sim[i] = max_sim[i].max(dot(centroids.last().expect("pushed"), f));
        }
    }

    let mut assign = vec![0u32; n];
    let mut objective = 0f32;
    for _ in 0..iterations {
        // Assignment step.
        let mut changed = false;
        objective = 0.0;
        for (i, f) in features.iter().enumerate() {
            let mut best = 0u32;
            let mut best_sim = f32::NEG_INFINITY;
            for (c, cent) in centroids.iter().enumerate() {
                let s = dot(cent, f);
                if s > best_sim {
                    best_sim = s;
                    best = c as u32;
                }
            }
            objective += best_sim;
            if assign[i] != best {
                assign[i] = best;
                changed = true;
            }
        }
        // Update step.
        let mut sums = vec![vec![0f32; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, f) in features.iter().enumerate() {
            let c = assign[i] as usize;
            counts[c] += 1;
            for (s, x) in sums[c].iter_mut().zip(f) {
                *s += x;
            }
        }
        for (c, sum) in sums.into_iter().enumerate() {
            if counts[c] > 0 {
                centroids[c] = sum;
                normalize(&mut centroids[c]);
            } else {
                // Re-seed an empty cluster from a random document.
                centroids[c] = features[rng.index(n)].clone();
            }
        }
        if !changed {
            break;
        }
    }
    (assign, objective)
}

impl DocPartitioner for KMeansPartitioner {
    fn assign(&self, corpus: &Corpus, k: usize) -> Vec<u32> {
        assert!(k > 0);
        let (features, _) = self.features(corpus);
        let mut rng = SimRng::new(self.seed).fork_named("kmeans");
        kmeans(&features, k, self.iterations, &mut rng)
    }
    fn name(&self) -> &'static str {
        "kmeans"
    }
}

/// Training data for query-driven partitioning: for each training query,
/// its terms, a popularity weight, and the global doc ids it returned.
#[derive(Debug, Clone, Default)]
pub struct TrainingResults {
    /// `(terms, weight, result global-doc ids)` per training query.
    pub queries: Vec<(Vec<TermId>, f64, Vec<u32>)>,
}

impl TrainingResults {
    /// Doc → list of `(query index, weight)` that returned it.
    pub fn doc_query_map(&self, num_docs: usize) -> Vec<Vec<(u32, f32)>> {
        let mut map: Vec<Vec<(u32, f32)>> = vec![Vec::new(); num_docs];
        for (qi, (_, w, docs)) in self.queries.iter().enumerate() {
            for &d in docs {
                map[d as usize].push((qi as u32, *w as f32));
            }
        }
        map
    }

    /// Fraction of documents never returned by any training query — the
    /// quantity Puppin et al. report as 53% on their logs.
    pub fn never_recalled_fraction(&self, num_docs: usize) -> f64 {
        let mut seen = vec![false; num_docs];
        for (_, _, docs) in &self.queries {
            for &d in docs {
                seen[d as usize] = true;
            }
        }
        seen.iter().filter(|&&s| !s).count() as f64 / num_docs as f64
    }
}

/// Query-driven co-clustering (Puppin et al. \[19\], simplified): documents
/// are embedded in *query space* (which training queries return them,
/// weighted by query popularity) and clustered there; documents no query
/// ever recalls are segregated into the last partition (the "outcast"
/// sub-collection that can be searched rarely or not at all).
#[derive(Debug, Clone)]
pub struct QueryDrivenPartitioner {
    /// Training results (from replaying the training log on a reference
    /// index).
    pub training: TrainingResults,
    /// k-means iterations.
    pub iterations: usize,
    /// RNG seed.
    pub seed: u64,
}

impl DocPartitioner for QueryDrivenPartitioner {
    fn assign(&self, corpus: &Corpus, k: usize) -> Vec<u32> {
        assert!(
            k >= 2,
            "query-driven partitioning needs >= 2 partitions (one is the outcast pool)"
        );
        let n = corpus.len();
        let doc_queries = self.training.doc_query_map(n);
        let recalled: Vec<usize> = (0..n).filter(|&d| !doc_queries[d].is_empty()).collect();
        let clusters = k - 1;

        // Sparse k-means in query space over recalled docs.
        let q = self.training.queries.len();
        let mut rng = SimRng::new(self.seed).fork_named("coclustering");
        let mut assign = vec![(k - 1) as u32; n]; // default: outcast pool

        if recalled.is_empty() || q == 0 {
            return assign;
        }

        // Farthest-point initialization (dense centroids in query space —
        // q is the training-universe size, manageable): the first centroid
        // is a random recalled doc, each next one the recalled doc least
        // similar to the chosen set, which guarantees disjoint query
        // groups seed distinct clusters.
        let doc_centroid = |d: usize| {
            let mut c = vec![0f32; q];
            for &(qi, w) in &doc_queries[d] {
                c[qi as usize] = w;
            }
            normalize(&mut c);
            c
        };
        let sparse_dot = |cent: &[f32], d: usize| -> f32 {
            doc_queries[d].iter().map(|&(qi, w)| cent[qi as usize] * w).sum()
        };
        let mut centroids: Vec<Vec<f32>> = Vec::with_capacity(clusters);
        centroids.push(doc_centroid(recalled[rng.index(recalled.len())]));
        let mut max_sim: Vec<f32> =
            recalled.iter().map(|&d| sparse_dot(&centroids[0], d)).collect();
        while centroids.len() < clusters {
            let far = (0..recalled.len())
                .min_by(|&a, &b| {
                    max_sim[a].partial_cmp(&max_sim[b]).expect("finite").then(a.cmp(&b))
                })
                .expect("non-empty recalled set");
            centroids.push(doc_centroid(recalled[far]));
            for (ri, &d) in recalled.iter().enumerate() {
                max_sim[ri] = max_sim[ri].max(sparse_dot(centroids.last().expect("pushed"), d));
            }
        }

        let mut cluster_of = vec![0u32; recalled.len()];
        for _ in 0..self.iterations {
            let mut changed = false;
            for (ri, &d) in recalled.iter().enumerate() {
                let mut best = 0u32;
                let mut best_sim = f32::NEG_INFINITY;
                for (c, cent) in centroids.iter().enumerate() {
                    // Sparse dot product.
                    let s: f32 = doc_queries[d].iter().map(|&(qi, w)| cent[qi as usize] * w).sum();
                    if s > best_sim {
                        best_sim = s;
                        best = c as u32;
                    }
                }
                if cluster_of[ri] != best {
                    cluster_of[ri] = best;
                    changed = true;
                }
            }
            let mut sums = vec![vec![0f32; q]; clusters];
            let mut counts = vec![0usize; clusters];
            for (ri, &d) in recalled.iter().enumerate() {
                let c = cluster_of[ri] as usize;
                counts[c] += 1;
                for &(qi, w) in &doc_queries[d] {
                    sums[c][qi as usize] += w;
                }
            }
            for (c, sum) in sums.into_iter().enumerate() {
                if counts[c] > 0 {
                    centroids[c] = sum;
                    normalize(&mut centroids[c]);
                } else {
                    let d = recalled[rng.index(recalled.len())];
                    let mut cvec = vec![0f32; q];
                    for &(qi, w) in &doc_queries[d] {
                        cvec[qi as usize] = w;
                    }
                    normalize(&mut cvec);
                    centroids[c] = cvec;
                }
            }
            if !changed {
                break;
            }
        }
        for (ri, &d) in recalled.iter().enumerate() {
            assign[d] = cluster_of[ri];
        }
        assign
    }
    fn name(&self) -> &'static str {
        "query-driven"
    }
}

/// Per-partition term profiles learned from training queries — the
/// companion collection-selection model of the query-driven partitioner
/// (PCAP-style: a cluster is described by the terms of the queries whose
/// results live there).
pub fn partition_term_profiles(
    training: &TrainingResults,
    assignment: &[u32],
    k: usize,
) -> Vec<HashMap<u32, f64>> {
    let mut profiles: Vec<HashMap<u32, f64>> = vec![HashMap::new(); k];
    for (terms, w, docs) in &training.queries {
        if docs.is_empty() {
            continue;
        }
        // Weight of this query on each partition = fraction of its
        // results living there, scaled by query popularity.
        let mut share: HashMap<u32, f64> = HashMap::new();
        for &d in docs {
            *share.entry(assignment[d as usize]).or_insert(0.0) += 1.0;
        }
        for (&p, cnt) in &share {
            let frac = cnt / docs.len() as f64;
            let profile = &mut profiles[p as usize];
            for t in terms {
                *profile.entry(t.0).or_insert(0.0) += w * frac;
            }
        }
    }
    profiles
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus_with_topics() -> Corpus {
        // Three "topics": term blocks 0..10, 100..110, 200..210.
        let mut c = Vec::new();
        for i in 0..30u32 {
            let base = (i % 3) * 100;
            c.push(vec![(TermId(base + i % 10), 3), (TermId(base + (i + 1) % 10), 1)]);
        }
        c
    }

    #[test]
    fn random_covers_all_partitions_and_is_deterministic() {
        let c = corpus_with_topics();
        let p = RandomPartitioner { seed: 9 };
        let a = p.assign(&c, 4);
        let b = p.assign(&c, 4);
        assert_eq!(a, b);
        assert!(a.iter().all(|&x| x < 4));
        let distinct: std::collections::HashSet<u32> = a.iter().copied().collect();
        assert!(distinct.len() >= 3);
    }

    #[test]
    fn round_robin_balances_exactly() {
        let c = corpus_with_topics();
        let a = RoundRobinPartitioner.assign(&c, 3);
        let mut counts = [0; 3];
        for &x in &a {
            counts[x as usize] += 1;
        }
        assert_eq!(counts, [10, 10, 10]);
    }

    #[test]
    fn kmeans_recovers_block_structure() {
        let c = corpus_with_topics();
        let a = KMeansPartitioner { buckets: 32, iterations: 20, seed: 3 }.assign(&c, 3);
        // All docs of the same topic should land together: check purity.
        let mut purity = 0usize;
        for topic in 0..3u32 {
            let docs: Vec<usize> = (0..30).filter(|d| d % 3 == topic as usize).collect();
            let mut counts: HashMap<u32, usize> = HashMap::new();
            for &d in &docs {
                *counts.entry(a[d]).or_insert(0) += 1;
            }
            purity += counts.values().copied().max().unwrap();
        }
        assert!(purity as f64 / 30.0 > 0.9, "purity={}", purity as f64 / 30.0);
    }

    fn training() -> TrainingResults {
        TrainingResults {
            queries: vec![
                (vec![TermId(1)], 1.0, vec![0, 1, 2]),
                (vec![TermId(2)], 0.8, vec![1, 2]),
                (vec![TermId(100)], 0.6, vec![5, 6]),
                (vec![TermId(101)], 0.5, vec![6, 7]),
            ],
        }
    }

    #[test]
    fn never_recalled_fraction_counts_unseen_docs() {
        let t = training();
        // Docs 0,1,2,5,6,7 recalled of 10 → 4/10 never recalled.
        assert!((t.never_recalled_fraction(10) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn query_driven_groups_codret_docs_and_isolates_outcasts() {
        let c: Corpus = (0..10).map(|i| vec![(TermId(i), 1)]).collect();
        let p = QueryDrivenPartitioner { training: training(), iterations: 10, seed: 5 };
        let a = p.assign(&c, 3);
        // Outcasts (3, 4, 8, 9) in the last partition.
        for d in [3usize, 4, 8, 9] {
            assert_eq!(a[d], 2, "doc {d} should be outcast");
        }
        // Docs co-returned by the same queries cluster together.
        assert_eq!(a[1], a[2], "docs 1,2 share two queries");
        assert_eq!(a[5], a[6], "docs 5,6 share a query");
        // The two query groups are distinct clusters.
        assert_ne!(a[1], a[6]);
    }

    #[test]
    fn term_profiles_reflect_partition_content() {
        let c: Corpus = (0..10).map(|i| vec![(TermId(i), 1)]).collect();
        let t = training();
        let p = QueryDrivenPartitioner { training: t.clone(), iterations: 10, seed: 5 };
        let a = p.assign(&c, 3);
        let profiles = partition_term_profiles(&t, &a, 3);
        // The partition holding docs 0..3 is profiled by terms 1 and 2.
        let p01 = a[1] as usize;
        assert!(profiles[p01].contains_key(&1));
        assert!(profiles[p01].contains_key(&2));
        // And not by the other group's terms.
        assert!(!profiles[p01].contains_key(&100));
    }

    #[test]
    #[should_panic(expected = ">= 2 partitions")]
    fn query_driven_needs_two_partitions() {
        let c: Corpus = vec![vec![(TermId(0), 1)]];
        QueryDrivenPartitioner { training: TrainingResults::default(), iterations: 1, seed: 1 }
            .assign(&c, 1);
    }
}
