//! Collection selection: CORI and the query-driven selector.
//!
//! "The ability of retrieving the largest possible portion of relevant
//! documents is a very challenging problem usually known as collection
//! selection or query routing" (Section 4). CORI \[24\] is "currently the
//! best known collection selection function for textual documents" that
//! uses only collection-internal statistics; Puppin et al.'s query-driven
//! function \[19\] learns partition profiles from training queries and
//! "outperform\[s\] the state-of-the-art model, namely CORI".

use crate::doc::{partition_term_profiles, TrainingResults};
use crate::parted::PartitionedIndex;
use dwr_text::TermId;
use std::collections::HashMap;

/// Ranks partitions by their likelihood of answering a query.
pub trait CollectionSelector {
    /// Return all partitions, best first, with scores.
    fn rank(&self, terms: &[TermId]) -> Vec<(u32, f64)>;
    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// The CORI selection function (Callan \[24\]).
///
/// For a query term `t` and collection `i`:
/// `T = df_i / (df_i + 50 + 150·cw_i/avg_cw)`,
/// `I = ln((|C| + 0.5)/cf_t) / ln(|C| + 1)`,
/// `belief = b + (1-b)·T·I` with `b = 0.4`,
/// and the collection score is the mean belief over query terms.
#[derive(Debug)]
pub struct CoriSelector {
    /// Per-collection df per term.
    df: Vec<HashMap<u32, u64>>,
    /// Per-collection total term count (cw).
    cw: Vec<f64>,
    avg_cw: f64,
    /// Number of collections containing each term (cf).
    cf: HashMap<u32, u32>,
    b: f64,
}

impl CoriSelector {
    /// Build the CORI statistics from a partitioned index.
    pub fn from_partitions(pi: &PartitionedIndex) -> Self {
        let k = pi.num_partitions();
        let mut df: Vec<HashMap<u32, u64>> = Vec::with_capacity(k);
        let mut cw = Vec::with_capacity(k);
        let mut cf: HashMap<u32, u32> = HashMap::new();
        for p in 0..k {
            let idx = pi.part(p);
            let mut local = HashMap::with_capacity(idx.num_terms());
            for (t, list) in idx.terms() {
                local.insert(t.0, u64::from(list.df()));
                *cf.entry(t.0).or_insert(0) += 1;
            }
            cw.push(idx.avg_doc_len() * f64::from(idx.num_docs()));
            df.push(local);
        }
        let avg_cw = (cw.iter().sum::<f64>() / k as f64).max(1.0);
        CoriSelector { df, cw, avg_cw, cf, b: 0.4 }
    }

    fn belief(&self, c: usize, term: TermId) -> f64 {
        let df = self.df[c].get(&term.0).copied().unwrap_or(0) as f64;
        let num_collections = self.df.len() as f64;
        let cf = self.cf.get(&term.0).copied().unwrap_or(0) as f64;
        if cf == 0.0 {
            return self.b;
        }
        let t = df / (df + 50.0 + 150.0 * self.cw[c] / self.avg_cw);
        let i = ((num_collections + 0.5) / cf).ln() / (num_collections + 1.0).ln();
        self.b + (1.0 - self.b) * t * i
    }
}

impl CollectionSelector for CoriSelector {
    fn rank(&self, terms: &[TermId]) -> Vec<(u32, f64)> {
        let k = self.df.len();
        let mut scores: Vec<(u32, f64)> = (0..k)
            .map(|c| {
                let s = if terms.is_empty() {
                    0.0
                } else {
                    terms.iter().map(|&t| self.belief(c, t)).sum::<f64>() / terms.len() as f64
                };
                (c as u32, s)
            })
            .collect();
        sort_ranked(&mut scores);
        scores
    }
    fn name(&self) -> &'static str {
        "CORI"
    }
}

/// Order `(partition, score)` pairs best first, ties by lower partition
/// id. `total_cmp` keeps the sort total even when a degenerate training
/// log (a NaN query weight, an empty profile) produces NaN scores —
/// `partial_cmp` would panic the broker on such a query.
fn sort_ranked(scores: &mut [(u32, f64)]) {
    scores.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
}

/// The query-driven selector: partitions are scored by the term profiles
/// learned from training-query routing (PCAP-style).
///
/// A query whose terms appear in **no** trained profile is *cold*: every
/// partition scores 0.0 and the ranking degenerates to partition-id
/// order, which routes arbitrarily. [`Self::with_fallback`] delegates
/// such queries to another selector (typically CORI, whose
/// collection-internal statistics cover every indexed term) instead of
/// guessing.
pub struct QueryDrivenSelector {
    profiles: Vec<HashMap<u32, f64>>,
    /// Selector consulted for cold queries; `None` keeps the historical
    /// all-zero ranking.
    fallback: Option<Box<dyn CollectionSelector + Send + Sync>>,
}

impl std::fmt::Debug for QueryDrivenSelector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryDrivenSelector")
            .field("profiles", &self.profiles.len())
            .field("fallback", &self.fallback.as_ref().map(|s| s.name()))
            .finish()
    }
}

impl QueryDrivenSelector {
    /// Learn profiles from training results and the assignment they
    /// produced.
    pub fn train(training: &TrainingResults, assignment: &[u32], k: usize) -> Self {
        QueryDrivenSelector {
            profiles: partition_term_profiles(training, assignment, k),
            fallback: None,
        }
    }

    /// Delegate cold queries (no term in any trained profile) to
    /// `fallback` instead of scoring every partition 0.0.
    pub fn with_fallback(mut self, fallback: Box<dyn CollectionSelector + Send + Sync>) -> Self {
        self.fallback = Some(fallback);
        self
    }

    /// Whether no term of `terms` appears in any trained profile — the
    /// profiles carry no routing signal for this query.
    pub fn is_cold(&self, terms: &[TermId]) -> bool {
        terms.iter().all(|t| self.profiles.iter().all(|prof| !prof.contains_key(&t.0)))
    }
}

impl CollectionSelector for QueryDrivenSelector {
    fn rank(&self, terms: &[TermId]) -> Vec<(u32, f64)> {
        if let Some(fb) = &self.fallback {
            if self.is_cold(terms) {
                return fb.rank(terms);
            }
        }
        let mut scores: Vec<(u32, f64)> = self
            .profiles
            .iter()
            .enumerate()
            .map(|(c, prof)| {
                let s: f64 = terms.iter().filter_map(|t| prof.get(&t.0)).sum();
                (c as u32, s)
            })
            .collect();
        sort_ranked(&mut scores);
        scores
    }
    fn name(&self) -> &'static str {
        "query-driven"
    }
}

/// Random selection baseline (deterministic by query hash, so repeated
/// queries route identically — a property caches rely on).
#[derive(Debug, Clone, Copy)]
pub struct RandomSelector {
    /// Number of partitions.
    pub k: usize,
}

impl CollectionSelector for RandomSelector {
    fn rank(&self, terms: &[TermId]) -> Vec<(u32, f64)> {
        // Deterministic pseudo-random permutation keyed by the query terms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for t in terms {
            h ^= u64::from(t.0);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut order: Vec<u32> = (0..self.k as u32).collect();
        // Fisher–Yates with a SplitMix stream from h.
        let mut state = h;
        for i in (1..order.len()).rev() {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^= z >> 27;
            order.swap(i, (z % (i as u64 + 1)) as usize);
        }
        order.into_iter().enumerate().map(|(rank, p)| (p, -(rank as f64))).collect()
    }
    fn name(&self) -> &'static str {
        "random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parted::Corpus;

    /// Two topical partitions: terms 0..5 live in partition 0's docs,
    /// terms 100..105 in partition 1's.
    fn topical_partitions() -> PartitionedIndex {
        let corpus: Corpus = (0..20)
            .map(|d| {
                if d < 10 {
                    vec![(TermId(d % 5), 2), (TermId((d + 1) % 5), 1)]
                } else {
                    vec![(TermId(100 + d % 5), 2), (TermId(100 + (d + 1) % 5), 1)]
                }
            })
            .collect();
        let assignment: Vec<u32> = (0..20).map(|d| u32::from(d >= 10)).collect();
        PartitionedIndex::build(&corpus, &assignment, 2)
    }

    #[test]
    fn cori_prefers_the_right_partition() {
        let pi = topical_partitions();
        let cori = CoriSelector::from_partitions(&pi);
        let r0 = cori.rank(&[TermId(1), TermId(2)]);
        assert_eq!(r0[0].0, 0, "{r0:?}");
        let r1 = cori.rank(&[TermId(101), TermId(102)]);
        assert_eq!(r1[0].0, 1, "{r1:?}");
        assert!(r0[0].1 > r0[1].1);
    }

    #[test]
    fn cori_returns_all_partitions() {
        let pi = topical_partitions();
        let cori = CoriSelector::from_partitions(&pi);
        let r = cori.rank(&[TermId(1)]);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn cori_unknown_term_is_neutral() {
        let pi = topical_partitions();
        let cori = CoriSelector::from_partitions(&pi);
        let r = cori.rank(&[TermId(9999)]);
        // Both partitions get the default belief b.
        assert!((r[0].1 - r[1].1).abs() < 1e-12);
    }

    #[test]
    fn query_driven_learns_profiles() {
        let training = TrainingResults {
            queries: vec![
                (vec![TermId(1)], 1.0, vec![0, 1]),
                (vec![TermId(101)], 1.0, vec![10, 11]),
            ],
        };
        let assignment: Vec<u32> = (0..20).map(|d| u32::from(d >= 10)).collect();
        let sel = QueryDrivenSelector::train(&training, &assignment, 2);
        assert_eq!(sel.rank(&[TermId(1)])[0].0, 0);
        assert_eq!(sel.rank(&[TermId(101)])[0].0, 1);
    }

    #[test]
    fn query_driven_unseen_terms_score_zero() {
        let sel = QueryDrivenSelector::train(&TrainingResults::default(), &[0, 1], 2);
        let r = sel.rank(&[TermId(5)]);
        assert!(r.iter().all(|&(_, s)| s == 0.0));
    }

    /// Regression: a NaN query weight in the training log used to
    /// propagate into the profiles and panic the `partial_cmp` sort on
    /// the serving path. `total_cmp` keeps the ranking total — no panic,
    /// deterministic output, every partition still present.
    #[test]
    fn query_driven_nan_scores_rank_without_panicking() {
        let training = TrainingResults {
            queries: vec![
                (vec![TermId(1)], f64::NAN, vec![0, 1]),
                (vec![TermId(101)], 1.0, vec![10, 11]),
            ],
        };
        let assignment: Vec<u32> = (0..20).map(|d| u32::from(d >= 10)).collect();
        let sel = QueryDrivenSelector::train(&training, &assignment, 2);
        let a = sel.rank(&[TermId(1), TermId(101)]);
        let b = sel.rank(&[TermId(1), TermId(101)]);
        assert_eq!(a.len(), 2);
        assert_eq!(
            a.iter().map(|&(p, _)| p).collect::<Vec<_>>(),
            b.iter().map(|&(p, _)| p).collect::<Vec<_>>(),
            "NaN scores must rank deterministically"
        );
    }

    #[test]
    fn cori_degenerate_scores_rank_without_panicking() {
        let pi = topical_partitions();
        let cori = CoriSelector::from_partitions(&pi);
        // Empty queries score 0.0 everywhere; the sort must stay total.
        let r = cori.rank(&[]);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].0, 0, "ties break by lower partition id");
    }

    #[test]
    fn query_driven_cold_query_delegates_to_fallback() {
        let pi = topical_partitions();
        let training = TrainingResults { queries: vec![(vec![TermId(1)], 1.0, vec![0, 1])] };
        let assignment: Vec<u32> = (0..20).map(|d| u32::from(d >= 10)).collect();
        let sel = QueryDrivenSelector::train(&training, &assignment, 2)
            .with_fallback(Box::new(CoriSelector::from_partitions(&pi)));
        // Term 101 was never trained on, but CORI's content statistics
        // know it lives in partition 1: the fallback routes it there.
        assert!(sel.is_cold(&[TermId(101)]));
        assert_eq!(sel.rank(&[TermId(101)])[0].0, 1);
        assert!(sel.rank(&[TermId(101)])[0].1 > 0.0, "CORI scores, not all-zero");
        // Warm queries still use the trained profiles.
        assert!(!sel.is_cold(&[TermId(1), TermId(9999)]));
        assert_eq!(sel.rank(&[TermId(1)])[0].0, 0);
    }

    #[test]
    fn query_driven_cold_query_without_fallback_keeps_zero_scores() {
        let sel = QueryDrivenSelector::train(&TrainingResults::default(), &[0, 1], 2);
        assert!(sel.is_cold(&[TermId(5)]));
        let r = sel.rank(&[TermId(5)]);
        assert!(r.iter().all(|&(_, s)| s == 0.0));
    }

    #[test]
    fn random_selector_is_stable_per_query() {
        let sel = RandomSelector { k: 8 };
        let a = sel.rank(&[TermId(3), TermId(7)]);
        let b = sel.rank(&[TermId(3), TermId(7)]);
        assert_eq!(a, b);
        let c = sel.rank(&[TermId(4)]);
        assert_eq!(c.len(), 8);
    }
}
