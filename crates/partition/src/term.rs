//! Term partitioning: random, bin-packing, co-occurrence-aware.
//!
//! "Moffat et al. \[21\] (...) abstract the problem of partitioning the
//! vocabulary in a term partitioned system as a bin-packing problem, where
//! each bin represents a partition, and each term represents an object to
//! put in the bin. Each term has a weight which is proportional to its
//! frequency of occurrence in a query log, and the corresponding length of
//! its posting list." Lucchese et al. \[22\] extend the objective with term
//! co-occurrence so queries touch fewer servers.

use dwr_text::index::InvertedIndex;
use dwr_text::TermId;
use std::collections::HashMap;

/// A term partitioning strategy: maps query-relevant terms to servers.
pub trait TermPartitioner {
    /// Compute `term -> server` for all terms of `index`, over `k` servers.
    fn assign(
        &self,
        index: &InvertedIndex,
        workload: &QueryWorkload,
        k: usize,
    ) -> HashMap<u32, u32>;
    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// A query workload summary: per-query term sets with frequencies.
#[derive(Debug, Clone, Default)]
pub struct QueryWorkload {
    /// `(terms, frequency)` of each distinct query.
    pub queries: Vec<(Vec<TermId>, f64)>,
}

impl QueryWorkload {
    /// Total frequency-weighted occurrences of each term in the workload.
    pub fn term_frequencies(&self) -> HashMap<u32, f64> {
        let mut freq = HashMap::new();
        for (terms, f) in &self.queries {
            for t in terms {
                *freq.entry(t.0).or_insert(0.0) += f;
            }
        }
        freq
    }
}

/// The load a term places on its server under a workload: query frequency
/// of the term × its posting-list length (the disk/CPU work to serve it).
pub fn term_weight(index: &InvertedIndex, freq: f64, term: TermId) -> f64 {
    freq * f64::from(index.df(term).max(1))
}

/// Hash-random term assignment (the baseline).
#[derive(Debug, Clone, Copy)]
pub struct RandomTermPartitioner;

impl TermPartitioner for RandomTermPartitioner {
    fn assign(
        &self,
        index: &InvertedIndex,
        _workload: &QueryWorkload,
        k: usize,
    ) -> HashMap<u32, u32> {
        assert!(k > 0);
        index
            .terms()
            .map(|(t, _)| {
                // SplitMix-style finalizer on the term id.
                let mut z = u64::from(t.0)
                    .wrapping_add(0x9E37_79B9_7F4A_7C15)
                    .wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z ^= z >> 31;
                (t.0, (z % k as u64) as u32)
            })
            .collect()
    }
    fn name(&self) -> &'static str {
        "random"
    }
}

/// Greedy query-weighted bin-packing (Moffat et al. \[21\]): terms sorted by
/// weight descending, each placed on the currently least-loaded server.
#[derive(Debug, Clone, Copy)]
pub struct BinPackingTermPartitioner;

impl TermPartitioner for BinPackingTermPartitioner {
    fn assign(
        &self,
        index: &InvertedIndex,
        workload: &QueryWorkload,
        k: usize,
    ) -> HashMap<u32, u32> {
        assert!(k > 0);
        let freqs = workload.term_frequencies();
        let mut weighted: Vec<(u32, f64)> = index
            .terms()
            .map(|(t, _)| {
                let f = freqs.get(&t.0).copied().unwrap_or(0.0);
                (t.0, term_weight(index, f, t))
            })
            .collect();
        weighted.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite weights").then(a.0.cmp(&b.0)));
        let mut load = vec![0f64; k];
        let mut out = HashMap::with_capacity(weighted.len());
        for (t, w) in weighted {
            let (bin, _) = load
                .iter()
                .enumerate()
                .min_by(|(i, a), (j, b)| a.partial_cmp(b).expect("finite").then(i.cmp(j)))
                .expect("k > 0");
            out.insert(t, bin as u32);
            load[bin] += w;
        }
        out
    }
    fn name(&self) -> &'static str {
        "bin-packing"
    }
}

/// Co-occurrence-aware packing (Lucchese et al. \[22\], greedy variant):
/// like bin-packing, but each term prefers the server already holding the
/// terms it co-occurs with in queries, as long as that server's load is
/// not too far above the mean.
#[derive(Debug, Clone, Copy)]
pub struct CoOccurrenceTermPartitioner {
    /// How much co-occurrence benefit can override imbalance: a server
    /// stays eligible while `load <= (1 + slack) × mean`.
    pub slack: f64,
}

impl Default for CoOccurrenceTermPartitioner {
    fn default() -> Self {
        CoOccurrenceTermPartitioner { slack: 0.25 }
    }
}

impl TermPartitioner for CoOccurrenceTermPartitioner {
    fn assign(
        &self,
        index: &InvertedIndex,
        workload: &QueryWorkload,
        k: usize,
    ) -> HashMap<u32, u32> {
        assert!(k > 0);
        let freqs = workload.term_frequencies();
        // Co-occurrence counts between term pairs, frequency-weighted.
        let mut cooc: HashMap<(u32, u32), f64> = HashMap::new();
        for (terms, f) in &workload.queries {
            for i in 0..terms.len() {
                for j in (i + 1)..terms.len() {
                    let (a, b) = (terms[i].0.min(terms[j].0), terms[i].0.max(terms[j].0));
                    *cooc.entry((a, b)).or_insert(0.0) += f;
                }
            }
        }
        // Adjacency lists.
        let mut nbrs: HashMap<u32, Vec<(u32, f64)>> = HashMap::new();
        for (&(a, b), &w) in &cooc {
            nbrs.entry(a).or_default().push((b, w));
            nbrs.entry(b).or_default().push((a, w));
        }

        let mut weighted: Vec<(u32, f64)> = index
            .terms()
            .map(|(t, _)| {
                let f = freqs.get(&t.0).copied().unwrap_or(0.0);
                (t.0, term_weight(index, f, t))
            })
            .collect();
        weighted.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite weights").then(a.0.cmp(&b.0)));
        let total: f64 = weighted.iter().map(|&(_, w)| w).sum();
        let mean_target = total / k as f64;

        let mut load = vec![0f64; k];
        let mut out: HashMap<u32, u32> = HashMap::with_capacity(weighted.len());
        for (t, w) in weighted {
            // Affinity of each server = co-occurrence weight with terms
            // already placed there.
            let mut affinity = vec![0f64; k];
            if let Some(ns) = nbrs.get(&t) {
                for &(other, cw) in ns {
                    if let Some(&srv) = out.get(&other) {
                        affinity[srv as usize] += cw;
                    }
                }
            }
            // Choose the highest-affinity server whose load is within
            // slack; fall back to least-loaded.
            let cap = mean_target * (1.0 + self.slack);
            let candidate =
                (0..k).filter(|&s| load[s] + w <= cap || load[s] == 0.0).max_by(|&a, &b| {
                    affinity[a]
                        .partial_cmp(&affinity[b])
                        .expect("finite")
                        .then_with(|| load[b].partial_cmp(&load[a]).expect("finite"))
                });
            let bin = candidate.unwrap_or_else(|| {
                load.iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite"))
                    .map(|(i, _)| i)
                    .expect("k > 0")
            });
            out.insert(t, bin as u32);
            load[bin] += w;
        }
        out
    }
    fn name(&self) -> &'static str {
        "co-occurrence"
    }
}

/// Evaluate a term assignment under a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct TermPartitionEval {
    /// Frequency-weighted work (posting volume touched) per server.
    pub load: Vec<f64>,
    /// Mean number of distinct servers contacted per query.
    pub avg_servers_per_query: f64,
    /// Fraction of queries fully answerable by a single server.
    pub single_server_fraction: f64,
}

/// Compute load and contact statistics for an assignment.
pub fn evaluate_term_partition(
    index: &InvertedIndex,
    workload: &QueryWorkload,
    assignment: &HashMap<u32, u32>,
    k: usize,
) -> TermPartitionEval {
    let mut load = vec![0f64; k];
    let mut servers_acc = 0f64;
    let mut single = 0f64;
    let mut total_freq = 0f64;
    for (terms, f) in &workload.queries {
        let mut touched: Vec<u32> = Vec::with_capacity(terms.len());
        for t in terms {
            if let Some(&srv) = assignment.get(&t.0) {
                load[srv as usize] += f * f64::from(index.df(*t).max(1));
                touched.push(srv);
            }
        }
        touched.sort_unstable();
        touched.dedup();
        if touched.is_empty() {
            continue;
        }
        servers_acc += f * touched.len() as f64;
        if touched.len() == 1 {
            single += f;
        }
        total_freq += f;
    }
    TermPartitionEval {
        load,
        avg_servers_per_query: if total_freq > 0.0 { servers_acc / total_freq } else { 0.0 },
        single_server_fraction: if total_freq > 0.0 { single / total_freq } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwr_sim::stats::Imbalance;
    use dwr_text::index::build_index;

    /// Corpus with wildly skewed posting lengths: term 0 everywhere,
    /// term i in ~N/i docs.
    fn skewed_index() -> InvertedIndex {
        let n = 200;
        let corpus: Vec<Vec<(TermId, u32)>> = (0..n)
            .map(|d| {
                let mut doc = vec![(TermId(0), 1)];
                for t in 1..20u32 {
                    if d % t as usize == 0 {
                        doc.push((TermId(t), 1));
                    }
                }
                doc
            })
            .collect();
        build_index(&corpus)
    }

    fn workload() -> QueryWorkload {
        QueryWorkload {
            queries: vec![
                (vec![TermId(0), TermId(1)], 10.0),
                (vec![TermId(2), TermId(3)], 5.0),
                (vec![TermId(2), TermId(3), TermId(4)], 4.0),
                (vec![TermId(5)], 3.0),
                (vec![TermId(6), TermId(7)], 2.0),
                (vec![TermId(8)], 1.0),
                (vec![TermId(9), TermId(10)], 1.0),
            ],
        }
    }

    #[test]
    fn all_terms_assigned_in_range() {
        let idx = skewed_index();
        let wl = workload();
        for part in [
            &RandomTermPartitioner as &dyn TermPartitioner,
            &BinPackingTermPartitioner,
            &CoOccurrenceTermPartitioner::default(),
        ] {
            let a = part.assign(&idx, &wl, 4);
            assert_eq!(a.len(), idx.num_terms(), "{}", part.name());
            assert!(a.values().all(|&s| s < 4), "{}", part.name());
        }
    }

    #[test]
    fn binpacking_balances_better_than_random() {
        let idx = skewed_index();
        let wl = workload();
        let gini = |a: &HashMap<u32, u32>| {
            Imbalance::of(&evaluate_term_partition(&idx, &wl, a, 4).load).gini
        };
        let rand = gini(&RandomTermPartitioner.assign(&idx, &wl, 4));
        let packed = gini(&BinPackingTermPartitioner.assign(&idx, &wl, 4));
        assert!(packed < rand, "packed={packed} rand={rand}");
    }

    #[test]
    fn cooccurrence_reduces_servers_per_query() {
        let idx = skewed_index();
        let wl = workload();
        let eval = |a: &HashMap<u32, u32>| evaluate_term_partition(&idx, &wl, a, 4);
        let packed = eval(&BinPackingTermPartitioner.assign(&idx, &wl, 4));
        let cooc = eval(&CoOccurrenceTermPartitioner::default().assign(&idx, &wl, 4));
        assert!(
            cooc.avg_servers_per_query <= packed.avg_servers_per_query,
            "cooc={} packed={}",
            cooc.avg_servers_per_query,
            packed.avg_servers_per_query
        );
        assert!(cooc.single_server_fraction >= packed.single_server_fraction);
    }

    #[test]
    fn cooccurring_terms_land_together() {
        let idx = skewed_index();
        let wl = workload();
        let a = CoOccurrenceTermPartitioner::default().assign(&idx, &wl, 4);
        // Terms 2, 3 co-occur with weight 9 — strongest pair.
        assert_eq!(a[&2], a[&3]);
    }

    #[test]
    fn single_term_queries_always_single_server() {
        let idx = skewed_index();
        let wl = QueryWorkload { queries: vec![(vec![TermId(1)], 1.0), (vec![TermId(2)], 2.0)] };
        let a = RandomTermPartitioner.assign(&idx, &wl, 4);
        let e = evaluate_term_partition(&idx, &wl, &a, 4);
        assert_eq!(e.single_server_fraction, 1.0);
        assert_eq!(e.avg_servers_per_query, 1.0);
    }

    #[test]
    fn load_reflects_posting_lengths() {
        let idx = skewed_index();
        // Term 0 has df = 200, term 19 has df ≈ 10: same query frequency,
        // very different load.
        let wl = QueryWorkload { queries: vec![(vec![TermId(0)], 1.0), (vec![TermId(19)], 1.0)] };
        let mut a = HashMap::new();
        a.insert(0u32, 0u32);
        a.insert(19u32, 1u32);
        let e = evaluate_term_partition(&idx, &wl, &a, 2);
        assert!(e.load[0] > 10.0 * e.load[1], "load={:?}", e.load);
    }

    #[test]
    fn empty_workload_evaluates_cleanly() {
        let idx = skewed_index();
        let a = RandomTermPartitioner.assign(&idx, &QueryWorkload::default(), 2);
        let e = evaluate_term_partition(&idx, &QueryWorkload::default(), &a, 2);
        assert_eq!(e.avg_servers_per_query, 0.0);
        assert_eq!(e.single_server_fraction, 0.0);
    }
}
