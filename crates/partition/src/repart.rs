//! # Online repartitioning — epoch-stamped maps and crash-safe splits
//!
//! The paper's Section 4 lists index maintenance as a core open
//! challenge: a live engine cannot take the index offline to reshape
//! it. This module adopts the *pippin* repartitioning discipline:
//!
//! * **never mutate a partition — only subdivide it.** A split creates
//!   fresh child partitions and marks the parent `Closed { children }`;
//!   the parent's shard is never edited, so readers holding it keep a
//!   perfectly consistent (if stale) view.
//! * **version-stamp everything.** The [`PartitionMap`] and each of its
//!   entries carry an epoch; staleness is *detectable*, not silent.
//! * **no master index.** Children derive purely from the parent; a map
//!   can always be validated bottom-up ([`PartitionedIndex::validate_epoch`]).
//!
//! # Crash safety
//!
//! A split builds the child shards and the next map entirely off to the
//! side, then publishes the new [`PartitionedIndex`] with one atomic
//! swap under a mutex. A crash *before* the publish aborts cleanly —
//! the parent epoch is still the live map and the half-built children
//! are dropped. A crash *after* the publish rolls forward — the new
//! epoch is already the live map. There is no intermediate state, so a
//! torn map is impossible by construction ([`SplitFate`] enumerates the
//! three outcomes for fault injection).
//!
//! # Exactly-once queries under a racing split
//!
//! A query takes **one** map snapshot at admission and scatters over
//! that snapshot's *active* partitions only. Within any single epoch
//! the active partitions exactly partition the document space (every
//! document is in exactly one active partition — closed parents are
//! never queried), so a query racing a split answers each document
//! exactly once: from the parent if it snapshotted before the publish,
//! from exactly one child if after. Scoring uses corpus-wide
//! [`CorpusStats`], which are invariant under splits (the corpus never
//! changes), so the result set is *bit-identical* to a static oracle at
//! either epoch.

use crate::parted::{Corpus, PartitionedIndex};
use dwr_sim::{SimRng, SimTime};
use dwr_text::score::CollectionStats;
use dwr_text::TermId;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Children created per split. Two-way splits keep the family tree
/// binary and the balance bound trivial (children differ by ≤ 1 doc).
pub const SPLIT_FANOUT: usize = 2;

fn lock_recovering<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// Lifecycle state of one partition map entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartStatus {
    /// The partition serves queries.
    Active,
    /// The partition was subdivided; `children` now own its documents.
    /// Closed partitions are never queried and never reopened.
    Closed {
        /// Partition ids of the children, in creation order.
        children: Vec<u32>,
    },
}

/// One entry of a [`PartitionMap`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartEntry {
    /// Partition id (= shard slot in the [`PartitionedIndex`]).
    pub id: u32,
    /// Active or closed-with-children.
    pub status: PartStatus,
    /// Epoch this entry was created in (0 for the initial build).
    pub epoch: u64,
    /// Parent partition, `None` for initial partitions.
    pub parent: Option<u32>,
    /// Documents the partition held when created. For active entries
    /// this equals the shard size; it is kept on closed entries as the
    /// historical record.
    pub docs: usize,
}

/// Epoch-stamped partition metadata: which partitions exist, which are
/// active, and how closed ones were subdivided.
///
/// The map is immutable; a split produces a *new* map at `epoch + 1`
/// via [`PartitionedIndex::with_split`]. Entry ids are stable — entry
/// `p` always describes shard slot `p` — so a reader comparing two maps
/// can diff them by epoch alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionMap {
    epoch: u64,
    entries: Vec<PartEntry>,
}

impl PartitionMap {
    /// The epoch-0 map: every partition active, no parents.
    pub(crate) fn initial(sizes: &[usize]) -> Self {
        let entries = sizes
            .iter()
            .enumerate()
            .map(|(p, &docs)| PartEntry {
                id: p as u32,
                status: PartStatus::Active,
                epoch: 0,
                parent: None,
                docs,
            })
            .collect();
        PartitionMap { epoch: 0, entries }
    }

    /// The successor map: `parent` closed, `child_sizes.len()` children
    /// appended, epoch bumped.
    pub(crate) fn with_split(&self, parent: u32, child_sizes: &[usize]) -> Self {
        let epoch = self.epoch + 1;
        let base = self.entries.len() as u32;
        let children: Vec<u32> = (0..child_sizes.len() as u32).map(|c| base + c).collect();
        let mut entries = self.entries.clone();
        entries[parent as usize].status = PartStatus::Closed { children: children.clone() };
        for (c, &docs) in child_sizes.iter().enumerate() {
            entries.push(PartEntry {
                id: base + c as u32,
                status: PartStatus::Active,
                epoch,
                parent: Some(parent),
                docs,
            });
        }
        PartitionMap { epoch, entries }
    }

    /// Map epoch: number of splits applied since the initial build.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// All entries (active and closed), indexed by partition id.
    pub fn entries(&self) -> &[PartEntry] {
        &self.entries
    }

    /// Entry for partition `p`, if it exists.
    pub fn entry(&self, p: u32) -> Option<&PartEntry> {
        self.entries.get(p as usize)
    }

    /// Total entries, active and closed.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True for a zero-partition map (never produced by `build`).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether partition `p` exists and is active. Out-of-range ids are
    /// inactive, not a panic.
    pub fn is_active(&self, p: u32) -> bool {
        matches!(self.entries.get(p as usize), Some(e) if e.status == PartStatus::Active)
    }

    /// Active partition ids in ascending order. These exactly partition
    /// the document space at this epoch.
    pub fn active(&self) -> Vec<u32> {
        self.entries.iter().filter(|e| e.status == PartStatus::Active).map(|e| e.id).collect()
    }
}

/// Why a split was refused. Refusals leave the live map untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitError {
    /// No such partition.
    OutOfRange(u32),
    /// The partition is already closed; a closed partition is never
    /// reopened or re-split (pippin rule).
    NotActive(u32),
    /// Fewer documents than [`SPLIT_FANOUT`]; a child would be born
    /// empty for no reshaping gain.
    TooSmall {
        /// The partition that was asked to split.
        part: u32,
        /// Documents it holds.
        docs: usize,
    },
    /// The split would exceed the provisioned shard-slot capacity.
    Capacity {
        /// Slots the split needs in total.
        need: usize,
        /// Slots provisioned at build time.
        capacity: usize,
    },
}

impl fmt::Display for SplitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SplitError::OutOfRange(p) => write!(f, "partition {p} out of range"),
            SplitError::NotActive(p) => write!(f, "partition {p} is closed"),
            SplitError::TooSmall { part, docs } => {
                write!(f, "partition {part} has {docs} docs, fewer than fanout {SPLIT_FANOUT}")
            }
            SplitError::Capacity { need, capacity } => {
                write!(f, "split needs {need} shard slots but capacity is {capacity}")
            }
        }
    }
}

impl std::error::Error for SplitError {}

/// Where a (simulated) crash lands relative to the atomic publish.
///
/// The publish is the *only* commit point, so these three fates are
/// exhaustive: there is no window in which a crash could leave a torn
/// map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitFate {
    /// No crash: the split publishes normally.
    Commit,
    /// Crash before the publish: the half-built children are dropped
    /// and the parent epoch stays live — a clean abort.
    CrashBeforePublish,
    /// Crash after the publish: the new epoch is already live, so the
    /// split rolls forward. Indistinguishable from `Commit` to readers.
    CrashAfterPublish,
}

/// Outcome of one [`RepartIndex::split`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitReport {
    /// The partition that was split.
    pub parent: u32,
    /// Child partition ids (empty when aborted before publish).
    pub children: Vec<u32>,
    /// Live epoch when the split started.
    pub epoch_before: u64,
    /// Live epoch after the split resolved (= `epoch_before` on abort).
    pub epoch_after: u64,
    /// Whether the new map was published.
    pub committed: bool,
    /// Whether the commit was a roll-forward past a post-publish crash.
    pub rolled_forward: bool,
    /// Documents moved from parent to children.
    pub docs_split: usize,
}

/// Monotonic split counters, mirrored by the `repart.*` observability
/// instruments for the live-vs-offline cross-check.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepartStats {
    /// Splits that published a new epoch (including roll-forwards).
    pub splits_committed: u64,
    /// Splits that crashed before publish and aborted cleanly.
    pub splits_aborted: u64,
    /// Child partitions created by committed splits.
    pub children_created: u64,
    /// Current live epoch.
    pub epoch: u64,
}

/// Corpus-wide collection statistics, computed once at build time.
///
/// Splits reshape the *layout*, never the corpus, so these statistics
/// are identical at every epoch. Scoring against them makes a hit's
/// BM25 score independent of which partition answered it — the
/// keystone of the exactly-once bit-identity argument: a query racing a
/// split scores every document exactly as a static oracle would.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusStats {
    num_docs: u64,
    total_tokens: u64,
    /// `df[term]` = documents containing the term.
    df: Vec<u64>,
}

impl CorpusStats {
    /// Scan the corpus once for document frequencies and lengths.
    pub fn from_corpus(corpus: &Corpus) -> Self {
        let max_term = corpus
            .iter()
            .flat_map(|doc| doc.iter().map(|&(t, _)| t.0 as usize))
            .max()
            .map_or(0, |t| t + 1);
        let mut df = vec![0u64; max_term];
        let mut total_tokens = 0u64;
        for doc in corpus {
            for &(t, tf) in doc {
                df[t.0 as usize] += 1;
                total_tokens += u64::from(tf);
            }
        }
        CorpusStats { num_docs: corpus.len() as u64, total_tokens, df }
    }
}

impl CollectionStats for CorpusStats {
    fn num_docs(&self) -> u64 {
        self.num_docs
    }

    fn df(&self, term: TermId) -> u64 {
        self.df.get(term.0 as usize).copied().unwrap_or(0)
    }

    fn avg_doc_len(&self) -> f64 {
        if self.num_docs == 0 {
            0.0
        } else {
            self.total_tokens as f64 / self.num_docs as f64
        }
    }
}

/// A live, splittable partitioned index.
///
/// Owns the corpus, the corpus-wide [`CorpusStats`], and the current
/// [`PartitionedIndex`] behind a mutex whose critical sections are
/// *short*: a reader clones the index out ([`snapshot`]); a split swaps
/// a pre-built successor in. Child shards are built outside the lock
/// (splits are serialized by a separate mutex), so queries are never
/// blocked behind an index build.
///
/// `capacity` provisions the total number of shard slots the structure
/// may ever use, so brokers and engines can size their fixed-width
/// atomic accounting (busy ledgers, replica groups, histograms) once at
/// construction and survive any number of splits. A split that would
/// exceed capacity is refused with [`SplitError::Capacity`].
///
/// [`snapshot`]: RepartIndex::snapshot
#[derive(Debug)]
pub struct RepartIndex {
    corpus: Arc<Corpus>,
    stats: Arc<CorpusStats>,
    capacity: usize,
    current: Mutex<PartitionedIndex>,
    split_lock: Mutex<()>,
    splits_committed: AtomicU64,
    splits_aborted: AtomicU64,
    children_created: AtomicU64,
}

impl RepartIndex {
    /// Build the epoch-0 index with `k` initial partitions and room for
    /// `capacity` total shard slots.
    ///
    /// # Panics
    /// Panics if `capacity < k`, or on the same degenerate inputs as
    /// [`PartitionedIndex::build`].
    pub fn build(corpus: Corpus, assignment: &[u32], k: usize, capacity: usize) -> Self {
        assert!(capacity >= k, "capacity {capacity} below initial partition count {k}");
        let current = PartitionedIndex::build(&corpus, assignment, k);
        let stats = Arc::new(CorpusStats::from_corpus(&corpus));
        RepartIndex {
            corpus: Arc::new(corpus),
            stats,
            capacity,
            current: Mutex::new(current),
            split_lock: Mutex::new(()),
            splits_committed: AtomicU64::new(0),
            splits_aborted: AtomicU64::new(0),
            children_created: AtomicU64::new(0),
        }
    }

    /// Provisioned shard-slot ceiling.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Documents in the corpus (invariant across splits).
    pub fn num_docs(&self) -> usize {
        self.corpus.len()
    }

    /// Shared ownership of the corpus-wide statistics.
    pub fn corpus_stats(&self) -> Arc<CorpusStats> {
        Arc::clone(&self.stats)
    }

    /// The current live index: one short lock, then a cheap clone
    /// (`slots + 3` refcount bumps, never a postings copy). A snapshot
    /// is immutable and epoch-stamped; a query served entirely from one
    /// snapshot observes a single consistent epoch by construction.
    pub fn snapshot(&self) -> PartitionedIndex {
        lock_recovering(&self.current).clone()
    }

    /// Live epoch.
    pub fn epoch(&self) -> u64 {
        lock_recovering(&self.current).epoch()
    }

    /// Split counters plus the live epoch.
    pub fn repart_stats(&self) -> RepartStats {
        RepartStats {
            splits_committed: self.splits_committed.load(Ordering::Relaxed),
            splits_aborted: self.splits_aborted.load(Ordering::Relaxed),
            children_created: self.children_created.load(Ordering::Relaxed),
            epoch: self.epoch(),
        }
    }

    /// The active partition holding the most documents among those
    /// splittable (≥ [`SPLIT_FANOUT`] docs); ties break toward the
    /// lowest id. `None` when nothing is worth splitting.
    pub fn split_target(&self) -> Option<u32> {
        let snap = self.snapshot();
        let sizes = snap.sizes();
        snap.active_parts()
            .into_iter()
            .map(|p| (p, sizes[p as usize]))
            .filter(|&(_, n)| n >= SPLIT_FANOUT)
            .max_by_key(|&(p, n)| (n, std::cmp::Reverse(p)))
            .map(|(p, _)| p)
    }

    /// Split `parent` into [`SPLIT_FANOUT`] children, with `fate`
    /// simulating where a replica crash lands relative to the publish.
    ///
    /// The successor index is built entirely off to the side and
    /// published with one swap under the `current` mutex; concurrent
    /// snapshots see either the old epoch or the new one, never a
    /// mixture. Errors refuse the split before any work is published.
    pub fn split(&self, parent: u32, fate: SplitFate) -> Result<SplitReport, SplitError> {
        // Serialize splitters so the epoch cannot move between our read
        // and our publish; queries only contend on the `current` mutex.
        let _splitting = lock_recovering(&self.split_lock);
        let cur = self.snapshot();
        let need = cur.num_partitions() + SPLIT_FANOUT;
        if need > self.capacity {
            return Err(SplitError::Capacity { need, capacity: self.capacity });
        }
        let next = cur.with_split(&self.corpus, parent)?;
        let epoch_before = cur.epoch();
        let docs_split = cur.sizes()[parent as usize];
        if fate == SplitFate::CrashBeforePublish {
            // The crash lands before the swap: drop `next` unpublished.
            // The live map is still `cur` — a clean abort to the parent
            // epoch, with the half-built children garbage-collected.
            self.splits_aborted.fetch_add(1, Ordering::Relaxed);
            return Ok(SplitReport {
                parent,
                children: Vec::new(),
                epoch_before,
                epoch_after: epoch_before,
                committed: false,
                rolled_forward: false,
                docs_split,
            });
        }
        let children = match &next.map().entry(parent).expect("parent entry").status {
            PartStatus::Closed { children } => children.clone(),
            PartStatus::Active => unreachable!("with_split closes the parent"),
        };
        let epoch_after = next.epoch();
        // The commit point: one atomic swap. A crash after this line
        // (CrashAfterPublish) changes nothing — the split already
        // rolled forward.
        *lock_recovering(&self.current) = next;
        self.splits_committed.fetch_add(1, Ordering::Relaxed);
        self.children_created.fetch_add(children.len() as u64, Ordering::Relaxed);
        Ok(SplitReport {
            parent,
            children,
            epoch_before,
            epoch_after,
            committed: true,
            rolled_forward: fate == SplitFate::CrashAfterPublish,
            docs_split,
        })
    }

    /// Structural self-check of the live index (see
    /// [`PartitionedIndex::validate_epoch`]).
    pub fn validate(&self) -> Result<(), String> {
        self.snapshot().validate_epoch()
    }
}

/// One scheduled split attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitEvent {
    /// Simulated time the split fires.
    pub at: SimTime,
    /// Crash fate injected into the split.
    pub fate: SplitFate,
}

/// Label base for split-event rng forks. Disjoint from the fault
/// schedule's `(p << 24) | r` labels and the site/crawl tiers.
const SPLIT_LABEL: u64 = 0x5911_0000;

/// A deterministic schedule of split attempts over a horizon, following
/// the same label-forked discipline as `FaultSchedule`/`AgentSchedule`:
/// event `i` draws from `rng.fork(SPLIT_LABEL | i)`, so schedules are
/// dimension-stable — asking for more events never changes the earlier
/// ones' draws.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitSchedule {
    events: Vec<SplitEvent>,
    horizon: SimTime,
}

impl SplitSchedule {
    /// `splits` crash-free split attempts at label-forked times in
    /// `[1, horizon]`, sorted by time (ties keep draw order).
    pub fn generate(splits: usize, horizon: SimTime, seed: u64) -> Self {
        Self::generate_with_crashes(splits, horizon, seed, 0.0)
    }

    /// As [`generate`], but each event independently draws a crash
    /// fate: before-publish with probability `crash_rate / 2`,
    /// after-publish with `crash_rate / 2`, else a clean commit.
    ///
    /// [`generate`]: SplitSchedule::generate
    pub fn generate_with_crashes(
        splits: usize,
        horizon: SimTime,
        seed: u64,
        crash_rate: f64,
    ) -> Self {
        assert!(horizon > 0, "zero horizon");
        assert!((0.0..=1.0).contains(&crash_rate), "crash rate out of [0, 1]");
        let root = SimRng::new(seed);
        let mut events: Vec<SplitEvent> = (0..splits)
            .map(|i| {
                let mut rng = root.fork(SPLIT_LABEL | i as u64);
                let at = 1 + rng.below(horizon);
                let draw = rng.f64();
                let fate = if draw < crash_rate / 2.0 {
                    SplitFate::CrashBeforePublish
                } else if draw < crash_rate {
                    SplitFate::CrashAfterPublish
                } else {
                    SplitFate::Commit
                };
                SplitEvent { at, fate }
            })
            .collect();
        events.sort_by_key(|e| e.at);
        SplitSchedule { events, horizon }
    }

    /// A hand-written schedule (tests, replays).
    pub fn from_events(mut events: Vec<SplitEvent>, horizon: SimTime) -> Self {
        events.sort_by_key(|e| e.at);
        SplitSchedule { events, horizon }
    }

    /// Events in firing order.
    pub fn events(&self) -> &[SplitEvent] {
        &self.events
    }

    /// Schedule horizon.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Number of scheduled attempts.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwr_text::index::build_index;
    use dwr_text::score::GlobalStats;

    fn corpus(n: usize) -> Corpus {
        (0..n)
            .map(|d| vec![(TermId(0), 1), (TermId(1 + (d % 3) as u32), 1 + (d % 5) as u32)])
            .collect()
    }

    fn round_robin(n: usize, k: usize) -> Vec<u32> {
        (0..n).map(|d| (d % k) as u32).collect()
    }

    #[test]
    fn initial_map_is_epoch_zero_all_active() {
        let ri = RepartIndex::build(corpus(10), &round_robin(10, 3), 3, 8);
        let snap = ri.snapshot();
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.active_parts(), vec![0, 1, 2]);
        assert!(snap.map().entries().iter().all(|e| e.parent.is_none() && e.epoch == 0));
        snap.validate_epoch().expect("epoch-0 map valid");
    }

    #[test]
    fn split_closes_parent_and_conserves_docs() {
        let ri = RepartIndex::build(corpus(10), &round_robin(10, 2), 2, 8);
        let before = ri.snapshot();
        let report = ri.split(0, SplitFate::Commit).expect("split");
        assert_eq!(report.children, vec![2, 3]);
        assert_eq!(report.epoch_before, 0);
        assert_eq!(report.epoch_after, 1);
        assert!(report.committed && !report.rolled_forward);
        assert_eq!(report.docs_split, 5);
        let after = ri.snapshot();
        assert_eq!(after.epoch(), 1);
        assert_eq!(after.active_parts(), vec![1, 2, 3]);
        assert!(!after.is_active(0));
        assert_eq!(
            after.map().entry(0).unwrap().status,
            PartStatus::Closed { children: vec![2, 3] }
        );
        // Children interleave the parent's docs: 5 docs -> 3 + 2.
        assert_eq!(after.sizes()[2] + after.sizes()[3], 5);
        assert!((after.sizes()[2] as i64 - after.sizes()[3] as i64).abs() <= 1);
        after.validate_epoch().expect("post-split map valid");
        // The old snapshot is untouched — stale but consistent.
        assert_eq!(before.epoch(), 0);
        before.validate_epoch().expect("stale snapshot still valid");
    }

    #[test]
    fn crash_before_publish_aborts_cleanly() {
        let ri = RepartIndex::build(corpus(10), &round_robin(10, 2), 2, 8);
        let report = ri.split(0, SplitFate::CrashBeforePublish).expect("attempt runs");
        assert!(!report.committed);
        assert_eq!(report.epoch_after, 0);
        assert!(report.children.is_empty());
        let snap = ri.snapshot();
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.active_parts(), vec![0, 1]);
        snap.validate_epoch().expect("aborted split leaves map intact");
        let stats = ri.repart_stats();
        assert_eq!(stats.splits_aborted, 1);
        assert_eq!(stats.splits_committed, 0);
    }

    #[test]
    fn crash_after_publish_rolls_forward() {
        let ri = RepartIndex::build(corpus(10), &round_robin(10, 2), 2, 8);
        let report = ri.split(1, SplitFate::CrashAfterPublish).expect("split");
        assert!(report.committed && report.rolled_forward);
        assert_eq!(ri.epoch(), 1);
        ri.validate().expect("rolled-forward map valid");
    }

    #[test]
    fn split_refusals() {
        let ri = RepartIndex::build(corpus(6), &round_robin(6, 2), 2, 5);
        assert_eq!(ri.split(9, SplitFate::Commit), Err(SplitError::OutOfRange(9)));
        // Capacity 5: first split (2 -> 4 slots) fits, second would need 6.
        ri.split(0, SplitFate::Commit).expect("first split fits");
        assert_eq!(
            ri.split(1, SplitFate::Commit),
            Err(SplitError::Capacity { need: 6, capacity: 5 })
        );
        let roomy = RepartIndex::build(corpus(6), &round_robin(6, 2), 2, 16);
        roomy.split(0, SplitFate::Commit).expect("split");
        assert_eq!(roomy.split(0, SplitFate::Commit), Err(SplitError::NotActive(0)));
        // A 1-doc partition refuses to split.
        let tiny = RepartIndex::build(corpus(3), &[0, 1, 1], 2, 16);
        assert_eq!(
            tiny.split(0, SplitFate::Commit),
            Err(SplitError::TooSmall { part: 0, docs: 1 })
        );
    }

    #[test]
    fn split_target_prefers_largest_then_lowest_id() {
        let ri = RepartIndex::build(corpus(7), &[0, 0, 0, 1, 1, 2, 2], 3, 16);
        assert_eq!(ri.split_target(), Some(0));
        ri.split(0, SplitFate::Commit).expect("split");
        // Now sizes: closed(3), 2, 2, 2, 1 -> largest active tie 1/2/3, pick 1.
        assert_eq!(ri.split_target(), Some(1));
    }

    #[test]
    fn corpus_stats_match_global_stats_at_every_epoch() {
        let c = corpus(12);
        let reference = build_index(&c);
        let cs = CorpusStats::from_corpus(&c);
        assert_eq!(cs.num_docs(), 12);
        assert_eq!(cs.avg_doc_len(), reference.avg_doc_len());
        let ri = RepartIndex::build(c, &round_robin(12, 2), 2, 8);
        for _ in 0..2 {
            let snap = ri.snapshot();
            let shards: Vec<_> =
                snap.active_parts().iter().map(|&p| snap.part(p as usize)).collect();
            for t in 0..4u32 {
                let gs = GlobalStats::for_terms(&shards, &[TermId(t)]);
                assert_eq!(cs.df(TermId(t)), gs.df(TermId(t)), "df(term {t})");
                assert_eq!(cs.num_docs(), gs.num_docs());
            }
            let target = ri.split_target().expect("splittable");
            ri.split(target, SplitFate::Commit).expect("split");
        }
    }

    #[test]
    fn corpus_stats_df_out_of_range_is_zero() {
        let cs = CorpusStats::from_corpus(&corpus(4));
        assert_eq!(cs.df(TermId(9999)), 0);
        let empty = CorpusStats::from_corpus(&Vec::new());
        assert_eq!(empty.num_docs(), 0);
        assert_eq!(empty.avg_doc_len(), 0.0);
    }

    #[test]
    fn schedule_is_deterministic_and_dimension_stable() {
        let a = SplitSchedule::generate_with_crashes(6, 1_000_000, 42, 0.5);
        let b = SplitSchedule::generate_with_crashes(6, 1_000_000, 42, 0.5);
        assert_eq!(a, b);
        assert!(a.events().windows(2).all(|w| w[0].at <= w[1].at));
        assert!(a.events().iter().all(|e| e.at >= 1 && e.at <= 1_000_000));
        // Dimension stability: a longer schedule contains the shorter
        // one's events as a sub-multiset (per-event draws are label-
        // forked, so earlier events never re-draw).
        let longer = SplitSchedule::generate_with_crashes(9, 1_000_000, 42, 0.5);
        for e in a.events() {
            let in_short = a.events().iter().filter(|x| *x == e).count();
            let in_long = longer.events().iter().filter(|x| *x == e).count();
            assert!(in_long >= in_short, "event {e:?} lost when lengthening");
        }
        let other = SplitSchedule::generate_with_crashes(6, 1_000_000, 43, 0.5);
        assert_ne!(a, other, "different seeds should differ");
    }

    #[test]
    fn snapshot_epoch_is_atomic_under_concurrent_splits() {
        use std::sync::atomic::AtomicBool;
        let ri = Arc::new(RepartIndex::build(corpus(64), &round_robin(64, 2), 2, 32));
        let stop = Arc::new(AtomicBool::new(false));
        let splitter = {
            let ri = Arc::clone(&ri);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while let Some(t) = ri.split_target() {
                    if ri.split(t, SplitFate::Commit).is_err() {
                        break;
                    }
                }
                stop.store(true, Ordering::Relaxed);
            })
        };
        let mut seen = 0u64;
        while !stop.load(Ordering::Relaxed) {
            let snap = ri.snapshot();
            snap.validate_epoch().expect("every snapshot internally consistent");
            assert!(snap.epoch() >= seen, "epochs move forward only");
            seen = snap.epoch();
        }
        splitter.join().expect("splitter thread");
        ri.validate().expect("final map valid");
    }
}
