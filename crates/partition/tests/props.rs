//! Property-based tests of partitioning invariants.

use dwr_partition::doc::{
    DocPartitioner, KMeansPartitioner, RandomPartitioner, RoundRobinPartitioner,
};
use dwr_partition::parted::{Corpus, PartitionedIndex};
use dwr_partition::term::{
    BinPackingTermPartitioner, CoOccurrenceTermPartitioner, QueryWorkload, RandomTermPartitioner,
    TermPartitioner,
};
use dwr_text::index::build_index;
use dwr_text::TermId;
use proptest::prelude::*;

fn corpus_strategy() -> impl Strategy<Value = Corpus> {
    prop::collection::vec(
        prop::collection::btree_map(0u32..100, 1u32..4, 0..12)
            .prop_map(|m| m.into_iter().map(|(t, tf)| (TermId(t), tf)).collect()),
        1..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every document partitioner produces a total, in-range assignment.
    #[test]
    fn doc_assignments_valid(corpus in corpus_strategy(), k in 1usize..8, seed in any::<u64>()) {
        let partitioners: Vec<Box<dyn DocPartitioner>> = vec![
            Box::new(RandomPartitioner { seed }),
            Box::new(RoundRobinPartitioner),
            Box::new(KMeansPartitioner { buckets: 16, iterations: 4, seed }),
        ];
        for p in &partitioners {
            let a = p.assign(&corpus, k);
            prop_assert_eq!(a.len(), corpus.len(), "{}", p.name());
            prop_assert!(a.iter().all(|&x| (x as usize) < k), "{}", p.name());
        }
    }

    /// A partitioned index preserves global statistics: per-term global df
    /// equals the monolithic df, and partition sizes sum to the corpus.
    #[test]
    fn partitioned_index_preserves_stats(corpus in corpus_strategy(), k in 1usize..6, seed in any::<u64>()) {
        let assignment = RandomPartitioner { seed }.assign(&corpus, k);
        let pi = PartitionedIndex::build(&corpus, &assignment, k);
        prop_assert_eq!(pi.sizes().iter().sum::<usize>(), corpus.len());
        let mono = build_index(&corpus);
        for (t, list) in mono.terms() {
            prop_assert_eq!(pi.global_df(t), u64::from(list.df()));
        }
    }

    /// Global/local doc-id translation is a bijection.
    #[test]
    fn id_translation_roundtrips(corpus in corpus_strategy(), k in 1usize..6, seed in any::<u64>()) {
        let assignment = RandomPartitioner { seed }.assign(&corpus, k);
        let pi = PartitionedIndex::build(&corpus, &assignment, k);
        for g in 0..corpus.len() as u32 {
            let (p, local) = pi.to_local(g);
            prop_assert_eq!(pi.to_global(p as usize, local), g);
        }
    }

    /// Term partitioners assign every indexed term to a valid server.
    #[test]
    fn term_assignments_valid(corpus in corpus_strategy(), k in 1usize..6) {
        let idx = build_index(&corpus);
        let workload = QueryWorkload {
            queries: vec![(vec![TermId(0), TermId(1)], 2.0), (vec![TermId(2)], 1.0)],
        };
        let partitioners: Vec<Box<dyn TermPartitioner>> = vec![
            Box::new(RandomTermPartitioner),
            Box::new(BinPackingTermPartitioner),
            Box::new(CoOccurrenceTermPartitioner::default()),
        ];
        for p in &partitioners {
            let a = p.assign(&idx, &workload, k);
            prop_assert_eq!(a.len(), idx.num_terms(), "{}", p.name());
            prop_assert!(a.values().all(|&s| (s as usize) < k), "{}", p.name());
        }
    }

    /// Greedy bin-packing never loads any server with more than the total
    /// weight minus what the emptiest holds... weaker but useful: the
    /// max-loaded bin under bin-packing is no worse than under the
    /// hash-random assignment for the same inputs.
    #[test]
    fn binpacking_no_worse_than_random(corpus in corpus_strategy(), k in 2usize..6) {
        let idx = build_index(&corpus);
        prop_assume!(idx.num_terms() >= k);
        let terms: Vec<TermId> = idx.terms().map(|(t, _)| t).collect();
        let workload = QueryWorkload {
            queries: terms.iter().map(|&t| (vec![t], 1.0)).collect(),
        };
        let eval = |a: &std::collections::HashMap<u32, u32>| {
            dwr_partition::term::evaluate_term_partition(&idx, &workload, a, k)
                .load
                .iter()
                .cloned()
                .fold(0.0f64, f64::max)
        };
        let packed = eval(&BinPackingTermPartitioner.assign(&idx, &workload, k));
        let random = eval(&RandomTermPartitioner.assign(&idx, &workload, k));
        prop_assert!(packed <= random + 1e-6, "packed={packed} random={random}");
    }
}
