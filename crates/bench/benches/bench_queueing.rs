//! Analytic-model benchmarks: Erlang-C, G/G/c curves, engine sizing.

use criterion::{criterion_group, criterion_main, Criterion};
use dwr_queueing::capacity::EngineModel;
use dwr_queueing::ggc::GgcModel;
use dwr_queueing::mmc::MMc;

fn bench_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("queueing");
    g.bench_function("erlang_c_150", |b| b.iter(|| MMc::new(10_000.0, 100.0, 150).prob_wait()));
    g.bench_function("fig6_curve", |b| b.iter(|| GgcModel::capacity_curve(150, 0.001, 0.1, 100)));
    g.bench_function("engine_sizing", |b| b.iter(|| EngineModel::default_2007().evaluate()));
    g.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
