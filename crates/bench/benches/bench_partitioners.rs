//! Partitioner benchmarks: document (random / k-means) and term
//! (random / bin-packing / co-occurrence).

use criterion::{criterion_group, criterion_main, Criterion};
use dwr_bench::{Fixture, Scale};
use dwr_partition::doc::{DocPartitioner, KMeansPartitioner, RandomPartitioner};
use dwr_partition::term::{
    BinPackingTermPartitioner, CoOccurrenceTermPartitioner, QueryWorkload, RandomTermPartitioner,
    TermPartitioner,
};
use dwr_text::index::build_index;

fn bench_partitioners(c: &mut Criterion) {
    let f = Fixture::new(Scale::Small);
    let index = build_index(&f.corpus);
    let workload =
        QueryWorkload { queries: f.query_terms(256).into_iter().map(|q| (q, 1.0)).collect() };
    let mut g = c.benchmark_group("partitioners");
    g.sample_size(10);
    g.bench_function("doc_random", |b| {
        b.iter(|| RandomPartitioner { seed: 1 }.assign(&f.corpus, 8))
    });
    g.bench_function("doc_kmeans", |b| {
        b.iter(|| KMeansPartitioner::default().assign(&f.corpus, 8))
    });
    g.bench_function("term_random", |b| {
        b.iter(|| RandomTermPartitioner.assign(&index, &workload, 8))
    });
    g.bench_function("term_binpack", |b| {
        b.iter(|| BinPackingTermPartitioner.assign(&index, &workload, 8))
    });
    g.bench_function("term_cooccurrence", |b| {
        b.iter(|| CoOccurrenceTermPartitioner::default().assign(&index, &workload, 8))
    });
    g.finish();
}

criterion_group!(benches, bench_partitioners);
criterion_main!(benches);
