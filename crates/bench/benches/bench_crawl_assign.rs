//! Crawler assignment benchmarks: hash vs consistent-hash lookup cost, and
//! a small end-to-end crawl.

use criterion::{criterion_group, criterion_main, Criterion};
use dwr_bench::{Fixture, Scale, SEED};
use dwr_crawler::assign::{ConsistentHashAssigner, HashAssigner, UrlAssigner};
use dwr_crawler::sim::{CrawlConfig, DistributedCrawl};
use dwr_webgraph::graph::HostId;
use dwr_webgraph::qos::QosConfig;

fn bench_assign(c: &mut Criterion) {
    let f = Fixture::new(Scale::Small);
    let plain = HashAssigner::new(16);
    let cons = ConsistentHashAssigner::new(16, 128);
    let mut g = c.benchmark_group("crawl_assign");
    g.bench_function("hash_lookup", |b| {
        b.iter(|| {
            (0..f.web.num_hosts() as u32)
                .map(|h| plain.agent_for(HostId(h), &f.web).0 as u64)
                .sum::<u64>()
        })
    });
    g.bench_function("consistent_lookup", |b| {
        b.iter(|| {
            (0..f.web.num_hosts() as u32)
                .map(|h| cons.agent_for(HostId(h), &f.web).0 as u64)
                .sum::<u64>()
        })
    });
    g.sample_size(10);
    g.bench_function("small_crawl_end_to_end", |b| {
        b.iter(|| {
            let cfg = CrawlConfig {
                agents: 4,
                connections_per_agent: 8,
                politeness_delay: dwr_sim::SECOND / 2,
                qos: QosConfig { flaky_fraction: 0.0, slow_fraction: 0.0, ..QosConfig::default() },
                ..CrawlConfig::default()
            };
            DistributedCrawl::new(&f.web, HashAssigner::new(4), cfg, SEED).run()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_assign);
criterion_main!(benches);
