//! Cache-policy benchmarks over a Zipf query stream.

use criterion::{criterion_group, criterion_main, Criterion};
use dwr_query::cache::{LfuCache, LruCache, ResultCache, SdcCache};
use dwr_sim::dist::Zipf;
use dwr_sim::SimRng;

fn stream(n: usize) -> Vec<u64> {
    let zipf = Zipf::new(100_000, 1.0);
    let mut rng = SimRng::new(99);
    (0..n).map(|_| zipf.sample(&mut rng)).collect()
}

fn run(cache: &mut dyn ResultCache, keys: &[u64]) -> f64 {
    for &k in keys {
        if cache.get(k).is_none() {
            cache.put(k, Vec::new());
        }
    }
    cache.stats().hit_ratio()
}

fn bench_caches(c: &mut Criterion) {
    let keys = stream(100_000);
    let top: Vec<u64> = (1..=4096).collect();
    let mut g = c.benchmark_group("cache");
    g.bench_function("lru_8k", |b| b.iter(|| run(&mut LruCache::new(8192), &keys)));
    g.bench_function("lfu_8k", |b| b.iter(|| run(&mut LfuCache::new(8192), &keys)));
    g.bench_function("sdc_8k", |b| b.iter(|| run(&mut SdcCache::new(8192, 0.5, &top), &keys)));
    g.finish();
}

criterion_group!(benches, bench_caches);
criterion_main!(benches);
