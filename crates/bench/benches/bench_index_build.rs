//! Index-construction benchmarks: single-pass vs sort-based vs parallel
//! (Section 4's construction strategies, local costs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dwr_bench::{Fixture, Scale};
use dwr_text::index::{build_index, parallel_build, sort_based_build};

fn bench_builders(c: &mut Criterion) {
    let f = Fixture::new(Scale::Small);
    let mut g = c.benchmark_group("index_build");
    g.sample_size(10);
    g.bench_function("single_pass", |b| b.iter(|| build_index(&f.corpus)));
    g.bench_function("sort_based", |b| b.iter(|| sort_based_build(&f.corpus)));
    for threads in [2usize, 4] {
        g.bench_with_input(BenchmarkId::new("parallel", threads), &threads, |b, &t| {
            b.iter(|| parallel_build(&f.corpus, t))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_builders);
criterion_main!(benches);
