//! Conjunctive intersection: skip-pointer galloping vs linear merge
//! (the "skip-lists" index-access structure of Section 4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dwr_text::postings::{PostingList, PostingListBuilder};
use dwr_text::skips::{intersect, intersect_scan, SkipList};
use dwr_text::DocId;

fn make_list(n: u32, stride: u32) -> PostingList {
    let mut b = PostingListBuilder::new();
    for i in 0..n {
        b.push(DocId(i * stride), 1);
    }
    b.finish()
}

fn bench_intersect(c: &mut Criterion) {
    let mut g = c.benchmark_group("intersect");
    // Short list (1k) against long lists of growing size.
    let short = make_list(1_000, 97);
    let short_skip = SkipList::with_sqrt_stride(&short);
    for long_n in [10_000u32, 100_000] {
        let long = make_list(long_n, 3);
        let long_skip = SkipList::with_sqrt_stride(&long);
        g.bench_with_input(BenchmarkId::new("skip_gallop", long_n), &long_n, |b, _| {
            b.iter(|| intersect(&short_skip, &long_skip))
        });
        g.bench_with_input(BenchmarkId::new("linear_scan", long_n), &long_n, |b, _| {
            b.iter(|| intersect_scan(&short, &long))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_intersect);
criterion_main!(benches);
