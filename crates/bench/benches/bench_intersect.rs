//! Conjunctive intersection: the block-max cursor (`next_geq` over the
//! encoded stream) vs the legacy decoded skip-pointer gallop vs linear
//! merge (the "skip-lists" index-access structure of Section 4).
//!
//! The legacy path decodes both lists into `Vec`s and builds explicit
//! skip towers; the blocked path gallops directly over the compressed
//! stream using the per-block `last_doc` ladder, touching only the
//! blocks that can contain a match.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dwr_text::postings::{PostingList, PostingListBuilder};
use dwr_text::skips::{intersect, intersect_blocked, intersect_scan, SkipList};
use dwr_text::DocId;

fn make_list(n: u32, stride: u32) -> PostingList {
    let mut b = PostingListBuilder::new();
    for i in 0..n {
        b.push(DocId(i * stride), 1);
    }
    b.finish()
}

fn bench_intersect(c: &mut Criterion) {
    let mut g = c.benchmark_group("intersect");
    // Short list (1k) against long lists of growing size.
    let short = make_list(1_000, 97);
    let short_skip = SkipList::with_sqrt_stride(&short);
    for long_n in [10_000u32, 100_000] {
        let long = make_list(long_n, 3);
        let long_skip = SkipList::with_sqrt_stride(&long);
        g.bench_with_input(BenchmarkId::new("blocked_cursor", long_n), &long_n, |b, _| {
            b.iter(|| intersect_blocked(&short, &long))
        });
        g.bench_with_input(BenchmarkId::new("legacy_skip_gallop", long_n), &long_n, |b, _| {
            b.iter(|| intersect(&short_skip, &long_skip))
        });
        g.bench_with_input(BenchmarkId::new("linear_scan", long_n), &long_n, |b, _| {
            b.iter(|| intersect_scan(&short, &long))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_intersect);
criterion_main!(benches);
