//! Query-evaluation benchmarks: monolithic vs document-partitioned
//! scatter-gather vs pipelined term-partitioned.

use criterion::{criterion_group, criterion_main, Criterion};
use dwr_bench::{Fixture, Scale};
use dwr_partition::doc::{DocPartitioner, RandomPartitioner};
use dwr_partition::parted::PartitionedIndex;
use dwr_partition::term::{QueryWorkload, RandomTermPartitioner, TermPartitioner};
use dwr_query::broker::DocBroker;
use dwr_query::pipeline::PipelinedTermEngine;
use dwr_text::index::build_index;
use dwr_text::score::Bm25;
use dwr_text::search::search_or;

fn bench_eval(c: &mut Criterion) {
    let f = Fixture::new(Scale::Small);
    let queries = f.query_terms(64);
    let global = build_index(&f.corpus);
    let assignment = RandomPartitioner { seed: 1 }.assign(&f.corpus, 8);
    let pi = PartitionedIndex::build(&f.corpus, &assignment, 8);
    let workload = QueryWorkload { queries: queries.iter().map(|q| (q.clone(), 1.0)).collect() };
    let term_assign = RandomTermPartitioner.assign(&global, &workload, 8);

    let mut g = c.benchmark_group("query_eval");
    g.bench_function("monolithic", |b| {
        b.iter(|| {
            for q in &queries {
                search_or(&global, q, 10, &Bm25::default(), &global);
            }
        })
    });
    g.bench_function("doc_partitioned_8", |b| {
        b.iter(|| {
            let mut broker = DocBroker::single_site(&pi);
            for q in &queries {
                broker.query(q, 10);
            }
        })
    });
    g.bench_function("term_pipelined_8", |b| {
        b.iter(|| {
            let mut eng = PipelinedTermEngine::single_site(&global, term_assign.clone(), 8);
            for q in &queries {
                eng.query(q, 10);
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_eval);
criterion_main!(benches);
