//! Query-evaluation benchmarks: monolithic vs document-partitioned
//! scatter-gather vs pipelined term-partitioned, and sequential vs
//! parallel scatter at increasing partition counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dwr_bench::{Fixture, Scale};
use dwr_partition::doc::{DocPartitioner, RandomPartitioner};
use dwr_partition::parted::PartitionedIndex;
use dwr_partition::term::{QueryWorkload, RandomTermPartitioner, TermPartitioner};
use dwr_query::broker::DocBroker;
use dwr_query::pipeline::PipelinedTermEngine;
use dwr_text::index::build_index;
use dwr_text::score::Bm25;
use dwr_text::search::search_or;

fn bench_eval(c: &mut Criterion) {
    let f = Fixture::new(Scale::Small);
    let queries = f.query_terms(64);
    let global = build_index(&f.corpus);
    let assignment = RandomPartitioner { seed: 1 }.assign(&f.corpus, 8);
    let pi = PartitionedIndex::build(&f.corpus, &assignment, 8);
    let workload = QueryWorkload { queries: queries.iter().map(|q| (q.clone(), 1.0)).collect() };
    let term_assign = RandomTermPartitioner.assign(&global, &workload, 8);

    let mut g = c.benchmark_group("query_eval");
    g.bench_function("monolithic", |b| {
        b.iter(|| {
            for q in &queries {
                search_or(&global, q, 10, &Bm25::default(), &global);
            }
        })
    });
    let broker = DocBroker::single_site(&pi);
    g.bench_function("doc_partitioned_8", |b| {
        b.iter(|| {
            for q in &queries {
                broker.query(q, 10);
            }
        })
    });
    g.bench_function("term_pipelined_8", |b| {
        b.iter(|| {
            let mut eng = PipelinedTermEngine::single_site(&global, term_assign.clone(), 8);
            for q in &queries {
                eng.query(q, 10);
            }
        })
    });
    g.finish();
}

/// Sequential vs parallel scatter-gather over the same partitioned
/// index. Both paths produce bit-identical results; this group measures
/// the wall-clock gap as partitions grow, at the corpus scale where
/// partitioning is actually motivated (the Medium fixture). Parallel
/// pays a fixed pool hand-off per partition, so its advantage appears
/// once per-partition work dominates that overhead **and** the host has
/// cores for the workers: on a single-hardware-thread machine the
/// parallel numbers degenerate to sequential-plus-overhead, so read
/// this comparison on a multi-core host.
fn bench_scatter(c: &mut Criterion) {
    let f = Fixture::new(Scale::Medium);
    let queries = f.query_terms(32);
    let mut g = c.benchmark_group("scatter_seq_vs_par");
    for &parts in &[2usize, 4, 8] {
        let assignment = RandomPartitioner { seed: 1 }.assign(&f.corpus, parts);
        let pi = PartitionedIndex::build(&f.corpus, &assignment, parts);
        let seq = DocBroker::single_site(&pi);
        let par = DocBroker::single_site(&pi).parallel(parts);
        g.bench_with_input(BenchmarkId::new("sequential", parts), &parts, |b, _| {
            b.iter(|| {
                for q in &queries {
                    seq.query(q, 50);
                }
            })
        });
        g.bench_with_input(BenchmarkId::new("parallel", parts), &parts, |b, _| {
            b.iter(|| {
                for q in &queries {
                    par.query(q, 50);
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_eval, bench_scatter);
criterion_main!(benches);
