//! Shared fixtures for the figure/table regeneration binaries and the
//! criterion benches.
//!
//! Every regeneration binary (`table1`, `fig2`, `fig5`, `fig6`, `exp_*`)
//! builds its workload from these helpers so the experiments stay
//! mutually consistent: one web, one content model, one query model per
//! scale, all derived from the fixed `SEED`.

use dwr_partition::parted::{corpus_from_web, Corpus};
use dwr_querylog::model::QueryModel;
use dwr_text::TermId;
use dwr_webgraph::content::ContentModel;
use dwr_webgraph::generate::{generate_web, WebConfig};
use dwr_webgraph::SyntheticWeb;

/// The master seed of all regeneration runs.
pub const SEED: u64 = 20070415;

/// A fixture scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Fast: used in benches and smoke runs.
    Small,
    /// The figure-regeneration default.
    Medium,
}

/// A complete experiment fixture.
pub struct Fixture {
    /// The synthetic Web.
    pub web: SyntheticWeb,
    /// Its content model.
    pub content: ContentModel,
    /// The derived corpus in `dwr-text` term space.
    pub corpus: Corpus,
    /// The query universe.
    pub queries: QueryModel,
}

impl Fixture {
    /// Build the fixture at a scale.
    pub fn new(scale: Scale) -> Self {
        let web_cfg = match scale {
            Scale::Small => {
                let mut c = WebConfig::tiny();
                c.num_pages = 2_000;
                c.num_hosts = 100;
                c
            }
            Scale::Medium => WebConfig::medium(),
        };
        let web = generate_web(&web_cfg, SEED);
        let content = ContentModel::small(web_cfg.num_topics);
        let corpus = corpus_from_web(&web, &content, SEED);
        let universe = match scale {
            Scale::Small => 1_000,
            Scale::Medium => 5_000,
        };
        let queries = QueryModel::generate(&content, universe, 0.8, 0.9, SEED ^ 0xF00D);
        Fixture { web, content, corpus, queries }
    }

    /// Term vectors of the first `n` distinct queries (by popularity).
    pub fn query_terms(&self, n: usize) -> Vec<Vec<TermId>> {
        (0..n.min(self.queries.universe()))
            .map(|i| {
                self.queries
                    .query(dwr_querylog::model::QueryId(i as u32))
                    .terms
                    .iter()
                    .map(|t| TermId(t.0))
                    .collect()
            })
            .collect()
    }
}

/// True when `--smoke` was passed: regeneration binaries then shrink
/// their workloads to CI scale.
pub fn smoke_requested() -> bool {
    std::env::args().any(|a| a == "--smoke")
}

/// True when `--json` was passed: regeneration binaries then also write
/// their headline numbers to a machine-readable `BENCH_<name>.json`
/// next to the text report (see [`emit_json`]).
pub fn json_requested() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Write `value` to `BENCH_<name>.json` in the current directory. Every
/// regeneration binary that supports `--json` funnels through here so
/// the artifact naming stays uniform for CI collection.
pub fn emit_json(name: &str, value: &dwr_obs::Json) {
    let path = format!("BENCH_{name}.json");
    match std::fs::write(&path, value.render() + "\n") {
        Ok(()) => println!("\n[json] wrote {path}"),
        Err(e) => eprintln!("[json] failed to write {path}: {e}"),
    }
}

/// Format a bar of width proportional to `value / max` (for terminal
/// "figures").
pub fn bar(value: f64, max: f64, width: usize) -> String {
    let filled = if max > 0.0 { ((value / max) * width as f64).round() as usize } else { 0 };
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < filled.min(width) { '#' } else { ' ' });
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_builds_small() {
        let f = Fixture::new(Scale::Small);
        assert_eq!(f.corpus.len(), f.web.num_pages());
        assert!(f.queries.universe() > 0);
        assert_eq!(f.query_terms(5).len(), 5);
    }

    #[test]
    fn bar_renders() {
        assert_eq!(bar(5.0, 10.0, 10), "#####     ");
        assert_eq!(bar(0.0, 10.0, 4), "    ");
        assert_eq!(bar(10.0, 10.0, 4), "####");
    }
}
