//! Experiment **E12**: the conclusion's analytical engine model.
//!
//! "A valuable tool would be an analytical model of such a system that,
//! given parameters such as data volume and query throughput, can
//! characterize a particular system in terms of response time, index size,
//! hardware, network bandwidth, and maintenance cost."
//!
//! Run: `cargo run -p dwr-bench --bin exp_capacity_model`

use dwr_queueing::capacity::EngineModel;

fn main() {
    println!("E12. Analytical engine model: sweep data volume and query rate.\n");
    let base = EngineModel::default_2007();

    println!("(a) data-volume sweep (query rate fixed at {:.0} qps mean):", base.qps);
    println!(
        "  {:>10} {:>10} {:>9} {:>10} {:>12} {:>12}",
        "pages (B)", "parts", "replicas", "machines", "resp (ms)", "capex (M$)"
    );
    for factor in [0.25, 1.0, 4.0, 16.0] {
        let m = EngineModel { pages: base.pages * factor, ..base };
        if let Some(s) = m.evaluate() {
            println!(
                "  {:>10.0} {:>10} {:>9} {:>10} {:>12.1} {:>12.1}",
                m.pages / 1e9,
                s.partitions,
                s.replicas,
                s.machines,
                1000.0 * s.peak_response_time,
                s.capex_dollars / 1e6
            );
        }
    }

    println!("\n(b) query-rate sweep (20 B pages):");
    println!(
        "  {:>10} {:>10} {:>9} {:>10} {:>12} {:>14}",
        "mean qps", "parts", "replicas", "machines", "resp (ms)", "net (GB/s)"
    );
    for qps in [500.0, 2_000.0, 10_000.0, 50_000.0] {
        let m = EngineModel { qps, ..base };
        if let Some(s) = m.evaluate() {
            println!(
                "  {:>10.0} {:>10} {:>9} {:>10} {:>12.1} {:>14.2}",
                qps,
                s.partitions,
                s.replicas,
                s.machines,
                1000.0 * s.peak_response_time,
                s.network_bytes_per_sec / 1e9
            );
        }
    }

    println!("\n(c) RAM-per-machine trade-off (fatter machines = fewer, slower partitions):");
    println!("  {:>10} {:>10} {:>12} {:>12}", "GB/machine", "parts", "svc (ms)", "resp (ms)");
    for gb in [4.0, 8.0, 32.0, 128.0] {
        let m = EngineModel { ram_per_machine: gb * 1e9, ..base };
        if let Some(s) = m.evaluate() {
            println!(
                "  {:>10.0} {:>10} {:>12.2} {:>12.1}",
                gb,
                s.partitions,
                1000.0 * s.mean_service,
                1000.0 * s.peak_response_time
            );
        }
    }
    println!("\npaper shape: machines scale ~linearly in data volume; replicas ~linearly in");
    println!("traffic; fat machines trade partition count for per-query service time —");
    println!("exactly the reasoning the conclusion wants designers to be able to do.");
}
