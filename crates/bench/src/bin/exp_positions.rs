//! Experiment **E13**: phrase search and the positional communication tax
//! (Section 5, communication).
//!
//! "When position information is used for proximity or phrase search,
//! however, the communication overhead between servers increases greatly
//! because it includes both the position of terms and the partially
//! resolved query."
//!
//! Run: `cargo run -p dwr-bench --bin exp_positions --release`

use dwr_bench::{Fixture, Scale, SEED};
use dwr_sim::SimRng;
use dwr_text::index::build_index;
use dwr_text::positions::PositionalIndex;
use dwr_webgraph::graph::TopicId;

fn main() {
    println!("E13. Positional postings: index/communication overhead and phrase search.\n");
    let f = Fixture::new(Scale::Small);

    // Re-expand the corpus into token sequences (positions need order).
    let rng = SimRng::new(SEED ^ 0x905);
    let docs: Vec<Vec<u32>> = f
        .corpus
        .iter()
        .enumerate()
        .map(|(d, tf)| {
            // Reconstruct a token stream consistent with the tf vector by
            // interleaving occurrences pseudo-randomly.
            let mut stream: Vec<u32> =
                tf.iter().flat_map(|&(t, c)| std::iter::repeat_n(t.0, c as usize)).collect();
            let mut doc_rng = rng.fork(d as u64);
            doc_rng.shuffle(&mut stream);
            stream
        })
        .collect();

    let plain = build_index(&f.corpus);
    let positional = PositionalIndex::build(&docs);
    println!("index size (2k docs):");
    println!("  plain postings (doc+tf):   {:>9.1} KB", plain.encoded_bytes() as f64 / 1024.0);
    println!("  positional postings:       {:>9.1} KB", positional.encoded_bytes() as f64 / 1024.0);
    println!(
        "  position overhead:          {:>8.1}x",
        positional.encoded_bytes() as f64 / plain.encoded_bytes() as f64
    );
    println!("\n(the pipelined term-partitioned engine ships slices of these lists between");
    println!("stages — the same factor multiplies its inter-server traffic for phrase");
    println!("queries, which is the paper's point about compressing positions well)\n");

    // Phrase queries: adjacent topical term pairs.
    let mut rng = SimRng::new(SEED ^ 0xF7A5E);
    let mut attempted = 0u32;
    let mut matched = 0u32;
    let mut and_docs = 0u64;
    let mut phrase_docs = 0u64;
    for _ in 0..200 {
        let topic = TopicId(rng.below(8) as u16);
        let q = f.content.sample_query_terms(topic, 2, &mut rng);
        if q.len() < 2 {
            continue;
        }
        attempted += 1;
        let phrase: Vec<u32> = q.iter().map(|t| t.0).collect();
        let ph = positional.phrase_search(&phrase);
        // Boolean AND baseline (same terms, no adjacency).
        let a = dwr_text::search::search_and(
            &plain,
            &q.iter().map(|t| dwr_text::TermId(t.0)).collect::<Vec<_>>(),
            10_000,
            &dwr_text::score::Bm25::default(),
            &plain,
        );
        and_docs += a.len() as u64;
        phrase_docs += ph.len() as u64;
        if !ph.is_empty() {
            matched += 1;
        }
    }
    println!("phrase vs Boolean AND over {attempted} two-term topical queries:");
    println!("  AND matches/query:      {:>8.1}", and_docs as f64 / f64::from(attempted));
    println!("  phrase matches/query:   {:>8.1}", phrase_docs as f64 / f64::from(attempted));
    println!("  queries with any phrase hit: {matched} of {attempted}");
    println!("\nshape: positional data costs a small-integer factor in index and transfer");
    println!("bytes, and exact-phrase semantics prune the AND result set hard.");
}
