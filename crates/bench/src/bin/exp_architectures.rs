//! Experiment **E16**: the four system classes — client/server,
//! peer-to-peer, federated, open (Section 5's classification).
//!
//! "In peer-to-peer systems (...) the total amount of resources available
//! for processing queries increases with the number of clients, assuming
//! that free-riding is not prevalent. (...) On open systems, parties may
//! allocate resources in a self-interested fashion."
//!
//! Run: `cargo run -p dwr-bench --bin exp_architectures`

use dwr_query::arch::Architecture;

fn main() {
    println!("E16. Capacity vs client population across the four system classes.\n");

    let cs = Architecture::ClientServer { servers: 100 };
    let p2p_good = Architecture::PeerToPeer { free_riding: 0.2, peer_strength: 0.005 };
    let p2p_freeride = Architecture::PeerToPeer { free_riding: 0.9, peer_strength: 0.005 };
    let fed = Architecture::Federated { site_servers: vec![40, 30, 30] };
    let open = Architecture::Open {
        site_servers: vec![40, 30, 30],
        foreign_priority: 0.4,
        foreign_fraction: 0.5,
    };

    println!(
        "{:>10} {:>14} {:>14} {:>14} {:>14} {:>14}",
        "clients", "client/srv", "p2p (fr=.2)", "p2p (fr=.9)", "federated", "open (.4/.5)"
    );
    for n in [1_000u64, 10_000, 100_000, 1_000_000] {
        println!(
            "{:>10} {:>14.0} {:>14.0} {:>14.0} {:>14.0} {:>14.0}",
            n,
            cs.capacity(n),
            p2p_good.capacity(n),
            p2p_freeride.capacity(n),
            fed.capacity(n),
            open.capacity(n)
        );
    }

    println!("\nsaturation at 0.1 qps per client:");
    let describe = |name: &str, a: &Architecture| match a.saturation_point(0.1) {
        None => println!("  {:<22} unbounded (supply per client exceeds demand)", name),
        Some(n) => println!("  {:<22} {} clients", name, n),
    };
    describe("client/server", &cs);
    describe("p2p (20% free riding)", &p2p_good);
    describe("p2p (90% free riding)", &p2p_freeride);
    describe("federated", &fed);
    describe("open (selfish)", &open);

    // The free-riding cliff: at what free-riding level does P2P stop
    // scaling for this demand?
    println!("\nfree-riding cliff for p2p at 0.1 qps/client (peer strength 0.005 => 0.5 qps):");
    for fr in [0.0, 0.5, 0.75, 0.79, 0.81, 0.9] {
        let a = Architecture::PeerToPeer { free_riding: fr, peer_strength: 0.005 };
        let verdict = match a.saturation_point(0.1) {
            None => "scales forever".to_owned(),
            Some(_) => "collapses".to_owned(),
        };
        println!("  free riding {:>4.0}% -> {verdict}", fr * 100.0);
    }
    println!("\npaper shape: server-side capacity is flat in clients; P2P grows with them");
    println!("until free riding crosses the supply/demand line (at 80% here); open-system");
    println!("self-interest taxes the federation's pooled capacity.");
}
