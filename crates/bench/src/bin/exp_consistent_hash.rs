//! Experiment **E2**: consistent hashing for crawler host assignment
//! (UbiCrawler \[6\]) vs plain modulo hashing.
//!
//! Measures (a) host/page balance over agents and (b) the fraction of
//! hosts that change owner when one agent leaves or joins — "with
//! consistent hashing, new agents enter the crawling system without
//! re-hashing all the server names".
//!
//! Run: `cargo run -p dwr-bench --bin exp_consistent_hash`

use dwr_bench::{Fixture, Scale};
use dwr_crawler::assign::{
    assignment_load, movement_fraction, AgentId, ConsistentHashAssigner, HashAssigner, UrlAssigner,
};
use dwr_sim::stats::Imbalance;

const AGENTS: u32 = 16;

fn main() {
    println!("E2. Host assignment: plain hashing vs consistent hashing, {AGENTS} agents.\n");
    let f = Fixture::new(Scale::Medium);

    let plain = HashAssigner::new(AGENTS);
    let consistent = ConsistentHashAssigner::new(AGENTS, 128);

    let report = |name: &str, a: &dyn UrlAssigner| {
        let load = assignment_load(a, &f.web);
        let hosts: Vec<f64> = load.hosts.iter().map(|&h| h as f64).collect();
        let pages: Vec<f64> = load.pages.iter().map(|&p| p as f64).collect();
        let hi = Imbalance::of(&hosts);
        let pi = Imbalance::of(&pages);
        println!(
            "  {:<18} host max/mean {:>5.2}  page max/mean {:>5.2}  page gini {:>5.3}",
            name, hi.max_over_mean, pi.max_over_mean, pi.gini
        );
    };
    println!("balance:");
    report("plain hash", &plain);
    report("consistent hash", &consistent);
    println!("  (page balance is worse than host balance for both: host sizes are Zipf —");
    println!("   'such a policy, however, does not consider the number of documents on servers')");

    println!("\nmembership change: fraction of hosts that move owner");
    println!("  {:<34} {:>10} {:>12}", "event", "plain", "consistent");
    // Remove agent 3.
    let mut plain_rm = plain.clone();
    plain_rm.remove_agent(AgentId(3));
    let mut cons_rm = consistent.clone();
    cons_rm.remove_agent(AgentId(3));
    println!(
        "  {:<34} {:>9.1}% {:>11.1}%",
        "agent 3 leaves (ideal 6.3%)",
        100.0 * movement_fraction(&plain, &plain_rm, &f.web),
        100.0 * movement_fraction(&consistent, &cons_rm, &f.web)
    );
    // Add agent 16.
    let mut plain_add = plain.clone();
    plain_add.add_agent(AgentId(16));
    let mut cons_add = consistent.clone();
    cons_add.add_agent(AgentId(16));
    println!(
        "  {:<34} {:>9.1}% {:>11.1}%",
        "agent 16 joins (ideal 5.9%)",
        100.0 * movement_fraction(&plain, &plain_add, &f.web),
        100.0 * movement_fraction(&consistent, &cons_add, &f.web)
    );
    println!("\npaper shape: plain hashing remaps nearly everything; consistent hashing");
    println!("moves only the departed/new agent's arc.");
}
