//! Regenerate **Table 1**: main modules × key issues, with pointers to the
//! modules of this repository implementing each cell.
//!
//! Run: `cargo run -p dwr-bench --bin table1`

fn main() {
    print!("{}", dwr_core::taxonomy::render_table1());
}
