//! Experiment **E24**: site-tier fault tolerance — availability vs
//! *site* replication under whole-site outage traces (Section 5).
//!
//! "We say that a site is unavailable if it is not possible to reach any
//! of the servers of this site." E23 measured replication *inside* one
//! site; this experiment replicates the **site itself**: r complete
//! serving stacks on a WAN ring, each with its own BIRN-like outage
//! timeline, queries routed to the nearest live site and failed over
//! across the WAN when that site is down or dies mid-query. A query is
//! `failed` only when *no* site is live — everything else is served
//! (possibly remotely, at a WAN latency cost) or explicitly shed.
//!
//! The trace generator is dimension-stable: the outage timelines for r
//! sites are a prefix of those for r+1, so each row faces the *same*
//! outages plus one extra site to absorb them — the failed rate can only
//! go down as r grows, and the table asserts exactly that.
//!
//! Run: `cargo run -p dwr-bench --bin exp_site_failover --release`
//! CI smoke: `cargo run -p dwr-bench --bin exp_site_failover --release -- --smoke --json`
//! (`--json` additionally writes `BENCH_site_failover.json`)

use dwr_avail::site::SiteConfig;
use dwr_avail::UpDownProcess;
use dwr_bench::{emit_json, json_requested, Fixture, Scale, SEED};
use dwr_obs::Json;
use dwr_partition::doc::{DocPartitioner, RandomPartitioner};
use dwr_partition::parted::PartitionedIndex;
use dwr_query::cache::LruCache;
use dwr_query::engine::DistributedEngine;
use dwr_query::faults::site_outage_traces;
use dwr_query::multisite::{MultiSiteConfig, MultiSiteEngine, SiteEngineSpec};
use dwr_sim::net::Topology;
use dwr_sim::{SimRng, SimTime, DAY, HOUR, MILLISECOND, MINUTE, SECOND};
use dwr_text::TermId;

const PARTITIONS: usize = 4;
const MAX_SITES: usize = 4;

/// One complete serving stack per site over the shared fixture index.
fn build_tier(
    pi: &PartitionedIndex,
    traces: Vec<dwr_avail::site::Site>,
    cfg: MultiSiteConfig,
) -> MultiSiteEngine<LruCache> {
    let n = traces.len();
    let sites = traces
        .into_iter()
        .enumerate()
        .map(|(s, outages)| SiteEngineSpec {
            region: s as u16,
            capacity_qps: 200.0,
            engine: DistributedEngine::new(pi, LruCache::new(256), 2),
            outages,
        })
        .collect();
    MultiSiteEngine::new(sites, Topology::geo_ring(n), cfg)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n_queries: usize = if smoke { 2_000 } else { 20_000 };
    let horizon: SimTime = 90 * DAY;

    println!("E24. Site-tier fault tolerance: availability vs site replication.\n");
    println!("(a) steady-state stream against whole-site outage traces");
    let f = Fixture::new(Scale::Small);
    let assignment = RandomPartitioner { seed: SEED }.assign(&f.corpus, PARTITIONS);
    let pi = PartitionedIndex::build(&f.corpus, &assignment, PARTITIONS);

    // BIRN-shaped outages (network-partition dominated), accelerated so
    // the replication effect is visible within the horizon: a site is
    // down ~10% of the time instead of the calibrated ~1%.
    let site_cfg = SiteConfig {
        servers: 2,
        network: UpDownProcess::exponential(3 * DAY, 8 * HOUR),
        server: UpDownProcess::exponential(10 * DAY, 12 * HOUR),
    };
    let trace_seed = SEED ^ 0x517E;
    println!(
        "stream: {n_queries} Zipf queries over {} simulated days, {PARTITIONS} partitions/site,",
        horizon / DAY
    );
    println!("WAN ring topology, deadline 2 s, max 3 attempts, MTBF 3 d / MTTR 8 h per site\n");

    println!(
        "  {:>2} {:>8} {:>8} {:>7} {:>8} {:>6} {:>10} {:>8} {:>9}",
        "r", "local%", "remote%", "shed%", "failed%", "hops", "addlat", "down%", "answered%"
    );
    let mut failed_rates = Vec::new();
    let mut json_rows = Vec::new();
    for n_sites in 1..=MAX_SITES {
        // Dimension-stable: these traces extend the previous row's.
        let traces = site_outage_traces(n_sites, &site_cfg, horizon, trace_seed);
        let mean_down = traces.iter().map(|t| 1.0 - t.availability()).sum::<f64>() / n_sites as f64;
        let engine = build_tier(&pi, traces, MultiSiteConfig::default());
        // The identical query stream for every row.
        let mut rng = SimRng::new(SEED ^ 0x0F42);
        for i in 0..n_queries {
            let t = i as SimTime * horizon / n_queries as SimTime;
            engine.advance_to(t);
            let qid = f.queries.sample(&mut rng);
            let terms: Vec<TermId> =
                f.queries.query(qid).terms.iter().map(|t| TermId(t.0)).collect();
            let region = rng.below(MAX_SITES as u64) as u16;
            engine.query(region, &terms, 10);
        }
        let s = engine.stats();
        assert_eq!(s.total(), n_queries as u64, "every query accounted for: {s:?}");
        let pct = |c: u64| 100.0 * c as f64 / n_queries as f64;
        let failed = pct(s.failed);
        let add_ms = if s.answered() > 0 {
            s.added_latency_us as f64 / s.answered() as f64 / MILLISECOND as f64
        } else {
            0.0
        };
        println!(
            "  {:>2} {:>8.2} {:>8.2} {:>7.2} {:>8.2} {:>6} {:>8.1}ms {:>8.1} {:>9.2}",
            n_sites,
            pct(s.served_local),
            pct(s.served_remote),
            pct(s.shed()),
            failed,
            s.wan_hops,
            add_ms,
            100.0 * mean_down,
            100.0 - failed - pct(s.shed()),
        );
        failed_rates.push(failed);
        json_rows.push(Json::obj([
            ("sites", n_sites.into()),
            ("served_local", s.served_local.into()),
            ("served_remote", s.served_remote.into()),
            ("shed", s.shed().into()),
            ("failed", s.failed.into()),
            ("wan_hops", s.wan_hops.into()),
            ("added_latency_us", s.added_latency_us.into()),
            ("failovers", s.failovers.into()),
            ("mean_site_downtime", mean_down.into()),
        ]));
    }

    for pair in failed_rates.windows(2) {
        assert!(
            pair[1] <= pair[0],
            "failed rate must not increase with site replication: {failed_rates:?}"
        );
    }
    println!("\ncheck: failed rate is monotonically non-increasing in r  [ok]");

    // (b) Load shedding under a regional burst: a 3-site tier where the
    // local site's admission quota is exceeded — overflow spills to the
    // next-nearest live site, and once every site is saturated the rest
    // is shed explicitly rather than dropped.
    println!("\n(b) admission control: one-second burst of 30 queries into a 10 qps tier");
    let traces = site_outage_traces(3, &site_cfg, horizon, trace_seed);
    let cfg =
        MultiSiteConfig { shed_threshold: 0.8, util_window: SECOND, ..MultiSiteConfig::default() };
    let sites = traces
        .into_iter()
        .enumerate()
        .map(|(s, outages)| SiteEngineSpec {
            region: s as u16,
            capacity_qps: 5.0,
            engine: DistributedEngine::new(&pi, LruCache::new(64), 2),
            outages,
        })
        .collect();
    let engine = MultiSiteEngine::new(sites, Topology::geo_ring(3), cfg);
    engine.advance_to(10 * MINUTE); // a quiet, all-sites-up instant
    let mut rng = SimRng::new(SEED ^ 0xB057);
    for _ in 0..30 {
        let qid = f.queries.sample(&mut rng);
        let terms: Vec<TermId> = f.queries.query(qid).terms.iter().map(|t| TermId(t.0)).collect();
        engine.query(0, &terms, 10);
    }
    let s = engine.stats();
    assert_eq!(s.total(), 30, "burst fully accounted for: {s:?}");
    println!(
        "  {} served locally, {} spilled to remote sites, {} shed (overload), {} lost",
        s.served_local,
        s.served_remote,
        s.shed_overload,
        30 - s.total(),
    );

    println!("\npaper shape: one site alone leaves its outages on the user; each added site");
    println!("absorbs an order of magnitude of failures at the price of WAN round trips on");
    println!("the failed-over fraction, and admission control turns overload into explicit");
    println!("shedding and spill instead of silent loss.");

    if json_requested() {
        emit_json(
            "site_failover",
            &Json::obj([
                ("experiment", Json::str("E24")),
                ("smoke", smoke.into()),
                ("queries", n_queries.into()),
                ("replication", Json::Arr(json_rows)),
                (
                    "burst",
                    Json::obj([
                        ("served_local", s.served_local.into()),
                        ("served_remote", s.served_remote.into()),
                        ("shed_overload", s.shed_overload.into()),
                    ]),
                ),
            ]),
        );
    }
}
