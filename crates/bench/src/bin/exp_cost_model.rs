//! Experiment **E1**: the introduction's back-of-the-envelope sizing.
//!
//! Run: `cargo run -p dwr-bench --bin exp_cost_model`

use dwr_queueing::cost::CostModel;

fn main() {
    println!("E1. Section 1 cost model: paper-stated vs computed.\n");
    let r = CostModel::paper_2007().evaluate();
    println!("2007 engine (20 billion pages, 173M queries/day):");
    println!("  {:<38} {:>14} {:>14}", "quantity", "paper", "computed");
    println!("  {:<38} {:>14} {:>14.0}", "text volume (TB)", "100", r.text_bytes / 1e12);
    println!("  {:<38} {:>14} {:>14.0}", "index size (TB)", "~25", r.index_bytes / 1e12);
    println!("  {:<38} {:>14} {:>14.0}", "machines per cluster", "~3,000", r.machines_per_cluster);
    println!("  {:<38} {:>14} {:>14.0}", "peak queries/second", "~10,000", r.peak_qps);
    println!("  {:<38} {:>14} {:>14.0}", "cluster replicas", ">=10", r.clusters);
    println!("  {:<38} {:>14} {:>14.0}", "total machines", ">=30,000", r.total_machines);
    println!("  {:<38} {:>14} {:>14.1}", "hardware cost (M$)", ">100", r.hardware_dollars / 1e6);

    let p = CostModel::paper_2010_projection().evaluate();
    println!("\n2010 conservative projection:");
    println!("  {:<38} {:>14} {:>14.0}", "machines per cluster", "~50,000", p.machines_per_cluster);
    println!("  {:<38} {:>14} {:>14.2}", "total machines (M)", ">=1.5", p.total_machines / 1e6);
    println!("\n\"...which is unreasonable\" -- the paper's motivation for distribution.");
}
