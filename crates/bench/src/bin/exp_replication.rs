//! Experiment **E9**: replication degree vs availability vs storage
//! overhead (Section 5, dependability).
//!
//! "Having all query processors storing the same data (...) achieves the
//! best availability level possible. This is likely to impose a
//! significant and unnecessary overhead (...) an open question is how to
//! replicate data in such a way that the system achieves adequate levels
//! of availability with minimal storage overhead."
//!
//! Run: `cargo run -p dwr-bench --bin exp_replication`

use dwr_avail::placement::{Placement, PlacementStrategy};
use dwr_avail::quorum;
use dwr_bench::SEED;
use dwr_sim::SimRng;

fn main() {
    println!("E9. Replication: availability vs storage overhead.\n");

    let n_sites = 10u32;
    let objects = 64usize; // index shards
    let site_avail: Vec<f64> = (0..n_sites).map(|i| 0.88 + 0.01 * f64::from(i % 8)).collect();
    let mut rng = SimRng::new(SEED ^ 0x9E9);

    println!("(a) shard placement over {n_sites} sites (~0.9 each), {objects} shards:");
    println!(
        "  {:<12} {:>3} {:>14} {:>16} {:>14}",
        "strategy", "r", "object avail", "query success", "storage x"
    );
    for r in 1..=4u32 {
        for strat in [PlacementStrategy::Random, PlacementStrategy::RoundRobin] {
            let p = Placement::new(strat, objects, n_sites, r, &site_avail, &mut rng);
            let (obj, query) = p.estimate(&site_avail, 20_000, &mut rng);
            println!(
                "  {:<12} {:>3} {:>13.3}% {:>15.1}% {:>14.1}",
                format!("{strat:?}"),
                r,
                100.0 * obj,
                100.0 * query,
                p.storage_overhead()
            );
        }
    }

    println!("\n(b) user-state quorum availability (per-replica availability 0.9):");
    println!("  {:<12} {:>10} {:>10} {:>10}", "replicas", "read-one", "majority", "write-all");
    for n in [1u32, 3, 5, 7] {
        println!(
            "  {:<12} {:>9.3}% {:>9.3}% {:>9.3}%",
            n,
            100.0 * quorum::read_one(n, 0.9),
            100.0 * quorum::majority(n, 0.9),
            100.0 * quorum::write_all(n, 0.9)
        );
    }
    println!("\npaper shape: availability of full query coverage climbs steeply with r");
    println!("(r=1 queries almost always lose a shard; r=3 is near-perfect) while storage");
    println!("cost grows linearly — the trade-off the paper calls open. Majority quorums");
    println!("beat a single copy only when replicas are individually reliable.");
}
