//! Experiment **E23**: fault-injected serving — availability vs
//! replication degree under an `UpDownProcess` outage schedule
//! (Section 5, dependability).
//!
//! "Having all query processors storing the same data (...) achieves the
//! best availability level possible." E9 measured that trade-off with a
//! closed-form placement estimate; this experiment measures it *end to
//! end*: the same outage schedule drives replica liveness inside the
//! serving engine, queries race real outages (including mid-query
//! replica deaths hedged onto surviving replicas), and the table reports
//! what the user actually observed.
//!
//! Run: `cargo run -p dwr-bench --bin exp_failover --release`
//! CI smoke: `cargo run -p dwr-bench --bin exp_failover --release -- --smoke`

use std::sync::Arc;

use dwr_avail::UpDownProcess;
use dwr_bench::{Fixture, Scale, SEED};
use dwr_partition::doc::{DocPartitioner, RandomPartitioner};
use dwr_partition::parted::PartitionedIndex;
use dwr_partition::select::CoriSelector;
use dwr_query::cache::LruCache;
use dwr_query::engine::DistributedEngine;
use dwr_query::faults::FaultSchedule;
use dwr_sim::{SimRng, SimTime, DAY, HOUR};
use dwr_text::TermId;

const PARTITIONS: usize = 8;
const SELECT_M: usize = 2;
const MAX_REPLICAS: usize = 4;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n_queries: usize = if smoke { 2_000 } else { 20_000 };
    let horizon: SimTime = 30 * DAY;

    println!("E23. Fault-injected serving: availability vs replication degree.\n");
    println!("(a) steady-state stream against the outage schedule");
    let f = Fixture::new(Scale::Small);
    let assignment = RandomPartitioner { seed: SEED }.assign(&f.corpus, PARTITIONS);
    let pi = PartitionedIndex::build(&f.corpus, &assignment, PARTITIONS);
    let selector = Arc::new(CoriSelector::from_partitions(&pi));

    // Deliberately unreliable machines (MTBF 12h, MTTR 4h: 75% up) so
    // the replication effect is visible within the horizon. The schedule
    // generator is dimension-stable: replica streams for r coincide with
    // the first r streams for r+1, so each row faces the *same* outages
    // plus one more replica to absorb them.
    let process = UpDownProcess::exponential(12 * HOUR, 4 * HOUR);
    let schedule_seed = SEED ^ 0xFA11;
    println!(
        "stream: {n_queries} Zipf queries over {} simulated days, {PARTITIONS} partitions,",
        horizon / DAY
    );
    println!("CORI selection m={SELECT_M}, per-query deadline 1h, MTBF 12h / MTTR 4h (75% up)\n");

    println!(
        "  {:>2} {:>7} {:>7} {:>7} {:>7} {:>8} {:>7} {:>9} {:>9}",
        "r", "full%", "cache%", "stale%", "degr%", "failed%", "hedged", "down%", "answered%"
    );
    let mut failed_rates = Vec::new();
    for replicas in 1..=MAX_REPLICAS {
        let schedule = Arc::new(FaultSchedule::generate(
            PARTITIONS,
            replicas,
            &process,
            horizon,
            schedule_seed,
        ));
        let mean_down = (0..PARTITIONS)
            .flat_map(|p| (0..replicas).map(move |r| (p, r)))
            .map(|(p, r)| schedule.downtime(p, r) as f64 / horizon as f64)
            .sum::<f64>()
            / (PARTITIONS * replicas) as f64;
        let engine = DistributedEngine::new(&pi, LruCache::new(256), replicas)
            .with_selection(Arc::clone(&selector) as _, SELECT_M)
            .with_faults(schedule)
            .with_deadline(HOUR);
        // The identical query stream for every row.
        let mut rng = SimRng::new(SEED ^ 0x0F41);
        for i in 0..n_queries {
            let t = i as SimTime * horizon / n_queries as SimTime;
            engine.advance_to(t);
            let qid = f.queries.sample(&mut rng);
            let terms: Vec<TermId> =
                f.queries.query(qid).terms.iter().map(|t| TermId(t.0)).collect();
            engine.query_stale_ok(&terms, 10);
        }
        let s = engine.stats();
        let pct = |c: u64| 100.0 * c as f64 / n_queries as f64;
        let failed = pct(s.failed);
        println!(
            "  {:>2} {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>8.3} {:>7} {:>9.1} {:>9.2}",
            replicas,
            pct(s.full),
            pct(s.cache_hits),
            pct(s.stale),
            pct(s.degraded),
            failed,
            s.hedged,
            100.0 * mean_down,
            100.0 - failed,
        );
        failed_rates.push(failed);
    }

    for pair in failed_rates.windows(2) {
        assert!(
            pair[1] <= pair[0],
            "failed rate must not increase with replication: {failed_rates:?}"
        );
    }
    println!("\ncheck: failed rate is monotonically non-increasing in r  [ok]");

    // (b) The hedged-retry path in isolation. A 12h-MTBF outage almost
    // never *starts* inside a sub-millisecond service window, so part (a)
    // exercises up/down state but not mid-query deaths. Here every probe
    // query is issued moments before a replica dies — the worst instant —
    // and selection is off so the dying partition is always evaluated.
    println!("\n(b) mid-query deaths: probes issued the instant a replica dies");
    println!(
        "  {:>2} {:>7} {:>7} {:>7} {:>8} {:>7} {:>8}",
        "r", "probes", "full%", "degr%", "failed%", "hedged", "hedge%"
    );
    for replicas in 1..=MAX_REPLICAS {
        let schedule = Arc::new(FaultSchedule::generate(
            PARTITIONS,
            replicas,
            &process,
            horizon,
            schedule_seed,
        ));
        let engine = DistributedEngine::new(&pi, LruCache::new(16), replicas)
            .with_faults(Arc::clone(&schedule))
            .with_deadline(HOUR);
        let mut probes = 0u64;
        let mut term = 100_000u32; // distinct probe terms: the cache never answers
        for p in 0..PARTITIONS {
            for r in 0..replicas {
                for outage in schedule.intervals(p, r) {
                    let t = outage.start.saturating_sub(50);
                    if schedule.is_down(p, r, t) {
                        continue; // already inside an earlier outage
                    }
                    engine.advance_to(t);
                    engine.query_full(&[TermId(term)], 10);
                    term += 1;
                    probes += 1;
                }
            }
        }
        let s = engine.stats();
        let pct = |c: u64| 100.0 * c as f64 / probes as f64;
        println!(
            "  {:>2} {:>7} {:>7.1} {:>7.1} {:>8.1} {:>7} {:>8.1}",
            replicas,
            probes,
            pct(s.full),
            pct(s.degraded),
            pct(s.failed),
            s.hedged,
            pct(s.hedged),
        );
    }
    println!("\npaper shape: with one copy per shard, outages reach the user as failed and");
    println!("degraded answers; each added replica absorbs an order of magnitude of them,");
    println!("and hedged retries hide mid-query deaths wherever a second replica is alive.");
    println!("Stale cache answers mask the residual full-outage windows — the dependability");
    println!("role the paper assigns to result caches.");
}
