//! Regenerate **Figure 6**: maximum capacity of a front-end server under a
//! G/G/150 model, as a function of the average service time.
//!
//! Paper: "Assuming that the c = 150 (...) the maximum capacity drops
//! sharply as the average service time of each thread increases: it drops
//! from 15 to 2 as the average service time goes from 10ms to 100ms."
//! (Capacity is plotted in queries per *millisecond*.)
//!
//! Run: `cargo run -p dwr-bench --bin fig6`

use dwr_bench::bar;
use dwr_queueing::ggc::GgcModel;

fn main() {
    println!("Figure 6. Maximum capacity of a front-end server using a G/G/150 model.");
    println!("x = average service time (ms), y = max sustainable arrivals (queries/ms)\n");
    let curve = GgcModel::capacity_curve(150, 0.005, 0.100, 20);
    let max_y = curve.first().map(|&(_, c)| c / 1000.0).unwrap_or(1.0);
    println!("{:>9} {:>12}  ", "svc (ms)", "cap (q/ms)");
    for (s, cap) in &curve {
        let per_ms = cap / 1000.0;
        println!("{:>9.1} {:>12.2}  |{}", s * 1000.0, per_ms, bar(per_ms, max_y, 50));
    }
    let at10 = GgcModel::front_end_150(0.010).max_capacity() / 1000.0;
    let at100 = GgcModel::front_end_150(0.100).max_capacity() / 1000.0;
    println!("\npaper anchors: capacity(10ms) = 15  -> measured {at10:.1}");
    println!("               capacity(100ms) ~  2  -> measured {at100:.1}");

    // Beyond the bound: the approximate waiting time of a *stable* G/G/150
    // front-end near saturation, to show why you cannot run at the bound.
    println!("\nmean wait (Allen-Cunneen) at 90% of max capacity:");
    for s in [0.010, 0.050, 0.100] {
        let m = GgcModel::front_end_150(s);
        let lambda = 0.9 * m.max_capacity();
        println!("  E[S] = {:>5.0} ms -> Wq = {:.1} ms", s * 1000.0, m.mean_wait(lambda) * 1000.0);
    }
}
