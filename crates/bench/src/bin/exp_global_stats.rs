//! Experiment **E7**: local vs global statistics (Section 4, external
//! factors).
//!
//! "A possible way to measure this effect is comparing the result set
//! computed on the global statistics with the result set computed using
//! only local statistics." We measure top-k overlap between the one-round
//! (local idf) and two-round (global idf) broker protocols, across
//! partition counts and partitioning skews, plus the byte/latency price of
//! the second round.
//!
//! Run: `cargo run -p dwr-bench --bin exp_global_stats` (use --release)

use dwr_bench::{Fixture, Scale, SEED};
use dwr_partition::doc::{DocPartitioner, KMeansPartitioner, RandomPartitioner};
use dwr_partition::parted::PartitionedIndex;
use dwr_partition::stats::{query_global_stats, query_local_stats, result_overlap};
use dwr_sim::net::{SiteId, Topology};
use dwr_sim::SimRng;

fn main() {
    println!("E7. Local vs global collection statistics: result divergence and cost.\n");
    let f = Fixture::new(Scale::Medium);
    let mut rng = SimRng::new(SEED ^ 0x6105);
    let queries: Vec<Vec<dwr_text::TermId>> = (0..200)
        .map(|_| {
            let q = f.queries.sample(&mut rng);
            f.queries.query(q).terms.iter().map(|t| dwr_text::TermId(t.0)).collect()
        })
        .collect();
    let topo = Topology::single_site();
    let site0 = |_: usize| SiteId(0);

    println!(
        "  {:<26} {:>12} {:>12} {:>14} {:>14}",
        "partitioning", "overlap@10", "overlap@3", "bytes x", "latency x"
    );
    for (name, assignment, k) in [
        ("random, 4 parts", RandomPartitioner { seed: SEED }.assign(&f.corpus, 4), 4usize),
        ("random, 8 parts", RandomPartitioner { seed: SEED }.assign(&f.corpus, 8), 8),
        ("random, 16 parts", RandomPartitioner { seed: SEED }.assign(&f.corpus, 16), 16),
        ("k-means topical, 8 parts", KMeansPartitioner::default().assign(&f.corpus, 8), 8),
    ] {
        let pi = PartitionedIndex::build(&f.corpus, &assignment, k);
        let mut o10 = 0.0;
        let mut o3 = 0.0;
        let mut bytes_ratio = 0.0;
        let mut lat_ratio = 0.0;
        for q in &queries {
            let (local, c1) = query_local_stats(&pi, q, 10, &topo, SiteId(0), &site0);
            let (global, c2) = query_global_stats(&pi, q, 10, &topo, SiteId(0), &site0);
            o10 += result_overlap(&local, &global, 10);
            o3 += result_overlap(&local, &global, 3);
            bytes_ratio += c2.bytes as f64 / c1.bytes.max(1) as f64;
            lat_ratio += c2.latency as f64 / c1.latency.max(1) as f64;
        }
        let n = queries.len() as f64;
        println!(
            "  {:<26} {:>11.1}% {:>11.1}% {:>14.2} {:>14.2}",
            name,
            100.0 * o10 / n,
            100.0 * o3 / n,
            bytes_ratio / n,
            lat_ratio / n
        );
    }
    println!("\nshape: divergence grows with partition count (smaller local df samples).");
    println!("Topical partitions hold overlap UP at equal k for on-topic queries — their");
    println!("matching postings and statistics are co-located — the nuance behind the");
    println!("paper's open question of whether local statistics hurt in practice. The");
    println!("second round costs ~2x latency plus the piggybacked statistics bytes.");
}
