//! Experiment **E3**: link locality and most-cited-URL suppression cut
//! URL-exchange traffic (Section 3, communication).
//!
//! Two sweeps over full distributed crawls: (a) the web's link-locality
//! parameter β — "most of the links on the Web point to other pages in the
//! same server makes it unnecessary to transfer those URLs"; (b) the size
//! of the pre-seeded most-cited set — "agents do not need to exchange URLs
//! found very frequently".
//!
//! Run: `cargo run -p dwr-bench --bin exp_url_exchange` (use --release)

use dwr_bench::SEED;
use dwr_crawler::assign::HashAssigner;
use dwr_crawler::sim::{CrawlConfig, DistributedCrawl};
use dwr_sim::SECOND;
use dwr_webgraph::generate::{generate_web, WebConfig};
use dwr_webgraph::qos::QosConfig;

fn crawl_cfg() -> CrawlConfig {
    CrawlConfig {
        agents: 8,
        connections_per_agent: 16,
        politeness_delay: SECOND / 2,
        qos: QosConfig { flaky_fraction: 0.0, slow_fraction: 0.0, ..QosConfig::default() },
        ..CrawlConfig::default()
    }
}

fn main() {
    println!("E3. URL-exchange traffic vs link locality and most-cited seeding.");
    println!("8 agents, hash assignment, full crawl of a 20k-page web.\n");

    println!("(a) link-locality sweep (no most-cited seeding):");
    println!("  {:>9} {:>12} {:>12} {:>10}", "locality", "sent URLs", "messages", "coverage");
    for locality in [0.2, 0.5, 0.75, 0.9] {
        let mut web_cfg = WebConfig::medium();
        web_cfg.locality = locality;
        let web = generate_web(&web_cfg, SEED);
        let r = DistributedCrawl::new(&web, HashAssigner::new(8), crawl_cfg(), SEED).run();
        println!(
            "  {:>9.2} {:>12} {:>12} {:>9.1}%",
            locality,
            r.exchange.sent_urls,
            r.exchange.messages,
            100.0 * r.coverage
        );
    }

    println!("\n(b) most-cited seeding sweep (locality 0.75):");
    println!(
        "  {:>9} {:>12} {:>12} {:>12} {:>10}",
        "seed k", "sent URLs", "suppressed", "bytes", "coverage"
    );
    let web = generate_web(&WebConfig::medium(), SEED);
    let mut base_sent = 0u64;
    for k in [0usize, 100, 500, 2_000] {
        let mut cfg = crawl_cfg();
        cfg.most_cited_seed = k;
        let r = DistributedCrawl::new(&web, HashAssigner::new(8), cfg, SEED).run();
        if k == 0 {
            base_sent = r.exchange.sent_urls;
        }
        println!(
            "  {:>9} {:>12} {:>12} {:>12} {:>9.1}%",
            k,
            r.exchange.sent_urls,
            r.exchange.suppressed,
            r.exchange.bytes,
            100.0 * r.coverage
        );
    }
    println!("\npaper shape: traffic falls monotonically with locality and with the");
    println!("most-cited set (power-law in-degree concentrates citations); coverage holds.");
    println!("baseline sent URLs (k=0): {base_sent}");
}
