//! Experiment **E25**: the observability subsystem observing the whole
//! serving path — and proving it observes without steering.
//!
//! Three claims, all checked live:
//!
//! 1. **Agreement.** The lock-free instruments (`dwr-obs`) that the
//!    engine streams events into must agree *exactly* — bitwise, for the
//!    busy-time gauges — with the offline counters the serving crates
//!    keep for themselves ([`EngineStats`], cache stats,
//!    `MultiSiteStats`). Any drift means an event was dropped, doubled,
//!    or misrouted.
//! 2. **Determinism.** A sequential engine and its parallel twin, each
//!    wired to its own recorder, must produce identical responses *and*
//!    identical instrument snapshots: events are emitted from the
//!    coordinating thread in a deterministic order, never from workers.
//! 3. **Zero cost when off.** The default [`NoopRecorder`] is a ZST and
//!    its instrumented path must not be measurably slower than the
//!    recorded one is with live instruments (a very lenient wall-clock
//!    guard; `tests/observability.rs` pins bit-for-bit equality).
//!
//! The payoff is a Figure-2-style per-server busy-load table and a
//! per-stage latency-tail breakdown regenerated from *live* instruments
//! rather than post-hoc accounting.
//!
//! Run: `cargo run -p dwr-bench --bin exp_observability --release`
//! CI smoke: `... -- --smoke --json` (also writes
//! `BENCH_observability.json`)

use dwr_avail::site::SiteConfig;
use dwr_avail::UpDownProcess;
use dwr_bench::{emit_json, json_requested, smoke_requested, Fixture, Scale, SEED};
use dwr_obs::report::{busy_load_report, stage_tail_report};
use dwr_obs::{Json, NoopRecorder, ObsConfig, ObsRecorder, Snapshot};
use dwr_partition::doc::{DocPartitioner, RandomPartitioner};
use dwr_partition::parted::PartitionedIndex;
use dwr_query::cache::LruCache;
use dwr_query::engine::{DistributedEngine, EngineStats};
use dwr_query::faults::site_outage_traces;
use dwr_query::multisite::{MultiSiteConfig, MultiSiteEngine, SiteEngineSpec};
use dwr_sim::net::Topology;
use dwr_sim::{SimRng, SimTime, DAY, HOUR};
use dwr_text::TermId;
use std::sync::Arc;
use std::time::Instant;

const PARTITIONS: usize = 8;
const SITES: usize = 3;

fn terms_of(f: &Fixture, q: dwr_querylog::model::QueryId) -> Vec<TermId> {
    f.queries.query(q).terms.iter().map(|t| TermId(t.0)).collect()
}

/// Assert one live counter equals its offline mirror.
fn ck(snap: &Snapshot, name: &str, offline: u64) {
    let live = snap.counter(name).unwrap_or(0);
    assert_eq!(live, offline, "live instrument {name:?} disagrees with the offline counter");
}

fn check_engine_agreement(snap: &Snapshot, s: EngineStats, lookups: u64, backend_queries: u64) {
    ck(snap, "engine.queries", lookups);
    ck(snap, "cache.hits", s.cache_hits + s.stale);
    ck(snap, "cache.misses", lookups - s.cache_hits - s.stale);
    ck(snap, "engine.served.cache_hit", s.cache_hits);
    ck(snap, "engine.served.full", s.full);
    ck(snap, "engine.served.degraded", s.degraded);
    ck(snap, "engine.served.stale", s.stale);
    ck(snap, "engine.served.failed", s.failed);
    ck(snap, "engine.served.partial", s.partial);
    ck(snap, "engine.hedges", s.hedged);
    ck(snap, "broker.queries", backend_queries);
    ck(snap, "scatter.batches", s.full + s.degraded);
    let gathers = snap.histogram("gather.latency_us").map_or(0, |p| p.count());
    assert_eq!(gathers, s.full + s.degraded, "one gather per backend-evaluated query");
}

fn main() {
    let smoke = smoke_requested();
    let n_queries: usize = if smoke { 2_000 } else { 20_000 };
    println!("E25. dwr-obs: live instruments, span traces, and zero-cost-when-off.\n");

    let f = Fixture::new(Scale::Small);
    let assignment = RandomPartitioner { seed: SEED }.assign(&f.corpus, PARTITIONS);
    let pi = PartitionedIndex::build(&f.corpus, &assignment, PARTITIONS);

    // ------------------------------------------------------------------
    // (a) One site, two engines: sequential and parallel twins, each with
    // its own recorder. A mid-stream outage of partition 0 (both
    // replicas) exercises the degraded path.
    println!("(a) single site: sequential vs parallel twins under live instruments");
    println!("stream: {n_queries} Zipf queries, {PARTITIONS} partitions x 2 replicas, span");
    println!("sampling 1-in-101; partition 0 fully down for the middle third\n");
    let cfg = || ObsConfig::single_site(PARTITIONS).sample(101);
    let rec_seq = Arc::new(ObsRecorder::new(cfg()));
    let rec_par = Arc::new(ObsRecorder::new(cfg()));
    let seq = DistributedEngine::new(&pi, LruCache::new(512), 2).with_obs(Arc::clone(&rec_seq));
    let par = DistributedEngine::new(&pi, LruCache::new(512), 2)
        .with_parallelism(4)
        .with_obs(Arc::clone(&rec_par));
    assert!(par.is_parallel());

    let kill_at = n_queries / 3;
    let revive_at = 2 * n_queries / 3;
    let mut rng = SimRng::new(SEED ^ 0x0B5E);
    for i in 0..n_queries {
        if i == kill_at || i == revive_at {
            let up = i == revive_at;
            for r in 0..2 {
                seq.set_replica_alive(0, r, up);
                par.set_replica_alive(0, r, up);
            }
        }
        let terms = terms_of(&f, f.queries.sample(&mut rng));
        let a = seq.query_full(&terms, 10);
        let b = par.query_full(&terms, 10);
        assert_eq!(a.hits, b.hits, "query {i}");
        assert_eq!(a.served, b.served, "query {i}");
        assert_eq!(a.latency, b.latency, "query {i}");
    }

    // Claim 1: exact agreement with the offline counters.
    let s = seq.stats();
    let c = seq.cache_stats();
    let snap = rec_seq.snapshot();
    check_engine_agreement(&snap, s, c.hits + c.misses, seq.broker().queries_processed());
    // The busy-time gauges must match the broker's own accounting to the
    // last bit: same f64 additions, same order.
    let live = rec_seq.busy_us();
    let offline = seq.broker().busy_time();
    assert_eq!(live.len(), offline.len());
    for (p, (l, o)) in live.iter().zip(&offline).enumerate() {
        assert_eq!(l.to_bits(), o.to_bits(), "shard {p} busy-time drifted: {l} vs {o}");
    }
    println!("check: every live counter equals its offline mirror; busy gauges match");
    println!("bitwise across {} shards  [ok]", live.len());

    // Claim 2: the twins' snapshots are identical, not just their
    // responses.
    assert_eq!(
        rec_seq.snapshot().to_json().render(),
        rec_par.snapshot().to_json().render(),
        "parallel scatter must emit the identical event stream"
    );
    println!("check: sequential and parallel snapshots identical (JSON-compare)  [ok]\n");

    // The Figure-2-style payoff: per-server busy load from live gauges.
    println!("per-server busy load (live gauges; paper Fig. 2 shape):");
    println!("{}", busy_load_report(&rec_seq.busy_us()));

    println!("\nper-stage latency tails (live histograms):");
    let shard = snap.histogram("shard.service_us").expect("recorded");
    let gather = snap.histogram("gather.latency_us").expect("recorded");
    let e2e = snap.histogram("engine.latency_us").expect("recorded");
    let stages = [("shard.service", shard), ("gather.latency", gather), ("engine.latency", e2e)];
    println!("{}", stage_tail_report(&stages));

    let spans = rec_seq.spans();
    println!("\nsampled spans: {} retained (1-in-101 of {n_queries} queries)", spans.len());
    for span in spans.iter().take(2) {
        println!("{}", span.render());
    }

    // ------------------------------------------------------------------
    // (b) The site tier: three full serving stacks sharing ONE recorder,
    // under whole-site outage traces. Every MultiSiteStats field must be
    // mirrored exactly by a `site.*` instrument.
    println!("\n(b) site tier: 3 sites, one shared recorder, outage traces");
    let site_cfg = SiteConfig {
        servers: 2,
        network: UpDownProcess::exponential(3 * DAY, 8 * HOUR),
        server: UpDownProcess::exponential(10 * DAY, 12 * HOUR),
    };
    let horizon: SimTime = 90 * DAY;
    let traces = site_outage_traces(SITES, &site_cfg, horizon, SEED ^ 0x517E);
    let rec_tier = Arc::new(ObsRecorder::new(ObsConfig::multi_site(PARTITIONS, SITES)));
    let sites = traces
        .into_iter()
        .enumerate()
        .map(|(site, outages)| SiteEngineSpec {
            region: site as u16,
            capacity_qps: 200.0,
            engine: DistributedEngine::new(&pi, LruCache::new(256), 2)
                .with_obs(Arc::clone(&rec_tier)),
            outages,
        })
        .collect();
    let tier = MultiSiteEngine::new(sites, Topology::geo_ring(SITES), MultiSiteConfig::default());

    let mut rng = SimRng::new(SEED ^ 0x0F42);
    for i in 0..n_queries {
        let t = i as SimTime * horizon / n_queries as SimTime;
        tier.advance_to(t);
        let terms = terms_of(&f, f.queries.sample(&mut rng));
        let region = rng.below(SITES as u64) as u16;
        tier.query(region, &terms, 10);
    }

    let ms = tier.stats();
    let snap = rec_tier.snapshot();
    ck(&snap, "site.served_local", ms.served_local);
    ck(&snap, "site.served_remote", ms.served_remote);
    ck(&snap, "site.degraded", ms.degraded);
    ck(&snap, "site.shed_overload", ms.shed_overload);
    ck(&snap, "site.shed_deadline", ms.shed_deadline);
    ck(&snap, "site.failed", ms.failed);
    ck(&snap, "site.failovers", ms.failovers);
    ck(&snap, "site.wan_hops", ms.wan_hops);
    ck(&snap, "site.added_latency_us", ms.added_latency_us);
    ck(&snap, "engine.hedges", ms.hedged);
    let per_site: u64 = rec_tier.site_served().iter().sum();
    assert_eq!(per_site, ms.served_local + ms.served_remote, "per-site served adds up");
    println!("check: all {SITES}-site tier counters equal MultiSiteStats exactly  [ok]\n");

    println!("tier latency tails (live histograms):");
    let mut stages = Vec::new();
    for name in ["site.latency_us", "wan.rtt_us", "site.backoff_us"] {
        if let Some(p) = snap.histogram(name) {
            stages.push((name, p));
        }
    }
    println!("{}", stage_tail_report(&stages));

    // ------------------------------------------------------------------
    // (c) Zero cost when off: the default recorder is a ZST, and the
    // instrumented path with NoopRecorder must not be slower than the
    // live-instrumented path (lenient 2x wall-clock guard — the point is
    // to catch the no-op path growing real work, not to micro-benchmark).
    println!("\n(c) zero-cost-when-off guard");
    assert_eq!(std::mem::size_of::<NoopRecorder>(), 0, "NoopRecorder must stay a ZST");
    let noop = DistributedEngine::new(&pi, LruCache::new(512), 2);
    let rec_live = Arc::new(ObsRecorder::new(ObsConfig::single_site(PARTITIONS)));
    let live = DistributedEngine::new(&pi, LruCache::new(512), 2).with_obs(Arc::clone(&rec_live));
    let stream: Vec<Vec<TermId>> = {
        let mut rng = SimRng::new(SEED ^ 0xC057);
        (0..n_queries).map(|_| terms_of(&f, f.queries.sample(&mut rng))).collect()
    };
    let t0 = Instant::now();
    for terms in &stream {
        noop.query_full(terms, 10);
    }
    let noop_elapsed = t0.elapsed();
    let t1 = Instant::now();
    for terms in &stream {
        live.query_full(terms, 10);
    }
    let live_elapsed = t1.elapsed();
    assert_eq!(noop.stats(), live.stats(), "recorders observe, they never steer");
    assert!(
        noop_elapsed <= live_elapsed * 2,
        "no-op instrumentation must stay free: noop {noop_elapsed:?} vs live {live_elapsed:?}"
    );
    println!(
        "  {n_queries} queries: noop {:.1} ms, live instruments {:.1} ms ({:+.1}% overhead)",
        noop_elapsed.as_secs_f64() * 1e3,
        live_elapsed.as_secs_f64() * 1e3,
        100.0 * (live_elapsed.as_secs_f64() / noop_elapsed.as_secs_f64().max(1e-9) - 1.0),
    );
    println!("  NoopRecorder is zero-sized; identical EngineStats on both paths  [ok]");

    if json_requested() {
        emit_json(
            "observability",
            &Json::obj([
                ("experiment", Json::str("E25")),
                ("smoke", smoke.into()),
                ("queries", n_queries.into()),
                ("single_site", rec_seq.snapshot().to_json()),
                ("multi_site", rec_tier.snapshot().to_json()),
            ]),
        );
    }

    println!("\npaper shape: the Figure-2 busy-load table and the latency-tail breakdown");
    println!("fall out of always-on instruments that cost nothing when disabled and");
    println!("provably never perturb what they measure.");
}
