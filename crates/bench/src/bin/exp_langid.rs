//! Experiment **E20**: language identification for query routing
//! (Section 5, partitioning; Cavnar & Trenkle \[36\]).
//!
//! "Partitioning the index according to the language of queries is also a
//! suitable approach. (...) the amount of text per query and additional
//! contextual metadata is very limited, and such process may introduce
//! errors. Another challenge (...) is the presence of multilingual Web
//! pages."
//!
//! Run: `cargo run -p dwr-bench --bin exp_langid`

use dwr_text::langid::LanguageIdentifier;

const ENGLISH: &str = "the quick brown fox jumps over the lazy dog and the \
    small dog chases the fox through the green fields while the sun shines \
    over the quiet village and children play near the old stone bridge with \
    their friends during the long summer afternoon when birds sing in the \
    trees and the river flows gently past the mill toward the distant sea";
const PSEUDO_GERMAN: &str = "der schnelle braune fuchs springt ueber den \
    faulen hund und der kleine hund jagt den fuchs durch die gruenen felder \
    waehrend die sonne ueber dem stillen dorf scheint und kinder spielen an \
    der alten steinbruecke mit ihren freunden waehrend des langen \
    sommernachmittags wenn voegel in den baeumen singen und der fluss sanft \
    an der muehle vorbei zum fernen meer fliesst";
const PSEUDO_FINNISH: &str = "nopea ruskea kettu hyppaeae laiskan koiran yli \
    ja pieni koira jahtaa kettua vihreiden peltojen halki kun aurinko paistaa \
    hiljaisen kylaen yllae ja lapset leikkivaet vanhan kivisillan luona \
    ystaeviensae kanssa pitkaenae kesaeiltapaeivaenae kun linnut laulavat \
    puissa ja joki virtaa hiljaa myllyn ohi kaukaiseen mereen";

/// Held-out test sentences, word pools for query sampling.
const TESTS: &[(&str, &str)] = &[
    ("en", "the old bridge stood over the quiet river near the village fields"),
    ("en", "children and friends play games in the long summer grass"),
    ("de", "die alte bruecke stand ueber dem stillen fluss nahe den dorffeldern"),
    ("de", "kinder und freunde spielen spiele im langen sommergras"),
    ("fi", "vanha silta seisoi hiljaisen joen yllae kylaen peltojen laehellae"),
    ("fi", "lapset ja ystaevaet leikkivaet pelejae pitkaessae kesaeheinaessae"),
];

fn main() {
    println!("E20. N-gram language identification: documents vs queries.\n");
    let mut id = LanguageIdentifier::new();
    id.add_language("en", ENGLISH);
    id.add_language("de", PSEUDO_GERMAN);
    id.add_language("fi", PSEUDO_FINNISH);

    // Accuracy vs text length, clean and with one typo per word (the
    // noise short real queries carry).
    let perturb = |text: &str| -> String {
        text.split_whitespace()
            .map(|w| {
                let mut cs: Vec<char> = w.chars().collect();
                if cs.len() >= 3 {
                    let mid = cs.len() / 2;
                    cs.swap(mid, mid - 1); // deterministic transposition
                }
                cs.into_iter().collect::<String>()
            })
            .collect::<Vec<_>>()
            .join(" ")
    };
    println!("  {:>12} {:>12} {:>12} {:>14}", "text length", "clean acc", "typo acc", "abs margin");
    for take in [usize::MAX, 4, 2, 1] {
        let mut clean = 0u32;
        let mut noisy = 0u32;
        let mut margin_acc = 0f64;
        for &(lang, text) in TESTS {
            let cut: String = match take {
                usize::MAX => text.to_owned(),
                n => text.split_whitespace().take(n).collect::<Vec<_>>().join(" "),
            };
            let (best, dists) = id.classify(&cut).expect("languages registered");
            if best == lang {
                clean += 1;
            }
            let (best_noisy, _) = id.classify(&perturb(&cut)).expect("registered");
            if best_noisy == lang {
                noisy += 1;
            }
            let mut ds: Vec<u64> = dists.iter().map(|&(_, d)| d).collect();
            ds.sort_unstable();
            margin_acc += (ds[1] - ds[0]) as f64;
        }
        let label =
            if take == usize::MAX { "sentence".to_owned() } else { format!("{take} words") };
        println!(
            "  {:>12} {:>11.0}% {:>11.0}% {:>14.0}",
            label,
            100.0 * f64::from(clean) / TESTS.len() as f64,
            100.0 * f64::from(noisy) / TESTS.len() as f64,
            margin_acc / TESTS.len() as f64
        );
    }

    // Multilingual pages: German text salted with English tech terms.
    println!("\nmultilingual page (German + English tech terms):");
    for (label, text) in [
        ("pure German", "der kleine hund jagt den fuchs durch die gruenen felder an der bruecke"),
        (
            "salted 30% English",
            "der kleine hund download server jagt den fuchs browser durch die update felder",
        ),
    ] {
        let (best, dists) = id.classify(text).expect("registered");
        let mut ds: Vec<(&str, u64)> = dists.clone();
        ds.sort_by_key(|&(_, d)| d);
        println!("  {:<20} -> {}  (margin {} over {})", label, best, ds[1].1 - ds[0].1, ds[1].0);
    }
    println!("\npaper shape: sentences classify reliably even with typos; the decision");
    println!("margin shrinks with text length, so short noisy queries start misrouting —");
    println!("'such process may introduce errors' — and multilingual content erodes the");
    println!("margin further.");
}
