//! Experiment **E30**: selective search on the serving path — the
//! capacity multiplier of shard routing, measured end to end.
//!
//! E6 reproduced collection selection *offline* (recall curves of CORI
//! and the Puppin-style query-driven selector). This experiment puts the
//! selectors on the serving path behind a [`ShardRouter`] and measures
//! what Section 4 actually promises: at a fixed recall floor, a routed
//! broker touches a fraction of the shards per query, so the same
//! cluster sustains a multiple of the query rate.
//!
//! Four claims, checked live:
//!
//! 1. **The capacity multiplier.** At recall@10 ≥ 0.95 against the
//!    exhaustive fan-out, the query-driven router contacts strictly
//!    fewer shards per query than CORI, which contacts strictly fewer
//!    than full fan-out — and sustained capacity (queries/sec at fixed
//!    per-shard work) improves monotonically as shards contacted drops
//!    (asserted).
//! 2. **The fallback cascade is recall-safe.** Every routed arm keeps
//!    its mean recall above the floor because count-deficient answers
//!    broaden along the ranking instead of returning thin pages.
//! 3. **Drift-driven refresh recovers recall.** Under a topic-mixture
//!    reversal, a router stuck with stale profiles loses recall on the
//!    drifted stream; the drift-driven refresh retrains and wins back
//!    the difference (asserted, with ≥ 1 retrain fired).
//! 4. **Live telemetry matches offline truth.** The `route.*`
//!    instruments recorded during each run equal the router's own
//!    [`RouterStats`] counter for counter (asserted exactly), and the
//!    routed tier composes with the multi-site failover path (a dead
//!    site's queries fail over and are still answered routed).
//!
//! Run: `cargo run -p dwr-bench --bin exp_selective --release`
//! CI smoke: `... -- --smoke --json` (also writes `BENCH_selective.json`)

use dwr_avail::failure::DownInterval;
use dwr_avail::site::Site;
use dwr_bench::{emit_json, json_requested, smoke_requested, Fixture, Scale, SEED};
use dwr_obs::recorder::{ObsConfig, ObsRecorder};
use dwr_obs::Json;
use dwr_partition::doc::{DocPartitioner, KMeansPartitioner, TrainingResults};
use dwr_partition::parted::PartitionedIndex;
use dwr_query::cache::LruCache;
use dwr_query::engine::{DistributedEngine, Served};
use dwr_query::{DriftRefresh, RouterStats};
use dwr_query::{MultiSiteConfig, MultiSiteEngine, ShardRouter, SiteEngineSpec};
use dwr_querylog::drift::TopicDrift;
use dwr_querylog::model::{QueryId, QueryModel};
use dwr_sim::net::Topology;
use dwr_sim::{SimRng, SimTime, DAY};
use dwr_text::index::{build_index, InvertedIndex};
use dwr_text::score::Bm25;
use dwr_text::search::search_or;
use dwr_text::TermId;
use dwr_webgraph::graph::TopicId;
use std::sync::Arc;

const SERVERS: usize = 8;
const K: usize = 10;
const HORIZON: SimTime = DAY;
const RECALL_FLOOR: f64 = 0.95;
const WIDTHS: [usize; 6] = [1, 2, 3, 4, 5, 6];

/// Replay a stream of query-id draws against the exhaustive reference
/// index: one training entry per *distinct* query, weighted by how
/// often the stream drew it, carrying the global top-`K` doc ids.
fn replay_training(
    reference: &InvertedIndex,
    model: &QueryModel,
    draws: &[QueryId],
) -> TrainingResults {
    let mut counts: std::collections::BTreeMap<QueryId, f64> = std::collections::BTreeMap::new();
    for &q in draws {
        *counts.entry(q).or_insert(0.0) += 1.0;
    }
    replay_weighted(reference, model, counts.into_iter())
}

/// Replay explicitly weighted distinct queries on the reference index.
fn replay_weighted(
    reference: &InvertedIndex,
    model: &QueryModel,
    weighted: impl Iterator<Item = (QueryId, f64)>,
) -> TrainingResults {
    let queries = weighted
        .map(|(q, w)| {
            let terms: Vec<TermId> = model.query(q).terms.iter().map(|t| TermId(t.0)).collect();
            let docs: Vec<u32> = search_or(reference, &terms, K, &Bm25::default(), reference)
                .into_iter()
                .map(|h| h.doc.0)
                .collect();
            (terms, w, docs)
        })
        .collect();
    TrainingResults { queries }
}

/// One measured arm of the sweep.
struct Cell {
    system: &'static str,
    width: usize,
    recall: f64,
    /// Mean shards contacted per cold query.
    contacted: f64,
    /// Sustained capacity at fixed per-shard work: the queries/sec the
    /// cluster supports when every shard-microsecond of evaluation has
    /// to be paid somewhere (`SERVERS × 1e6 × N / Σ busy_us`).
    qps: f64,
    broadenings: u64,
    /// Routed queries that ended at full coverage anyway.
    covered_pct: f64,
}

/// Serve `stream` through `engine`, scoring recall@K against `truth`
/// (the exhaustive fan-out's result docs per query).
fn run_arm<R: dwr_obs::Recorder + Clone>(
    engine: &DistributedEngine<LruCache, R>,
    stream: &[Vec<TermId>],
    truth: &[Vec<u32>],
    advance: bool,
) -> (f64, f64) {
    let mut recall_sum = 0.0;
    let mut recall_n = 0usize;
    for (i, terms) in stream.iter().enumerate() {
        if advance {
            engine.advance_to(i as SimTime * HORIZON / stream.len() as SimTime);
        }
        let r = engine.query_full(terms, K);
        assert!(
            matches!(r.served, Served::Full | Served::Routed { .. } | Served::CacheHit),
            "query {i}: unexpected outcome {:?} on a fault-free backend",
            r.served
        );
        if truth[i].is_empty() {
            continue;
        }
        let got = recall_of(&r.hits, &truth[i]);
        recall_sum += got;
        recall_n += 1;
    }
    let total_busy: f64 = engine.broker().busy_time().iter().sum();
    let qps = SERVERS as f64 * 1e6 * stream.len() as f64 / total_busy.max(1e-9);
    (recall_sum / recall_n.max(1) as f64, qps)
}

fn recall_of(hits: &[dwr_query::broker::GlobalHit], truth: &[u32]) -> f64 {
    let got: std::collections::HashSet<u32> = hits.iter().map(|h| h.doc).collect();
    truth.iter().filter(|d| got.contains(d)).count() as f64 / truth.len() as f64
}

/// Assert the live `route.*` instruments equal the router's counters.
fn assert_instruments_match(rec: &ObsRecorder, rs: RouterStats, ctx: &str) {
    let snap = rec.snapshot();
    assert_eq!(snap.counter("route.queries"), Some(rs.queries), "{ctx}: route.queries");
    assert_eq!(
        snap.counter("route.shards_contacted"),
        Some(rs.shards_contacted),
        "{ctx}: route.shards_contacted"
    );
    assert_eq!(snap.counter("route.broadenings"), Some(rs.broadenings), "{ctx}: route.broadenings");
    assert_eq!(snap.counter("route.covered"), Some(rs.covered), "{ctx}: route.covered");
    assert_eq!(snap.counter("route.profiles"), Some(rs.profiles_built), "{ctx}: route.profiles");
    assert_eq!(snap.counter("route.retrains"), Some(rs.retrains), "{ctx}: route.retrains");
}

fn main() {
    let smoke = smoke_requested();
    let (scale, n_train, n_eval, n_drift): (Scale, usize, usize, usize) =
        if smoke { (Scale::Small, 1_500, 400, 300) } else { (Scale::Medium, 4_000, 1_200, 800) };
    println!("E30. Selective search on the serving path: selector x shards-contacted x drift.");
    println!(
        "workload: {n_eval} Zipf queries, {SERVERS} shards, k={K}, recall floor {RECALL_FLOOR}, \
         widths {WIDTHS:?}\n"
    );

    let f = Fixture::new(scale);
    let reference = Arc::new(build_index(&f.corpus));

    // Training log: the full query log replayed on the exhaustive index
    // (the Puppin setting — yesterday's log trains today's router), each
    // query weighted by its Zipf popularity.
    let mut rng = SimRng::new(SEED ^ 0xE30);
    let training = replay_weighted(
        &reference,
        &f.queries,
        (0..f.queries.universe() as u32)
            .map(|i| (QueryId(i), f.queries.popularity_weight(QueryId(i)))),
    );

    // One topically coherent layout for every arm: the variable under
    // test is the *selector*, not the partitioning.
    let assignment = KMeansPartitioner::default().assign(&f.corpus, SERVERS);
    let pi = PartitionedIndex::build(&f.corpus, &assignment, SERVERS);

    // Evaluation stream: a fresh popularity-drawn sample.
    let stream: Vec<Vec<TermId>> = (0..n_eval)
        .map(|_| {
            let q = f.queries.sample(&mut rng);
            f.queries.query(q).terms.iter().map(|t| TermId(t.0)).collect()
        })
        .collect();

    // --- Exhaustive fan-out: the recall truth and the capacity baseline.
    let full_engine = DistributedEngine::new(&pi, LruCache::new(1), 1);
    let mut truth: Vec<Vec<u32>> = Vec::with_capacity(stream.len());
    for terms in &stream {
        let r = full_engine.query_full(terms, K);
        assert!(matches!(r.served, Served::Full | Served::CacheHit));
        truth.push(r.hits.iter().map(|h| h.doc).collect());
    }
    let full_busy: f64 = full_engine.broker().busy_time().iter().sum();
    let full_qps = SERVERS as f64 * 1e6 * stream.len() as f64 / full_busy.max(1e-9);
    let mut cells = vec![Cell {
        system: "full fan-out",
        width: SERVERS,
        recall: 1.0,
        contacted: SERVERS as f64,
        qps: full_qps,
        broadenings: 0,
        covered_pct: 100.0,
    }];

    // --- The sweep: selector x initial width, cascade always armed.
    for system in ["cori", "query-driven"] {
        for &w in &WIDTHS {
            let router = Arc::new(match system {
                "cori" => ShardRouter::cori(w),
                _ => ShardRouter::query_driven(training.clone(), w),
            });
            let rec = Arc::new(ObsRecorder::new(ObsConfig::single_site(SERVERS).with_route()));
            let engine = DistributedEngine::new(&pi, LruCache::new(1), 1)
                .with_router(Arc::clone(&router))
                .with_obs(Arc::clone(&rec));
            let (recall, qps) = run_arm(&engine, &stream, &truth, false);
            let rs = router.stats();
            assert_instruments_match(&rec, rs, &format!("{system} t={w}"));
            let s = engine.stats();
            assert_eq!(
                s.full + s.routed + s.cache_hits,
                stream.len() as u64,
                "honest coverage: every query is Full, Routed, or cached"
            );
            cells.push(Cell {
                system,
                width: w,
                recall,
                contacted: rs.shards_contacted as f64 / rs.queries.max(1) as f64,
                qps,
                broadenings: rs.broadenings,
                covered_pct: 100.0 * rs.covered as f64 / rs.queries.max(1) as f64,
            });
        }
    }

    println!(
        "{:<14} {:>3} {:>10} {:>10} {:>12} {:>11} {:>10}",
        "selector", "t", "recall@10", "shards/q", "capacity q/s", "broadenings", "covered %"
    );
    for c in &cells {
        println!(
            "{:<14} {:>3} {:>10.3} {:>10.2} {:>12.0} {:>11} {:>10.1}",
            c.system, c.width, c.recall, c.contacted, c.qps, c.broadenings, c.covered_pct
        );
    }

    // Claim 1+2: operating points at the recall floor. For each routed
    // system, the narrowest width whose mean recall clears the floor.
    let operating = |name: &str| -> &Cell {
        cells
            .iter()
            .filter(|c| c.system == name && c.recall >= RECALL_FLOOR)
            .min_by(|a, b| a.contacted.total_cmp(&b.contacted))
            .unwrap_or_else(|| panic!("{name} never reaches recall {RECALL_FLOOR}"))
    };
    let qd = operating("query-driven");
    let cori = operating("cori");
    assert!(
        qd.contacted < cori.contacted && cori.contacted < SERVERS as f64,
        "capacity multiplier ordering: query-driven ({:.2}) < cori ({:.2}) < full ({})",
        qd.contacted,
        cori.contacted,
        SERVERS
    );
    assert!(
        qd.qps > cori.qps && cori.qps > full_qps,
        "capacity must improve monotonically as shards contacted drops: {:.0} > {:.0} > {:.0}",
        qd.qps,
        cori.qps,
        full_qps
    );
    println!(
        "\noperating points at recall >= {RECALL_FLOOR}: query-driven t={} ({:.2} shards/q, \
         {:.1}x capacity), cori t={} ({:.2} shards/q, {:.1}x)",
        qd.width,
        qd.contacted,
        qd.qps / full_qps,
        cori.width,
        cori.contacted,
        cori.qps / full_qps
    );

    // --- Claim 3: drift. Train at the t=0 mixture, stream a reversal,
    // and compare a stale router against one with the refresh loop.
    let weights = f.queries.topic_weights().to_vec();
    let drift = TopicDrift::reversal(&weights, HORIZON);
    let drift_draws: Vec<QueryId> = (0..n_train)
        .map(|_| f.queries.sample_topical(TopicId(drift.sample_topic(0, &mut rng)), &mut rng))
        .collect();
    let t0_training = replay_training(&reference, &f.queries, &drift_draws);
    let drift_stream: Vec<Vec<TermId>> = (0..n_drift)
        .map(|i| {
            let t = i as SimTime * HORIZON / n_drift as SimTime;
            let q = f.queries.sample_topical(TopicId(drift.sample_topic(t, &mut rng)), &mut rng);
            f.queries.query(q).terms.iter().map(|t| TermId(t.0)).collect()
        })
        .collect();
    let drift_truth: Vec<Vec<u32>> = drift_stream
        .iter()
        .map(|terms| {
            search_or(&reference, terms, K, &Bm25::default(), reference.as_ref())
                .into_iter()
                .map(|h| h.doc.0)
                .collect()
        })
        .collect();
    let w = qd.width;
    let stale_router = Arc::new(ShardRouter::query_driven(t0_training.clone(), w));
    let stale =
        DistributedEngine::new(&pi, LruCache::new(1), 1).with_router(Arc::clone(&stale_router));
    let retrain_model = f.queries.clone();
    let retrain_ref = Arc::clone(&reference);
    let retrain_drift = drift.clone();
    let fresh_router =
        Arc::new(ShardRouter::query_driven(t0_training, w).with_refresh(DriftRefresh {
            drift: drift.clone(),
            interval: HORIZON / 50,
            threshold: 0.15,
            retrain: Arc::new(move |now| {
                let mut rng = SimRng::new(SEED ^ now);
                let draws: Vec<QueryId> = (0..1_000)
                    .map(|_| {
                        let topic = TopicId(retrain_drift.sample_topic(now, &mut rng));
                        retrain_model.sample_topical(topic, &mut rng)
                    })
                    .collect();
                replay_training(&retrain_ref, &retrain_model, &draws)
            }),
        }));
    let fresh =
        DistributedEngine::new(&pi, LruCache::new(1), 1).with_router(Arc::clone(&fresh_router));
    let (stale_recall, _) = run_arm(&stale, &drift_stream, &drift_truth, true);
    let (fresh_recall, _) = run_arm(&fresh, &drift_stream, &drift_truth, true);
    let retrains = fresh_router.stats().retrains;
    assert!(retrains >= 1, "the reversal must trip the drift detector");
    assert_eq!(stale_router.stats().retrains, 0, "the stale arm never retrains");
    assert!(
        fresh_recall >= stale_recall,
        "refresh must not lose recall: fresh {fresh_recall:.3} vs stale {stale_recall:.3}"
    );
    println!(
        "\ndrift (topic reversal over {HORIZON} us, width {w}): stale recall {:.3}, \
         refreshed {:.3} (+{:.3}, {} retrains)",
        stale_recall,
        fresh_recall,
        fresh_recall - stale_recall,
        retrains
    );

    // --- Claim 4 (composition): the routed tier behind multi-site
    // failover. Site 0 is dark; its queries fail over to site 1 and are
    // still answered honestly routed.
    let n_ms = 200usize;
    let make_site = |region: u16, outages: Site| SiteEngineSpec {
        region,
        capacity_qps: 1e9,
        engine: DistributedEngine::new(&pi, LruCache::new(1), 1)
            .with_router(Arc::new(ShardRouter::query_driven(training.clone(), w))),
        outages,
    };
    let sites = vec![
        make_site(
            0,
            Site::from_down_intervals(vec![DownInterval { start: 0, end: HORIZON }], HORIZON),
        ),
        make_site(1, Site::always_up(HORIZON)),
    ];
    let tier = MultiSiteEngine::new(sites, Topology::geo_ring(2), MultiSiteConfig::default());
    for terms in stream.iter().take(n_ms) {
        tier.query(0, terms, K);
    }
    let ms = tier.stats();
    assert_eq!(ms.total(), n_ms as u64, "every query accounted for across the tier");
    assert_eq!(ms.failed, 0, "one live site keeps the tier answering");
    assert!(ms.routed > 0, "failover answers are still routed (deliberate, not degraded)");
    println!(
        "\nmulti-site composition: {} queries, site 0 dark -> {} served remote, {} routed, 0 failed",
        n_ms, ms.served_remote, ms.routed
    );

    println!("\ncheck: qd < cori < full on shards/query at recall >= {RECALL_FLOOR}  [ok]");
    println!("check: capacity q/s monotone in shards saved; cascade keeps the floor  [ok]");
    println!("check: drift refresh retrains ({retrains}x) and recovers recall  [ok]");
    println!("check: route.* instruments equal RouterStats exactly, all arms  [ok]");

    if json_requested() {
        let cells_json: Vec<Json> = cells
            .iter()
            .map(|c| {
                Json::obj([
                    ("selector", Json::str(c.system)),
                    ("width", c.width.into()),
                    ("recall_at_10", c.recall.into()),
                    ("shards_per_query", c.contacted.into()),
                    ("capacity_qps", c.qps.into()),
                    ("broadenings", c.broadenings.into()),
                    ("covered_pct", c.covered_pct.into()),
                ])
            })
            .collect();
        emit_json(
            "selective",
            &Json::obj([
                ("experiment", Json::str("E30")),
                ("smoke", smoke.into()),
                ("queries", n_eval.into()),
                ("shards", SERVERS.into()),
                ("k", K.into()),
                ("recall_floor", RECALL_FLOOR.into()),
                ("cells", Json::Arr(cells_json)),
                (
                    "operating_points",
                    Json::obj([
                        (
                            "query_driven",
                            Json::obj([
                                ("width", qd.width.into()),
                                ("shards_per_query", qd.contacted.into()),
                                ("capacity_multiplier", (qd.qps / full_qps).into()),
                            ]),
                        ),
                        (
                            "cori",
                            Json::obj([
                                ("width", cori.width.into()),
                                ("shards_per_query", cori.contacted.into()),
                                ("capacity_multiplier", (cori.qps / full_qps).into()),
                            ]),
                        ),
                    ]),
                ),
                (
                    "drift",
                    Json::obj([
                        ("stale_recall", stale_recall.into()),
                        ("refreshed_recall", fresh_recall.into()),
                        ("retrains", retrains.into()),
                    ]),
                ),
            ]),
        );
    }
}
