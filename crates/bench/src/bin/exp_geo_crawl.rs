//! Experiment **E19**: geographic crawler placement (Exposto et al. \[13\]).
//!
//! "The network topology can also be a bottleneck. To solve this problem,
//! we can carefully distribute Web crawlers across distinct geographic
//! locations." Agents in every region fetch same-region hosts at LAN-ish
//! cost; cross-region fetches pay a WAN penalty. Geographic assignment
//! keeps fetches local; hash assignment scatters them.
//!
//! Run: `cargo run -p dwr-bench --bin exp_geo_crawl --release`

use dwr_bench::SEED;
use dwr_crawler::assign::{GeoAssigner, HashAssigner};
use dwr_crawler::sim::{CrawlConfig, DistributedCrawl};
use dwr_sim::{MILLISECOND, SECOND};
use dwr_webgraph::generate::{generate_web, WebConfig};
use dwr_webgraph::qos::QosConfig;

fn main() {
    println!("E19. Geographic crawler placement vs plain hashing, 6 agents in 3 regions.\n");
    let mut web_cfg = WebConfig::medium();
    web_cfg.num_regions = 3;
    let web = generate_web(&web_cfg, SEED);

    // Two agents per region.
    let agent_regions = vec![0u16, 0, 1, 1, 2, 2];
    let base = CrawlConfig {
        agents: 6,
        connections_per_agent: 16,
        politeness_delay: SECOND / 2,
        qos: QosConfig { flaky_fraction: 0.0, slow_fraction: 0.0, ..QosConfig::default() },
        cross_region_penalty: 400 * MILLISECOND,
        agent_regions: agent_regions.clone(),
        ..CrawlConfig::default()
    };

    let hash = DistributedCrawl::new(&web, HashAssigner::new(6), base.clone(), SEED).run();
    let geo = DistributedCrawl::new(&web, GeoAssigner::new(&agent_regions), base, SEED).run();

    println!(
        "  {:<18} {:>10} {:>12} {:>14} {:>12}",
        "assignment", "coverage", "makespan(h)", "exchanged URLs", "messages"
    );
    for (name, r) in [("hash", &hash), ("geographic", &geo)] {
        println!(
            "  {:<18} {:>9.1}% {:>12.2} {:>14} {:>12}",
            name,
            100.0 * r.coverage,
            r.makespan as f64 / 3.6e9,
            r.exchange.sent_urls,
            r.exchange.messages
        );
    }
    println!("\nmakespan ratio hash/geo: {:.2}x", hash.makespan as f64 / geo.makespan as f64);
    println!("\npaper shape: geographic assignment removes the cross-region fetch penalty");
    println!("from (almost) every download, finishing the crawl faster for the same");
    println!("politeness and coverage — the optimization problem of [13].");
}
