//! Regenerate **Figure 2**: distribution of the average busy load per
//! processor in a document-partitioned vs. a pipelined term-partitioned IR
//! system (after Webber et al. \[16\]).
//!
//! The paper's point is structural: with 8 homogeneous servers, document
//! partitioning keeps every server near the mean busy load (dashed line),
//! while pipelined term partitioning concentrates load on the servers
//! owning popular terms. We drive both architectures, implemented in
//! `dwr-query`, with the same Zipf query stream over the same corpus.
//!
//! Run: `cargo run -p dwr-bench --bin fig2`

use dwr_bench::{bar, Fixture, Scale, SEED};
use dwr_partition::doc::{DocPartitioner, RandomPartitioner};
use dwr_partition::parted::PartitionedIndex;
use dwr_partition::term::{QueryWorkload, RandomTermPartitioner, TermPartitioner};
use dwr_query::broker::DocBroker;
use dwr_query::pipeline::PipelinedTermEngine;
use dwr_sim::stats::Imbalance;
use dwr_sim::SimRng;
use dwr_text::index::build_index;

const SERVERS: usize = 8;
const QUERIES: usize = 5_000;

fn main() {
    println!("Figure 2. Average busy load per processor: document-partitioned (left)");
    println!("vs pipelined term-partitioned (right), 8 servers, same Zipf query stream.");
    println!("(dashed line = mean = 1.0 after normalization)\n");

    let f = Fixture::new(Scale::Medium);
    let mut rng = SimRng::new(SEED ^ 0x0F16);

    // Sample the query stream once, reuse for both systems.
    let stream: Vec<Vec<dwr_text::TermId>> = (0..QUERIES)
        .map(|_| {
            let q = f.queries.sample(&mut rng);
            f.queries.query(q).terms.iter().map(|t| dwr_text::TermId(t.0)).collect()
        })
        .collect();

    // --- Document-partitioned system. ---
    let assignment = RandomPartitioner { seed: SEED }.assign(&f.corpus, SERVERS);
    let pi = PartitionedIndex::build(&f.corpus, &assignment, SERVERS);
    let doc_broker = DocBroker::single_site(&pi);
    for terms in &stream {
        doc_broker.query(terms, 10);
    }
    let doc_load = doc_broker.busy_load_normalized();

    // --- Pipelined term-partitioned system (random term assignment, as in
    // the figure's source, which predates the bin-packing fix). ---
    let global = build_index(&f.corpus);
    let workload = QueryWorkload { queries: stream.iter().map(|t| (t.clone(), 1.0)).collect() };
    let term_assign = RandomTermPartitioner.assign(&global, &workload, SERVERS);
    let mut pipe = PipelinedTermEngine::single_site(&global, term_assign, SERVERS);
    for terms in &stream {
        pipe.query(terms, 10);
    }
    let term_load = pipe.busy_load_normalized();

    println!("{:<8} {:<32} {:<32}", "server", "document partitioned", "pipelined term partitioned");
    for s in 0..SERVERS {
        println!(
            "{:<8} {:>5.2} |{} {:>5.2} |{}",
            s,
            doc_load[s],
            bar(doc_load[s], 3.0, 24),
            term_load[s],
            bar(term_load[s], 3.0, 24),
        );
    }
    let di = Imbalance::of(&doc_load);
    let ti = Imbalance::of(&term_load);
    println!("\n{:<28} {:>10} {:>10}", "", "doc-part", "term-part");
    println!("{:<28} {:>10.3} {:>10.3}", "max/mean busy load", di.max_over_mean, ti.max_over_mean);
    println!("{:<28} {:>10.3} {:>10.3}", "coefficient of variation", di.cv, ti.cv);
    println!("{:<28} {:>10.3} {:>10.3}", "Gini coefficient", di.gini, ti.gini);
    println!("\npaper shape: doc-partitioned servers all near the dashed mean;");
    println!("term-partitioned shows 'an evident lack of balance' -- reproduced when");
    println!("max/mean(term) >> max/mean(doc): {:.2} vs {:.2}", ti.max_over_mean, di.max_over_mean);
}
