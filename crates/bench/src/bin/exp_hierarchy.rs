//! Experiment **E15**: hierarchical coordinators (Section 5,
//! communication).
//!
//! "The coordinator may become a bottleneck while merging the results from
//! a great number of query processors. In such a case, it is possible to
//! use a hierarchy of coordinators to mitigate this problem \[35\]."
//!
//! Run: `cargo run -p dwr-bench --bin exp_hierarchy --release`

use dwr_bench::{Fixture, Scale, SEED};
use dwr_partition::doc::{DocPartitioner, RandomPartitioner};
use dwr_partition::parted::PartitionedIndex;
use dwr_query::broker::GlobalHit;
use dwr_query::hierarchy::{flat_merge, tree_merge};
use dwr_sim::net::Link;
use dwr_sim::SimRng;
use dwr_text::score::Bm25;
use dwr_text::search::search_or;

fn main() {
    println!("E15. Flat coordinator vs hierarchy of coordinators.\n");
    let f = Fixture::new(Scale::Small);
    let mut rng = SimRng::new(SEED ^ 0x43A2);

    // Correctness on real per-partition results (16 partitions).
    {
        let parts = 16usize;
        let assignment = RandomPartitioner { seed: SEED }.assign(&f.corpus, parts);
        let pi = PartitionedIndex::build(&f.corpus, &assignment, parts);
        let q = f.queries.sample(&mut rng);
        let terms: Vec<dwr_text::TermId> =
            f.queries.query(q).terms.iter().map(|t| dwr_text::TermId(t.0)).collect();
        let lists: Vec<Vec<GlobalHit>> = (0..parts)
            .map(|p| {
                let idx = pi.part(p);
                search_or(idx, &terms, 10, &Bm25::default(), idx)
                    .into_iter()
                    .map(|h| GlobalHit { doc: pi.to_global(p, h.doc), score: h.score })
                    .collect()
            })
            .collect();
        let flat = flat_merge(&lists, 10, Link::lan());
        for fanout in [2usize, 4, 8] {
            assert_eq!(tree_merge(&lists, 10, fanout, Link::lan()).hits, flat.hits);
        }
        println!("correctness: tree merges of real partition results equal the flat merge\n");
    }

    // Cost model at the paper's "great number of query processors": every
    // partition returns a full top-10 (the worst, and typical, case for
    // broad queries on a large collection).
    for parts in [16usize, 64, 256] {
        let lists: Vec<Vec<GlobalHit>> = (0..parts)
            .map(|p| {
                (0..10)
                    .map(|i| GlobalHit {
                        doc: (p * 10 + i) as u32,
                        score: ((p * 131 + i * 17 + 7) % 1009) as f32,
                    })
                    .collect()
            })
            .collect();

        let flat = flat_merge(&lists, 10, Link::lan());
        println!("{parts} partitions:");
        println!(
            "  {:<14} {:>12} {:>12} {:>12} {:>8}",
            "topology", "root cpu us", "total cpu", "latency us", "coords"
        );
        println!(
            "  {:<14} {:>12} {:>12} {:>12} {:>8}",
            "flat", flat.root_cpu_us, flat.total_cpu_us, flat.latency, flat.coordinators
        );
        for fanout in [4usize, 8, 16] {
            let tree = tree_merge(&lists, 10, fanout, Link::lan());
            assert_eq!(tree.hits, flat.hits, "merge correctness");
            println!(
                "  {:<14} {:>12} {:>12} {:>12} {:>8}",
                format!("tree f={fanout}"),
                tree.root_cpu_us,
                tree.total_cpu_us,
                tree.latency,
                tree.coordinators
            );
        }
        println!();
    }
    println!("shape: the root's merge CPU — the throughput bottleneck — shrinks by the");
    println!("fanout ratio in a tree, at the price of more total CPU, extra coordinator");
    println!("machines, and one extra network hop of latency per level. Identical top-k");
    println!("either way (asserted).");
}
