//! Experiment **E29**: online repartitioning — availability and latency
//! while shards split under live traffic, versus an offline rebuild.
//!
//! A [`RepartIndex`] starts at `SERVERS` shards and subdivides under a
//! [`SplitSchedule`] storm (crash fates included) while the engine keeps
//! answering the Figure-2 query stream. The offline baseline reaches the
//! same final layout the classic way: each split is a rebuild that takes
//! the affected shard out of service for a lockout window proportional
//! to the documents re-indexed.
//!
//! Three claims, checked live:
//!
//! 1. **Zero failed queries during the split storm.** Every replica
//!    stays up, so the live engine serves every query `Full` (or from
//!    cache) across every epoch boundary — no `Failed`, no `Degraded`,
//!    no `Partial` (asserted).
//! 2. **The offline rebuild pays in coverage.** Queries landing in a
//!    rebuild lockout window lose the shard under reconstruction and
//!    come back `Degraded` (> 0 asserted); live availability strictly
//!    exceeds the baseline's.
//! 3. **Live telemetry matches offline truth.** The `repart.*`
//!    instruments recorded during the storm equal the index's own
//!    [`RepartStats`] counter for counter, and the epoch gauge equals
//!    the final epoch (asserted exactly).
//!
//! Run: `cargo run -p dwr-bench --bin exp_repart --release`
//! CI smoke: `... -- --smoke --json` (also writes `BENCH_repart.json`)

use dwr_bench::{emit_json, json_requested, smoke_requested, Fixture, Scale, SEED};
use dwr_obs::recorder::{ObsConfig, ObsRecorder};
use dwr_obs::Json;
use dwr_partition::doc::{DocPartitioner, RandomPartitioner};
use dwr_partition::parted::{Corpus, PartitionedIndex};
use dwr_partition::repart::{RepartIndex, SplitSchedule};
use dwr_query::cache::LruCache;
use dwr_query::engine::{DistributedEngine, Served};
use dwr_sim::stats::Samples;
use dwr_sim::{SimRng, SimTime, DAY, SECOND};
use dwr_text::TermId;
use std::collections::HashSet;
use std::sync::Arc;

const SERVERS: usize = 8;
const REPLICAS: usize = 2;
const POOL_THREADS: usize = 4;
const K: usize = 10;
const SPLITS: usize = 8;
const CRASH_RATE: f64 = 0.25;
const HORIZON: SimTime = DAY;
/// Offline-rebuild cost model: simulated µs of shard lockout per
/// document re-indexed (fetch from the store, re-invert, swap). Only the
/// *ratio* matters — lockout grows linearly with the documents moved,
/// which is exactly what the epoch-stamped split avoids paying.
const REINDEX_US_PER_DOC: SimTime = SECOND / 4;

struct Cell {
    arch: &'static str,
    answered: usize,
    full_pct: f64,
    degraded: u64,
    failed: u64,
    p50: f64,
    p99: f64,
    epochs: u64,
    lockout_s: f64,
}

/// One committed split as the offline baseline must replay it: a rebuild
/// of the epoch-0 shard the split target descends from.
struct Rebuild {
    start: SimTime,
    end: SimTime,
    root: usize,
}

/// Replay the storm offline to learn what the baseline must rebuild:
/// for every *committed* split, the epoch-0 ancestor shard and the
/// document count it re-indexes.
fn plan_rebuilds(
    corpus: &Corpus,
    assignment: &[u32],
    schedule: &SplitSchedule,
) -> (Vec<Rebuild>, u64) {
    let capacity = SERVERS + 2 * SPLITS;
    let scratch = RepartIndex::build(corpus.to_vec(), assignment, SERVERS, capacity);
    let mut rebuilds = Vec::new();
    for ev in schedule.events() {
        let Some(parent) = scratch.split_target() else { continue };
        let Ok(report) = scratch.split(parent, ev.fate) else { continue };
        if !report.committed {
            continue;
        }
        // Walk the parent chain back to the epoch-0 layout: that is the
        // shard the offline rebuild takes out of service.
        let snap = scratch.snapshot();
        let mut root = parent;
        while let Some(p) = snap.map().entry(root).and_then(|e| e.parent) {
            root = p;
        }
        let lockout = report.docs_split as SimTime * REINDEX_US_PER_DOC;
        rebuilds.push(Rebuild { start: ev.at, end: ev.at + lockout, root: root as usize });
    }
    let final_epoch = scratch.epoch();
    (rebuilds, final_epoch)
}

fn percentiles(raw: Vec<f64>) -> (f64, f64) {
    let mut lat = Samples::with_capacity(raw.len());
    for v in raw {
        lat.push(v);
    }
    (lat.percentile(50.0), lat.percentile(99.0))
}

/// The live arm: splits fire from the schedule while the stream runs;
/// every query sees one epoch-consistent snapshot, so no outcome is ever
/// worse than `Full`.
fn run_live(
    corpus: &Corpus,
    assignment: &[u32],
    stream: &[Vec<TermId>],
    schedule: &Arc<SplitSchedule>,
) -> Cell {
    let capacity = SERVERS + 2 * SPLITS;
    let repart = Arc::new(RepartIndex::build(corpus.to_vec(), assignment, SERVERS, capacity));
    let rec = Arc::new(ObsRecorder::new(ObsConfig::single_site(capacity).sample(0).with_repart()));
    let engine = DistributedEngine::new_live(&repart, LruCache::new(512), REPLICAS)
        .with_splits(Arc::clone(schedule))
        .with_parallelism(POOL_THREADS)
        .with_obs(Arc::clone(&rec));

    let mut raw: Vec<f64> = Vec::with_capacity(stream.len());
    let mut last_epoch = repart.epoch();
    for (i, terms) in stream.iter().enumerate() {
        engine.advance_to(i as SimTime * HORIZON / stream.len() as SimTime);
        let epoch = repart.epoch();
        assert!(epoch >= last_epoch, "epochs only advance");
        last_epoch = epoch;
        let r = engine.query_full(terms, K);
        assert!(
            matches!(r.served, Served::Full | Served::CacheHit),
            "query {i} during the storm was {:?}, not Full/CacheHit",
            r.served
        );
        if r.served == Served::Full {
            raw.push(r.latency.expect("served queries carry a latency") as f64);
        }
    }
    engine.advance_to(HORIZON);
    repart.validate().expect("no torn map after the storm");

    // Claim 1: with every replica alive, the storm costs nothing in
    // coverage — the outcome counters prove it.
    let s = engine.stats();
    assert_eq!(s.failed, 0, "zero failed queries during the split storm");
    assert_eq!(s.degraded, 0, "no degraded answers during the split storm");
    assert_eq!(s.partial + s.stale, 0, "no partial or stale answers either");
    assert_eq!(s.full + s.cache_hits, stream.len() as u64, "every query answered");

    // Claim 3: the repart.* instruments recorded live must equal the
    // index's own offline accounting, exactly.
    let rs = repart.repart_stats();
    let snap = rec.snapshot();
    assert_eq!(snap.counter("repart.splits"), Some(rs.splits_committed), "repart.splits");
    assert_eq!(snap.counter("repart.aborts"), Some(rs.splits_aborted), "repart.aborts");
    assert_eq!(snap.counter("repart.children"), Some(rs.children_created), "repart.children");
    assert_eq!(snap.gauge("repart.epoch"), Some(rs.epoch as f64), "repart.epoch");
    assert_eq!(rs.splits_committed + rs.splits_aborted, SPLITS as u64, "every event resolved");

    let answered = raw.len();
    let (p50, p99) = percentiles(raw);
    Cell {
        arch: "live-split",
        answered,
        full_pct: 100.0,
        degraded: 0,
        failed: 0,
        p50,
        p99,
        epochs: rs.epoch,
        lockout_s: 0.0,
    }
}

/// The offline baseline: a static epoch-0 layout whose shards go dark
/// for `docs × REINDEX_US_PER_DOC` whenever the storm would have split
/// them.
fn run_offline(
    corpus: &Corpus,
    assignment: &[u32],
    stream: &[Vec<TermId>],
    rebuilds: &[Rebuild],
    final_epoch: u64,
) -> Cell {
    let pi = PartitionedIndex::build(corpus, assignment, SERVERS);
    let engine =
        DistributedEngine::new(&pi, LruCache::new(512), REPLICAS).with_parallelism(POOL_THREADS);

    let mut raw: Vec<f64> = Vec::with_capacity(stream.len());
    let mut down: HashSet<usize> = HashSet::new();
    for (i, terms) in stream.iter().enumerate() {
        let now = i as SimTime * HORIZON / stream.len() as SimTime;
        engine.advance_to(now);
        let want_down: HashSet<usize> =
            rebuilds.iter().filter(|w| w.start <= now && now < w.end).map(|w| w.root).collect();
        for &p in down.difference(&want_down) {
            for r in 0..REPLICAS {
                engine.set_replica_alive(p, r, true);
            }
        }
        for &p in want_down.difference(&down) {
            for r in 0..REPLICAS {
                engine.set_replica_alive(p, r, false);
            }
        }
        down = want_down;
        let r = engine.query_full(terms, K);
        if r.served == Served::Full {
            raw.push(r.latency.expect("served queries carry a latency") as f64);
        }
    }
    let s = engine.stats();
    // Claim 2: rebuild lockouts cost real coverage.
    assert!(s.degraded > 0, "offline rebuilds must lose coverage for some queries (got {s:?})");
    let hurt = s.degraded + s.failed + s.stale + s.partial;
    let full_pct = 100.0 * (stream.len() as u64 - hurt) as f64 / stream.len() as f64;
    let lockout_s: f64 = rebuilds.iter().map(|w| (w.end - w.start) as f64 / SECOND as f64).sum();
    let answered = raw.len();
    let (p50, p99) = percentiles(raw);
    Cell {
        arch: "offline-rebuild",
        answered,
        full_pct,
        degraded: s.degraded,
        failed: s.failed,
        p50,
        p99,
        epochs: final_epoch,
        lockout_s,
    }
}

fn main() {
    let smoke = smoke_requested();
    let n_queries: usize = if smoke { 2_000 } else { 12_000 };
    println!("E29. Online repartitioning: split storm under live traffic vs offline rebuild.");
    println!(
        "workload: {n_queries} Zipf queries over {HORIZON} us, {SERVERS} shards x {REPLICAS} \
         replicas, k={K}, {SPLITS} scheduled splits (crash rate {CRASH_RATE})\n"
    );

    let f = Fixture::new(Scale::Medium);
    let assignment = RandomPartitioner { seed: SEED }.assign(&f.corpus, SERVERS);
    let mut rng = SimRng::new(SEED ^ 0x5917);
    let stream: Vec<Vec<TermId>> = (0..n_queries)
        .map(|_| {
            let q = f.queries.sample(&mut rng);
            f.queries.query(q).terms.iter().map(|t| TermId(t.0)).collect()
        })
        .collect();
    let schedule =
        Arc::new(SplitSchedule::generate_with_crashes(SPLITS, HORIZON, SEED ^ 0xE29, CRASH_RATE));

    let (rebuilds, final_epoch) = plan_rebuilds(&f.corpus, &assignment, &schedule);
    let live = run_live(&f.corpus, &assignment, &stream, &schedule);
    let offline = run_offline(&f.corpus, &assignment, &stream, &rebuilds, final_epoch);
    assert!(
        live.full_pct > offline.full_pct,
        "live splitting must beat the rebuild lockout on availability: {} vs {}",
        live.full_pct,
        offline.full_pct
    );

    let cells = [live, offline];
    println!(
        "{:<16} {:>9} {:>8} {:>9} {:>7} {:>10} {:>10} {:>7} {:>11}",
        "architecture",
        "answered",
        "full %",
        "degraded",
        "failed",
        "p50 us",
        "p99 us",
        "epochs",
        "lockout s"
    );
    for c in &cells {
        println!(
            "{:<16} {:>9} {:>8.2} {:>9} {:>7} {:>10.0} {:>10.0} {:>7} {:>11.0}",
            c.arch,
            c.answered,
            c.full_pct,
            c.degraded,
            c.failed,
            c.p50,
            c.p99,
            c.epochs,
            c.lockout_s
        );
    }
    println!();
    println!("check: zero failed/degraded/partial queries during the live split storm  [ok]");
    println!("check: offline rebuild lockouts degrade coverage; live availability wins  [ok]");
    println!("check: repart.* instruments equal RepartStats exactly (live == offline)  [ok]");

    if json_requested() {
        let cells_json: Vec<Json> = cells
            .iter()
            .map(|c| {
                Json::obj([
                    ("architecture", Json::str(c.arch)),
                    ("answered_full", c.answered.into()),
                    ("full_pct", c.full_pct.into()),
                    ("degraded", c.degraded.into()),
                    ("failed", c.failed.into()),
                    ("p50_us", c.p50.into()),
                    ("p99_us", c.p99.into()),
                    ("epochs", c.epochs.into()),
                    ("rebuild_lockout_s", c.lockout_s.into()),
                ])
            })
            .collect();
        emit_json(
            "repart",
            &Json::obj([
                ("experiment", Json::str("E29")),
                ("smoke", smoke.into()),
                ("queries", n_queries.into()),
                ("shards", SERVERS.into()),
                ("replicas", REPLICAS.into()),
                ("splits_scheduled", SPLITS.into()),
                ("crash_rate", CRASH_RATE.into()),
                ("cells", Json::Arr(cells_json)),
            ]),
        );
    }

    // The paper shape: Section 5's index maintenance challenge — the
    // collection grows, shards must split, and the naive answer (take
    // the shard down, rebuild, swap) trades availability for freshness.
    // Epoch-stamped subdivision keeps both: every query is answered in
    // full at some valid epoch, and the map never tears.
}
