//! Regenerate **Figure 5**: site unavailability in the BIRN grid system
//! (Junqueira & Marzullo \[38\]).
//!
//! The original plots, for each availability threshold, the average number
//! of the 16 BIRN sites whose *monthly* availability fell under the
//! threshold, over Jan–Aug 2004. Anchor: "on average 10 [of 16 sites]
//! experience at least one outage (...) in a given month". We regenerate
//! the histogram from calibrated two-state renewal failure processes (we
//! do not have the BIRN traces; see DESIGN.md substitutions).
//!
//! Run: `cargo run -p dwr-bench --bin fig5`

use dwr_avail::monthly::{availability_histogram, figure5_thresholds, monthly_availability};
use dwr_avail::site::SiteConfig;
use dwr_bench::{bar, SEED};

fn main() {
    println!("Figure 5. Site unavailability in the BIRN Grid system (simulated).");
    println!("16 sites x 8 months; bar = average #sites with monthly availability under x\n");

    let sites: Vec<SiteConfig> = (0..16).map(|_| SiteConfig::birn_like(2)).collect();
    // Average the histogram over several seeds to mimic the paper's
    // multi-month averaging.
    let runs = 20u64;
    let thresholds = figure5_thresholds();
    let mut acc = vec![0f64; thresholds.len()];
    for r in 0..runs {
        let monthly = monthly_availability(&sites, 8, SEED + r);
        let h = availability_histogram(&monthly, &thresholds);
        for (a, v) in acc.iter_mut().zip(h) {
            *a += v;
        }
    }
    for a in acc.iter_mut() {
        *a /= runs as f64;
    }

    println!("{:>12} {:>10}", "avail <", "avg sites");
    for (t, v) in thresholds.iter().zip(&acc) {
        println!("{:>11.1}% {:>10.1}  |{}", t * 100.0, v, bar(*v, 16.0, 40));
    }
    let under_100 = acc.last().copied().unwrap_or(0.0);
    println!("\npaper anchor: ~10 of 16 sites see at least one outage per month");
    println!("measured:     {under_100:.1} of 16 sites under 100% monthly availability");
}
