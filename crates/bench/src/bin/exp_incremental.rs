//! Experiment **E11**: incremental query processing — completeness vs
//! deadline (Section 5, communication).
//!
//! "The faster query processors provide an initial set of results. Other
//! remote query processors provide additional results with a higher
//! latency and users continuously obtain new results."
//!
//! Run: `cargo run -p dwr-bench --bin exp_incremental` (use --release)

use dwr_bench::{bar, Fixture, Scale, SEED};
use dwr_partition::doc::{DocPartitioner, RandomPartitioner};
use dwr_partition::parted::PartitionedIndex;
use dwr_query::broker::GlobalHit;
use dwr_query::incremental::{completeness_at, PartitionArrival};
use dwr_sim::{SimRng, MILLISECOND};
use dwr_text::score::Bm25;
use dwr_text::search::search_or;

const PARTS: usize = 8;

fn main() {
    println!("E11. Incremental results: completeness of the top-10 vs deadline.");
    println!("{PARTS} partitions: 4 local (LAN, ~2-10 ms), 4 remote (WAN, ~60-200 ms).\n");
    let f = Fixture::new(Scale::Medium);
    let assignment = RandomPartitioner { seed: SEED }.assign(&f.corpus, PARTS);
    let pi = PartitionedIndex::build(&f.corpus, &assignment, PARTS);
    let mut rng = SimRng::new(SEED ^ 0x17C);
    let deadlines: Vec<u64> =
        vec![5, 10, 20, 50, 100, 150, 250].into_iter().map(|ms| ms * MILLISECOND).collect();
    let mut acc = vec![0f64; deadlines.len()];
    let queries = 200;
    for _ in 0..queries {
        let q = f.queries.sample(&mut rng);
        let terms: Vec<dwr_text::TermId> =
            f.queries.query(q).terms.iter().map(|t| dwr_text::TermId(t.0)).collect();
        // Per-partition hits with a latency: local partitions fast,
        // remote ones slow.
        let arrivals: Vec<PartitionArrival> = (0..PARTS)
            .map(|p| {
                let idx = pi.part(p);
                let hits: Vec<GlobalHit> = search_or(idx, &terms, 10, &Bm25::default(), idx)
                    .into_iter()
                    .map(|h| GlobalHit { doc: pi.to_global(p, h.doc), score: h.score })
                    .collect();
                let at = if p < PARTS / 2 {
                    rng.range_u64(2 * MILLISECOND, 10 * MILLISECOND)
                } else {
                    rng.range_u64(60 * MILLISECOND, 200 * MILLISECOND)
                };
                PartitionArrival { at, hits }
            })
            .collect();
        for (i, &d) in deadlines.iter().enumerate() {
            acc[i] += completeness_at(&arrivals, d, 10);
        }
    }

    println!("  {:>10} {:>14}", "deadline", "completeness");
    for (i, &d) in deadlines.iter().enumerate() {
        let c = acc[i] / queries as f64;
        println!("  {:>8}ms {:>13.1}%  |{}", d / MILLISECOND, 100.0 * c, bar(c, 1.0, 40));
    }
    println!("\npaper shape: roughly half the final answer is available at LAN latency;");
    println!("the tail waits for the WAN partitions — the case for serving incrementally.");
}
