//! Regenerate **Figure 1**: the two partitionings of the T×D matrix.
//!
//! The paper's Figure 1 is a schematic: a term-document matrix sliced
//! horizontally (document partitioning) or vertically (term partitioning).
//! We draw the same schematic from an actual toy corpus and the actual
//! partitioners, so the picture is produced by the real code paths.
//!
//! Run: `cargo run -p dwr-bench --bin fig1`

use dwr_partition::doc::{DocPartitioner, RoundRobinPartitioner};
use dwr_partition::parted::Corpus;
use dwr_partition::term::{BinPackingTermPartitioner, QueryWorkload, TermPartitioner};
use dwr_text::index::build_index;
use dwr_text::TermId;

fn main() {
    // A 8-term × 12-doc toy matrix.
    let terms = 8u32;
    let docs = 12usize;
    let corpus: Corpus = (0..docs)
        .map(|d| {
            (0..terms)
                .filter(|t| !(d + *t as usize).is_multiple_of(3))
                .map(|t| (TermId(t), 1))
                .collect()
        })
        .collect();
    let k = 3;

    println!("Figure 1. The two different types of partitioning of the term-document matrix.");
    println!(
        "(matrix cells: '1' = term occurs in document; partitions shown as | and - separators)\n"
    );

    // Document partitioning: horizontal slices.
    let doc_assign = RoundRobinPartitioner.assign(&corpus, k);
    // Order documents by partition to show contiguous slices.
    let mut order: Vec<usize> = (0..docs).collect();
    order.sort_by_key(|&d| (doc_assign[d], d));

    println!("Document partitioning (horizontal slices of D x T):");
    let mut last_part = u32::MAX;
    for &d in &order {
        if doc_assign[d] != last_part {
            if last_part != u32::MAX {
                println!("  {}", "-".repeat(terms as usize * 2 + 1));
            }
            last_part = doc_assign[d];
        }
        let row: String = (0..terms)
            .map(|t| if corpus[d].iter().any(|&(tt, _)| tt.0 == t) { " 1" } else { " ." })
            .collect();
        println!("  d{d:02}{row}   -> partition {}", doc_assign[d]);
    }

    // Term partitioning: vertical slices.
    let index = build_index(&corpus);
    let workload = QueryWorkload { queries: (0..terms).map(|t| (vec![TermId(t)], 1.0)).collect() };
    let term_assign = BinPackingTermPartitioner.assign(&index, &workload, k);
    println!("\nTerm partitioning (vertical slices of T x D):");
    let mut term_order: Vec<u32> = (0..terms).collect();
    term_order.sort_by_key(|&t| (term_assign.get(&t).copied().unwrap_or(0), t));
    print!("        ");
    for &t in &term_order {
        print!("t{t} ");
    }
    println!(
        "\n        {}",
        term_order.iter().map(|&t| format!("p{} ", term_assign[&t])).collect::<String>()
    );
    for (d, doc) in corpus.iter().enumerate() {
        print!("  d{d:02}   ");
        for &t in &term_order {
            print!("{}  ", if doc.iter().any(|&(tt, _)| tt.0 == t) { '1' } else { '.' });
        }
        println!();
    }
    println!("\n(each term column belongs to the server shown in its 'p' row)");
}
