//! Experiment **E22**: frontier prioritization (Sections 2 and 6).
//!
//! "A crawler (...) above all must not overload Web servers (...) and
//! prioritize high-quality objects"; Section 6 keeps "how to efficiently
//! prioritize the crawling frontier" open. We compare FIFO discovery order
//! against online citation-count ordering on the metric of Cho,
//! Garcia-Molina & Page: how early the truly hot pages are fetched.
//!
//! Run: `cargo run -p dwr-bench --bin exp_priority --release`

use dwr_bench::SEED;
use dwr_crawler::priority::evaluate_crawl_ordering;
use dwr_webgraph::generate::{generate_web, WebConfig};

fn main() {
    println!("E22. Crawl ordering: FIFO vs citation-count prioritization.\n");
    println!(
        "  {:>9} {:>16} {:>16} {:>14} {:>14}",
        "locality", "prefix deg FIFO", "prefix deg prio", "hot pos FIFO", "hot pos prio"
    );
    for locality in [0.5, 0.75, 0.9] {
        let mut cfg = WebConfig::medium();
        cfg.locality = locality;
        let web = generate_web(&cfg, SEED);
        let r = evaluate_crawl_ordering(&web, 16, 0.2);
        println!(
            "  {:>9.2} {:>16.1} {:>16.1} {:>14.3} {:>14.3}",
            locality,
            r.fifo_prefix_indegree,
            r.prioritized_prefix_indegree,
            r.fifo_hot_position,
            r.prioritized_hot_position
        );
    }
    println!("\n(prefix deg = mean true in-degree of the first 20% of fetches;");
    println!(" hot pos    = mean normalized fetch position of the true top-100 pages,");
    println!("              0 = fetched immediately)");
    println!("\npaper shape: citation ordering pulls the hot pages sharply forward in the");
    println!("crawl — the \"prioritize high-quality objects\" requirement — while politeness");
    println!("and coverage are unchanged (both runs fetch the identical page set).");
}
