//! Experiment **E14**: online index maintenance — merge policies and the
//! lockout effect (Section 4, communication).
//!
//! "This dynamic index structure constrains the capacity and the response
//! time of the system since the update operation usually requires locking
//! the index (...) This is even more problematic in the case of term
//! partitioned distributed IR systems. Terms that require frequent updates
//! might be spread across different servers, thus amplifying the lockout
//! effect."
//!
//! Run: `cargo run -p dwr-bench --bin exp_online_index --release`

use dwr_bench::{Fixture, Scale, SEED};
use dwr_sim::SimRng;
use dwr_text::dynamic::{DynamicIndex, MergePolicy};

fn main() {
    println!("E14. Online index maintenance over a 2k-doc update stream (buffer 16).\n");
    let f = Fixture::new(Scale::Small);

    println!(
        "  {:<18} {:>9} {:>8} {:>13} {:>12} {:>10}",
        "policy", "segments", "merges", "docs rewritten", "lock (ms)", "query ovh"
    );
    for (name, policy) in [
        ("no-merge", MergePolicy::NoMerge),
        ("geometric r=2", MergePolicy::Geometric { r: 2 }),
        ("geometric r=3", MergePolicy::Geometric { r: 3 }),
        ("always-merge", MergePolicy::AlwaysMerge),
    ] {
        let mut d = DynamicIndex::new(policy, 16);
        for doc in &f.corpus {
            d.insert(doc.clone());
        }
        let s = d.stats();
        println!(
            "  {:<18} {:>9} {:>8} {:>13} {:>12.1} {:>10}",
            name,
            d.num_segments(),
            s.merges,
            s.docs_rewritten,
            s.lock_time_us as f64 / 1000.0,
            d.query_overhead_segments()
        );
    }
    println!("\nshape (Lester/Moffat/Zobel geometric partitioning): always-merge pays");
    println!("quadratic rewriting for one segment; no-merge is cheap to update but");
    println!("fragments queries; geometric keeps O(log n) segments at O(n log n) rewrite.");

    // Lockout amplification under term partitioning: each updated document
    // touches terms owned by several term-partition servers, so ONE update
    // write-locks MANY servers; under document partitioning it locks one.
    println!("\nlockout amplification (8 servers, per-update servers locked):");
    let mut rng = SimRng::new(SEED ^ 0x10CC);
    let servers = 8u32;
    let mut doc_locked = 0u64;
    let mut term_locked = 0u64;
    let updates = 1_000;
    for _ in 0..updates {
        let doc = &f.corpus[rng.index(f.corpus.len())];
        doc_locked += 1; // the one partition owning this doc
        let mut touched: Vec<u32> = doc
            .iter()
            .map(|&(t, _)| {
                // SplitMix-style term->server hash, as the term partitioner.
                let mut z = u64::from(t.0)
                    .wrapping_add(0x9E37_79B9_7F4A_7C15)
                    .wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z ^= z >> 31;
                (z % u64::from(servers)) as u32
            })
            .collect();
        touched.sort_unstable();
        touched.dedup();
        term_locked += touched.len() as u64;
    }
    println!(
        "  document-partitioned: {:.2} servers locked per update",
        doc_locked as f64 / f64::from(updates)
    );
    println!(
        "  term-partitioned:     {:.2} servers locked per update  ({:.1}x amplification)",
        term_locked as f64 / f64::from(updates),
        term_locked as f64 / doc_locked as f64
    );
    println!("\npaper shape: 'terms that require frequent updates might be spread across");
    println!("different servers, thus amplifying the lockout effect' — reproduced.");
}
