//! Experiment **E28**: tail latency under heavy-tailed shard stragglers —
//! hedging policy × load, on the Figure-2 workload.
//!
//! Each (partition, replica) draws a per-query service-time inflation
//! factor from [`StragglerModel`] (lognormal body, bounded-Pareto tail,
//! load-scaled via [`TailParams::at_load`]); the same drawn model and the
//! same Zipf stream are replayed through a [`DistributedEngine`] under
//! every [`HedgePolicy`], so cells differ *only* in the policy. A light
//! fault schedule keeps the death-hedging path live.
//!
//! Three claims, checked live:
//!
//! 1. **Hedging cuts the tail.** At each load, at least one hedging
//!    policy beats `Never` strictly at p999 (asserted).
//! 2. **The overhead is priced.** Every cell reports hedges/query,
//!    cancellations, and `hedge_work_us` — the work burned on requests
//!    whose answer was discarded — as a fraction of total shard busy
//!    time, so the p999 win is never quoted without its cost.
//! 3. **Deadline-aware gather degrades explicitly.** A gather deadline
//!    at the no-hedge p99 turns over-deadline queries into
//!    [`Served::Partial`] with exact coverage counts instead of
//!    stretching the tail (partials > 0 asserted, and every outcome
//!    lands in exactly one counter).
//!
//! Run: `cargo run -p dwr-bench --bin exp_tail --release`
//! CI smoke: `... -- --smoke --json` (also writes `BENCH_tail.json`)

use dwr_avail::UpDownProcess;
use dwr_bench::{emit_json, json_requested, smoke_requested, Fixture, Scale, SEED};
use dwr_obs::Json;
use dwr_partition::doc::{DocPartitioner, RandomPartitioner};
use dwr_partition::parted::PartitionedIndex;
use dwr_query::cache::LruCache;
use dwr_query::engine::{DistributedEngine, HedgePolicy, Served};
use dwr_query::faults::FaultSchedule;
use dwr_query::straggler::{StragglerModel, TailParams};
use dwr_sim::stats::Samples;
use dwr_sim::{SimRng, SimTime, DAY, HOUR};
use dwr_text::TermId;
use std::sync::Arc;

const SERVERS: usize = 8;
const REPLICAS: usize = 2;
const POOL_THREADS: usize = 4;
const K: usize = 10;
const LOADS: [f64; 2] = [0.5, 0.9];

struct Cell {
    policy: String,
    load: f64,
    backend: usize,
    p50: f64,
    p99: f64,
    p999: f64,
    hedges_per_q: f64,
    cancelled: u64,
    overhead_pct: f64,
    goodput_pct: f64,
}

fn policy_name(p: HedgePolicy) -> String {
    match p {
        HedgePolicy::Never => "never".into(),
        HedgePolicy::OnDeath => "on-death".into(),
        HedgePolicy::FixedDelay(t) => format!("fixed({t})"),
        HedgePolicy::PercentileTrigger(q) => format!("p{q:.0}-trigger"),
        HedgePolicy::Tied => "tied".into(),
    }
}

/// Replay the stream under one policy; `sla` (if known) scores goodput.
#[allow(clippy::too_many_arguments)]
fn run_cell(
    pi: &PartitionedIndex,
    stream: &[Vec<TermId>],
    schedule: &Arc<FaultSchedule>,
    model: &Arc<StragglerModel>,
    policy: HedgePolicy,
    load: f64,
    sla: Option<f64>,
    gather_deadline: Option<SimTime>,
) -> (DistributedEngine<LruCache>, Cell) {
    let mut engine = DistributedEngine::new(pi, LruCache::new(512), REPLICAS)
        .with_faults(Arc::clone(schedule))
        .with_stragglers(Arc::clone(model))
        .with_hedge_policy(policy)
        .with_parallelism(POOL_THREADS);
    if let Some(d) = gather_deadline {
        engine = engine.with_gather_deadline(d);
    }
    let horizon = schedule.horizon();
    let mut raw: Vec<f64> = Vec::with_capacity(stream.len());
    for (i, terms) in stream.iter().enumerate() {
        engine.advance_to(i as SimTime * horizon / stream.len() as SimTime);
        let r = engine.query_full(terms, K);
        // Tail statistics are about backend service: cache hits answer
        // from coordinator memory and would just dilute the percentiles.
        if matches!(r.served, Served::Full | Served::Degraded { .. } | Served::Partial { .. }) {
            raw.push(r.latency.expect("served queries carry a latency") as f64);
        }
    }
    let s = engine.stats();
    let backend = raw.len();
    let busy: f64 = engine.broker().busy_time().iter().sum();
    let good = sla.map_or(f64::NAN, |sla| {
        let under = raw.iter().filter(|&&v| v <= sla).count();
        100.0 * under as f64 / backend.max(1) as f64
    });
    let mut lat = Samples::with_capacity(backend);
    for v in raw {
        lat.push(v);
    }
    let cell = Cell {
        policy: policy_name(policy),
        load,
        backend,
        p50: lat.percentile(50.0),
        p99: lat.percentile(99.0),
        p999: lat.percentile(99.9),
        hedges_per_q: s.hedged as f64 / backend.max(1) as f64,
        cancelled: s.cancelled,
        overhead_pct: 100.0 * s.hedge_work_us as f64 / busy.max(1e-9),
        goodput_pct: good,
    };
    (engine, cell)
}

fn main() {
    let smoke = smoke_requested();
    let n_queries: usize = if smoke { 2_000 } else { 12_000 };
    println!("E28. Tail latency under stragglers: hedging policy x load.");
    println!(
        "workload: {n_queries} Zipf queries, {SERVERS} partitions x {REPLICAS} replicas, \
         k={K}, pool of {POOL_THREADS} workers\n"
    );

    let f = Fixture::new(Scale::Medium);
    let assignment = RandomPartitioner { seed: SEED }.assign(&f.corpus, SERVERS);
    let pi = PartitionedIndex::build(&f.corpus, &assignment, SERVERS);
    let mut rng = SimRng::new(SEED ^ 0x7A11);
    let stream: Vec<Vec<TermId>> = (0..n_queries)
        .map(|_| {
            let q = f.queries.sample(&mut rng);
            f.queries.query(q).terms.iter().map(|t| TermId(t.0)).collect()
        })
        .collect();
    // Light churn: deaths stay rare enough that the tail is a straggler
    // story, but the on-death path stays exercised.
    let process = UpDownProcess::exponential(12 * HOUR, HOUR);
    let schedule =
        Arc::new(FaultSchedule::generate(SERVERS, REPLICAS, &process, 2 * DAY, SEED ^ 5));

    let mut cells: Vec<Cell> = Vec::new();
    let mut partial_report: Vec<(f64, u64, u64, f64)> = Vec::new();
    for (li, &load) in LOADS.iter().enumerate() {
        // One drawn model per load, shared by every policy cell: the
        // replicas' (p, r, qid) draws are identical across policies, so
        // the comparison is at genuinely equal load.
        let model =
            Arc::new(StragglerModel::drawn(SEED ^ (li as u64) << 32, TailParams::at_load(load)));

        // The no-hedge reference sets the yardsticks: its shard p95 is
        // the classic hedge delay, 3x its p50 is the SLA, its p99 is the
        // gather deadline for the partial-results section.
        let (ref_engine, _) =
            run_cell(&pi, &stream, &schedule, &model, HedgePolicy::Never, load, None, None);
        let shard_p95 = ref_engine
            .shard_latency_percentiles()
            .iter()
            .map(|p| p.percentile(95.0))
            .fold(0.0f64, f64::max)
            .ceil() as SimTime;

        let policies = [
            HedgePolicy::Never,
            HedgePolicy::OnDeath,
            HedgePolicy::FixedDelay(shard_p95.max(1)),
            HedgePolicy::PercentileTrigger(99.0),
            HedgePolicy::Tied,
        ];
        let mut sla = f64::NAN;
        for policy in policies {
            let (_, mut cell) = run_cell(
                &pi,
                &stream,
                &schedule,
                &model,
                policy,
                load,
                if sla.is_nan() { None } else { Some(sla) },
                None,
            );
            if policy == HedgePolicy::Never {
                sla = 3.0 * cell.p50;
                // Re-score the reference against its own SLA.
                cell.goodput_pct = {
                    let (_, rescored) =
                        run_cell(&pi, &stream, &schedule, &model, policy, load, Some(sla), None);
                    rescored.goodput_pct
                };
            }
            cells.push(cell);
        }

        // Claim 1: some hedging policy beats Never strictly at p999.
        let never_p999 =
            cells.iter().find(|c| c.load == load && c.policy == "never").map(|c| c.p999).unwrap();
        let best_hedged = cells
            .iter()
            .filter(|c| c.load == load && c.policy != "never")
            .map(|c| c.p999)
            .fold(f64::INFINITY, f64::min);
        assert!(
            best_hedged < never_p999,
            "at load {load}, some hedging policy must beat Never at p999: \
             best {best_hedged} vs never {never_p999}"
        );

        // Claim 3: a gather deadline at the no-hedge p99 yields explicit
        // partial coverage instead of a stretched tail.
        let deadline = cells
            .iter()
            .find(|c| c.load == load && c.policy == "never")
            .map(|c| c.p99.ceil() as SimTime)
            .unwrap();
        let (engine, dcell) = run_cell(
            &pi,
            &stream,
            &schedule,
            &model,
            HedgePolicy::OnDeath,
            load,
            Some(sla),
            Some(deadline),
        );
        let s = engine.stats();
        assert!(s.partial > 0, "a p99 deadline must clip some gathers at load {load}");
        let outcomes = s.cache_hits + s.full + s.degraded + s.stale + s.failed + s.partial;
        assert_eq!(outcomes, n_queries as u64, "every query lands in one outcome counter");
        partial_report.push((load, s.partial, s.full, dcell.p999));
    }

    println!(
        "{:<14} {:>5} {:>9} {:>10} {:>10} {:>10} {:>9} {:>10} {:>9} {:>9}",
        "policy",
        "load",
        "backend",
        "p50 us",
        "p99 us",
        "p999 us",
        "hedges/q",
        "cancelled",
        "ovhd %",
        "goodput %"
    );
    for c in &cells {
        println!(
            "{:<14} {:>5.2} {:>9} {:>10.0} {:>10.0} {:>10.0} {:>9.3} {:>10} {:>9.2} {:>9.2}",
            c.policy,
            c.load,
            c.backend,
            c.p50,
            c.p99,
            c.p999,
            c.hedges_per_q,
            c.cancelled,
            c.overhead_pct,
            c.goodput_pct,
        );
    }
    println!();
    for (load, partial, full, p999) in &partial_report {
        println!(
            "deadline@p99, load {load:.2}: {partial} partial / {full} full answers, \
             p999 {p999:.0} us (coverage made explicit, not silently late)"
        );
    }
    println!("\ncheck: at every load, a hedging policy beats Never strictly at p999  [ok]");
    println!("check: gather deadline converts the over-budget tail into Served::Partial  [ok]");

    if json_requested() {
        let cells_json: Vec<Json> = cells
            .iter()
            .map(|c| {
                Json::obj([
                    ("policy", Json::str(&c.policy)),
                    ("load", c.load.into()),
                    ("backend_queries", c.backend.into()),
                    ("p50_us", c.p50.into()),
                    ("p99_us", c.p99.into()),
                    ("p999_us", c.p999.into()),
                    ("hedges_per_query", c.hedges_per_q.into()),
                    ("cancelled", c.cancelled.into()),
                    ("hedge_overhead_pct", c.overhead_pct.into()),
                    ("goodput_pct", c.goodput_pct.into()),
                ])
            })
            .collect();
        let partial_json: Vec<Json> = partial_report
            .iter()
            .map(|(load, partial, full, p999)| {
                Json::obj([
                    ("load", (*load).into()),
                    ("partial", (*partial).into()),
                    ("full", (*full).into()),
                    ("p999_us", (*p999).into()),
                ])
            })
            .collect();
        emit_json(
            "tail",
            &Json::obj([
                ("experiment", Json::str("E28")),
                ("smoke", smoke.into()),
                ("queries", n_queries.into()),
                ("servers", SERVERS.into()),
                ("replicas", REPLICAS.into()),
                ("k", K.into()),
                ("cells", Json::Arr(cells_json)),
                ("deadline_cells", Json::Arr(partial_json)),
            ]),
        );
    }

    println!("\npaper shape: Section 5 observes that in scatter-gather retrieval the");
    println!("slowest server sets the response time; with heavy-tailed shard service,");
    println!("p999 is a straggler story, and the classic remedies -- hedged requests,");
    println!("tied requests, deadline-bounded gather -- trade bounded duplicate work");
    println!("for a bounded tail, which this table prices explicitly.");
}
