//! Experiment **E18**: server–crawler cooperation (Section 3).
//!
//! Three cooperation levels over the same web and crawl budget:
//! none, If-Modified-Since re-crawling \[7, 8, 9\], and sitemaps
//! (`http://www.sitemaps.org/`) — "the Web server informs the crawler of the
//! modification dates and modification frequencies for its local pages".
//! Robots exclusion runs throughout, as politeness requires.
//!
//! Run: `cargo run -p dwr-bench --bin exp_cooperation --release`

use dwr_bench::SEED;
use dwr_crawler::assign::HashAssigner;
use dwr_crawler::recrawl::{simulate_recrawl, Cooperation, RecrawlConfig, RecrawlPolicy};
use dwr_crawler::sim::{CrawlConfig, DistributedCrawl};
use dwr_sim::SECOND;
use dwr_webgraph::generate::{generate_web, WebConfig};
use dwr_webgraph::qos::QosConfig;

fn main() {
    println!("E18. Server-crawler cooperation: robots, sitemaps, If-Modified-Since.\n");
    let web = generate_web(&WebConfig::medium(), SEED);

    let base = CrawlConfig {
        agents: 8,
        connections_per_agent: 16,
        politeness_delay: SECOND / 2,
        qos: QosConfig { flaky_fraction: 0.0, slow_fraction: 0.0, ..QosConfig::default() },
        robots_restrictive_fraction: 0.3,
        robots_disallow_fraction: 0.3,
        ..CrawlConfig::default()
    };

    println!("(a) discovery: sitemaps vs pure link extraction (robots active on 30% of hosts):");
    println!(
        "  {:>10} {:>10} {:>12} {:>14} {:>12}",
        "sitemaps", "fetched", "of allowed", "via sitemap", "makespan(h)"
    );
    for fraction in [0.0, 0.3, 1.0] {
        let mut cfg = base.clone();
        cfg.sitemap_fraction = fraction;
        let r = DistributedCrawl::new(&web, HashAssigner::new(8), cfg, SEED).run();
        println!(
            "  {:>9.0}% {:>10} {:>11.1}% {:>14} {:>12.2}",
            fraction * 100.0,
            r.fetched_pages,
            100.0 * r.coverage_allowed,
            r.sitemap_discoveries,
            r.makespan as f64 / 3.6e9
        );
    }

    println!("\n(b) freshness: re-crawl budget stretched by If-Modified-Since");
    println!("    (20k pages, 2k fetch budget/day, 30 days):");
    let rc = RecrawlConfig {
        daily_budget: 2_000.0,
        conditional_cost: 0.05,
        days: 30,
        policy: RecrawlPolicy::UniformOldestFirst,
        cooperation: Cooperation::None,
        growth_per_day: 0.0,
    };
    let blind = simulate_recrawl(&web, &rc, SEED);
    let coop = simulate_recrawl(
        &web,
        &RecrawlConfig { cooperation: Cooperation::IfModifiedSince, ..rc },
        SEED,
    );
    println!(
        "  {:<22} mean freshness {:>5.1}%  ({} full fetches)",
        "polling (no help)",
        100.0 * blind.mean_freshness,
        blind.full_fetches
    );
    println!(
        "  {:<22} mean freshness {:>5.1}%  ({} full + {} conditional)",
        "If-Modified-Since",
        100.0 * coop.mean_freshness,
        coop.full_fetches,
        coop.conditional_requests
    );
    println!("\npaper shape: sitemaps discover whole hosts in one fetch (pages links never");
    println!("reach); conditional requests turn most of the polling budget into cheap");
    println!("header exchanges — 'reduce, but not eliminate, the overhead due to this");
    println!("polling'. Robots exclusion caps the fetchable set throughout.");
}
