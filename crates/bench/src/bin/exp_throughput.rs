//! Experiment **E27**: queries/sec through the ranked-retrieval hot
//! path — block-max MaxScore pruning × batched admission, on the
//! Figure-2 workload.
//!
//! The sweep drives the same Zipf query stream through a
//! document-partitioned [`DocBroker`] (8 servers, as in Figure 2) in
//! every combination of
//!
//! * **evaluator**: exhaustive decode-everything reference vs block-max
//!   MaxScore ([`EvalStrategy`]), and
//! * **batch size**: query-at-a-time loop vs [`DocBroker::query_batch`]
//!   (all shard tasks of a batch admitted to the scatter pool under one
//!   queue-lock acquisition).
//!
//! Three claims, all checked live:
//!
//! 1. **Bit-identical answers.** Every cell returns exactly the hits
//!    and simulated latencies of the exhaustive query-at-a-time
//!    reference — pruning and batching change the work performed,
//!    never the answer (asserted per query).
//! 2. **Strictly less work.** MaxScore scans strictly fewer postings
//!    than exhaustive on this workload and actually skips blocks
//!    (asserted on the measured [`EvalStats`] counters, which are also
//!    identical across batch sizes — work is a property of the
//!    evaluator, not the admission path).
//! 3. **Throughput.** Queries/sec per cell, the headline table. Wall
//!    clock is reported, not asserted (CI machines vary); the
//!    deterministic work counters above are the regression guard.
//!
//! Run: `cargo run -p dwr-bench --bin exp_throughput --release`
//! CI smoke: `... -- --smoke --json` (also writes
//! `BENCH_throughput.json`)

use dwr_bench::{emit_json, json_requested, smoke_requested, Fixture, Scale, SEED};
use dwr_obs::Json;
use dwr_partition::doc::{DocPartitioner, RandomPartitioner};
use dwr_partition::parted::PartitionedIndex;
use dwr_query::broker::{BrokeredResponse, DocBroker};
use dwr_sim::SimRng;
use dwr_text::search::{EvalStats, EvalStrategy};
use dwr_text::TermId;
use std::time::Instant;

const SERVERS: usize = 8;
const POOL_THREADS: usize = 4;
const K: usize = 10;
const BATCH_SIZES: [usize; 4] = [1, 8, 64, 256];

struct Cell {
    strategy: EvalStrategy,
    batch: usize,
    elapsed_s: f64,
    qps: f64,
    work: EvalStats,
}

fn strategy_name(s: EvalStrategy) -> &'static str {
    match s {
        EvalStrategy::Exhaustive => "exhaustive",
        EvalStrategy::MaxScore => "maxscore",
    }
}

/// Run the whole stream through one broker configuration and measure it.
fn run_cell(
    pi: &PartitionedIndex,
    stream: &[Vec<TermId>],
    strategy: EvalStrategy,
    batch: usize,
) -> (Vec<BrokeredResponse>, Cell) {
    let broker = DocBroker::single_site(pi).with_strategy(strategy).parallel(POOL_THREADS);
    let t0 = Instant::now();
    let responses: Vec<BrokeredResponse> = if batch == 1 {
        stream.iter().map(|terms| broker.query(terms, K)).collect()
    } else {
        stream.chunks(batch).flat_map(|chunk| broker.query_batch(chunk, K)).collect()
    };
    let elapsed_s = t0.elapsed().as_secs_f64();
    let cell = Cell {
        strategy,
        batch,
        elapsed_s,
        qps: stream.len() as f64 / elapsed_s.max(1e-9),
        work: broker.eval_stats(),
    };
    (responses, cell)
}

fn main() {
    let smoke = smoke_requested();
    // Smoke shrinks the stream, not the corpus: the Small corpus yields
    // shards under one block long, where there is nothing to skip.
    let n_queries: usize = if smoke { 2_000 } else { 10_000 };
    println!("E27. Ranked-retrieval throughput: block-max MaxScore x batched admission.");
    println!(
        "workload: {n_queries} Zipf queries, {SERVERS} doc-partitioned servers (Fig. 2), \
         k={K}, pool of {POOL_THREADS} workers\n"
    );

    let f = Fixture::new(Scale::Medium);
    let assignment = RandomPartitioner { seed: SEED }.assign(&f.corpus, SERVERS);
    let pi = PartitionedIndex::build(&f.corpus, &assignment, SERVERS);
    let mut rng = SimRng::new(SEED ^ 0x7_14_90);
    let stream: Vec<Vec<TermId>> = (0..n_queries)
        .map(|_| {
            let q = f.queries.sample(&mut rng);
            f.queries.query(q).terms.iter().map(|t| TermId(t.0)).collect()
        })
        .collect();

    // The reference every cell must reproduce bit for bit: exhaustive
    // evaluation, query-at-a-time.
    let (reference, ref_cell) = run_cell(&pi, &stream, EvalStrategy::Exhaustive, 1);

    let mut cells = vec![ref_cell];
    for strategy in [EvalStrategy::Exhaustive, EvalStrategy::MaxScore] {
        for batch in BATCH_SIZES {
            if strategy == EvalStrategy::Exhaustive && batch == 1 {
                continue; // the reference cell, already run
            }
            let (responses, cell) = run_cell(&pi, &stream, strategy, batch);
            for (i, (a, b)) in reference.iter().zip(&responses).enumerate() {
                assert_eq!(a.hits, b.hits, "hits diverge: {:?} batch {batch} query {i}", strategy);
                assert_eq!(a.latency, b.latency, "latency diverges: query {i}");
            }
            cells.push(cell);
        }
    }

    // Claim 2: work counters are a property of the evaluator alone, and
    // the pruned evaluator does strictly less of it.
    for s in [EvalStrategy::Exhaustive, EvalStrategy::MaxScore] {
        let per_batch: Vec<&Cell> = cells.iter().filter(|c| c.strategy == s).collect();
        for c in &per_batch {
            assert_eq!(
                c.work, per_batch[0].work,
                "measured work must be identical across batch sizes ({s:?})"
            );
        }
    }
    let ex = cells.iter().find(|c| c.strategy == EvalStrategy::Exhaustive).unwrap().work;
    let ms = cells.iter().find(|c| c.strategy == EvalStrategy::MaxScore).unwrap().work;
    assert!(
        ms.postings_scanned < ex.postings_scanned,
        "MaxScore must scan strictly fewer postings: {} vs {}",
        ms.postings_scanned,
        ex.postings_scanned
    );
    assert!(ms.blocks_skipped > 0, "MaxScore must skip blocks on this workload");

    println!(
        "{:<12} {:>6} {:>10} {:>12} {:>14} {:>12} {:>12} {:>10}",
        "evaluator",
        "batch",
        "elapsed",
        "queries/s",
        "postings",
        "blocks dec",
        "blocks skip",
        "pruned"
    );
    for c in &cells {
        println!(
            "{:<12} {:>6} {:>8.2}s {:>12.0} {:>14} {:>12} {:>12} {:>10}",
            strategy_name(c.strategy),
            c.batch,
            c.elapsed_s,
            c.qps,
            c.work.postings_scanned,
            c.work.blocks_decoded,
            c.work.blocks_skipped,
            c.work.candidates_pruned,
        );
    }
    let scan_saved = 100.0 * (1.0 - ms.postings_scanned as f64 / ex.postings_scanned as f64);
    println!(
        "\ncheck: all {} cells bit-identical to the exhaustive loop ({} queries)  [ok]",
        cells.len(),
        n_queries
    );
    println!(
        "check: MaxScore scans {:.1}% fewer postings ({} vs {}), skipping {} blocks  [ok]",
        scan_saved, ms.postings_scanned, ex.postings_scanned, ms.blocks_skipped
    );

    if json_requested() {
        let cells_json: Vec<Json> = cells
            .iter()
            .map(|c| {
                Json::obj([
                    ("evaluator", Json::str(strategy_name(c.strategy))),
                    ("batch", c.batch.into()),
                    ("elapsed_s", c.elapsed_s.into()),
                    ("queries_per_sec", c.qps.into()),
                    ("postings_scanned", c.work.postings_scanned.into()),
                    ("blocks_decoded", c.work.blocks_decoded.into()),
                    ("blocks_skipped", c.work.blocks_skipped.into()),
                    ("candidates_pruned", c.work.candidates_pruned.into()),
                ])
            })
            .collect();
        emit_json(
            "throughput",
            &Json::obj([
                ("experiment", Json::str("E27")),
                ("smoke", smoke.into()),
                ("queries", n_queries.into()),
                ("servers", SERVERS.into()),
                ("k", K.into()),
                ("postings_scan_saved_pct", scan_saved.into()),
                ("cells", Json::Arr(cells_json)),
            ]),
        );
    }

    println!("\npaper shape: Section 5's query-processing bottleneck is posting-list");
    println!("traversal; a block-max index prunes most of it without changing a single");
    println!("returned result, and batched admission amortizes coordinator locking on");
    println!("top -- the two optimizations compose because both are answer-preserving.");
}
