//! Experiment **E26**: crawler-tier fault tolerance — agent churn vs
//! assignment policy (Section 3, dependability row of Table 1).
//!
//! Sweeps churn rate × assignment policy over *the same* fault schedule:
//! agents crash and recover mid-crawl under an `AgentSchedule`; every
//! membership change updates the live assigner, re-routes the moved
//! hosts, and hands the departing agent's unfetched frontier to the new
//! owners with politeness state carried over. Measured per cell:
//!
//! * `hosts_moved` — total host-ownership changes, the consistent-hashing
//!   movement metric ("new agents enter the crawling system without
//!   re-hashing all the server names", UbiCrawler \[6\]);
//! * `refetches` / `lost_inflight` — crash-induced rework;
//! * handoff traffic, coverage, and makespan.
//!
//! The headline assertion: at **every** churn rate, consistent hashing
//! moves strictly fewer hosts per membership change than modulo
//! rehashing — and churn never costs coverage.
//!
//! Run: `cargo run -p dwr-bench --bin exp_crawl_faults --release`
//! CI smoke: `cargo run -p dwr-bench --bin exp_crawl_faults --release -- --smoke --json`
//! (`--json` additionally writes `BENCH_crawl_faults.json`)

use dwr_avail::UpDownProcess;
use dwr_bench::{emit_json, json_requested, smoke_requested, SEED};
use dwr_crawler::assign::{ConsistentHashAssigner, HashAssigner};
use dwr_crawler::sim::{CrawlConfig, CrawlReport, DistributedCrawl};
use dwr_crawler::AgentSchedule;
use dwr_obs::{Json, ObsConfig, ObsRecorder};
use dwr_sim::{SimTime, SECOND};
use dwr_webgraph::generate::{generate_web, WebConfig};
use dwr_webgraph::SyntheticWeb;
use std::sync::Arc;

fn crawl_cfg(agents: u32) -> CrawlConfig {
    CrawlConfig {
        agents,
        connections_per_agent: 8,
        politeness_delay: SECOND / 2,
        batch_size: 20,
        ..CrawlConfig::default()
    }
}

fn run_cell(
    web: &SyntheticWeb,
    agents: u32,
    schedule: Option<AgentSchedule>,
    policy: &str,
) -> CrawlReport {
    let mut cfg = crawl_cfg(agents);
    cfg.faults = schedule;
    match policy {
        "modulo" => DistributedCrawl::new(web, HashAssigner::new(agents), cfg, SEED).run(),
        "consistent" => {
            DistributedCrawl::new(web, ConsistentHashAssigner::new(agents, 64), cfg, SEED).run()
        }
        other => unreachable!("unknown policy {other}"),
    }
}

fn main() {
    let smoke = smoke_requested();
    println!("E26. Crawler-tier fault tolerance: agent churn vs assignment policy.\n");

    let (web, agents, scales): (_, u32, &[f64]) = if smoke {
        let mut wc = WebConfig::tiny();
        wc.num_pages = 800;
        wc.num_hosts = 40;
        (generate_web(&wc, SEED), 4, &[2.0, 0.5])
    } else {
        let mut wc = WebConfig::tiny();
        wc.num_pages = 2_000;
        wc.num_hosts = 100;
        (generate_web(&wc, SEED), 8, &[4.0, 2.0, 1.0, 0.5])
    };

    // Fault-free baselines fix the coverage bar and size the schedule
    // horizon so churn spans the whole crawl for either policy.
    let base_mod = run_cell(&web, agents, None, "modulo");
    let base_cons = run_cell(&web, agents, None, "consistent");
    let horizon: SimTime = 2 * base_mod.makespan.max(base_cons.makespan);
    println!(
        "fixture: {} pages / {} hosts, {agents} agents; fault-free coverage {:.3} (modulo) / {:.3} (consistent)",
        web.num_pages(),
        web.num_hosts(),
        base_mod.coverage,
        base_cons.coverage
    );
    println!(
        "churn: one up/down process per agent, mean up horizon/8 / down horizon/32 at\nscale 1.0; larger scale = slower churn. Same schedule for both policies per rate.\n"
    );

    println!(
        "  {:>5} {:>11} {:>4} {:>4} {:>6} {:>11} {:>6} {:>5} {:>8} {:>7} {:>9}",
        "scale",
        "policy",
        "dn",
        "up",
        "moved",
        "moved/chg",
        "lost",
        "refet",
        "handoff",
        "cover",
        "makespan"
    );
    // Sized against the crawl itself so every sweep point actually
    // churns: at scale 1.0 an agent flaps ~4 times over the horizon.
    let base = UpDownProcess::exponential(horizon / 8, horizon / 32);
    let mut json_rows = Vec::new();
    for &scale in scales {
        let process = base.scaled(scale);
        let schedule = AgentSchedule::generate(agents as usize, &process, horizon, SEED ^ 0xC8A4);
        let mut per_change = Vec::new();
        for policy in ["modulo", "consistent"] {
            let r = run_cell(&web, agents, Some(schedule.clone()), policy);
            let f = r.faults;
            let changes = f.crashes + f.recoveries;
            assert!(changes > 0, "scale {scale}: the schedule must actually churn");
            let moved_per_change = f.hosts_moved as f64 / changes as f64;
            println!(
                "  {:>5.1} {:>11} {:>4} {:>4} {:>6} {:>11.1} {:>6} {:>5} {:>8} {:>7.3} {:>8.0}s",
                scale,
                policy,
                f.crashes,
                f.recoveries,
                f.hosts_moved,
                moved_per_change,
                f.lost_inflight,
                f.refetches,
                f.handoff_urls,
                r.coverage,
                r.makespan as f64 / SECOND as f64,
            );
            let baseline = if policy == "modulo" { &base_mod } else { &base_cons };
            assert!(
                r.coverage > baseline.coverage - 0.1,
                "scale {scale} {policy}: churn cost too much coverage ({} vs {})",
                r.coverage,
                baseline.coverage
            );
            per_change.push(moved_per_change);
            json_rows.push(Json::obj([
                ("churn_scale", scale.into()),
                ("policy", Json::str(policy)),
                ("crashes", f.crashes.into()),
                ("recoveries", f.recoveries.into()),
                ("hosts_moved", f.hosts_moved.into()),
                ("moved_per_change", moved_per_change.into()),
                ("lost_inflight", f.lost_inflight.into()),
                ("refetches", f.refetches.into()),
                ("handoff_batches", f.handoff_batches.into()),
                ("handoff_urls", f.handoff_urls.into()),
                ("duplicate_fetches", r.duplicate_fetches.into()),
                ("coverage", r.coverage.into()),
                ("makespan", r.makespan.into()),
            ]));
        }
        // The paper's point, asserted: consistent hashing moves strictly
        // fewer hosts per membership change than modulo rehashing.
        assert!(
            per_change[1] < per_change[0],
            "scale {scale}: consistent hashing must move fewer hosts per change \
             (consistent {:.1} vs modulo {:.1})",
            per_change[1],
            per_change[0]
        );
    }
    println!("\ncheck: consistent < modulo hosts moved per membership change at every rate  [ok]");

    // Cross-check: the dwr-obs crawl counters agree *exactly* with the
    // offline CrawlFaultStats for a live-instrumented run.
    let process = base.scaled(1.0);
    let schedule = AgentSchedule::generate(agents as usize, &process, horizon, SEED ^ 0xC8A4);
    let mut cfg = crawl_cfg(agents);
    cfg.faults = Some(schedule);
    let rec = Arc::new(ObsRecorder::new(ObsConfig::crawl_tier()));
    let r = DistributedCrawl::new(&web, ConsistentHashAssigner::new(agents, 64), cfg, SEED)
        .with_obs(Arc::clone(&rec))
        .run();
    let snap = rec.snapshot();
    let f = r.faults;
    for (counter, offline) in [
        ("crawl.crashes", f.crashes),
        ("crawl.recoveries", f.recoveries),
        ("crawl.hosts_moved", f.hosts_moved),
        ("crawl.lost_inflight", f.lost_inflight),
        ("crawl.refetches", f.refetches),
        ("crawl.handoff_batches", f.handoff_batches),
        ("crawl.handoff_urls", f.handoff_urls),
    ] {
        assert_eq!(snap.counter(counter), Some(offline), "{counter} disagrees with offline stats");
    }
    println!("check: live crawl.* counters == offline fault stats, all seven  [ok]");

    println!("\npaper shape: modulo rehashing reassigns almost every host on every membership");
    println!("change while consistent hashing moves only the lost/gained arcs, so under the");
    println!("same churn it pays far less frontier handoff — and either way the handoff");
    println!("protocol keeps coverage at the fault-free level for the politeness-bounded cost");
    println!("of refetching the work that crashed mid-flight.");

    if json_requested() {
        emit_json(
            "crawl_faults",
            &Json::obj([
                ("experiment", Json::str("E26")),
                ("smoke", smoke.into()),
                ("agents", u64::from(agents).into()),
                ("baseline_coverage_modulo", base_mod.coverage.into()),
                ("baseline_coverage_consistent", base_cons.coverage.into()),
                ("horizon", horizon.into()),
                ("cells", Json::Arr(json_rows)),
            ]),
        );
    }
}
