//! Experiment **E10**: multi-site geographic routing and hourly
//! offloading (Section 5; Beitzel et al. \[33\] for the diurnal cycle).
//!
//! "It is also possible to offload a server from a busy area by re-routing
//! some queries to query processors in less busy areas."
//!
//! Run: `cargo run -p dwr-bench --bin exp_multisite`

use dwr_avail::failure::DownInterval;
use dwr_avail::site::Site;
use dwr_bench::SEED;
use dwr_query::site::{simulate_multisite, RoutingPolicy, SiteSpec};
use dwr_querylog::arrival::{generate_arrivals, DiurnalProfile};
use dwr_sim::net::Topology;
use dwr_sim::{DAY, HOUR};

fn main() {
    println!("E10. Multi-site routing over three time zones, one simulated day.\n");

    let sites = vec![
        SiteSpec { region: 0, servers: 16, mean_service_s: 0.1 },
        SiteSpec { region: 1, servers: 16, mean_service_s: 0.1 },
        SiteSpec { region: 2, servers: 16, mean_service_s: 0.1 },
    ];
    // Peak demand exceeds one site's capacity (160 qps): mean 100, peak 190.
    let profiles: Vec<DiurnalProfile> = (0..3)
        .map(|r| DiurnalProfile { mean_qps: 100.0, amplitude: 0.9, phase: r as f64 / 3.0 })
        .collect();
    let arrivals = generate_arrivals(&profiles, DAY, SEED ^ 0x517E);
    let topo = Topology::geo_ring(3);

    let near = simulate_multisite(&arrivals, &sites, &topo, RoutingPolicy::Nearest, DAY, &[]);
    let aware = simulate_multisite(
        &arrivals,
        &sites,
        &topo,
        RoutingPolicy::LoadAware { threshold: 0.7 },
        DAY,
        &[],
    );

    println!("(a) hourly utilization of site 0 (its local peak saturates it):");
    println!("  {:>4} {:>16} {:>16}", "hour", "nearest", "load-aware");
    for h in 0..24 {
        println!(
            "  {:>4} {:>15.0}% {:>15.0}%",
            h,
            100.0 * near.utilization[h][0],
            100.0 * aware.utilization[h][0]
        );
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!("\n(b) summary:");
    println!("  {:<24} {:>12} {:>12}", "", "nearest", "load-aware");
    println!(
        "  {:<24} {:>11.0}% {:>11.0}%",
        "peak site utilization",
        100.0 * near.peak_utilization(),
        100.0 * aware.peak_utilization()
    );
    println!("  {:<24} {:>12} {:>12}", "queries rerouted", near.rerouted, aware.rerouted);
    println!(
        "  {:<24} {:>12} {:>12}",
        "overloaded-hour queries", near.overloaded, aware.overloaded
    );
    println!(
        "  {:<24} {:>11.1}ms {:>11.1}ms",
        "mean response",
        1000.0 * mean(&near.mean_response),
        1000.0 * mean(&aware.mean_response)
    );

    println!("\n(c) with a 6-hour outage of site 0 (nearest routing):");
    let traces = vec![
        Site::from_down_intervals(vec![DownInterval { start: 8 * HOUR, end: 14 * HOUR }], DAY),
        Site::always_up(DAY),
        Site::always_up(DAY),
    ];
    let outage = simulate_multisite(&arrivals, &sites, &topo, RoutingPolicy::Nearest, DAY, &traces);
    println!(
        "  rerouted {} queries; peak surviving-site utilization {:.0}%; {} unserved",
        outage.rerouted,
        100.0 * outage.peak_utilization(),
        outage.unserved
    );
    println!("\npaper shape: diurnal peaks rotate across time zones; load-aware routing");
    println!("shaves the local peak by shipping overflow to off-peak sites at a small");
    println!("WAN latency cost, and outages are absorbed by the surviving sites.");
}
