//! Experiment **E31**: full-system soak — crawl → incremental index →
//! serve with *every* churn mechanism firing at once, versus the same
//! stack with churn off.
//!
//! Two arms of the same [`SoakScenario`]:
//!
//! - **calm** — no agent flapping, no splits, no site outages, no
//!   replica faults. The churn-free denominator.
//! - **storm** — crawler agents flap mid-crawl (frontiers hand off),
//!   the index splits online under traffic with crash fates, replicas
//!   churn per site, whole sites go dark on accelerated outage traces,
//!   and the router / hedging / gather-deadline machinery absorbs it.
//!
//! The headline is the fraction of queries served at **full fidelity**
//! (`Full`, `Routed`, or a cache hit of such an answer) through the
//! combined storm, against the calm arm. The claims, asserted:
//!
//! 1. **No silent loss.** Zero `Failed` queries while ≥ 1 site is live,
//!    zero sheds in either arm at this load, and every query lands in
//!    exactly one outcome bucket.
//! 2. **Politeness survives churn.** Zero per-host politeness
//!    violations in the churned crawl trace, across crash handoffs.
//! 3. **Freshness stays bounded.** Every document's fetch→publication
//!    lag is at most the refresh interval, storm or calm.
//! 4. **The books balance bitwise.** Live `crawl.*` / `repart.*` /
//!    `route.*` / `site.*` instruments equal the offline stats structs
//!    counter for counter ([`SoakInvariants`] checks ~25 of them).
//!
//! Run: `cargo run -p dwr-bench --bin exp_soak --release`
//! CI smoke: `... -- --smoke --json` (also writes `BENCH_soak.json`)

use dwr_bench::{emit_json, json_requested, smoke_requested, SEED};
use dwr_obs::Json;
use dwr_sim::{DAY, SECOND};
use dwr_soak::{SoakConfig, SoakInvariants, SoakReport, SoakScenario};

struct Arm {
    name: &'static str,
    report: SoakReport,
}

impl Arm {
    fn run(name: &'static str, cfg: SoakConfig) -> Arm {
        let report = SoakScenario::new(cfg).run();
        let inv = SoakInvariants::check(&report);
        inv.assert_clean();
        assert_eq!(inv.politeness_violations, 0, "{name}: politeness violated");
        assert_eq!(inv.failed_while_live, 0, "{name}: failed while live");
        Arm { name, report }
    }
}

fn main() {
    let smoke = smoke_requested();
    let (calm_cfg, storm_cfg) = if smoke {
        let storm = SoakConfig::smoke(SEED);
        let calm = SoakConfig {
            crawl_churn: false,
            splits: 0,
            site_outages: false,
            replica_churn: false,
            ..storm.clone()
        };
        (calm, storm)
    } else {
        let storm = SoakConfig { serve_horizon: DAY, mean_qps: 0.05, ..SoakConfig::storm(SEED) };
        let calm = SoakConfig { serve_horizon: DAY, mean_qps: 0.05, ..SoakConfig::calm(SEED) };
        (calm, storm)
    };

    println!("E31. Full-system soak: churn at every tier vs the same stack becalmed.");
    println!(
        "workload: {} pages / {} agents crawled, {}s refresh interval, {} shards (+{} online \
         splits), {} sites, {:.0}h diurnal serving\n",
        storm_cfg.pages,
        storm_cfg.agents,
        storm_cfg.refresh_interval / SECOND,
        storm_cfg.partitions,
        storm_cfg.splits,
        storm_cfg.sites,
        storm_cfg.serve_horizon as f64 / (3600.0 * SECOND as f64),
    );

    let calm = Arm::run("calm", calm_cfg);
    let storm = Arm::run("storm", storm_cfg);

    println!(
        "{:<7} {:>8} {:>10} {:>7} {:>7} {:>7} {:>7} {:>6} {:>8} {:>7} {:>7} {:>9}",
        "arm",
        "queries",
        "full-fid %",
        "cache",
        "full",
        "routed",
        "remote",
        "degr",
        "shed+fl",
        "crashes",
        "epochs",
        "max lag s"
    );
    for arm in [&calm, &storm] {
        let r = &arm.report;
        let c = r.outcomes();
        println!(
            "{:<7} {:>8} {:>10.2} {:>7} {:>7} {:>7} {:>7} {:>6} {:>8} {:>7} {:>7} {:>9.1}",
            arm.name,
            c.total(),
            100.0 * r.full_fidelity_fraction(),
            c.cache_hit,
            c.full,
            c.routed,
            r.site_stats.served_remote,
            c.degraded + c.stale + c.partial,
            c.shed + c.failed,
            r.crawl_faults.crashes,
            r.repart_stats.epoch,
            r.max_freshness_lag() as f64 / SECOND as f64,
        );
    }
    println!();

    // The storm must actually storm — otherwise the headline is vacuous.
    assert!(storm.report.crawl_faults.crashes > 0, "storm arm saw no agent crashes");
    assert!(storm.report.repart_stats.splits_committed > 0, "storm arm committed no splits");
    assert!(
        storm
            .report
            .queries
            .iter()
            .any(|q| (q.live_sites as usize) < storm.report.engine_stats.len()),
        "storm arm never lost a site"
    );
    // And the calm arm must be genuinely becalmed.
    assert_eq!(calm.report.crawl_faults.crashes, 0);
    assert_eq!(calm.report.repart_stats.epoch, 0);
    assert_eq!(calm.report.site_stats.served_remote, 0, "calm arm crossed the WAN");

    let calm_fid = 100.0 * calm.report.full_fidelity_fraction();
    let storm_fid = 100.0 * storm.report.full_fidelity_fraction();
    println!("check: zero Failed-while-live, zero sheds, every query in one bucket   [ok]");
    println!("check: zero politeness violations across churned frontier handoffs    [ok]");
    println!("check: freshness lag bounded by the refresh interval in both arms      [ok]");
    println!("check: live instruments equal offline stats bitwise in both arms       [ok]");
    println!();
    println!(
        "headline: {storm_fid:.2}% of queries served at full fidelity through the combined \
         storm (calm baseline {calm_fid:.2}%)"
    );

    if json_requested() {
        let arm_json = |arm: &Arm| {
            let r = &arm.report;
            let c = r.outcomes();
            Json::obj([
                ("arm", Json::str(arm.name)),
                ("queries", c.total().into()),
                ("full_fidelity_pct", (100.0 * r.full_fidelity_fraction()).into()),
                ("cache_hit", c.cache_hit.into()),
                ("full", c.full.into()),
                ("routed", c.routed.into()),
                ("served_remote", r.site_stats.served_remote.into()),
                ("degraded", (c.degraded + c.stale + c.partial).into()),
                ("shed", c.shed.into()),
                ("failed", c.failed.into()),
                ("crawl_crashes", r.crawl_faults.crashes.into()),
                ("crawl_coverage_pct", (100.0 * r.crawl_coverage).into()),
                ("splits_committed", r.repart_stats.splits_committed.into()),
                ("final_epoch", r.repart_stats.epoch.into()),
                ("max_freshness_lag_s", (r.max_freshness_lag() as f64 / SECOND as f64).into()),
                ("politeness_violations", 0u64.into()),
                ("failed_while_live", 0u64.into()),
            ])
        };
        emit_json(
            "soak",
            &Json::obj([
                ("experiment", Json::str("E31")),
                ("smoke", smoke.into()),
                ("storm_full_fidelity_pct", storm_fid.into()),
                ("calm_full_fidelity_pct", calm_fid.into()),
                ("arms", Json::Arr(vec![arm_json(&calm), arm_json(&storm)])),
            ]),
        );
    }

    // The paper shape: the paper's closing argument is that crawling,
    // indexing, and querying cannot be engineered in isolation — each
    // tier's failure modes surface as another tier's load. The soak is
    // that argument run end to end: every challenge fires at once, and
    // the stack's combined answer is measured as one number.
}
