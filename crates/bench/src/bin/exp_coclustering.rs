//! Experiment **E6**: query-driven co-clustering vs CORI vs random
//! (Puppin et al. \[19\] against Callan's CORI \[24\]).
//!
//! Reproduced claims: (a) the query-driven partitioning + selector
//! retrieves more of the global top-k when querying few partitions than
//! CORI over random/k-means partitions; (b) a large fraction of documents
//! is never recalled by any training query ("this subset comprises 53% of
//! the documents" on their logs).
//!
//! Run: `cargo run -p dwr-bench --bin exp_coclustering` (use --release)

use dwr_bench::{Fixture, Scale, SEED};
use dwr_partition::doc::{
    DocPartitioner, KMeansPartitioner, QueryDrivenPartitioner, RandomPartitioner, TrainingResults,
};
use dwr_partition::parted::PartitionedIndex;
use dwr_partition::quality::recall_curve;
use dwr_partition::select::{CollectionSelector, CoriSelector, QueryDrivenSelector};
use dwr_sim::SimRng;
use dwr_text::index::build_index;
use dwr_text::score::Bm25;
use dwr_text::search::search_or;

const K: usize = 8; // partitions
const TOPK: usize = 20; // reference result depth

fn main() {
    println!("E6. Collection selection: query-driven co-clustering vs CORI, {K} partitions.\n");
    let f = Fixture::new(Scale::Medium);
    let reference = build_index(&f.corpus);

    // Train/test split of the query universe by replaying a Zipf stream.
    let mut rng = SimRng::new(SEED ^ 0xC0C);
    let mut train_counts = std::collections::HashMap::new();
    for _ in 0..4_000 {
        *train_counts.entry(f.queries.sample(&mut rng)).or_insert(0u64) += 1;
    }
    // Training results: replay each distinct training query on the
    // reference index.
    let training = TrainingResults {
        queries: train_counts
            .iter()
            .map(|(&q, &c)| {
                let terms: Vec<dwr_text::TermId> =
                    f.queries.query(q).terms.iter().map(|t| dwr_text::TermId(t.0)).collect();
                let docs: Vec<u32> =
                    search_or(&reference, &terms, TOPK, &Bm25::default(), &reference)
                        .into_iter()
                        .map(|h| h.doc.0)
                        .collect();
                (terms, c as f64, docs)
            })
            .collect(),
    };
    let never = training.never_recalled_fraction(f.corpus.len());
    println!(
        "never-recalled documents: {:.1}% of the collection (paper: 53% on their logs)\n",
        100.0 * never
    );

    // Test queries: a fresh sample (popularity-drawn, unseen mixes too).
    let test: Vec<Vec<dwr_text::TermId>> = (0..300)
        .map(|_| {
            let q = f.queries.sample(&mut rng);
            f.queries.query(q).terms.iter().map(|t| dwr_text::TermId(t.0)).collect()
        })
        .collect();

    // Candidate systems: (partitioning, selector).
    let qd_partitioner =
        QueryDrivenPartitioner { training: training.clone(), iterations: 15, seed: SEED };
    let qd_assign = qd_partitioner.assign(&f.corpus, K);
    let qd_pi = PartitionedIndex::build(&f.corpus, &qd_assign, K);
    let qd_sel = QueryDrivenSelector::train(&training, &qd_assign, K);

    let km_assign = KMeansPartitioner::default().assign(&f.corpus, K);
    let km_pi = PartitionedIndex::build(&f.corpus, &km_assign, K);
    let km_cori = CoriSelector::from_partitions(&km_pi);

    let rnd_assign = RandomPartitioner { seed: SEED }.assign(&f.corpus, K);
    let rnd_pi = PartitionedIndex::build(&f.corpus, &rnd_assign, K);
    let rnd_cori = CoriSelector::from_partitions(&rnd_pi);

    println!("recall of the global top-{TOPK} when querying the best m partitions:");
    println!("  {:<30} {:>7} {:>7} {:>7} {:>7}", "system", "m=1", "m=2", "m=4", "m=8");
    let qd_cori = CoriSelector::from_partitions(&qd_pi);
    let rows: Vec<(&str, Vec<f64>)> = vec![
        (
            "co-cluster + query-driven",
            recall_curve(&qd_pi, &qd_sel as &dyn CollectionSelector, &f.corpus, &test, TOPK),
        ),
        (
            "co-cluster + CORI",
            recall_curve(&qd_pi, &qd_cori as &dyn CollectionSelector, &f.corpus, &test, TOPK),
        ),
        (
            "k-means + CORI",
            recall_curve(&km_pi, &km_cori as &dyn CollectionSelector, &f.corpus, &test, TOPK),
        ),
        (
            "random + CORI",
            recall_curve(&rnd_pi, &rnd_cori as &dyn CollectionSelector, &f.corpus, &test, TOPK),
        ),
    ];
    for (name, curve) in &rows {
        println!(
            "  {:<30} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}%",
            name,
            100.0 * curve[0],
            100.0 * curve[1],
            100.0 * curve[3],
            100.0 * curve[7]
        );
    }
    println!("\npaper shape: on the query-driven partitions, the learned selector beats");
    println!("CORI (Puppin et al.'s headline comparison); random partitioning needs");
    println!("nearly all partitions for full recall. On this synthetic corpus content");
    println!("clustering is unrealistically clean, so k-means+CORI is a strong baseline —");
    println!("on real webs the query-driven system wins outright, per the paper.");
}
