//! Experiment **E21**: ablations of the design choices DESIGN.md calls out.
//!
//! Four dials, each isolated with everything else held fixed:
//! (a) consistent-hash virtual-bucket count (balance vs ring size),
//! (b) URL-exchange batch size (messages vs delivery latency),
//! (c) result-cache capacity (hit ratio saturation),
//! (d) collection-selection width m (work saved vs recall lost).
//!
//! Run: `cargo run -p dwr-bench --bin exp_ablations --release`

use dwr_bench::{Fixture, Scale, SEED};
use dwr_crawler::assign::{assignment_load, ConsistentHashAssigner, HashAssigner};
use dwr_crawler::sim::{CrawlConfig, DistributedCrawl};
use dwr_partition::doc::{DocPartitioner, RandomPartitioner};
use dwr_partition::parted::PartitionedIndex;
use dwr_partition::quality::recall_curve;
use dwr_partition::select::CoriSelector;
use dwr_query::cache::{LruCache, ResultCache};
use dwr_query::engine::query_key;
use dwr_sim::stats::Imbalance;
use dwr_sim::{SimRng, SECOND};
use dwr_webgraph::qos::QosConfig;

fn main() {
    println!("E21. Ablations over the repository's own design dials.\n");
    let f = Fixture::new(Scale::Small);

    // (a) virtual buckets per agent.
    println!("(a) consistent hashing: virtual buckets per agent vs host balance (16 agents):");
    println!("  {:>9} {:>12} {:>10}", "buckets", "max/mean", "gini");
    for replicas in [1u32, 8, 32, 128, 512] {
        let a = ConsistentHashAssigner::new(16, replicas);
        let load = assignment_load(&a, &f.web);
        let hosts: Vec<f64> = load.hosts.iter().map(|&h| h as f64).collect();
        let im = Imbalance::of(&hosts);
        println!("  {:>9} {:>12.2} {:>10.3}", replicas, im.max_over_mean, im.gini);
    }

    // (b) exchange batch size.
    println!("\n(b) URL-exchange batch size vs messages and makespan (4 agents):");
    println!("  {:>9} {:>10} {:>12} {:>12}", "batch", "messages", "bytes", "makespan(h)");
    for batch in [1usize, 10, 50, 200] {
        let cfg = CrawlConfig {
            agents: 4,
            connections_per_agent: 8,
            politeness_delay: SECOND / 2,
            batch_size: batch,
            qos: QosConfig { flaky_fraction: 0.0, slow_fraction: 0.0, ..QosConfig::default() },
            ..CrawlConfig::default()
        };
        let r = DistributedCrawl::new(&f.web, HashAssigner::new(4), cfg, SEED).run();
        println!(
            "  {:>9} {:>10} {:>12} {:>12.2}",
            batch,
            r.exchange.messages,
            r.exchange.bytes,
            r.makespan as f64 / 3.6e9
        );
    }

    // (c) cache capacity.
    println!("\n(c) LRU capacity vs hit ratio on a 50k Zipf stream:");
    println!("  {:>9} {:>10}", "capacity", "hit ratio");
    let mut rng = SimRng::new(SEED ^ 0xAB1A);
    let stream: Vec<u64> = (0..50_000)
        .map(|_| {
            let q = f.queries.sample(&mut rng);
            let terms: Vec<dwr_text::TermId> =
                f.queries.query(q).terms.iter().map(|t| dwr_text::TermId(t.0)).collect();
            query_key(&terms)
        })
        .collect();
    for cap in [16usize, 64, 256, 1024, 4096] {
        let mut cache = LruCache::new(cap);
        for &k in &stream {
            if cache.get(k).is_none() {
                cache.put(k, Vec::new());
            }
        }
        println!("  {:>9} {:>9.1}%", cap, 100.0 * cache.stats().hit_ratio());
    }

    // (d) selection width.
    println!("\n(d) CORI selection width m vs recall (8 random partitions, top-10):");
    let assignment = RandomPartitioner { seed: SEED }.assign(&f.corpus, 8);
    let pi = PartitionedIndex::build(&f.corpus, &assignment, 8);
    let cori = CoriSelector::from_partitions(&pi);
    let queries = f.query_terms(100);
    let curve = recall_curve(&pi, &cori, &f.corpus, &queries, 10);
    println!("  {:>4} {:>10} {:>14}", "m", "recall", "work saved");
    for (m, r) in curve.iter().enumerate() {
        println!(
            "  {:>4} {:>9.1}% {:>13.1}%",
            m + 1,
            100.0 * r,
            100.0 * (1.0 - (m + 1) as f64 / 8.0)
        );
    }
    println!("\nreading: a handful of virtual buckets removes the worst imbalance, after");
    println!("which granularity noise floors it (only ~6 hosts/agent here); batching");
    println!("collapses message count at negligible makespan cost; cache hit ratio");
    println!("saturates once capacity covers the Zipf head; random partitions give");
    println!("recall ~ m/k (no selectivity to exploit) — why structured partitioning");
    println!("exists.");
}
