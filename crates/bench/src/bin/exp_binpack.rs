//! Experiment **E5**: term-partition load balancing (Moffat et al. \[21\],
//! Lucchese et al. \[22\]) and the doc-vs-term throughput comparison.
//!
//! "This work shows that the performance of a term partitioned system
//! benefits from this strategy since it is able to distribute the load on
//! each server more evenly. Experimental results show that the document
//! partitioned system achieves higher throughput than the term partitioned
//! system, even when considering the performance benefits due to the even
//! distribution of load."
//!
//! Run: `cargo run -p dwr-bench --bin exp_binpack` (use --release)

use dwr_bench::{Fixture, Scale, SEED};
use dwr_partition::doc::{DocPartitioner, RandomPartitioner};
use dwr_partition::parted::PartitionedIndex;
use dwr_partition::term::{
    evaluate_term_partition, BinPackingTermPartitioner, CoOccurrenceTermPartitioner, QueryWorkload,
    RandomTermPartitioner, TermPartitioner,
};
use dwr_query::broker::DocBroker;
use dwr_query::pipeline::PipelinedTermEngine;
use dwr_sim::stats::Imbalance;
use dwr_sim::SimRng;
use dwr_text::index::build_index;

const SERVERS: usize = 8;

fn main() {
    println!("E5. Term-partition load balancing and doc-vs-term throughput, {SERVERS} servers.\n");
    let f = Fixture::new(Scale::Medium);
    let global = build_index(&f.corpus);

    // Weighted workload from the query model's popularity law.
    let mut rng = SimRng::new(SEED ^ 0xB19);
    let mut counts = std::collections::HashMap::new();
    for _ in 0..20_000 {
        *counts.entry(f.queries.sample(&mut rng)).or_insert(0u64) += 1;
    }
    let workload = QueryWorkload {
        queries: counts
            .iter()
            .map(|(&q, &c)| {
                let terms =
                    f.queries.query(q).terms.iter().map(|t| dwr_text::TermId(t.0)).collect();
                (terms, c as f64)
            })
            .collect(),
    };

    println!("(a) term-partition balance under the query workload:");
    println!(
        "  {:<16} {:>10} {:>8} {:>14} {:>14}",
        "partitioner", "max/mean", "gini", "servers/query", "1-server quer."
    );
    let evaluate = |name: &str, assignment: &std::collections::HashMap<u32, u32>| {
        let e = evaluate_term_partition(&global, &workload, assignment, SERVERS);
        let im = Imbalance::of(&e.load);
        println!(
            "  {:<16} {:>10.2} {:>8.3} {:>14.2} {:>13.1}%",
            name,
            im.max_over_mean,
            im.gini,
            e.avg_servers_per_query,
            100.0 * e.single_server_fraction
        );
    };
    evaluate("random", &RandomTermPartitioner.assign(&global, &workload, SERVERS));
    evaluate("bin-packing", &BinPackingTermPartitioner.assign(&global, &workload, SERVERS));
    evaluate(
        "co-occurrence",
        &CoOccurrenceTermPartitioner::default().assign(&global, &workload, SERVERS),
    );

    // (b) Throughput comparison: process the same stream through both
    // architectures; throughput proxy = total work / busiest server.
    println!("\n(b) doc-partitioned vs term-partitioned throughput (same 3k-query stream):");
    let stream: Vec<Vec<dwr_text::TermId>> = (0..3_000)
        .map(|_| {
            let q = f.queries.sample(&mut rng);
            f.queries.query(q).terms.iter().map(|t| dwr_text::TermId(t.0)).collect()
        })
        .collect();

    let assignment = RandomPartitioner { seed: SEED }.assign(&f.corpus, SERVERS);
    let pi = PartitionedIndex::build(&f.corpus, &assignment, SERVERS);
    let broker = DocBroker::single_site(&pi);
    for q in &stream {
        broker.query(q, 10);
    }
    let doc_busy = broker.busy_time().to_vec();

    let report = |name: &str, busy: &[f64]| {
        let total: f64 = busy.iter().sum();
        let max = busy.iter().cloned().fold(0.0, f64::max);
        // Homogeneous hardware: the busiest server gates throughput.
        let throughput = stream.len() as f64 / (max / 1e6);
        println!(
            "  {:<28} busiest {:>8.1}s of {:>8.1}s total -> {:>8.0} q/s sustainable",
            name,
            max / 1e6,
            total / 1e6,
            throughput
        );
    };
    report("doc-partitioned (random)", &doc_busy);

    for (name, assignment) in [
        ("term pipelined (random)", RandomTermPartitioner.assign(&global, &workload, SERVERS)),
        (
            "term pipelined (bin-pack)",
            BinPackingTermPartitioner.assign(&global, &workload, SERVERS),
        ),
    ] {
        let mut eng = PipelinedTermEngine::single_site(&global, assignment, SERVERS);
        for q in &stream {
            eng.query(q, 10);
        }
        report(name, eng.busy_time());
    }
    println!("\npaper shape: bin-packing evens term-partition load (max/mean -> ~1) and");
    println!("co-occurrence additionally cuts servers/query. Document partitioning beats");
    println!("the plain term system on throughput, while the balanced term system can");
    println!("reach it or edge past — exactly Webber et al.'s finding that doc is");
    println!("'still better' than naive term partitioning but balancing makes 'even");
    println!("higher values' possible.");
}
