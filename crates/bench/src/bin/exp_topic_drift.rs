//! Experiment **E17**: topic routing under drift, with automatic
//! reconfiguration (Section 5, partitioning; Cacheda et al. \[35\]).
//!
//! "Changes in the topic distribution of queries can adversely impact
//! performance, resulting in either the resources not being exploited to
//! their full extent or allocation of fewer resources to popular topics.
//! A possible solution to this challenge is the automatic reconfiguration
//! of the index partition."
//!
//! Run: `cargo run -p dwr-bench --bin exp_topic_drift`

use dwr_bench::bar;
use dwr_query::routing::simulate_drift_routing;
use dwr_querylog::drift::TopicDrift;
use dwr_sim::{DAY, HOUR};

fn main() {
    println!("E17. Topic-routed cluster under query-topic drift (6 topics, 30 servers).\n");
    let weights: Vec<f64> = (1..=6).map(|r| (r as f64).powf(-1.2)).collect();
    let drift = TopicDrift::reversal(&weights, 2 * DAY);

    let horizon = 2 * DAY;
    let static_alloc = simulate_drift_routing(&drift, 300.0, 30, 20.0, horizon, None);
    let reconfig = simulate_drift_routing(&drift, 300.0, 30, 20.0, horizon, Some(6 * HOUR));

    println!("hot-topic utilization over 48 hours (provisioned for the hour-0 mixture):");
    println!("  {:>4} {:>14} {:>14}", "hour", "static", "reconf q6h");
    for h in (0..48).step_by(4) {
        println!(
            "  {:>4} {:>13.0}% {:>13.0}%  |{}",
            h,
            100.0 * static_alloc.max_utilization[h],
            100.0 * reconfig.max_utilization[h],
            bar(static_alloc.max_utilization[h], 2.0, 24)
        );
    }
    let max_stranded = static_alloc.stranded_capacity.iter().copied().fold(0.0, f64::max);
    println!("\nsummary:");
    println!(
        "  static allocation:   peak utilization {:>4.0}%, up to {:>2.0}% of capacity stranded",
        100.0 * static_alloc.peak(),
        100.0 * max_stranded
    );
    println!(
        "  reconfigure each 6h: peak utilization {:>4.0}% after {} reconfigurations",
        100.0 * reconfig.peak(),
        reconfig.reconfigurations
    );
    println!("\npaper shape: drift overloads the topics that grew while capacity idles on");
    println!("the topics that shrank ('resources not being exploited to their full");
    println!("extent'); periodic automatic reconfiguration keeps utilization bounded.");
}
