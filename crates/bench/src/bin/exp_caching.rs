//! Experiment **E8**: result caching — policy hit ratios on Zipf traffic
//! with topic drift (Fagni et al.'s SDC \[51\]) and caches as a
//! fault-tolerance mechanism.
//!
//! "A good design has also to consider the primary goals of a cache
//! system (...) a higher hit ratio potentially also improves fault
//! tolerance."
//!
//! Run: `cargo run -p dwr-bench --bin exp_caching` (use --release)
//! CI smoke: `... -- --smoke --json` (small fixture, short stream, and a
//! machine-readable `BENCH_caching.json` next to the text report)

use dwr_bench::{emit_json, json_requested, smoke_requested, Fixture, Scale, SEED};
use dwr_obs::Json;
use dwr_partition::doc::{DocPartitioner, RandomPartitioner};
use dwr_partition::parted::PartitionedIndex;
use dwr_query::cache::{LfuCache, LruCache, ResultCache, SdcCache};
use dwr_query::engine::{query_key, DistributedEngine, Served};
use dwr_querylog::arrival::DiurnalProfile;
use dwr_querylog::drift::TopicDrift;
use dwr_querylog::log::QueryLog;
use dwr_sim::{DAY, HOUR};

fn main() {
    let smoke = smoke_requested();
    println!("E8. Result caching: LRU vs LFU vs SDC, plus failure masking.\n");
    let f = Fixture::new(if smoke { Scale::Small } else { Scale::Medium });

    // A day of drifting traffic: topic mixture reverses over the horizon
    // (a couple of hours in smoke runs).
    let horizon = if smoke { 2 * HOUR } else { DAY };
    let weights: Vec<f64> = (1..=f.content.num_topics()).map(|r| f64::from(r).powf(-1.0)).collect();
    let drift = TopicDrift::reversal(&weights, horizon);
    let profiles = vec![DiurnalProfile { mean_qps: 2.0, amplitude: 0.6, phase: 0.0 }];
    let log = QueryLog::generate(&f.queries, &profiles, horizon, Some(&drift), SEED ^ 0xCAC4E);
    let (train, test) = log.split_at_fraction(0.5);
    println!(
        "stream: {} queries over {} h, train {} / test {}, topic drift on",
        log.len(),
        horizon / HOUR,
        train.len(),
        test.len()
    );

    // Train frequencies for SDC's static half.
    let mut freq = train.query_frequencies().into_iter().collect::<Vec<_>>();
    freq.sort_by_key(|&(q, c)| (std::cmp::Reverse(c), q));
    let keys_by_freq: Vec<u64> = freq
        .iter()
        .map(|&(q, _)| {
            let terms: Vec<dwr_text::TermId> =
                f.queries.query(q).terms.iter().map(|t| dwr_text::TermId(t.0)).collect();
            query_key(&terms)
        })
        .collect();

    let cap = 512;
    println!("\n(a) hit ratio on the test half (capacity {cap} entries):");
    println!("  {:<10} {:>10}", "policy", "hit ratio");
    let run = |cache: &mut dyn ResultCache| -> f64 {
        // Warm on train, measure on test.
        for rec in train.records().iter().chain(test.records()) {
            let terms: Vec<dwr_text::TermId> =
                f.queries.query(rec.query).terms.iter().map(|t| dwr_text::TermId(t.0)).collect();
            let key = query_key(&terms);
            if cache.get(key).is_none() {
                cache.put(key, Vec::new());
            }
        }
        cache.stats().hit_ratio()
    };
    let mut lru = LruCache::new(cap);
    let mut lfu = LfuCache::new(cap);
    let mut sdc = SdcCache::new(cap, 0.5, &keys_by_freq);
    let (hr_lru, hr_lfu, hr_sdc) = (run(&mut lru), run(&mut lfu), run(&mut sdc));
    println!("  {:<10} {:>9.1}%", "LRU", 100.0 * hr_lru);
    println!("  {:<10} {:>9.1}%", "LFU", 100.0 * hr_lfu);
    println!("  {:<10} {:>9.1}%", "SDC", 100.0 * hr_sdc);

    // (b) Failure masking: a full backend outage; the cache serves stale.
    println!("\n(b) caches as fault tolerance: full backend outage mid-stream");
    let assignment = RandomPartitioner { seed: SEED }.assign(&f.corpus, 4);
    let pi = PartitionedIndex::build(&f.corpus, &assignment, 4);
    let engine = DistributedEngine::new(&pi, LruCache::new(2048), 1);
    let mut answered_during_outage = 0u64;
    let mut failed_during_outage = 0u64;
    let records = test.records();
    let outage_start = records.len() / 2;
    let outage_end = outage_start + records.len() / 4;
    for (i, rec) in records.iter().enumerate() {
        if i == outage_start {
            for p in 0..4 {
                engine.set_replica_alive(p, 0, false);
            }
        }
        if i == outage_end {
            for p in 0..4 {
                engine.set_replica_alive(p, 0, true);
            }
        }
        let terms: Vec<dwr_text::TermId> =
            f.queries.query(rec.query).terms.iter().map(|t| dwr_text::TermId(t.0)).collect();
        let (_, served) = engine.query_stale_ok(&terms, 10);
        if (outage_start..outage_end).contains(&i) {
            match served {
                Served::StaleFromCache => answered_during_outage += 1,
                Served::Failed => failed_during_outage += 1,
                _ => {}
            }
        }
    }
    let total_outage = answered_during_outage + failed_during_outage;
    println!(
        "  during the outage: {}/{} queries ({:.1}%) still answered from stale cache",
        answered_during_outage,
        total_outage,
        100.0 * answered_during_outage as f64 / total_outage.max(1) as f64
    );
    println!("\npaper shape: SDC >= LRU/LFU under drift (static half pins the stable head,");
    println!("dynamic half follows the drift); a warm cache masks a large share of a");
    println!("backend outage.");

    if json_requested() {
        emit_json(
            "caching",
            &Json::obj([
                ("experiment", Json::str("E8")),
                ("smoke", smoke.into()),
                ("queries", log.len().into()),
                (
                    "hit_ratio",
                    Json::obj([
                        ("lru", hr_lru.into()),
                        ("lfu", hr_lfu.into()),
                        ("sdc", hr_sdc.into()),
                    ]),
                ),
                (
                    "outage_masking",
                    Json::obj([
                        ("answered_stale", answered_during_outage.into()),
                        ("failed", failed_during_outage.into()),
                    ]),
                ),
            ]),
        );
    }
}
