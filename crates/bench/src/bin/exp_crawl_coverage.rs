//! Experiment **E4**: crawler tolerance to slow and faulty servers
//! (Section 3, external factors).
//!
//! "A distributed Web crawler must be tolerant to transient failures and
//! slow links to be able to cover the Web to a large extent." We sweep the
//! fraction of flaky servers and their failure probability, with and
//! without retries, plus an agent-crash run and a DNS-cache ablation.
//!
//! Run: `cargo run -p dwr-bench --bin exp_crawl_coverage` (use --release)

use dwr_bench::SEED;
use dwr_crawler::assign::{AgentId, ConsistentHashAssigner, HashAssigner};
use dwr_crawler::sim::{CrawlConfig, DistributedCrawl};
use dwr_sim::SECOND;
use dwr_webgraph::generate::{generate_web, WebConfig};
use dwr_webgraph::qos::QosConfig;

fn base_cfg() -> CrawlConfig {
    CrawlConfig {
        agents: 8,
        connections_per_agent: 16,
        politeness_delay: SECOND / 2,
        ..CrawlConfig::default()
    }
}

fn main() {
    println!("E4. Crawl coverage under server failures, retries, and agent crashes.\n");
    let web = generate_web(&WebConfig::medium(), SEED);

    println!("(a) flaky-server sweep:");
    println!(
        "  {:>8} {:>8} {:>10} {:>10} {:>10} {:>10}",
        "flaky%", "retries", "coverage", "failures", "abandoned", "makespan(h)"
    );
    for flaky in [0.0, 0.1, 0.3] {
        for retries in [0u32, 3] {
            let mut cfg = base_cfg();
            cfg.qos = QosConfig {
                flaky_fraction: flaky,
                flaky_failure_prob: 0.5,
                slow_fraction: 0.1,
                ..QosConfig::default()
            };
            cfg.max_retries = retries;
            let r = DistributedCrawl::new(&web, HashAssigner::new(8), cfg, SEED).run();
            println!(
                "  {:>7.0}% {:>8} {:>9.1}% {:>10} {:>10} {:>11.2}",
                flaky * 100.0,
                retries,
                100.0 * r.coverage,
                r.transient_failures,
                r.abandoned,
                r.makespan as f64 / 3.6e9
            );
        }
    }

    println!("\n(b) agent crash mid-crawl (consistent hashing, 8 agents):");
    let baseline =
        DistributedCrawl::new(&web, ConsistentHashAssigner::new(8, 128), base_cfg(), SEED).run();
    let mut crash_cfg = base_cfg();
    crash_cfg.crash = Some((AgentId(3), baseline.makespan / 4));
    let crashed =
        DistributedCrawl::new(&web, ConsistentHashAssigner::new(8, 128), crash_cfg, SEED).run();
    println!("  {:<22} {:>10} {:>12} {:>12}", "", "coverage", "duplicates", "makespan(h)");
    println!(
        "  {:<22} {:>9.1}% {:>12} {:>12.2}",
        "no crash",
        100.0 * baseline.coverage,
        baseline.duplicate_fetches,
        baseline.makespan as f64 / 3.6e9
    );
    println!(
        "  {:<22} {:>9.1}% {:>12} {:>12.2}",
        "agent 3 dies at t/4",
        100.0 * crashed.coverage,
        crashed.duplicate_fetches,
        crashed.makespan as f64 / 3.6e9
    );

    println!("\n(c) DNS cost (same crawl, per-agent caches):");
    println!(
        "  hit ratio {:>5.1}%   total lookup time {:.1} simulated hours",
        100.0 * baseline.dns.hit_ratio(),
        baseline.dns.total_lookup_time as f64 / 3.6e9
    );
    println!("\npaper shape: retries recover coverage under transient failures; a crashed");
    println!("agent's hosts are re-assigned (consistent hashing) and coverage survives with");
    println!("bounded duplicate work; DNS caching absorbs the lookup bottleneck.");
}
