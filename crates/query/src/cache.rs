//! Result caches: LRU, LFU, and SDC (static-dynamic).
//!
//! "Cache servers hold results for the most frequent or popular queries
//! (...) making query resolution as simple as contacting one single cache
//! server" (Section 5). SDC (Fagni et al. \[51\]) splits capacity into a
//! *static* half, filled offline with the most frequent training queries,
//! and a *dynamic* LRU half for bursts — and beats either alone on
//! Zipf-with-drift traffic.
//!
//! Caches also double as a dependability mechanism: [`ResultCache::get`]
//! never expires entries, so a front-end can serve stale results while the
//! backend is down (experiment E8 measures this).

use crate::broker::GlobalHit;
use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;

/// Cached value: the merged result list of a query.
pub type CachedResults = Vec<GlobalHit>;

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit ratio. A cache with zero lookups reports 0.0, **not** NaN:
    /// downstream consumers sort, difference, and plot these ratios
    /// (`exp_caching`, the E8 staleness experiment), and a NaN would
    /// poison every comparison it touches.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A query-result cache keyed by a stable query key.
pub trait ResultCache {
    /// Look up a query; counts a hit or miss.
    fn get(&mut self, key: u64) -> Option<&CachedResults>;
    /// Insert a result (no-op if the policy rejects the key).
    fn put(&mut self, key: u64, value: CachedResults);
    /// Counters so far.
    fn stats(&self) -> CacheStats;
    /// Current number of resident entries.
    fn len(&self) -> usize;
    /// Whether the cache holds nothing.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Policy name for reports.
    fn name(&self) -> &'static str;
}

/// Classic LRU with O(log n) eviction (recency index in a BTreeMap).
#[derive(Debug)]
pub struct LruCache {
    capacity: usize,
    map: HashMap<u64, (CachedResults, u64)>,
    by_recency: BTreeMap<u64, u64>,
    tick: u64,
    stats: CacheStats,
}

impl LruCache {
    /// Create an LRU cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        LruCache {
            capacity,
            map: HashMap::with_capacity(capacity),
            by_recency: BTreeMap::new(),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    fn touch(&mut self, key: u64) {
        self.tick += 1;
        if let Some((_, stamp)) = self.map.get_mut(&key) {
            self.by_recency.remove(stamp);
            *stamp = self.tick;
            self.by_recency.insert(self.tick, key);
        }
    }
}

impl ResultCache for LruCache {
    fn get(&mut self, key: u64) -> Option<&CachedResults> {
        if self.map.contains_key(&key) {
            self.stats.hits += 1;
            self.touch(key);
            self.map.get(&key).map(|(v, _)| v)
        } else {
            self.stats.misses += 1;
            None
        }
    }

    fn put(&mut self, key: u64, value: CachedResults) {
        self.tick += 1;
        if let Some((old_value, stamp)) = self.map.get_mut(&key) {
            *old_value = value;
            self.by_recency.remove(stamp);
            *stamp = self.tick;
            self.by_recency.insert(self.tick, key);
            return;
        }
        if self.map.len() >= self.capacity {
            if let Some((&oldest, &victim)) = self.by_recency.iter().next() {
                self.by_recency.remove(&oldest);
                self.map.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        self.map.insert(key, (value, self.tick));
        self.by_recency.insert(self.tick, key);
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }
    fn len(&self) -> usize {
        self.map.len()
    }
    fn name(&self) -> &'static str {
        "LRU"
    }
}

/// LFU with tie-break by recency; O(log n) eviction via a (count, tick)
/// ordered index.
#[derive(Debug)]
pub struct LfuCache {
    capacity: usize,
    map: HashMap<u64, (CachedResults, u64, u64)>, // value, count, tick
    by_freq: BTreeMap<(u64, u64), u64>,           // (count, tick) -> key
    tick: u64,
    stats: CacheStats,
}

impl LfuCache {
    /// Create an LFU cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        LfuCache {
            capacity,
            map: HashMap::with_capacity(capacity),
            by_freq: BTreeMap::new(),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    fn bump(&mut self, key: u64) {
        self.tick += 1;
        if let Some((_, count, tick)) = self.map.get_mut(&key) {
            self.by_freq.remove(&(*count, *tick));
            *count += 1;
            *tick = self.tick;
            self.by_freq.insert((*count, *tick), key);
        }
    }
}

impl ResultCache for LfuCache {
    fn get(&mut self, key: u64) -> Option<&CachedResults> {
        if self.map.contains_key(&key) {
            self.stats.hits += 1;
            self.bump(key);
            self.map.get(&key).map(|(v, _, _)| v)
        } else {
            self.stats.misses += 1;
            None
        }
    }

    fn put(&mut self, key: u64, value: CachedResults) {
        if self.map.contains_key(&key) {
            if let Some((v, _, _)) = self.map.get_mut(&key) {
                *v = value;
            }
            self.bump(key);
            return;
        }
        self.tick += 1;
        if self.map.len() >= self.capacity {
            if let Some((&victim_key_pair, &victim)) = self.by_freq.iter().next() {
                self.by_freq.remove(&victim_key_pair);
                self.map.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        self.map.insert(key, (value, 1, self.tick));
        self.by_freq.insert((1, self.tick), key);
    }

    fn stats(&self) -> CacheStats {
        self.stats
    }
    fn len(&self) -> usize {
        self.map.len()
    }
    fn name(&self) -> &'static str {
        "LFU"
    }
}

/// SDC: a read-only static section seeded with the most frequent training
/// queries plus a dynamic LRU for the rest of the capacity.
#[derive(Debug)]
pub struct SdcCache {
    /// Static slots: reserved at build time, `None` until first filled.
    static_map: HashMap<u64, Option<CachedResults>>,
    dynamic: LruCache,
    stats: CacheStats,
}

impl SdcCache {
    /// Create an SDC cache of total `capacity`, with `static_fraction` of
    /// it devoted to the static section, seeded from `training_keys`
    /// (most frequent first). Static slots are reserved immediately but
    /// only serve hits once [`ResultCache::put`] fills them.
    pub fn new(capacity: usize, static_fraction: f64, training_keys: &[u64]) -> Self {
        assert!(capacity > 1);
        assert!((0.0..1.0).contains(&static_fraction));
        let static_cap = ((capacity as f64 * static_fraction) as usize).min(training_keys.len());
        let dynamic_cap = (capacity - static_cap).max(1);
        let static_map = training_keys.iter().take(static_cap).map(|&k| (k, None)).collect();
        SdcCache { static_map, dynamic: LruCache::new(dynamic_cap), stats: CacheStats::default() }
    }

    /// Number of slots in the static section.
    pub fn static_len(&self) -> usize {
        self.static_map.len()
    }
}

impl ResultCache for SdcCache {
    fn get(&mut self, key: u64) -> Option<&CachedResults> {
        if let Some(slot) = self.static_map.get(&key) {
            if slot.is_some() {
                self.stats.hits += 1;
                return self.static_map.get(&key).and_then(Option::as_ref);
            }
            self.stats.misses += 1;
            return None;
        }
        // Delegate to the dynamic half; fold its counters into ours.
        let before = self.dynamic.stats();
        let hit = self.dynamic.get(key).is_some();
        let after = self.dynamic.stats();
        self.stats.hits += after.hits - before.hits;
        self.stats.misses += after.misses - before.misses;
        if hit {
            self.dynamic.map.get(&key).map(|(v, _)| v)
        } else {
            None
        }
    }

    fn put(&mut self, key: u64, value: CachedResults) {
        if let Some(slot) = self.static_map.get_mut(&key) {
            *slot = Some(value);
        } else {
            self.dynamic.put(key, value);
        }
    }

    fn stats(&self) -> CacheStats {
        let d = self.dynamic.stats();
        CacheStats { evictions: d.evictions, ..self.stats }
    }
    fn len(&self) -> usize {
        self.static_map.values().filter(|v| v.is_some()).count() + self.dynamic.len()
    }
    fn name(&self) -> &'static str {
        "SDC"
    }
}

/// A thread-safe wrapper over any [`ResultCache`] policy: entries are
/// spread over `n` independently-locked shards by key, so `get`/`put`
/// take `&self` and concurrent lookups on different shards never
/// contend.
///
/// With a single shard the wrapper degenerates to "the policy behind one
/// mutex", which preserves the exact eviction behaviour of the wrapped
/// policy — the configuration the deterministic engines use. More shards
/// trade global recency/frequency ordering (each shard evicts locally)
/// for lock spreading under concurrent load.
#[derive(Debug)]
pub struct ShardedCache<C> {
    // Locked with poison recovery throughout: cache state is valid after
    // any interrupted get/put (worst case a stale recency index), so one
    // panicking client must not wedge every other thread.
    shards: Vec<Mutex<C>>,
}

impl<C: ResultCache> ShardedCache<C> {
    /// Wrap one cache instance in a single shard (policy-exact).
    pub fn single(cache: C) -> Self {
        ShardedCache { shards: vec![Mutex::new(cache)] }
    }

    /// Build from pre-constructed per-shard caches (each typically sized
    /// `capacity / n`).
    pub fn from_shards(shards: Vec<C>) -> Self {
        assert!(!shards.is_empty(), "at least one cache shard");
        ShardedCache { shards: shards.into_iter().map(Mutex::new).collect() }
    }

    fn shard_for(&self, key: u64) -> &Mutex<C> {
        // The engine's query keys are already well-mixed (FNV over sorted
        // terms), so modulo is an adequate spread.
        &self.shards[(key % self.shards.len() as u64) as usize]
    }

    /// Look up a query, returning an owned copy of the cached results.
    pub fn get(&self, key: u64) -> Option<CachedResults> {
        self.shard_for(key)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(key)
            .cloned()
    }

    /// As [`Self::get`], announcing the lookup (hit or miss) to
    /// `recorder` — one [`dwr_obs::Event::CacheLookup`] per call, after
    /// the shard lock is released.
    pub fn get_recorded<R: dwr_obs::Recorder + ?Sized>(
        &self,
        key: u64,
        recorder: &R,
        now: dwr_sim::SimTime,
    ) -> Option<CachedResults> {
        let hit = self.get(key);
        recorder.record(dwr_obs::Event::CacheLookup { qid: key, now, hit: hit.is_some() });
        hit
    }

    /// Insert a result.
    pub fn put(&self, key: u64, value: CachedResults) {
        self.shard_for(key)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .put(key, value);
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Counters summed over shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in &self.shards {
            let s = s.lock().unwrap_or_else(std::sync::PoisonError::into_inner).stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
        }
        total
    }

    /// Resident entries summed over shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len())
            .sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Policy name of the wrapped cache.
    pub fn name(&self) -> &'static str {
        self.shards[0].lock().unwrap_or_else(std::sync::PoisonError::into_inner).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn value(id: u32) -> CachedResults {
        vec![GlobalHit { doc: id, score: 1.0 }]
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = LruCache::new(2);
        c.put(1, value(1));
        c.put(2, value(2));
        assert!(c.get(1).is_some()); // 1 is now most recent
        c.put(3, value(3)); // evicts 2
        assert!(c.get(2).is_none());
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn lru_update_does_not_evict() {
        let mut c = LruCache::new(2);
        c.put(1, value(1));
        c.put(2, value(2));
        c.put(1, value(10));
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(1).unwrap()[0].doc, 10);
        assert!(c.get(2).is_some());
    }

    #[test]
    fn lfu_evicts_least_frequent() {
        let mut c = LfuCache::new(2);
        c.put(1, value(1));
        c.put(2, value(2));
        c.get(1);
        c.get(1); // key 1 now count 3
        c.put(3, value(3)); // evicts 2 (count 1)
        assert!(c.get(2).is_none());
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
    }

    #[test]
    fn sdc_static_entries_never_evicted() {
        let training = [100u64, 101, 102];
        let mut c = SdcCache::new(4, 0.5, &training);
        assert_eq!(c.static_len(), 2);
        c.put(100, value(1));
        // Flood the dynamic half.
        for k in 0..50u64 {
            c.put(k, value(k as u32));
        }
        assert!(c.get(100).is_some(), "static entry survived the flood");
    }

    /// Regression: `hit_ratio` on a cache that has never been consulted
    /// must be 0.0, not NaN (0/0). NaN here would poison comparisons and
    /// sorts in every experiment that ranks policies by hit ratio.
    #[test]
    fn hit_ratio_with_zero_lookups_is_zero_not_nan() {
        assert_eq!(CacheStats::default().hit_ratio(), 0.0);
        for c in
            [&LruCache::new(4) as &dyn ResultCache, &LfuCache::new(4), &SdcCache::new(4, 0.5, &[1])]
        {
            let r = c.stats().hit_ratio();
            assert!(!r.is_nan(), "{}: NaN hit ratio before any lookup", c.name());
            assert_eq!(r, 0.0, "{}", c.name());
        }
        // Sharded wrapper, and a stats value with evictions but no
        // lookups (puts only), stay finite too.
        let sharded = ShardedCache::single(LruCache::new(1));
        sharded.put(1, value(1));
        sharded.put(2, value(2)); // evicts 1: evictions=1, lookups=0
        let s = sharded.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (0, 0, 1));
        assert_eq!(s.hit_ratio(), 0.0);
        assert!(s.hit_ratio().partial_cmp(&0.5).is_some(), "comparable, not NaN");
    }

    #[test]
    fn get_recorded_counts_hits_and_misses() {
        use dwr_obs::{ObsConfig, ObsRecorder, Recorder};
        let rec = ObsRecorder::new(ObsConfig::single_site(1));
        assert!(rec.is_live());
        let c = ShardedCache::single(LruCache::new(4));
        c.put(1, value(1));
        assert!(c.get_recorded(1, &rec, 0).is_some());
        assert!(c.get_recorded(2, &rec, 0).is_none());
        let snap = rec.snapshot();
        assert_eq!(snap.counter("cache.hits"), Some(1));
        assert_eq!(snap.counter("cache.misses"), Some(1));
        // Obs counters agree with the cache's own accounting.
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn hit_ratio_computation() {
        let mut c = LruCache::new(4);
        c.put(1, value(1));
        c.get(1);
        c.get(2);
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
    }

    /// The headline SDC property: on Zipf traffic whose tail churns, SDC
    /// beats plain LRU of the same total capacity.
    #[test]
    fn sdc_beats_lru_on_zipf_with_churn() {
        use dwr_sim::dist::Zipf;
        use dwr_sim::SimRng;
        let mut rng = SimRng::new(7);
        let zipf = Zipf::new(10_000, 1.0);
        // Train: find the most frequent keys.
        let mut freq: HashMap<u64, u64> = HashMap::new();
        for _ in 0..20_000 {
            *freq.entry(zipf.sample(&mut rng)).or_insert(0) += 1;
        }
        let mut ranked: Vec<(u64, u64)> = freq.into_iter().collect();
        ranked.sort_by_key(|&(k, f)| (std::cmp::Reverse(f), k));
        let top_keys: Vec<u64> = ranked.iter().map(|&(k, _)| k).collect();

        let cap = 400;
        let mut lru = LruCache::new(cap);
        let mut sdc = SdcCache::new(cap, 0.5, &top_keys);
        // Test traffic: same Zipf head, but one-off scan bursts that wreck
        // pure recency.
        for i in 0..40_000u64 {
            let key = if i % 10 < 3 {
                1_000_000 + i // burst of never-repeating keys
            } else {
                zipf.sample(&mut rng)
            };
            for c in [&mut lru as &mut dyn ResultCache, &mut sdc] {
                if c.get(key).is_none() {
                    c.put(key, value(0));
                }
            }
        }
        let l = lru.stats().hit_ratio();
        let s = sdc.stats().hit_ratio();
        assert!(s > l, "sdc={s} lru={l}");
    }

    #[test]
    fn caches_start_empty() {
        for c in [
            &mut LruCache::new(4) as &mut dyn ResultCache,
            &mut LfuCache::new(4),
            &mut SdcCache::new(4, 0.5, &[1, 2]),
        ] {
            assert!(c.get(42).is_none());
            assert_eq!(c.stats().hits, 0);
        }
    }

    #[test]
    fn sharded_single_matches_wrapped_policy() {
        let mut plain = LruCache::new(2);
        let sharded = ShardedCache::single(LruCache::new(2));
        // Same operation sequence → same hits/misses/evictions.
        let ops: &[(u64, bool)] =
            &[(1, false), (2, false), (1, true), (3, false), (2, true), (1, true)];
        for &(key, _) in ops {
            if plain.get(key).is_none() {
                plain.put(key, value(key as u32));
            }
            if sharded.get(key).is_none() {
                sharded.put(key, value(key as u32));
            }
        }
        assert_eq!(plain.stats(), sharded.stats());
        assert_eq!(plain.len(), sharded.len());
        assert_eq!(sharded.name(), "LRU");
    }

    #[test]
    fn sharded_get_put_through_shared_reference() {
        let c = ShardedCache::from_shards(vec![LruCache::new(4), LruCache::new(4)]);
        assert_eq!(c.num_shards(), 2);
        for k in 0..8u64 {
            c.put(k, value(k as u32));
        }
        for k in 0..8u64 {
            assert!(c.get(k).is_some(), "key {k} resident");
        }
        assert_eq!(c.len(), 8);
    }

    /// An LRU whose `get` panics on one key — simulates a client thread
    /// dying while it holds a shard lock.
    struct BombCache {
        inner: LruCache,
        bomb: u64,
    }

    impl ResultCache for BombCache {
        fn get(&mut self, key: u64) -> Option<&CachedResults> {
            assert_ne!(key, self.bomb, "boom");
            self.inner.get(key)
        }
        fn put(&mut self, key: u64, value: CachedResults) {
            self.inner.put(key, value);
        }
        fn stats(&self) -> CacheStats {
            self.inner.stats()
        }
        fn len(&self) -> usize {
            self.inner.len()
        }
        fn name(&self) -> &'static str {
            "Bomb"
        }
    }

    #[test]
    fn poisoned_shard_recovers_for_other_threads() {
        use std::sync::Arc;
        let c = Arc::new(ShardedCache::single(BombCache { inner: LruCache::new(8), bomb: 77 }));
        c.put(1, value(1));
        // One client panics while holding the (only) shard lock.
        let poisoner = Arc::clone(&c);
        std::thread::spawn(move || poisoner.get(77))
            .join()
            .expect_err("the bomb key panics its client");
        // Every other client keeps being served from the same shard.
        std::thread::scope(|s| {
            for _ in 0..3 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    assert_eq!(c.get(1).expect("entry survives the panic")[0].doc, 1);
                    c.put(2, value(2));
                    assert!(c.get(2).is_some());
                });
            }
        });
        assert!(c.stats().hits >= 6);
    }

    #[test]
    fn sharded_cache_is_usable_from_threads() {
        use std::sync::Arc;
        let c = Arc::new(ShardedCache::from_shards(vec![
            LruCache::new(64),
            LruCache::new(64),
            LruCache::new(64),
            LruCache::new(64),
        ]));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..100u64 {
                        let key = t * 1000 + i;
                        c.put(key, value(key as u32));
                        assert!(c.get(key).is_some());
                    }
                });
            }
        });
        let stats = c.stats();
        assert_eq!(stats.hits, 400);
    }
}
