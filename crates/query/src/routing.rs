//! Topic-based query routing under drift, with reconfiguration.
//!
//! Section 5 (partitioning): "changes in the topic distribution of queries
//! can adversely impact performance, resulting in either the resources not
//! being exploited to their full extent or allocation of fewer resources
//! to popular topics \[35\]. A possible solution to this challenge is the
//! automatic reconfiguration of the index partition."
//!
//! [`TopicAllocation`] provisions servers proportionally to a topic
//! distribution; [`simulate_drift_routing`] replays a drifting query
//! stream against it and measures overload and waste, with or without
//! periodic reconfiguration.

use dwr_querylog::drift::TopicDrift;
use dwr_sim::{SimTime, HOUR};

/// Servers allocated to each topic's partition group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopicAllocation {
    servers: Vec<u32>,
}

impl TopicAllocation {
    /// Provision `servers` proportionally to `weights` (largest-remainder
    /// apportionment; every topic gets at least one server).
    pub fn provision(weights: &[f64], servers: u32) -> Self {
        assert!(!weights.is_empty());
        assert!(servers as usize >= weights.len(), "need >= one server per topic");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0);
        // Start with the guaranteed one per topic.
        let spare = servers - weights.len() as u32;
        let quotas: Vec<f64> = weights.iter().map(|w| w / total * f64::from(spare)).collect();
        let mut alloc: Vec<u32> = quotas.iter().map(|q| 1 + q.floor() as u32).collect();
        let mut assigned: u32 = alloc.iter().sum();
        // Largest remainders get the leftovers.
        let mut order: Vec<usize> = (0..weights.len()).collect();
        // total_cmp: an infinite weight makes its quota (and every
        // remainder involving it) NaN; the sort must stay deterministic
        // instead of panicking mid-apportionment.
        order.sort_by(|&a, &b| {
            (quotas[b] - quotas[b].floor())
                .total_cmp(&(quotas[a] - quotas[a].floor()))
                .then(a.cmp(&b))
        });
        let mut i = 0;
        while assigned < servers {
            alloc[order[i % order.len()]] += 1;
            assigned += 1;
            i += 1;
        }
        TopicAllocation { servers: alloc }
    }

    /// Per-topic server counts.
    pub fn servers(&self) -> &[u32] {
        &self.servers
    }

    /// Per-topic utilization for a demand vector (queries/s per topic)
    /// given each server sustains `server_qps`.
    pub fn utilization(&self, demand: &[f64], server_qps: f64) -> Vec<f64> {
        assert_eq!(demand.len(), self.servers.len());
        demand.iter().zip(&self.servers).map(|(&d, &s)| d / (f64::from(s) * server_qps)).collect()
    }
}

/// Result of replaying a drifting stream against a topic allocation.
#[derive(Debug, Clone)]
pub struct DriftRoutingReport {
    /// Per-window maximum topic utilization (>1 = the hot topic's group is
    /// overloaded).
    pub max_utilization: Vec<f64>,
    /// Per-window fraction of total capacity left idle while some group
    /// overloads (the "resources not being exploited" waste).
    pub stranded_capacity: Vec<f64>,
    /// Reconfigurations performed.
    pub reconfigurations: u32,
}

impl DriftRoutingReport {
    /// The worst window's max utilization.
    pub fn peak(&self) -> f64 {
        self.max_utilization.iter().copied().fold(0.0, f64::max)
    }
}

/// Replay `horizon` of drifted demand in hourly windows against an
/// allocation provisioned from the *initial* mixture; optionally
/// re-provision every `reconfigure_every`.
pub fn simulate_drift_routing(
    drift: &TopicDrift,
    total_qps: f64,
    servers: u32,
    server_qps: f64,
    horizon: SimTime,
    reconfigure_every: Option<SimTime>,
) -> DriftRoutingReport {
    let windows = horizon.div_ceil(HOUR) as usize;
    let mut allocation = TopicAllocation::provision(&drift.weights_at(0), servers);
    let mut last_reconfig: SimTime = 0;
    let mut reconfigurations = 0u32;
    let mut max_utilization = Vec::with_capacity(windows);
    let mut stranded = Vec::with_capacity(windows);
    for w in 0..windows {
        let t = w as u64 * HOUR;
        if let Some(every) = reconfigure_every {
            if t >= last_reconfig + every {
                allocation = TopicAllocation::provision(&drift.weights_at(t), servers);
                last_reconfig = t;
                reconfigurations += 1;
            }
        }
        let weights = drift.weights_at(t);
        let total_w: f64 = weights.iter().sum();
        let demand: Vec<f64> = weights.iter().map(|w| w / total_w * total_qps).collect();
        let util = allocation.utilization(&demand, server_qps);
        let peak = util.iter().copied().fold(0.0, f64::max);
        max_utilization.push(peak);
        // Stranded capacity: idle server-capacity in underloaded groups
        // while at least one group is overloaded.
        let any_overload = util.iter().any(|&u| u > 1.0);
        let idle: f64 = util
            .iter()
            .zip(allocation.servers())
            .map(|(&u, &s)| (1.0 - u.min(1.0)) * f64::from(s) * server_qps)
            .sum();
        let total_capacity = f64::from(servers) * server_qps;
        stranded.push(if any_overload { idle / total_capacity } else { 0.0 });
    }
    DriftRoutingReport { max_utilization, stranded_capacity: stranded, reconfigurations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwr_sim::DAY;

    #[test]
    fn provision_sums_and_respects_minimum() {
        let a = TopicAllocation::provision(&[0.7, 0.2, 0.1], 20);
        assert_eq!(a.servers().iter().sum::<u32>(), 20);
        assert!(a.servers().iter().all(|&s| s >= 1));
        assert!(a.servers()[0] > a.servers()[1]);
        assert!(a.servers()[1] >= a.servers()[2]);
    }

    #[test]
    fn provision_matches_uniform_weights() {
        let a = TopicAllocation::provision(&[1.0; 4], 16);
        assert_eq!(a.servers(), &[4, 4, 4, 4]);
    }

    #[test]
    fn utilization_balanced_when_provisioned_for_demand() {
        let weights = [0.5, 0.3, 0.2];
        let a = TopicAllocation::provision(&weights, 30);
        let demand: Vec<f64> = weights.iter().map(|w| w * 100.0).collect();
        let util = a.utilization(&demand, 10.0);
        // Everyone between 0 and ~0.5 with peak close to mean.
        let max = util.iter().copied().fold(0.0, f64::max);
        let min = util.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(max / min < 1.6, "util={util:?}");
    }

    #[test]
    fn non_finite_weight_does_not_panic_provision() {
        // Regression: an infinite topic weight (a degenerate popularity
        // estimate) makes every quota involving it NaN; the largest-
        // remainder sort used partial_cmp().expect("finite") and panicked.
        // With total_cmp the apportionment completes and stays valid.
        let a = TopicAllocation::provision(&[1.0, f64::INFINITY, 2.0], 9);
        assert_eq!(a.servers().iter().sum::<u32>(), 9, "all servers assigned");
        assert!(a.servers().iter().all(|&s| s >= 1), "minimum respected");
        // Deterministic across calls.
        let b = TopicAllocation::provision(&[1.0, f64::INFINITY, 2.0], 9);
        assert_eq!(a, b);
    }

    fn reversal_drift() -> TopicDrift {
        let w: Vec<f64> = (1..=6).map(|r| (r as f64).powf(-1.2)).collect();
        TopicDrift::reversal(&w, 2 * DAY)
    }

    #[test]
    fn drift_overloads_static_allocation() {
        let d = reversal_drift();
        let report = simulate_drift_routing(&d, 300.0, 30, 20.0, 2 * DAY, None);
        // Starts balanced...
        assert!(report.max_utilization[0] < 1.0);
        // ...ends with the (formerly cold, now hot) topic overloaded.
        assert!(report.peak() > 1.3, "peak={}", report.peak());
        // And capacity is stranded in the cold groups.
        assert!(report.stranded_capacity.iter().copied().fold(0.0, f64::max) > 0.2);
        assert_eq!(report.reconfigurations, 0);
    }

    #[test]
    fn reconfiguration_bounds_overload() {
        let d = reversal_drift();
        let without = simulate_drift_routing(&d, 300.0, 30, 20.0, 2 * DAY, None);
        let with = simulate_drift_routing(&d, 300.0, 30, 20.0, 2 * DAY, Some(6 * HOUR));
        assert!(with.reconfigurations >= 7);
        assert!(
            with.peak() < without.peak() - 0.2,
            "with={} without={}",
            with.peak(),
            without.peak()
        );
    }

    #[test]
    fn no_drift_no_problem() {
        let w: Vec<f64> = (1..=6).map(|r| (r as f64).powf(-1.2)).collect();
        let d = TopicDrift::none(&w, DAY);
        let report = simulate_drift_routing(&d, 300.0, 30, 20.0, DAY, None);
        assert!(report.peak() < 1.0);
        assert!(report.stranded_capacity.iter().all(|&s| s == 0.0));
    }
}
