//! Query-time fault injection: materialized outage schedules for the
//! replicated engine.
//!
//! Section 5's dependability argument ("upon query processor failures,
//! the system returns cached results") is only testable if the query
//! path actually experiences failures. A [`FaultSchedule`] materializes
//! one [`DownInterval`] sequence per *(partition, replica)* pair from an
//! [`UpDownProcess`] renewal model, and the engine consumes it two ways:
//!
//! * [`DistributedEngine::advance_to`](crate::engine::DistributedEngine::advance_to)
//!   applies the schedule's state at a simulated instant to every replica
//!   group, so a query stream experiences realistic outages instead of
//!   hand-placed `set_replica_alive` calls;
//! * at dispatch time the engine asks [`FaultSchedule::fails_during`]
//!   whether the chosen replica dies *mid-query*, which triggers one
//!   hedged retry on another live replica before the partition is
//!   dropped as degraded.
//!
//! Schedules are deterministic: the intervals of pair *(p, r)* depend
//! only on the seed, the process parameters, and the labels `p` and `r`
//! — never on how many other pairs exist. A schedule generated for
//! `r + 1` replicas is therefore the `r`-replica schedule plus one extra
//! independent replica per partition, which is what makes the
//! replication-factor sweep of `exp_failover` comparable across rows.

//! The site tier consumes the same renewal machinery one level up:
//! [`site_outage_traces`] materializes one whole-site
//! [`dwr_avail::site::Site`] timeline per site, label-forked per site
//! index so that adding an `r+1`-th site never perturbs the first `r`
//! traces — the property that makes `exp_site_failover`'s
//! site-replication sweep comparable across rows (a query that failed
//! with `r` sites can only be rescued, never newly lost, by site `r+1`).

use dwr_avail::failure::{DownInterval, UpDownProcess};
use dwr_avail::site::{Site, SiteConfig};
use dwr_sim::{SimRng, SimTime};

/// Per-replica outage intervals over a fixed horizon, indexed by
/// partition and replica.
#[derive(Debug, Clone)]
pub struct FaultSchedule {
    horizon: SimTime,
    /// `outages[partition][replica]`: sorted, non-overlapping intervals.
    outages: Vec<Vec<Vec<DownInterval>>>,
}

impl FaultSchedule {
    /// Materialize a schedule of `partitions × replicas` independent
    /// up-down processes over `[0, horizon)`.
    pub fn generate(
        partitions: usize,
        replicas: usize,
        process: &UpDownProcess,
        horizon: SimTime,
        seed: u64,
    ) -> Self {
        assert!(horizon > 0);
        let root = SimRng::new(seed);
        let outages = (0..partitions)
            .map(|p| {
                (0..replicas)
                    .map(|r| {
                        // Label-forked: the (p, r) stream is independent
                        // of the schedule's dimensions.
                        let mut rng = root.fork(((p as u64) << 24) | r as u64);
                        process.down_intervals(horizon, &mut rng)
                    })
                    .collect()
            })
            .collect();
        FaultSchedule { horizon, outages }
    }

    /// Build a schedule from hand-placed intervals (tests, replayed
    /// traces). `outages[p][r]` must be sorted and non-overlapping.
    pub fn from_intervals(outages: Vec<Vec<Vec<DownInterval>>>, horizon: SimTime) -> Self {
        debug_assert!(outages
            .iter()
            .flatten()
            .all(|ivs| ivs.windows(2).all(|w| w[0].end <= w[1].start)));
        FaultSchedule { horizon, outages }
    }

    /// The schedule's time horizon.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Number of partitions covered.
    pub fn num_partitions(&self) -> usize {
        self.outages.len()
    }

    /// Number of replicas covered for partition `p` (0 when `p` is
    /// outside the schedule).
    pub fn num_replicas(&self, p: usize) -> usize {
        self.outages.get(p).map_or(0, Vec::len)
    }

    /// The sorted outage intervals of replica `r` of partition `p`
    /// (empty for pairs outside the schedule). Exposed so experiments can
    /// align probe queries with outage boundaries.
    pub fn intervals(&self, p: usize, r: usize) -> &[DownInterval] {
        self.outages.get(p).and_then(|g| g.get(r)).map_or(&[], Vec::as_slice)
    }

    /// Whether replica `r` of partition `p` is down at instant `t`.
    /// Pairs outside the schedule are always up.
    pub fn is_down(&self, p: usize, r: usize, t: SimTime) -> bool {
        let ivs = self.intervals(p, r);
        // Last interval starting at or before t, if any, decides.
        let idx = ivs.partition_point(|iv| iv.start <= t);
        idx > 0 && ivs[idx - 1].contains(t)
    }

    /// Whether replica `r` of partition `p` suffers any outage
    /// intersecting the window `[lo, hi)` — i.e. whether a query
    /// occupying the replica for that window would be lost.
    pub fn fails_during(&self, p: usize, r: usize, lo: SimTime, hi: SimTime) -> bool {
        let ivs = self.intervals(p, r);
        // First interval ending after lo is the only candidate.
        let idx = ivs.partition_point(|iv| iv.end <= lo);
        ivs.get(idx).is_some_and(|iv| iv.intersects(lo, hi))
    }

    /// Total downtime of replica `r` of partition `p` over the horizon.
    pub fn downtime(&self, p: usize, r: usize) -> SimTime {
        self.intervals(p, r).iter().map(DownInterval::duration).sum()
    }
}

/// Materialize one whole-site outage timeline per site over
/// `[0, horizon)`, all drawn from `cfg`'s failure processes.
///
/// Trace `s` is generated from `SimRng::new(seed).fork(s)`, so it depends
/// only on the seed, the config, and the site's index — never on how many
/// sites exist. The traces for `n` sites are therefore a prefix of the
/// traces for `n + 1`, which keeps site-replication sweeps comparable:
/// the instants where *all* of `n + 1` sites are down are a subset of the
/// instants where all of `n` are.
pub fn site_outage_traces(
    n_sites: usize,
    cfg: &SiteConfig,
    horizon: SimTime,
    seed: u64,
) -> Vec<Site> {
    assert!(horizon > 0);
    let root = SimRng::new(seed);
    (0..n_sites)
        .map(|s| {
            let mut rng = root.fork(0x517E_0000 | s as u64);
            Site::simulate(cfg, horizon, &mut rng)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwr_sim::{DAY, HOUR};

    fn iv(start: SimTime, end: SimTime) -> DownInterval {
        DownInterval { start, end }
    }

    #[test]
    fn is_down_follows_intervals() {
        let s =
            FaultSchedule::from_intervals(vec![vec![vec![iv(10, 20), iv(40, 50)], vec![]]], 100);
        assert!(!s.is_down(0, 0, 9));
        assert!(s.is_down(0, 0, 10));
        assert!(s.is_down(0, 0, 19));
        assert!(!s.is_down(0, 0, 20));
        assert!(!s.is_down(0, 0, 30));
        assert!(s.is_down(0, 0, 45));
        assert!(!s.is_down(0, 1, 45), "replica with no outages is up");
        assert!(!s.is_down(7, 0, 45), "partition outside the schedule is up");
        assert!(!s.is_down(0, 9, 45), "replica outside the schedule is up");
    }

    #[test]
    fn fails_during_detects_mid_query_death() {
        let s = FaultSchedule::from_intervals(vec![vec![vec![iv(100, 200)]]], 1000);
        assert!(s.fails_during(0, 0, 90, 110), "outage starts inside the query");
        assert!(s.fails_during(0, 0, 150, 160), "query entirely inside the outage");
        assert!(s.fails_during(0, 0, 190, 260), "query starts inside the outage");
        assert!(!s.fails_during(0, 0, 0, 100), "query completes as the outage starts");
        assert!(!s.fails_during(0, 0, 200, 300), "query starts at repair");
        assert!(!s.fails_during(3, 1, 0, 1000), "outside the schedule never fails");
    }

    #[test]
    fn generate_is_deterministic_and_dimension_stable() {
        let p = UpDownProcess::exponential(2 * DAY, 6 * HOUR);
        let horizon = 60 * DAY;
        let a = FaultSchedule::generate(4, 2, &p, horizon, 42);
        let b = FaultSchedule::generate(4, 2, &p, horizon, 42);
        let wider = FaultSchedule::generate(4, 3, &p, horizon, 42);
        for part in 0..4 {
            for r in 0..2 {
                assert_eq!(a.intervals(part, r), b.intervals(part, r), "same seed, same schedule");
                assert_eq!(
                    a.intervals(part, r),
                    wider.intervals(part, r),
                    "adding replicas must not perturb existing streams"
                );
            }
        }
        assert_ne!(a.intervals(0, 0), a.intervals(0, 1), "streams are independent");
    }

    #[test]
    fn site_traces_are_deterministic_and_dimension_stable() {
        let cfg = SiteConfig::birn_like(2);
        let a = site_outage_traces(3, &cfg, 90 * DAY, 11);
        let b = site_outage_traces(3, &cfg, 90 * DAY, 11);
        let wider = site_outage_traces(4, &cfg, 90 * DAY, 11);
        for s in 0..3 {
            assert_eq!(a[s].down_intervals(), b[s].down_intervals(), "same seed, same trace");
            assert_eq!(
                a[s].down_intervals(),
                wider[s].down_intervals(),
                "adding a site must not perturb existing traces"
            );
        }
        assert_ne!(a[0].down_intervals(), a[1].down_intervals(), "per-site traces are independent");
        assert_ne!(
            site_outage_traces(1, &cfg, 90 * DAY, 12)[0].down_intervals(),
            a[0].down_intervals(),
            "seed matters"
        );
    }

    #[test]
    fn downtime_matches_steady_state_roughly() {
        let p = UpDownProcess::exponential(10 * DAY, DAY);
        let horizon = 2_000 * DAY;
        let s = FaultSchedule::generate(1, 1, &p, horizon, 7);
        let measured = 1.0 - s.downtime(0, 0) as f64 / horizon as f64;
        assert!((measured - p.steady_state_availability()).abs() < 0.02, "measured={measured}");
    }
}
