//! Selective search on the serving path: the [`ShardRouter`].
//!
//! Section 4 frames collection selection as the lever that turns a
//! partitioned index into a capacity multiplier: most queries can be
//! answered by a few shards if the broker knows which ones. E6
//! reproduced CORI and the Puppin-style query-driven selector offline
//! (`dwr_partition::select`); this module puts them **on the serving
//! path**. A [`ShardRouter`] sits between the engine's cache and its
//! dispatch pass and decides, per query, which partitions to contact:
//!
//! * the wrapped [`CollectionSelector`] ranks the snapshot's *active*
//!   partitions (closed split parents are filtered out), and the router
//!   contacts the top-*t*;
//! * a **recall-safe fallback cascade** broadens to more shards —
//!   doubling the contacted set along the ranking — whenever the merged
//!   answer is count-deficient (fewer than `k` hits) or score-deficient
//!   (the `k`-th score under a configured floor), so a mis-routed query
//!   degrades to exhaustive fan-out instead of silently losing recall;
//! * coverage is reported honestly: the engine returns
//!   [`crate::engine::Served::Full`] only when the router provably lost
//!   nothing (every active partition contacted), and a routed-coverage
//!   outcome otherwise.
//!
//! # Epoch-consistent selector snapshots
//!
//! Selectors rank the partitions they were built from, and a live
//! ([`dwr_partition::repart::RepartIndex`]) layout retires partition ids
//! as it splits. The router therefore snapshots its selector statistics
//! **per epoch**: profiles are built from the query's own
//! [`PartitionedIndex`] snapshot and cached keyed by `(epoch,
//! generation)`, so a routed query racing a split ranks exactly the
//! partition set its snapshot serves — bit-identical to an offline
//! oracle replaying the same snapshot ([`ShardRouter::oracle_query`],
//! pinned by `tests/route_chaos.rs`). Child partitions born from a
//! split get profiles the first time a query serves against the new
//! epoch (rebuild-at-publish, not inheritance: CORI statistics and
//! term profiles are pure functions of the snapshot).
//!
//! # Drift-driven refresh
//!
//! The query-driven selector is trained on a query log, and "the topics
//! the users search for have slowly changed" (Section 5). A
//! [`DriftRefresh`] attaches a [`TopicDrift`] ground truth and a retrain
//! callback: `DistributedEngine::advance_to` periodically checks the
//! total-variation distance the topic mixture has moved since the last
//! retrain and, past a threshold, swaps in freshly trained profiles
//! (bumping the router's generation, which invalidates every cached
//! per-epoch profile).

use crate::broker::{DocBroker, GlobalHit};
use dwr_obs::{Event, Recorder};
use dwr_partition::doc::TrainingResults;
use dwr_partition::parted::PartitionedIndex;
use dwr_partition::select::{CollectionSelector, CoriSelector, QueryDrivenSelector};
use dwr_querylog::drift::TopicDrift;
use dwr_sim::SimTime;
use dwr_text::topk::TopK;
use dwr_text::TermId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Lock a mutex, recovering the guard when a previous holder panicked
/// (router state — profile caches, refresh bookkeeping — stays valid
/// across an interrupted operation).
fn lock_recovering<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A selector the router can share across threads.
pub type SharedSelector = Arc<dyn CollectionSelector + Send + Sync>;

/// Where the router's ranking comes from.
pub enum RouteSource {
    /// A caller-supplied selector used as-is, never rebuilt. Requires a
    /// static partition layout (the legacy
    /// `DistributedEngine::with_selection` behavior).
    Fixed(SharedSelector),
    /// CORI statistics rebuilt from each epoch's snapshot.
    Cori,
    /// Puppin-style query-driven profiles retrained from the router's
    /// training log per epoch, with a CORI fallback for cold queries
    /// (terms in no trained profile).
    QueryDriven,
}

impl std::fmt::Debug for RouteSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteSource::Fixed(s) => write!(f, "Fixed({})", s.name()),
            RouteSource::Cori => write!(f, "Cori"),
            RouteSource::QueryDriven => write!(f, "QueryDriven"),
        }
    }
}

/// Drift-driven profile refresh: retrain the router's training log when
/// the topic mixture has moved far enough from the one the current
/// profiles were trained on.
pub struct DriftRefresh {
    /// The drifting topic mixture (the detector's ground truth).
    pub drift: TopicDrift,
    /// How often (simulated µs) `advance_to` checks for drift.
    pub interval: SimTime,
    /// Retrain when the total-variation distance between the mixture at
    /// the last retrain and now exceeds this.
    pub threshold: f64,
    /// Produces a fresh training log for the mixture at `now` (e.g. by
    /// replaying recent queries against an exhaustive oracle).
    pub retrain: Arc<dyn Fn(SimTime) -> TrainingResults + Send + Sync>,
}

impl std::fmt::Debug for DriftRefresh {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DriftRefresh")
            .field("interval", &self.interval)
            .field("threshold", &self.threshold)
            .finish_non_exhaustive()
    }
}

#[derive(Debug, Default)]
struct RefreshState {
    /// Last instant the drift check ran.
    last_check: SimTime,
    /// Last instant the profiles were retrained (0 = initial training).
    last_retrain: SimTime,
}

/// Router counters, mirrored 1:1 by the live `route.*` instruments so
/// the two can be cross-checked exactly (`exp_selective` asserts it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RouterStats {
    /// Routed queries decided (one per cold evaluation).
    pub queries: u64,
    /// Total partitions contacted across routed queries.
    pub shards_contacted: u64,
    /// Fallback-cascade broadening rounds taken.
    pub broadenings: u64,
    /// Routed queries that ended up contacting every active partition.
    pub covered: u64,
    /// Per-epoch selector profiles built on the serving path.
    pub profiles_built: u64,
    /// Drift-driven retrains fired.
    pub retrains: u64,
}

#[derive(Debug, Default)]
struct RouterCounters {
    queries: AtomicU64,
    shards_contacted: AtomicU64,
    broadenings: AtomicU64,
    covered: AtomicU64,
    profiles_built: AtomicU64,
    retrains: AtomicU64,
}

/// The contact plan for one query: tranches of partitions (each sorted
/// ascending), first tranche the initial top-*t*, later tranches the
/// cascade's broadening steps (the contacted set doubles per round).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteDecision {
    /// Partition tranches, contacted in order until the answer is
    /// sufficient.
    pub tranches: Vec<Vec<u32>>,
    /// Active partitions in the snapshot (full coverage = this many).
    pub active: usize,
}

/// Offline replay of one routed query ([`ShardRouter::oracle_query`]).
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedOracle {
    /// Merged top-k, best first.
    pub hits: Vec<GlobalHit>,
    /// Summed backend latency across cascade rounds.
    pub latency: SimTime,
    /// Partitions contacted.
    pub contacted: usize,
    /// Broadening rounds taken.
    pub broadenings: u32,
}

/// The routing stage: wraps a [`CollectionSelector`] source, contacts
/// the top-*t* active partitions per query, and broadens recall-safely
/// when the routed answer is deficient. Shared behind an `Arc` by the
/// engine's serve, timed, batch, and live paths; all methods `&self`.
pub struct ShardRouter {
    source: RouteSource,
    /// Initial shards contacted per query (*t*).
    width: usize,
    /// Broaden while the merged answer has fewer than `k` hits.
    broaden_on_count: bool,
    /// Broaden while the `k`-th merged score is under this floor.
    score_floor: Option<f32>,
    /// Per-`(epoch, generation)` selector snapshots.
    profiles: Mutex<HashMap<(u64, u64), SharedSelector>>,
    /// Bumped by every retrain; invalidates cached profiles.
    generation: AtomicU64,
    /// Training log behind [`RouteSource::QueryDriven`].
    training: Mutex<Arc<TrainingResults>>,
    refresh: Option<DriftRefresh>,
    refresh_state: Mutex<RefreshState>,
    stats: RouterCounters,
}

impl std::fmt::Debug for ShardRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardRouter")
            .field("source", &self.source)
            .field("width", &self.width)
            .field("broaden_on_count", &self.broaden_on_count)
            .field("score_floor", &self.score_floor)
            .field("generation", &self.generation())
            .finish_non_exhaustive()
    }
}

impl ShardRouter {
    fn with_source(source: RouteSource, width: usize, broaden: bool) -> Self {
        assert!(width >= 1, "router width must be at least 1");
        ShardRouter {
            source,
            width,
            broaden_on_count: broaden,
            score_floor: None,
            profiles: Mutex::new(HashMap::new()),
            generation: AtomicU64::new(0),
            training: Mutex::new(Arc::new(TrainingResults::default())),
            refresh: None,
            refresh_state: Mutex::new(RefreshState::default()),
            stats: RouterCounters::default(),
        }
    }

    /// A router over a caller-supplied selector, contacting exactly the
    /// top-`width` partitions with no fallback cascade — the legacy
    /// `with_selection` semantics, now with honest coverage reporting.
    pub fn fixed(selector: SharedSelector, width: usize) -> Self {
        Self::with_source(RouteSource::Fixed(selector), width, false)
    }

    /// A CORI router: statistics rebuilt per epoch from the query's own
    /// snapshot, count-deficiency broadening on.
    pub fn cori(width: usize) -> Self {
        Self::with_source(RouteSource::Cori, width, true)
    }

    /// A query-driven router over `training`, profiles rebuilt per epoch
    /// against the snapshot's assignment (so child partitions born from
    /// splits are profiled at publish time), cold queries delegated to
    /// CORI, count-deficiency broadening on.
    pub fn query_driven(training: TrainingResults, width: usize) -> Self {
        let r = Self::with_source(RouteSource::QueryDriven, width, true);
        *lock_recovering(&r.training) = Arc::new(training);
        r
    }

    /// Disable the fallback cascade: contact the initial top-*t* only.
    pub fn without_broadening(mut self) -> Self {
        self.broaden_on_count = false;
        self.score_floor = None;
        self
    }

    /// Also broaden while the `k`-th merged score is below `floor`
    /// (score-deficiency, on top of count-deficiency).
    pub fn with_score_floor(mut self, floor: f32) -> Self {
        assert!(floor.is_finite(), "score floor must be finite");
        self.score_floor = Some(floor);
        self
    }

    /// Attach a drift-driven refresh loop (see [`DriftRefresh`]).
    pub fn with_refresh(mut self, refresh: DriftRefresh) -> Self {
        assert!(refresh.interval > 0, "refresh interval must be positive");
        assert!(
            refresh.threshold.is_finite() && refresh.threshold >= 0.0,
            "drift threshold must be a finite non-negative TV distance"
        );
        self.refresh = Some(refresh);
        self
    }

    /// Whether the fallback cascade can broaden past the initial tranche.
    pub fn broadens(&self) -> bool {
        self.broaden_on_count || self.score_floor.is_some()
    }

    /// Initial shards contacted per query (*t*).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Profile generation (bumped by each retrain).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Counters so far.
    pub fn stats(&self) -> RouterStats {
        RouterStats {
            queries: self.stats.queries.load(Ordering::Relaxed),
            shards_contacted: self.stats.shards_contacted.load(Ordering::Relaxed),
            broadenings: self.stats.broadenings.load(Ordering::Relaxed),
            covered: self.stats.covered.load(Ordering::Relaxed),
            profiles_built: self.stats.profiles_built.load(Ordering::Relaxed),
            retrains: self.stats.retrains.load(Ordering::Relaxed),
        }
    }

    /// The selector snapshot for `snap`'s epoch, building (and caching)
    /// it on first use. The **serving-path** accessor: a build is
    /// counted in [`RouterStats::profiles_built`] and emitted as a
    /// `RouteProfile` event, keeping live instruments and router
    /// counters in lockstep.
    pub fn profile_for<R: Recorder>(
        &self,
        snap: &PartitionedIndex,
        now: SimTime,
        recorder: &R,
    ) -> SharedSelector {
        let (sel, built) = self.profile_shared(snap);
        if built {
            self.stats.profiles_built.fetch_add(1, Ordering::Relaxed);
            recorder.record(Event::RouteProfile {
                now,
                epoch: snap.epoch(),
                generation: self.generation(),
            });
        }
        sel
    }

    /// The selector snapshot for `snap`'s epoch **without** serving-path
    /// accounting — for offline oracles sharing the router's cache.
    pub fn profile(&self, snap: &PartitionedIndex) -> SharedSelector {
        self.profile_shared(snap).0
    }

    fn profile_shared(&self, snap: &PartitionedIndex) -> (SharedSelector, bool) {
        if let RouteSource::Fixed(s) = &self.source {
            return (Arc::clone(s), false);
        }
        let key = (snap.epoch(), self.generation());
        let mut cache = lock_recovering(&self.profiles);
        if let Some(s) = cache.get(&key) {
            return (Arc::clone(s), false);
        }
        // Build under the lock: the build is a pure function of the
        // snapshot and training log, and holding the lock keeps
        // concurrent first-users from building duplicates.
        let built: SharedSelector = match &self.source {
            RouteSource::Cori => Arc::new(CoriSelector::from_partitions(snap)),
            RouteSource::QueryDriven => {
                let training = Arc::clone(&lock_recovering(&self.training));
                Arc::new(
                    QueryDrivenSelector::train(&training, snap.assignment(), snap.num_partitions())
                        .with_fallback(Box::new(CoriSelector::from_partitions(snap))),
                )
            }
            RouteSource::Fixed(_) => unreachable!("handled above"),
        };
        cache.insert(key, Arc::clone(&built));
        (built, true)
    }

    /// The contact plan for one query: rank the snapshot's partitions,
    /// keep the active ones (a closed split parent must never be
    /// contacted), and cut the ranking into tranches — the initial
    /// top-*t*, then broadening steps that double the contacted set.
    /// Every tranche is sorted **ascending**, so a router with `width >=
    /// active` degenerates to exactly the unrouted engine's partition
    /// order (`active_parts()`), which is what makes *t* = all
    /// bit-identical to the unrouted path.
    pub fn decide(
        &self,
        selector: &dyn CollectionSelector,
        snap: &PartitionedIndex,
        terms: &[TermId],
    ) -> RouteDecision {
        let mut ranked: Vec<u32> = selector
            .rank(terms)
            .into_iter()
            .map(|(p, _)| p)
            .filter(|&p| (p as usize) < snap.num_partitions() && snap.is_active(p))
            .collect();
        // Defensive: a selector that failed to rank some active
        // partition must not make it unreachable — append stragglers so
        // the cascade can always reach full coverage.
        for p in snap.active_parts() {
            if !ranked.contains(&p) {
                ranked.push(p);
            }
        }
        let active = ranked.len();
        let mut tranches = Vec::new();
        let mut start = 0usize;
        let mut take = self.width;
        while start < ranked.len() {
            let end = (start + take).min(ranked.len());
            let mut tranche = ranked[start..end].to_vec();
            tranche.sort_unstable();
            tranches.push(tranche);
            if !self.broadens() {
                break;
            }
            // Double the total contacted per round: t, t, 2t, 4t, ...
            take = end;
            start = end;
        }
        RouteDecision { tranches, active }
    }

    /// Whether the merged answer so far warrants broadening.
    pub fn deficient(&self, merged: &[GlobalHit], k: usize) -> bool {
        if self.broaden_on_count && merged.len() < k {
            return true;
        }
        if let Some(floor) = self.score_floor {
            if merged.len() < k || merged[k - 1].score < floor {
                return true;
            }
        }
        false
    }

    /// Every partition this query's cascade could contact — the
    /// availability horizon for stale-serving decisions. With broadening
    /// that is the full ranked active set; without, the initial tranche.
    pub fn reachable(&self, snap: &PartitionedIndex, terms: &[TermId]) -> Vec<u32> {
        let selector = self.profile(snap);
        let decision = self.decide(selector.as_ref(), snap, terms);
        decision.tranches.concat()
    }

    /// Fold one routed query's outcome into the router counters.
    pub fn account(&self, contacted: usize, active: usize, broadenings: u32) {
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
        self.stats.shards_contacted.fetch_add(contacted as u64, Ordering::Relaxed);
        self.stats.broadenings.fetch_add(u64::from(broadenings), Ordering::Relaxed);
        if contacted >= active {
            self.stats.covered.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drift check, called by `DistributedEngine::advance_to`: at most
    /// once per `interval`, compare the topic mixture now against the
    /// one the current profiles were trained on; past the TV-distance
    /// threshold, retrain, bump the generation (invalidating every
    /// cached per-epoch profile), and emit a `RouteRetrain` event.
    /// Idempotent per instant; callable from any thread.
    pub fn maybe_refresh<R: Recorder>(&self, now: SimTime, recorder: &R) {
        let Some(refresh) = &self.refresh else { return };
        let mut state = lock_recovering(&self.refresh_state);
        if now < state.last_check.saturating_add(refresh.interval) {
            return;
        }
        state.last_check = now;
        if refresh.drift.tv_distance(state.last_retrain, now) <= refresh.threshold {
            return;
        }
        state.last_retrain = now;
        let fresh = (refresh.retrain)(now);
        *lock_recovering(&self.training) = Arc::new(fresh);
        let generation = self.generation.fetch_add(1, Ordering::Relaxed) + 1;
        lock_recovering(&self.profiles).clear();
        self.stats.retrains.fetch_add(1, Ordering::Relaxed);
        recorder.record(Event::RouteRetrain { now, generation });
    }

    /// Replay one routed query offline, against any broker over the same
    /// snapshot (typically a static oracle built from
    /// `RepartIndex::snapshot()` + `with_global_stats`). Shares the
    /// router's profile cache but touches **no** counters, so a live
    /// engine and its oracle stay cross-checkable. Fault-free replay:
    /// every partition of every tranche is evaluated — bit-identical to
    /// the live engine's routed path when no faults, stragglers, or
    /// deadlines are in play (`tests/route_chaos.rs` pins this under
    /// live splits).
    pub fn oracle_query<R: Recorder>(
        &self,
        broker: &DocBroker<R>,
        snap: &PartitionedIndex,
        terms: &[TermId],
        k: usize,
        qid: u64,
        now: SimTime,
    ) -> RoutedOracle {
        let selector = self.profile(snap);
        let decision = self.decide(selector.as_ref(), snap, terms);
        let mut hits: Vec<GlobalHit> = Vec::new();
        let mut latency: SimTime = 0;
        let mut contacted = 0usize;
        let mut broadenings = 0u32;
        for (round, tranche) in decision.tranches.iter().enumerate() {
            if round > 0 {
                if !self.deficient(&hits, k) {
                    break;
                }
                broadenings += 1;
            }
            contacted += tranche.len();
            let resp = broker.query_selected_at_in(snap, terms, k, tranche, qid, now);
            latency += resp.latency;
            hits = if hits.is_empty() { resp.hits } else { merge_topk(&hits, &resp.hits, k) };
        }
        RoutedOracle { hits, latency, contacted, broadenings }
    }
}

/// Merge two best-first hit lists into the top-`k`, with the broker's
/// exact comparator (score, ties to the lower doc id) — cascade rounds
/// merge through this, so a single-round answer reproduces the broker's
/// list bit-for-bit.
pub fn merge_topk(a: &[GlobalHit], b: &[GlobalHit], k: usize) -> Vec<GlobalHit> {
    let mut top = TopK::new(k.max(1));
    for h in a.iter().chain(b) {
        top.push(h.doc, h.score);
    }
    top.into_sorted_vec().into_iter().map(|(doc, score)| GlobalHit { doc, score }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwr_obs::NoopRecorder;
    use dwr_partition::doc::{DocPartitioner, RoundRobinPartitioner};
    use dwr_partition::parted::Corpus;

    fn setup(parts: usize) -> PartitionedIndex {
        let corpus: Corpus =
            (0..24u32).map(|d| vec![(TermId(d % 5), 2), (TermId(50 + d % 3), 1)]).collect();
        let a = RoundRobinPartitioner.assign(&corpus, parts);
        PartitionedIndex::build(&corpus, &a, parts)
    }

    #[test]
    fn decide_cuts_doubling_ascending_tranches() {
        let pi = setup(8);
        let router = ShardRouter::cori(2);
        let sel = router.profile(&pi);
        let d = router.decide(sel.as_ref(), &pi, &[TermId(1)]);
        assert_eq!(d.active, 8);
        let sizes: Vec<usize> = d.tranches.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![2, 2, 4], "t, t, 2t: contacted doubles per round");
        for t in &d.tranches {
            assert!(t.windows(2).all(|w| w[0] < w[1]), "ascending: {t:?}");
        }
        let mut all: Vec<u32> = d.tranches.concat();
        all.sort_unstable();
        assert_eq!(all, (0..8).collect::<Vec<u32>>(), "cascade covers every partition once");
    }

    #[test]
    fn width_at_least_active_is_one_full_tranche() {
        let pi = setup(4);
        let router = ShardRouter::cori(4);
        let sel = router.profile(&pi);
        let d = router.decide(sel.as_ref(), &pi, &[TermId(1)]);
        assert_eq!(d.tranches, vec![pi.active_parts()], "t = all ≡ unrouted partition order");
    }

    #[test]
    fn without_broadening_contacts_initial_tranche_only() {
        let pi = setup(8);
        let router = ShardRouter::cori(3).without_broadening();
        assert!(!router.broadens());
        let sel = router.profile(&pi);
        let d = router.decide(sel.as_ref(), &pi, &[TermId(1)]);
        assert_eq!(d.tranches.len(), 1);
        assert_eq!(d.tranches[0].len(), 3);
        assert_eq!(router.reachable(&pi, &[TermId(1)]).len(), 3);
    }

    #[test]
    fn deficiency_drives_broadening() {
        let router = ShardRouter::cori(1);
        let hit = |doc, score| GlobalHit { doc, score };
        assert!(router.deficient(&[], 3));
        assert!(router.deficient(&[hit(1, 2.0), hit(2, 1.0)], 3));
        assert!(!router.deficient(&[hit(1, 2.0), hit(2, 1.0), hit(3, 0.5)], 3));
        let floored = ShardRouter::cori(1).with_score_floor(1.0);
        assert!(floored.deficient(&[hit(1, 2.0), hit(2, 1.0), hit(3, 0.5)], 3), "kth under floor");
        assert!(!floored.deficient(&[hit(1, 2.0), hit(2, 1.5), hit(3, 1.0)], 3));
    }

    #[test]
    fn merge_topk_is_identity_on_a_single_round() {
        let round = vec![GlobalHit { doc: 3, score: 2.0 }, GlobalHit { doc: 1, score: 1.0 }];
        assert_eq!(merge_topk(&round, &[], 5), round);
        assert_eq!(merge_topk(&[], &round, 5), round);
        // Ties break to the lower doc id, like the broker's gather.
        let tied =
            merge_topk(&[GlobalHit { doc: 7, score: 1.0 }], &[GlobalHit { doc: 2, score: 1.0 }], 1);
        assert_eq!(tied, vec![GlobalHit { doc: 2, score: 1.0 }]);
    }

    #[test]
    fn profiles_cache_per_epoch_and_count_only_live_builds() {
        let pi = setup(4);
        let router = ShardRouter::cori(2);
        let rec = NoopRecorder;
        let a = router.profile_for(&pi, 0, &rec);
        assert_eq!(router.stats().profiles_built, 1);
        let b = router.profile_for(&pi, 1, &rec);
        assert_eq!(router.stats().profiles_built, 1, "second use hits the cache");
        assert!(Arc::ptr_eq(&a, &b));
        // The offline accessor shares the cache without counting.
        let c = router.profile(&pi);
        assert!(Arc::ptr_eq(&a, &c));
        assert_eq!(router.stats().profiles_built, 1);
    }

    #[test]
    fn refresh_retrains_only_past_threshold_and_bumps_generation() {
        let pi = setup(4);
        let retrains = Arc::new(AtomicU64::new(0));
        let counting = Arc::clone(&retrains);
        let router =
            ShardRouter::query_driven(TrainingResults::default(), 2).with_refresh(DriftRefresh {
                drift: TopicDrift::reversal(&[0.9, 0.1], 1_000_000),
                interval: 100,
                threshold: 0.5,
                retrain: Arc::new(move |_| {
                    counting.fetch_add(1, Ordering::Relaxed);
                    TrainingResults::default()
                }),
            });
        let rec = NoopRecorder;
        let old = router.profile(&pi);
        // Early: drift below threshold — checked but not retrained.
        router.maybe_refresh(200, &rec);
        assert_eq!(router.stats().retrains, 0);
        assert_eq!(router.generation(), 0);
        // Within the interval of the last check: not even checked.
        router.maybe_refresh(250, &rec);
        // Past the horizon the reversal exceeds TV 0.5: retrain fires,
        // the generation bumps, and cached profiles are invalidated.
        router.maybe_refresh(1_000_000, &rec);
        assert_eq!(router.stats().retrains, 1);
        assert_eq!(retrains.load(Ordering::Relaxed), 1);
        assert_eq!(router.generation(), 1);
        let fresh = router.profile(&pi);
        assert!(!Arc::ptr_eq(&old, &fresh), "retrain invalidates the profile cache");
        // Re-checking at the same mixture does not retrain again.
        router.maybe_refresh(2_000_000, &rec);
        assert_eq!(router.stats().retrains, 1, "mixture unchanged since last retrain");
    }

    #[test]
    fn fixed_source_never_builds_profiles() {
        let pi = setup(4);
        let sel: SharedSelector = Arc::new(CoriSelector::from_partitions(&pi));
        let router = ShardRouter::fixed(Arc::clone(&sel), 2);
        let got = router.profile_for(&pi, 0, &NoopRecorder);
        assert!(Arc::ptr_eq(&sel, &got));
        assert_eq!(router.stats().profiles_built, 0);
        assert!(!router.broadens(), "fixed = legacy with_selection semantics");
    }
}
