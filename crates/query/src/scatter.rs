//! A small worker pool for parallel scatter-gather.
//!
//! The paper's Section 5 broker scatters a query to every chosen
//! partition and gathers per-partition top-k lists. On one machine the
//! honest analogue is a fixed pool of OS threads — one standing in for
//! each query processor — that evaluate shards concurrently while the
//! coordinator thread waits.
//!
//! Design notes:
//!
//! * **Fixed pool, not per-query spawn.** Threads are created once and
//!   reused, so per-query overhead is a channel send per task, not a
//!   `clone(2)` per partition. That is what lets parallel evaluation beat
//!   the sequential path on real corpora.
//! * **Deterministic gather.** [`ScatterPool::scatter`] returns results
//!   in *task order* regardless of completion order; callers that merge
//!   in task order therefore produce bit-for-bit the same output as a
//!   sequential loop.
//! * **`'static` tasks.** Work items own their inputs (`Arc` shards,
//!   owned term vectors), so nothing borrows from the submitting stack
//!   frame and the pool can outlive any particular query.

use dwr_obs::{Event, Recorder};
use dwr_sim::SimTime;
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: VecDeque<Job>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    work_ready: Condvar,
}

/// A fixed-size worker pool dedicated to scatter-gather evaluation.
pub struct ScatterPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ScatterPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScatterPool").field("threads", &self.workers.len()).finish()
    }
}

impl ScatterPool {
    /// Create a pool of `threads` workers. `threads == 0` is well-defined
    /// and clamps to a single worker (a zero-thread pool could never
    /// drain its queue, so `scatter` would deadlock); `threads == 1`
    /// degenerates to sequential evaluation on one worker thread.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState { queue: VecDeque::new(), shutdown: false }),
            work_ready: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dwr-scatter-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn scatter worker")
            })
            .collect();
        ScatterPool { shared, workers }
    }

    /// A pool sized to the machine (`available_parallelism`, capped at
    /// `cap`). `cap == 0` is treated as a cap of 1, so the result always
    /// has at least one worker.
    pub fn with_default_size(cap: usize) -> Self {
        let n = std::thread::available_parallelism().map_or(2, usize::from);
        Self::new(n.min(cap.max(1)))
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Run every task on the pool and gather the results **in task
    /// order**, blocking until all are done.
    ///
    /// # Panics
    /// Panics if a task panics (the panic is surfaced on the caller, not
    /// swallowed by a worker).
    pub fn scatter<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let n = tasks.len();
        let (tx, rx) = mpsc::channel::<(usize, std::thread::Result<T>)>();
        {
            let mut state =
                self.shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            for (i, task) in tasks.into_iter().enumerate() {
                let tx = tx.clone();
                state.queue.push_back(Box::new(move || {
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
                    // The gatherer may have unwound already; a dead
                    // receiver is fine.
                    let _ = tx.send((i, result));
                }));
            }
        }
        drop(tx);
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            self.shared.work_ready.notify_one();
        } else {
            self.shared.work_ready.notify_all();
        }
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (i, result) = rx.recv().expect("scatter worker disappeared");
            match result {
                Ok(v) => slots[i] = Some(v),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        slots.into_iter().map(|s| s.expect("every task reported")).collect()
    }

    /// Run several task *groups* on the pool under **one** queue-lock
    /// acquisition, gathering each group's results in task order.
    ///
    /// This is the batched-admission primitive: a broker serving N queued
    /// queries enqueues all of their shard tasks in a single critical
    /// section instead of taking the queue lock N times, amortizing both
    /// the lock traffic and the worker wakeups across the batch.
    /// `scatter_batch(vec![a, b])` returns exactly what
    /// `[scatter(a), scatter(b)]` would — group results come back in
    /// group order, each in task order — so callers that gather in order
    /// stay bit-identical to the query-at-a-time loop.
    ///
    /// # Panics
    /// Panics if any task panics (first panicking task in flat order).
    pub fn scatter_batch<T, F>(&self, groups: Vec<Vec<F>>) -> Vec<Vec<T>>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let sizes: Vec<usize> = groups.iter().map(Vec::len).collect();
        let total: usize = sizes.iter().sum();
        let (tx, rx) = mpsc::channel::<(usize, std::thread::Result<T>)>();
        {
            // One critical section for the whole batch.
            let mut state =
                self.shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            let mut flat = 0usize;
            for group in groups {
                for task in group {
                    let tx = tx.clone();
                    let i = flat;
                    flat += 1;
                    state.queue.push_back(Box::new(move || {
                        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
                        let _ = tx.send((i, result));
                    }));
                }
            }
        }
        drop(tx);
        if total == 0 {
            return sizes.iter().map(|_| Vec::new()).collect();
        }
        if total == 1 {
            self.shared.work_ready.notify_one();
        } else {
            self.shared.work_ready.notify_all();
        }
        let mut slots: Vec<Option<T>> = (0..total).map(|_| None).collect();
        for _ in 0..total {
            let (i, result) = rx.recv().expect("scatter worker disappeared");
            match result {
                Ok(v) => slots[i] = Some(v),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        let mut out = Vec::with_capacity(sizes.len());
        let mut it = slots.into_iter();
        for n in sizes {
            out.push(it.by_ref().take(n).map(|s| s.expect("every task reported")).collect());
        }
        out
    }

    /// As [`Self::scatter`], with a caller-supplied label attached to
    /// each task. A panicking task is re-raised on the caller with its
    /// label in the panic message, so a crash inside a shard evaluation
    /// racing a repartition identifies exactly which (epoch, partition)
    /// was being served — see [`task_label`].
    ///
    /// # Panics
    /// Panics if a task panics, with `scatter task [label …]` prefixed
    /// to the original message.
    pub fn scatter_labeled<T, F>(&self, tasks: Vec<(u64, F)>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let labels: Vec<u64> = tasks.iter().map(|&(label, _)| label).collect();
        let n = tasks.len();
        let (tx, rx) = mpsc::channel::<(usize, std::thread::Result<T>)>();
        {
            let mut state =
                self.shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            for (i, (_, task)) in tasks.into_iter().enumerate() {
                let tx = tx.clone();
                state.queue.push_back(Box::new(move || {
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task));
                    let _ = tx.send((i, result));
                }));
            }
        }
        drop(tx);
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            self.shared.work_ready.notify_one();
        } else {
            self.shared.work_ready.notify_all();
        }
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (i, result) = rx.recv().expect("scatter worker disappeared");
            match result {
                Ok(v) => slots[i] = Some(v),
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    let label = labels[i];
                    panic!(
                        "scatter task [label {label:#018x}: epoch {}, partition {}] \
                         panicked: {msg}",
                        label >> 32,
                        label & 0xffff_ffff,
                    );
                }
            }
        }
        slots.into_iter().map(|s| s.expect("every task reported")).collect()
    }

    /// As [`Self::scatter`], announcing the dispatch to `recorder` first
    /// (one [`Event::ScatterDispatch`] per batch, emitted from the
    /// coordinating thread *before* any worker runs, so the event stream
    /// is deterministic regardless of completion order).
    pub fn scatter_recorded<T, F, R>(
        &self,
        tasks: Vec<F>,
        recorder: &R,
        qid: u64,
        now: SimTime,
    ) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
        R: Recorder + ?Sized,
    {
        recorder.record(Event::ScatterDispatch { qid, now, partitions: tasks.len() as u32 });
        self.scatter(tasks)
    }
}

/// The scatter-task label for a shard evaluation: epoch in the high 32
/// bits, partition id in the low 32. Labels make a panic during a
/// query-vs-split race attributable to the exact map snapshot that
/// dispatched the work.
pub fn task_label(epoch: u64, partition: u32) -> u64 {
    (epoch << 32) | u64::from(partition)
}

impl Drop for ScatterPool {
    fn drop(&mut self) {
        {
            let mut state =
                self.shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            state.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Spin iterations before a worker parks on the condvar. Queries arrive
/// back-to-back during stream serving; parking between two ~10µs shard
/// tasks would cost more in wakeup latency than the tasks themselves, so
/// workers stay hot for roughly the duration of one query first.
const SPIN_ITERS: u32 = 4_096;

/// Spinning helps only when workers have their own cores; on a
/// single-hardware-thread host it steals the coordinator's CPU, so park
/// immediately there.
fn spin_limit() -> u32 {
    static LIMIT: std::sync::OnceLock<u32> = std::sync::OnceLock::new();
    *LIMIT.get_or_init(|| {
        if std::thread::available_parallelism().map_or(1, usize::from) > 1 {
            SPIN_ITERS
        } else {
            0
        }
    })
}

fn worker_loop(shared: &PoolShared) {
    let limit = spin_limit();
    let mut spins: u32 = 0;
    loop {
        // Fast path: grab work (or notice shutdown) without parking.
        {
            let mut state = shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(job) = state.queue.pop_front() {
                drop(state);
                job();
                spins = 0;
                continue;
            }
            if state.shutdown {
                return;
            }
        }
        if spins < limit {
            spins += 1;
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
            continue;
        }
        // Slow path: park until new work or shutdown.
        let job = {
            let mut state = shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = shared
                    .work_ready
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        spins = 0;
        job();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_task_order() {
        let pool = ScatterPool::new(4);
        let tasks: Vec<_> = (0..32usize)
            .map(|i| {
                move || {
                    // Stagger so completion order differs from task order.
                    std::thread::sleep(std::time::Duration::from_micros(
                        ((32 - i) % 5) as u64 * 50,
                    ));
                    i * 10
                }
            })
            .collect();
        let got = pool.scatter(tasks);
        assert_eq!(got, (0..32).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let pool = ScatterPool::new(2);
        for round in 0..10usize {
            let got = pool.scatter((0..8).map(|i| move || i + round).collect::<Vec<_>>());
            assert_eq!(got, (0..8).map(|i| i + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let pool = ScatterPool::new(2);
        let got: Vec<u32> = pool.scatter(Vec::<fn() -> u32>::new());
        assert!(got.is_empty());
    }

    #[test]
    fn work_actually_runs_on_pool_threads() {
        let pool = ScatterPool::new(3);
        let on_worker = Arc::new(AtomicUsize::new(0));
        let tasks: Vec<_> = (0..12)
            .map(|_| {
                let on_worker = Arc::clone(&on_worker);
                move || {
                    let name = std::thread::current().name().unwrap_or("").to_string();
                    if name.starts_with("dwr-scatter-") {
                        on_worker.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
            .collect();
        pool.scatter(tasks);
        assert_eq!(on_worker.load(Ordering::Relaxed), 12);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn task_panic_propagates_to_caller() {
        let pool = ScatterPool::new(2);
        pool.scatter(vec![|| panic!("boom")]);
    }

    #[test]
    fn pool_survives_a_task_panic() {
        let pool = ScatterPool::new(2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.scatter(vec![|| panic!("boom")])
        }));
        assert!(r.is_err());
        // Workers caught the panic; the pool still serves.
        let got = pool.scatter(vec![|| 1, || 2, || 3]);
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn panicked_task_does_not_wedge_other_threads() {
        let pool = Arc::new(ScatterPool::new(2));
        // Client thread A panics (the task panic is re-raised on it).
        let poisoner = Arc::clone(&pool);
        std::thread::spawn(move || {
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                poisoner.scatter(vec![|| panic!("boom")])
            }));
        })
        .join()
        .expect("catch_unwind contains the panic");
        // Other client threads keep scattering on the same pool.
        std::thread::scope(|s| {
            for t in 0..3usize {
                let pool = Arc::clone(&pool);
                s.spawn(move || {
                    let got = pool.scatter((0..8).map(|i| move || i * t).collect::<Vec<_>>());
                    assert_eq!(got, (0..8).map(|i| i * t).collect::<Vec<_>>());
                });
            }
        });
    }

    #[test]
    fn drop_joins_workers() {
        let pool = ScatterPool::new(2);
        drop(pool); // must not hang
    }

    /// Regression: a zero-thread pool would have an empty worker set and
    /// `scatter` would block forever on the result channel. The clamp
    /// must leave exactly one worker and the pool must actually serve.
    #[test]
    fn zero_thread_pool_clamps_to_one_and_serves() {
        let pool = ScatterPool::new(0);
        assert_eq!(pool.threads(), 1);
        let got = pool.scatter((0..16).map(|i| move || i * 2).collect::<Vec<_>>());
        assert_eq!(got, (0..16).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_pool_preserves_order_and_handles_panics() {
        let pool = ScatterPool::new(1);
        assert_eq!(pool.threads(), 1);
        let got = pool.scatter((0..8usize).map(|i| move || i + 100).collect::<Vec<_>>());
        assert_eq!(got, (100..108).collect::<Vec<_>>());
        // The lone worker must survive a panicking task.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.scatter(vec![|| panic!("boom")])
        }));
        assert!(r.is_err());
        assert_eq!(pool.scatter(vec![|| 7]), vec![7]);
    }

    #[test]
    fn with_default_size_zero_cap_is_well_defined() {
        let pool = ScatterPool::with_default_size(0);
        assert_eq!(pool.threads(), 1, "cap 0 clamps to one worker");
        assert_eq!(pool.scatter(vec![|| 1, || 2]), vec![1, 2]);
    }

    #[test]
    fn scatter_batch_matches_per_group_scatter() {
        let pool = ScatterPool::new(4);
        let groups: Vec<Vec<_>> = (0..5usize)
            .map(|g| {
                (0..g + 1)
                    .map(|i| {
                        move || {
                            std::thread::sleep(std::time::Duration::from_micros(
                                ((7 - i) % 3) as u64 * 40,
                            ));
                            g * 100 + i
                        }
                    })
                    .collect()
            })
            .collect();
        let got = pool.scatter_batch(groups);
        let want: Vec<Vec<usize>> =
            (0..5).map(|g| (0..g + 1).map(|i| g * 100 + i).collect()).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn scatter_batch_handles_empty_shapes() {
        let pool = ScatterPool::new(2);
        let got: Vec<Vec<u32>> = pool.scatter_batch(Vec::<Vec<fn() -> u32>>::new());
        assert!(got.is_empty());
        let got: Vec<Vec<u32>> =
            pool.scatter_batch(vec![Vec::<fn() -> u32>::new(), Vec::<fn() -> u32>::new()]);
        assert_eq!(got, vec![Vec::<u32>::new(), Vec::<u32>::new()]);
        let one: fn() -> u32 = || 1;
        let three: fn() -> u32 = || 3;
        let got = pool.scatter_batch(vec![vec![one], Vec::new(), vec![three]]);
        assert_eq!(got, vec![vec![1], vec![], vec![3]]);
    }

    #[test]
    #[should_panic(expected = "batch boom")]
    fn scatter_batch_propagates_task_panics() {
        let pool = ScatterPool::new(2);
        let ok: fn() -> u32 = || 1;
        let bad: fn() -> u32 = || panic!("batch boom");
        pool.scatter_batch(vec![vec![ok], vec![bad]]);
    }

    #[test]
    fn scatter_labeled_preserves_task_order() {
        let pool = ScatterPool::new(4);
        let tasks: Vec<(u64, _)> = (0..16usize)
            .map(|i| {
                (task_label(3, i as u32), move || {
                    std::thread::sleep(std::time::Duration::from_micros(
                        ((16 - i) % 4) as u64 * 40,
                    ));
                    i * 7
                })
            })
            .collect();
        assert_eq!(pool.scatter_labeled(tasks), (0..16).map(|i| i * 7).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "epoch 5, partition 2")]
    fn scatter_labeled_panic_names_epoch_and_partition() {
        let pool = ScatterPool::new(2);
        let ok: fn() -> u32 = || 1;
        let bad: fn() -> u32 = || panic!("shard blew up");
        pool.scatter_labeled(vec![(task_label(5, 0), ok), (task_label(5, 2), bad)]);
    }

    #[test]
    fn task_label_packs_epoch_and_partition() {
        assert_eq!(task_label(0, 0), 0);
        assert_eq!(task_label(1, 3), (1 << 32) | 3);
        assert_eq!(task_label(u32::MAX as u64, u32::MAX), u64::MAX);
    }

    #[test]
    fn scatter_recorded_emits_one_dispatch_event() {
        use dwr_obs::{ObsConfig, ObsRecorder};
        let pool = ScatterPool::new(2);
        let rec = ObsRecorder::new(ObsConfig::single_site(4));
        let got = pool.scatter_recorded((0..4).map(|i| move || i).collect::<Vec<_>>(), &rec, 9, 0);
        assert_eq!(got, vec![0, 1, 2, 3]);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("scatter.batches"), Some(1));
        assert_eq!(snap.counter("scatter.tasks"), Some(4));
    }
}
