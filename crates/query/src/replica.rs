//! Replication: replica groups for partitions, primary-backup user state.
//!
//! "A classical way of coping with faults is replication (...) By
//! replicating data across different query processors, we increase the
//! probability that some query processor is available" (Section 5). A
//! [`ReplicaGroup`] dispatches queries over the live replicas of one
//! partition; [`PrimaryBackupStore`] implements the primary-backup
//! protocol \[42\] for the per-user personalization state whose consistency
//! the paper worries about ("it is necessary to guarantee that the state
//! is consistent in every update, and that the user state is never lost").

use std::collections::HashMap;

/// The replicas of one partition with failover dispatch.
#[derive(Debug, Clone)]
pub struct ReplicaGroup {
    alive: Vec<bool>,
    /// Round-robin cursor.
    next: usize,
    /// Queries dispatched to each replica.
    dispatched: Vec<u64>,
}

impl ReplicaGroup {
    /// Create a group of `r` live replicas.
    pub fn new(r: usize) -> Self {
        assert!(r > 0);
        ReplicaGroup { alive: vec![true; r], next: 0, dispatched: vec![0; r] }
    }

    /// Number of replicas (alive or not).
    pub fn size(&self) -> usize {
        self.alive.len()
    }

    /// Number of live replicas.
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Mark a replica down/up. Returns `false` (and changes nothing) when
    /// `replica` is out of range, so a fault schedule sized for a larger
    /// group cannot crash the engine.
    pub fn set_alive(&mut self, replica: usize, up: bool) -> bool {
        match self.alive.get_mut(replica) {
            Some(state) => {
                *state = up;
                true
            }
            None => false,
        }
    }

    /// Whether any replica can serve.
    pub fn available(&self) -> bool {
        self.alive_count() > 0
    }

    /// Dispatch one query: returns the chosen live replica (round-robin
    /// over live members), or `None` when the whole group is down.
    pub fn dispatch(&mut self) -> Option<usize> {
        let n = self.alive.len();
        for probe in 0..n {
            let candidate = (self.next + probe) % n;
            if self.alive[candidate] {
                self.next = (candidate + 1) % n;
                self.dispatched[candidate] += 1;
                return Some(candidate);
            }
        }
        None
    }

    /// Dispatch one query like [`Self::dispatch`], but never to `avoid`
    /// — the hedged-retry path, where the first replica failed mid-query
    /// and retrying on it would just fail again.
    pub fn dispatch_excluding(&mut self, avoid: usize) -> Option<usize> {
        let n = self.alive.len();
        for probe in 0..n {
            let candidate = (self.next + probe) % n;
            if candidate != avoid && self.alive[candidate] {
                self.next = (candidate + 1) % n;
                self.dispatched[candidate] += 1;
                return Some(candidate);
            }
        }
        None
    }

    /// The replica [`Self::dispatch_excluding`] *would* pick, without
    /// advancing the cursor or charging a dispatch. The hedging policies
    /// need the candidate's identity first — its drawn service cost decides
    /// whether the hedge fits the deadline — and only then commit the
    /// dispatch, so peek and dispatch must agree on the choice.
    pub fn peek_excluding(&self, avoid: usize) -> Option<usize> {
        let n = self.alive.len();
        (0..n).map(|probe| (self.next + probe) % n).find(|&c| c != avoid && self.alive[c])
    }

    /// Queries dispatched per replica.
    pub fn dispatched(&self) -> &[u64] {
        &self.dispatched
    }
}

/// A write acknowledged by the primary-backup store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ack {
    /// Monotonic sequence number of the acknowledged write.
    pub seq: u64,
}

/// Primary-backup replicated key-value store for user profiles.
///
/// Writes go to the primary, are propagated *synchronously* to all live
/// backups, and only then acknowledged — so an acknowledged write survives
/// any single failure. When the primary crashes, the lowest-id live backup
/// is promoted.
#[derive(Debug)]
pub struct PrimaryBackupStore {
    replicas: Vec<Option<HashMap<u64, (u64, u64)>>>, // key -> (value, seq)
    primary: usize,
    seq: u64,
}

impl PrimaryBackupStore {
    /// Create a store with one primary and `backups` backups.
    pub fn new(backups: usize) -> Self {
        PrimaryBackupStore {
            replicas: (0..=backups).map(|_| Some(HashMap::new())).collect(),
            primary: 0,
            seq: 0,
        }
    }

    /// Index of the current primary.
    pub fn primary(&self) -> usize {
        self.primary
    }

    /// Live replica count.
    pub fn alive_count(&self) -> usize {
        self.replicas.iter().filter(|r| r.is_some()).count()
    }

    /// Write `key = value` for a user profile; returns the ack, or `None`
    /// when no replica is alive.
    pub fn put(&mut self, key: u64, value: u64) -> Option<Ack> {
        if self.replicas[self.primary].is_none() {
            self.fail_over()?;
        }
        self.seq += 1;
        let seq = self.seq;
        // Synchronous propagation to every live replica (primary first).
        for r in self.replicas.iter_mut().flatten() {
            r.insert(key, (value, seq));
        }
        Some(Ack { seq })
    }

    /// Read the latest value of `key`, from the primary.
    pub fn get(&mut self, key: u64) -> Option<u64> {
        if self.replicas[self.primary].is_none() {
            self.fail_over()?;
        }
        self.replicas[self.primary].as_ref().and_then(|r| r.get(&key)).map(|&(v, _)| v)
    }

    /// Crash a replica (primary or backup). State on it is lost. Returns
    /// `false` (and changes nothing) when `replica` is out of range.
    pub fn crash(&mut self, replica: usize) -> bool {
        match self.replicas.get_mut(replica) {
            Some(slot) => {
                *slot = None;
                if replica == self.primary {
                    let _ = self.fail_over();
                }
                true
            }
            None => false,
        }
    }

    /// Recover a crashed replica: it re-joins empty and is brought up to
    /// date by state transfer from the primary. A no-op on an already-live
    /// replica; returns `false` only when `replica` is out of range.
    pub fn recover(&mut self, replica: usize) -> bool {
        match self.replicas.get(replica) {
            Some(Some(_)) => true,
            Some(None) => {
                // After a total outage the primary slot is still `None`
                // (the crash-time fail-over found nobody to promote), so
                // the "snapshot" is necessarily empty — the acknowledged
                // state is gone either way. What must not persist is a
                // primary pointing at a dead slot: re-point it eagerly so
                // the recovered replica serves immediately instead of
                // relying on the next put/get to lazily fail over.
                let snapshot = self.replicas[self.primary].clone().unwrap_or_default();
                self.replicas[replica] = Some(snapshot);
                if self.replicas[self.primary].is_none() {
                    let _ = self.fail_over();
                }
                true
            }
            None => false,
        }
    }

    fn fail_over(&mut self) -> Option<()> {
        let new_primary = self.replicas.iter().position(Option::is_some)?;
        self.primary = new_primary;
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_balances() {
        let mut g = ReplicaGroup::new(3);
        for _ in 0..9 {
            g.dispatch();
        }
        assert_eq!(g.dispatched(), &[3, 3, 3]);
    }

    #[test]
    fn dispatch_skips_dead_replicas() {
        let mut g = ReplicaGroup::new(3);
        g.set_alive(1, false);
        let mut served = [0u32; 3];
        for _ in 0..8 {
            served[g.dispatch().expect("someone alive")] += 1;
        }
        assert_eq!(served[1], 0);
        assert_eq!(served[0] + served[2], 8);
    }

    #[test]
    fn group_down_returns_none() {
        let mut g = ReplicaGroup::new(2);
        g.set_alive(0, false);
        g.set_alive(1, false);
        assert!(!g.available());
        assert_eq!(g.dispatch(), None);
        // Recovery restores service.
        g.set_alive(1, true);
        assert_eq!(g.dispatch(), Some(1));
    }

    #[test]
    fn set_alive_out_of_range_is_ignored() {
        let mut g = ReplicaGroup::new(2);
        assert!(!g.set_alive(5, false), "out-of-range index reports failure");
        assert_eq!(g.alive_count(), 2, "state untouched");
        assert!(g.set_alive(1, false));
        assert_eq!(g.alive_count(), 1);
    }

    #[test]
    fn dispatch_excluding_avoids_the_failed_replica() {
        let mut g = ReplicaGroup::new(3);
        for _ in 0..30 {
            let r = g.dispatch_excluding(1).expect("others alive");
            assert_ne!(r, 1);
        }
        assert_eq!(g.dispatched()[1], 0);
        // With only the excluded replica alive there is no hedge target.
        g.set_alive(0, false);
        g.set_alive(2, false);
        assert_eq!(g.dispatch_excluding(1), None);
        assert_eq!(g.dispatch(), Some(1), "plain dispatch still reaches it");
    }

    #[test]
    fn crash_and_recover_out_of_range_are_ignored() {
        let mut s = PrimaryBackupStore::new(1);
        s.put(1, 10);
        assert!(!s.crash(9));
        assert!(!s.recover(9));
        assert_eq!(s.get(1), Some(10), "state untouched by bad indices");
        assert!(s.crash(0));
        assert!(s.recover(0));
        assert!(s.recover(0), "recovering a live replica is a no-op");
        assert_eq!(s.get(1), Some(10));
    }

    #[test]
    fn acknowledged_writes_survive_primary_crash() {
        let mut s = PrimaryBackupStore::new(2);
        let ack = s.put(7, 100).expect("write acked");
        assert_eq!(ack.seq, 1);
        s.crash(0);
        assert_eq!(s.get(7), Some(100), "state survives primary loss");
        assert_ne!(s.primary(), 0);
    }

    #[test]
    fn writes_continue_after_failover() {
        let mut s = PrimaryBackupStore::new(2);
        s.put(1, 10);
        s.crash(0);
        s.put(1, 20).expect("new primary accepts writes");
        assert_eq!(s.get(1), Some(20));
    }

    #[test]
    fn all_replicas_down_rejects_writes() {
        let mut s = PrimaryBackupStore::new(1);
        s.crash(0);
        s.crash(1);
        assert_eq!(s.put(1, 1), None);
        assert_eq!(s.get(1), None);
    }

    #[test]
    fn recovery_state_transfer() {
        let mut s = PrimaryBackupStore::new(1);
        s.put(5, 55);
        s.crash(1);
        s.put(6, 66); // backup missed this
        s.recover(1);
        s.crash(0); // now backup must have everything
        assert_eq!(s.get(5), Some(55));
        assert_eq!(s.get(6), Some(66));
    }

    #[test]
    fn recover_after_total_outage_repoints_the_primary() {
        let mut s = PrimaryBackupStore::new(2);
        s.put(1, 10);
        s.crash(0);
        s.crash(1);
        s.crash(2); // total outage: fail_over found nobody, primary stale
        assert_eq!(s.put(1, 11), None);
        assert!(s.recover(0));
        // The recovered replica must be the primary *now*, not after the
        // next put/get happens to trigger a lazy fail-over.
        assert_eq!(s.primary(), 0, "recovery re-points the primary eagerly");
        // Pre-crash state was lost with the last replica; service resumes.
        assert_eq!(s.get(1), None);
        let ack = s.put(2, 20).expect("recovered replica accepts writes");
        assert!(ack.seq > 0);
        assert_eq!(s.get(2), Some(20));
    }

    #[test]
    fn peek_excluding_matches_dispatch_excluding() {
        let mut g = ReplicaGroup::new(3);
        g.set_alive(1, false);
        for avoid in [0usize, 1, 2] {
            for _ in 0..7 {
                let peeked = g.peek_excluding(avoid);
                assert_eq!(g.dispatch_excluding(avoid), peeked);
                g.dispatch(); // shuffle the cursor between probes
            }
        }
        // Peek charges nothing: a fresh group shows zero dispatches.
        let g = ReplicaGroup::new(2);
        assert_eq!(g.peek_excluding(0), Some(1));
        assert_eq!(g.dispatched(), &[0, 0]);
    }

    #[test]
    fn sequence_numbers_monotone() {
        let mut s = PrimaryBackupStore::new(1);
        let a = s.put(1, 1).unwrap();
        let b = s.put(1, 2).unwrap();
        assert!(b.seq > a.seq);
    }
}
