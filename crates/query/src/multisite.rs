//! The live multi-site engine: outage-driven failover over the WAN.
//!
//! Section 5's site tier, served end to end instead of analytically
//! (compare [`crate::site::simulate_multisite`], the hour-bucketed
//! queueing model over the *same* outage traces): a
//! [`MultiSiteEngine`] owns one (possibly fault-injected)
//! [`DistributedEngine`] per site plus a WAN [`Topology`], and each
//! site's up/down state comes from a materialized
//! [`dwr_avail::site::Site`] timeline ("we say that a site is
//! unavailable if it is not possible to reach any of the servers of this
//! site"). Queries are routed to the nearest *live* site — the paper's
//! DNS-redirection picture — and the engine keeps answering, possibly
//! degraded, through whole-site outages:
//!
//! * **Failover.** When an attempt is lost — the chosen site's backend
//!   returns [`Served::Failed`], the site dies mid-flight
//!   ([`Site::fails_during`] over the attempt's WAN + service window), or
//!   the response would land after the per-query deadline — the query
//!   fails over to the next-nearest live site. Every lost attempt
//!   charges a doubling backoff against the deadline, and the number of
//!   dispatch attempts is capped, so a query can never retry forever.
//! * **Load shedding.** Each site admits at most
//!   `shed_threshold × capacity_qps` queries per utilization window;
//!   overflow spills to the next-nearest live site below threshold, and
//!   when every live site is saturated the query is *explicitly* shed as
//!   [`Served::Shed`] — never silently dropped.
//! * **Accounting.** Every outcome lands in exactly one
//!   [`MultiSiteStats`] bucket (served-local, served-remote, shed by
//!   overload, shed by deadline, failed), with WAN hops, failover
//!   retries, inner hedges, and the latency added by the WAN on top.
//!
//! `Served::Failed` is reserved for the one case the paper allows it:
//! **no site was live at dispatch time**. Any schedule that leaves at
//! least one site up yields only served/degraded/shed outcomes — the
//! property `tests/site_chaos.rs` pins.
//!
//! Everything is deterministic given the traces and the query stream,
//! and all serving methods take `&self` (atomic counters, per-site
//! mutexes), so threads can share one engine behind an `Arc` — the
//! parallel-equivalence guarantee of the single-site engine lifts
//! unchanged to the site tier.

use crate::broker::GlobalHit;
use crate::cache::ResultCache;
use crate::engine::{query_key, DistributedEngine, Served};
use dwr_avail::site::Site;
use dwr_obs::{Event, NoopRecorder, Recorder, SiteOutcome};
use dwr_sim::net::{SiteId, Topology};
use dwr_sim::{SimTime, MILLISECOND, MINUTE, SECOND};
use dwr_text::TermId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Lock a mutex, recovering the guard when a previous holder panicked
/// (admission-window state is valid at every instruction boundary).
fn lock_recovering<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Site-tier routing and robustness knobs.
#[derive(Debug, Clone, Copy)]
pub struct MultiSiteConfig {
    /// Per-query latency budget: WAN transfer, backoff, and backend
    /// service must all fit inside it. Attempts that cannot are not made
    /// (or, mid-flight, are written off and failed over).
    pub deadline: SimTime,
    /// Maximum dispatch attempts per query (first try + failovers).
    pub max_attempts: usize,
    /// Backoff charged against the deadline for each lost attempt,
    /// doubling per retry (timeout detection + re-dispatch cost).
    pub backoff: SimTime,
    /// Utilization above which a site stops admitting queries. Overflow
    /// spills to the next-nearest live site; `f64::INFINITY` disables
    /// admission control entirely.
    pub shed_threshold: f64,
    /// Window over which per-site utilization is measured.
    pub util_window: SimTime,
    /// WAN message size of a query request, bytes.
    pub request_bytes: u64,
    /// WAN message size of a result page, bytes.
    pub response_bytes: u64,
}

impl Default for MultiSiteConfig {
    fn default() -> Self {
        MultiSiteConfig {
            deadline: 2 * SECOND,
            max_attempts: 3,
            backoff: 50 * MILLISECOND,
            shed_threshold: f64::INFINITY,
            util_window: MINUTE,
            request_bytes: 200,
            response_bytes: 4_000,
        }
    }
}

/// One site handed to [`MultiSiteEngine::new`].
pub struct SiteEngineSpec<C: ResultCache, R: Recorder = NoopRecorder> {
    /// The region whose queries are local to this site.
    pub region: u16,
    /// Serving capacity, queries/second — the denominator of measured
    /// utilization for admission control.
    pub capacity_qps: f64,
    /// The site's serving stack (optionally fault-injected itself; its
    /// clock is driven by [`MultiSiteEngine::advance_to`]). For coherent
    /// tier-wide accounting, every site's engine must carry the *same*
    /// recorder instance (share an `Arc<ObsRecorder>`).
    pub engine: DistributedEngine<C, R>,
    /// The site's whole-site outage timeline.
    pub outages: Site,
}

/// Admission-control state: queries admitted in the current window.
#[derive(Debug, Default)]
struct UtilWindow {
    bucket: u64,
    admitted: u64,
}

struct SiteNode<C: ResultCache, R: Recorder> {
    region: u16,
    capacity_qps: f64,
    engine: DistributedEngine<C, R>,
    outages: Site,
    window: Mutex<UtilWindow>,
}

impl<C: ResultCache, R: Recorder> SiteNode<C, R> {
    /// The site's admission quota per utilization window.
    fn quota(&self, cfg: &MultiSiteConfig) -> f64 {
        cfg.shed_threshold * self.capacity_qps * (cfg.util_window as f64 / SECOND as f64)
    }

    /// Admit one query at `now`, or refuse because the window's quota is
    /// spent. Infinite thresholds always admit (and keep no state).
    fn admit(&self, now: SimTime, cfg: &MultiSiteConfig) -> bool {
        if !cfg.shed_threshold.is_finite() {
            return true;
        }
        let bucket = now / cfg.util_window.max(1);
        let mut w = lock_recovering(&self.window);
        if w.bucket != bucket {
            w.bucket = bucket;
            w.admitted = 0;
        }
        if (w.admitted as f64) < self.quota(cfg) {
            w.admitted += 1;
            true
        } else {
            false
        }
    }

    /// Measured utilization of the window containing `now` (admitted
    /// arrival rate over capacity).
    fn utilization(&self, now: SimTime, cfg: &MultiSiteConfig) -> f64 {
        let bucket = now / cfg.util_window.max(1);
        let w = lock_recovering(&self.window);
        if w.bucket != bucket {
            return 0.0;
        }
        let window_s = cfg.util_window as f64 / SECOND as f64;
        w.admitted as f64 / (self.capacity_qps * window_s)
    }
}

/// Site-tier outcome counters. Every query lands in exactly one of
/// `served_local`, `served_remote`, `shed_overload`, `shed_deadline`,
/// `failed`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MultiSiteStats {
    /// Served by the query's nearest (anchor) site.
    pub served_local: u64,
    /// Served by a remote site after geographic failover or spill.
    pub served_remote: u64,
    /// Of the served queries, how many came back degraded (missing
    /// partitions at the serving site).
    pub degraded: u64,
    /// Of the served queries, how many were answered on a routed subset
    /// of the serving site's partitions ([`Served::Routed`]). Routing is
    /// deliberate — these are *not* counted as degraded.
    pub routed: u64,
    /// Shed by admission control: every live site was over its threshold.
    pub shed_overload: u64,
    /// Shed by the WAN budget: deadline or attempt cap exhausted while
    /// live sites remained.
    pub shed_deadline: u64,
    /// No site was live at dispatch time.
    pub failed: u64,
    /// Attempts lost mid-flight (site death, late response, or a dead
    /// backend) and retried on another site.
    pub failovers: u64,
    /// Hedged replica retries inside the per-site engines, summed.
    pub hedged: u64,
    /// WAN hops taken by served queries (0 for served-local).
    pub wan_hops: u64,
    /// Simulated latency added on top of backend service for served
    /// queries: WAN transfer plus failover backoff, µs.
    pub added_latency_us: u64,
}

impl MultiSiteStats {
    /// Queries that reached a result page.
    pub fn answered(&self) -> u64 {
        self.served_local + self.served_remote
    }

    /// Queries explicitly refused (overload + deadline).
    pub fn shed(&self) -> u64 {
        self.shed_overload + self.shed_deadline
    }

    /// Every query accounted for.
    pub fn total(&self) -> u64 {
        self.answered() + self.shed() + self.failed
    }
}

#[derive(Debug, Default)]
struct Counters {
    served_local: AtomicU64,
    served_remote: AtomicU64,
    degraded: AtomicU64,
    routed: AtomicU64,
    shed_overload: AtomicU64,
    shed_deadline: AtomicU64,
    failed: AtomicU64,
    failovers: AtomicU64,
    wan_hops: AtomicU64,
    added_latency_us: AtomicU64,
}

/// Full outcome of one site-tier query.
#[derive(Debug, Clone)]
pub struct MultiSiteResponse {
    /// Merged top-k from the serving site (empty for shed/failed).
    pub hits: Vec<GlobalHit>,
    /// How the query was answered; [`Served::Shed`] and
    /// [`Served::Failed`] are the two no-result outcomes.
    pub served: Served,
    /// The serving site, when one answered.
    pub site: Option<usize>,
    /// Remote hops this query took (attempted, served or not).
    pub wan_hops: u32,
    /// End-to-end simulated latency — WAN, backoff spent on lost
    /// attempts, and backend service — when a site answered.
    pub latency: Option<SimTime>,
}

/// The site tier: one engine per site, outage-trace liveness, WAN
/// failover with budgets, and load shedding. See the module docs.
pub struct MultiSiteEngine<C: ResultCache, R: Recorder = NoopRecorder> {
    sites: Vec<SiteNode<C, R>>,
    topo: Topology,
    cfg: MultiSiteConfig,
    counters: Counters,
    clock: AtomicU64,
    /// The tier's own observability sink — a clone of the first site's
    /// recorder (every site must share one instance; see
    /// [`SiteEngineSpec::engine`]).
    recorder: R,
}

impl<C: ResultCache, R: Recorder + Clone> MultiSiteEngine<C, R> {
    /// Assemble the tier from per-site stacks, a WAN topology, and the
    /// routing/robustness knobs.
    pub fn new(sites: Vec<SiteEngineSpec<C, R>>, topo: Topology, cfg: MultiSiteConfig) -> Self {
        assert!(!sites.is_empty());
        assert_eq!(topo.sites(), sites.len(), "one topology node per site");
        assert!(cfg.deadline > 0 && cfg.max_attempts >= 1);
        assert!(cfg.shed_threshold > 0.0 && cfg.util_window > 0);
        let recorder = sites[0].engine.recorder().clone();
        let sites = sites
            .into_iter()
            .map(|s| SiteNode {
                region: s.region,
                capacity_qps: s.capacity_qps,
                engine: s.engine,
                outages: s.outages,
                window: Mutex::new(UtilWindow::default()),
            })
            .collect();
        MultiSiteEngine {
            sites,
            topo,
            cfg,
            counters: Counters::default(),
            clock: AtomicU64::new(0),
            recorder,
        }
    }

    /// Number of sites.
    pub fn num_sites(&self) -> usize {
        self.sites.len()
    }

    /// The engine's simulated clock.
    pub fn now(&self) -> SimTime {
        self.clock.load(Ordering::Relaxed)
    }

    /// Advance the simulated clock to `t`, propagating it to every
    /// site's engine (which applies any inner fault schedule). Callable
    /// from any thread while others serve.
    pub fn advance_to(&self, t: SimTime) {
        self.clock.store(t, Ordering::Relaxed);
        for node in &self.sites {
            node.engine.advance_to(t);
        }
    }

    /// The per-site serving stack, for inspection.
    pub fn site_engine(&self, site: usize) -> &DistributedEngine<C, R> {
        &self.sites[site].engine
    }

    /// The tier's observability recorder.
    pub fn recorder(&self) -> &R {
        &self.recorder
    }

    /// Sites whose outage trace says they are up at `t`.
    pub fn live_sites(&self, t: SimTime) -> Vec<usize> {
        (0..self.sites.len()).filter(|&s| self.sites[s].outages.is_up(t)).collect()
    }

    /// Measured utilization of `site` in the window containing `now`.
    pub fn utilization(&self, site: usize) -> f64 {
        self.sites[site].utilization(self.now(), &self.cfg)
    }

    /// The site anchoring `region`'s traffic (first site in that region,
    /// else site 0 — the same convention as the analytic model).
    fn anchor(&self, region: u16) -> usize {
        self.sites.iter().position(|n| n.region == region).unwrap_or(0)
    }

    /// Serve one query arriving from `region` at the engine's current
    /// simulated instant. See the module docs for the routing discipline.
    pub fn query(&self, region: u16, terms: &[TermId], k: usize) -> MultiSiteResponse {
        let now = self.now();
        let anchor = self.anchor(region);
        let anchor_id = SiteId(anchor as u32);
        let order = self.topo.order_by_latency(anchor_id);
        // The query key is only needed for event correlation; skip the
        // hash when nobody is listening.
        let qid = if self.recorder.is_live() { query_key(terms) } else { 0 };

        let mut spent: SimTime = 0; // WAN + backoff charged so far
        let mut hops: u32 = 0;
        let mut attempts = 0usize;
        let mut backoff = self.cfg.backoff.max(1);
        let mut any_live = false;
        let mut refused_overload = false;

        for sid in order {
            let s = sid.0 as usize;
            let node = &self.sites[s];
            if !node.outages.is_up(now) {
                continue; // dead at dispatch time: never a candidate
            }
            any_live = true;
            if attempts >= self.cfg.max_attempts {
                break; // retry budget exhausted
            }
            let remote = s != anchor;
            let wan = if remote {
                self.topo.rtt(anchor_id, sid, self.cfg.request_bytes, self.cfg.response_bytes)
            } else {
                0
            };
            if spent.saturating_add(wan) >= self.cfg.deadline {
                break; // even an instant answer from here would be late
            }
            if !node.admit(now, &self.cfg) {
                refused_overload = true;
                continue; // overflow spills to the next-nearest live site
            }
            attempts += 1;
            self.recorder.record(Event::SiteAttempt { qid, now, site: s as u32, remote });
            if remote {
                hops += 1;
                self.recorder.record(Event::WanHop {
                    qid,
                    now,
                    from: anchor as u32,
                    to: s as u32,
                    rtt_us: wan,
                });
            }
            let r = node.engine.query_full(terms, k);
            let svc = r.latency.unwrap_or(0);
            let total = wan + svc;
            let lost = match r.served {
                // The site is reachable but its backend had nothing —
                // a dispatch failure at the site tier, so fail over.
                Served::Failed => true,
                _ => {
                    // Late responses are written off against the
                    // deadline; otherwise the attempt survives only if
                    // the site does not die inside its WAN + service
                    // window.
                    spent + total > self.cfg.deadline
                        || node.outages.fails_during(now, now + total.max(1))
                }
            };
            if lost {
                self.counters.failovers.fetch_add(1, Ordering::Relaxed);
                self.recorder.record(Event::SiteFailover {
                    qid,
                    now,
                    site: s as u32,
                    backoff_us: backoff,
                });
                spent = spent.saturating_add(wan).saturating_add(backoff);
                backoff = backoff.saturating_mul(2);
                continue;
            }
            // Served. Account and return.
            let bucket =
                if remote { &self.counters.served_remote } else { &self.counters.served_local };
            bucket.fetch_add(1, Ordering::Relaxed);
            if matches!(
                r.served,
                Served::Degraded { .. } | Served::StaleFromCache | Served::Partial { .. }
            ) {
                self.counters.degraded.fetch_add(1, Ordering::Relaxed);
            }
            if matches!(r.served, Served::Routed { .. }) {
                self.counters.routed.fetch_add(1, Ordering::Relaxed);
            }
            self.counters.wan_hops.fetch_add(u64::from(hops), Ordering::Relaxed);
            self.counters.added_latency_us.fetch_add(spent + wan, Ordering::Relaxed);
            self.recorder.record(Event::SiteOutcome {
                qid,
                now,
                outcome: if remote { SiteOutcome::ServedRemote } else { SiteOutcome::ServedLocal },
                site: Some(s as u32),
                hops,
                degraded: matches!(
                    r.served,
                    Served::Degraded { .. } | Served::StaleFromCache | Served::Partial { .. }
                ),
                added_latency_us: spent + wan,
                latency_us: Some(spent + total),
            });
            return MultiSiteResponse {
                hits: r.hits,
                served: r.served,
                site: Some(s),
                wan_hops: hops,
                latency: Some(spent + total),
            };
        }

        if any_live {
            // Live capacity existed but policy refused the query: an
            // explicit shed, never a silent drop. Pure admission refusals
            // are overload; anything that consumed budget is deadline.
            let overload = refused_overload && attempts == 0 && spent == 0;
            let bucket =
                if overload { &self.counters.shed_overload } else { &self.counters.shed_deadline };
            bucket.fetch_add(1, Ordering::Relaxed);
            self.recorder.record(Event::SiteOutcome {
                qid,
                now,
                outcome: if overload {
                    SiteOutcome::ShedOverload
                } else {
                    SiteOutcome::ShedDeadline
                },
                site: None,
                hops,
                degraded: false,
                added_latency_us: 0,
                latency_us: None,
            });
            return MultiSiteResponse {
                hits: Vec::new(),
                served: Served::Shed,
                site: None,
                wan_hops: hops,
                latency: None,
            };
        }
        self.counters.failed.fetch_add(1, Ordering::Relaxed);
        self.recorder.record(Event::SiteOutcome {
            qid,
            now,
            outcome: SiteOutcome::Failed,
            site: None,
            hops,
            degraded: false,
            added_latency_us: 0,
            latency_us: None,
        });
        MultiSiteResponse {
            hits: Vec::new(),
            served: Served::Failed,
            site: None,
            wan_hops: hops,
            latency: None,
        }
    }

    /// Counters so far (inner hedges summed across the site engines).
    pub fn stats(&self) -> MultiSiteStats {
        MultiSiteStats {
            served_local: self.counters.served_local.load(Ordering::Relaxed),
            served_remote: self.counters.served_remote.load(Ordering::Relaxed),
            degraded: self.counters.degraded.load(Ordering::Relaxed),
            routed: self.counters.routed.load(Ordering::Relaxed),
            shed_overload: self.counters.shed_overload.load(Ordering::Relaxed),
            shed_deadline: self.counters.shed_deadline.load(Ordering::Relaxed),
            failed: self.counters.failed.load(Ordering::Relaxed),
            failovers: self.counters.failovers.load(Ordering::Relaxed),
            hedged: self.sites.iter().map(|n| n.engine.stats().hedged).sum(),
            wan_hops: self.counters.wan_hops.load(Ordering::Relaxed),
            added_latency_us: self.counters.added_latency_us.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::LruCache;
    use dwr_avail::failure::DownInterval;
    use dwr_partition::doc::{DocPartitioner, RoundRobinPartitioner};
    use dwr_partition::parted::{Corpus, PartitionedIndex};
    use dwr_sim::{DAY, HOUR};

    fn index() -> PartitionedIndex {
        let corpus: Corpus =
            (0..24u32).map(|d| vec![(TermId(d % 5), 2), (TermId(50 + d % 3), 1)]).collect();
        let a = RoundRobinPartitioner.assign(&corpus, 4);
        PartitionedIndex::build(&corpus, &a, 4)
    }

    fn iv(start: SimTime, end: SimTime) -> DownInterval {
        DownInterval { start, end }
    }

    /// Three sites on a geo ring, all up unless a trace says otherwise.
    fn engine_with_traces(traces: Vec<Site>, cfg: MultiSiteConfig) -> MultiSiteEngine<LruCache> {
        let pi = index();
        let sites = traces
            .into_iter()
            .enumerate()
            .map(|(s, outages)| SiteEngineSpec {
                region: s as u16,
                capacity_qps: 100.0,
                engine: DistributedEngine::new(&pi, LruCache::new(16), 1),
                outages,
            })
            .collect();
        MultiSiteEngine::new(sites, Topology::geo_ring(3), cfg)
    }

    fn all_up() -> Vec<Site> {
        (0..3).map(|_| Site::always_up(DAY)).collect()
    }

    #[test]
    fn local_site_serves_local_queries() {
        let e = engine_with_traces(all_up(), MultiSiteConfig::default());
        let r = e.query(1, &[TermId(1)], 10);
        assert_eq!(r.served, Served::Full);
        assert_eq!(r.site, Some(1));
        assert_eq!(r.wan_hops, 0);
        let s = e.stats();
        assert_eq!((s.served_local, s.served_remote, s.wan_hops), (1, 0, 0));
        assert_eq!(s.added_latency_us, 0, "no WAN cost for local service");
    }

    #[test]
    fn routed_service_is_counted_but_not_degraded() {
        use crate::route::ShardRouter;
        use std::sync::Arc;
        let pi = index();
        let sites = (0..3)
            .map(|s| SiteEngineSpec {
                region: s as u16,
                capacity_qps: 100.0,
                engine: DistributedEngine::new(&pi, LruCache::new(16), 1)
                    .with_router(Arc::new(ShardRouter::cori(2))),
                outages: Site::always_up(DAY),
            })
            .collect();
        let e = MultiSiteEngine::new(sites, Topology::geo_ring(3), MultiSiteConfig::default());
        // k=1 is satisfied inside the top-2 tranche, so the answer is
        // honestly Routed, deliberate — not a degradation.
        let r = e.query(1, &[TermId(1)], 1);
        assert_eq!(r.served, Served::Routed { partitions_contacted: 2 });
        let s = e.stats();
        assert_eq!((s.routed, s.degraded, s.failed), (1, 0, 0));
        assert_eq!(s.total(), 1);
    }

    #[test]
    fn dead_local_site_fails_over_to_nearest_live() {
        let mut traces = all_up();
        traces[0] = Site::from_down_intervals(vec![iv(0, DAY)], DAY);
        let e = engine_with_traces(traces, MultiSiteConfig::default());
        let r = e.query(0, &[TermId(1)], 10);
        assert_eq!(r.served, Served::Full);
        // Ring neighbours of site 0 are 1 and 2, tie broken by id.
        assert_eq!(r.site, Some(1));
        assert_eq!(r.wan_hops, 1);
        let wan = Topology::geo_ring(3).rtt(SiteId(0), SiteId(1), 200, 4_000);
        assert!(r.latency.unwrap() > wan, "latency includes the WAN round trip");
        let s = e.stats();
        assert_eq!((s.served_local, s.served_remote), (0, 1));
        assert_eq!(s.wan_hops, 1);
        assert!(s.added_latency_us >= wan);
    }

    #[test]
    fn all_sites_down_is_the_only_failed_outcome() {
        let traces = (0..3).map(|_| Site::from_down_intervals(vec![iv(0, DAY)], DAY)).collect();
        let e = engine_with_traces(traces, MultiSiteConfig::default());
        let r = e.query(0, &[TermId(1)], 10);
        assert_eq!(r.served, Served::Failed);
        assert!(r.hits.is_empty());
        assert_eq!(e.stats().failed, 1);
        assert_eq!(e.stats().total(), 1);
    }

    #[test]
    fn mid_query_site_death_is_retried_with_backoff() {
        // Site 0 is up at dispatch (t=0) but dies 1 µs in — inside any
        // real service window — so the attempt is lost and the query
        // fails over to site 1, charged one backoff.
        let mut traces = all_up();
        traces[0] = Site::from_down_intervals(vec![iv(1, HOUR)], DAY);
        let cfg = MultiSiteConfig::default();
        let e = engine_with_traces(traces, cfg);
        let r = e.query(0, &[TermId(1)], 10);
        assert_eq!(r.served, Served::Full);
        assert_eq!(r.site, Some(1));
        let s = e.stats();
        assert_eq!(s.failovers, 1, "the lost local attempt was retried");
        assert_eq!(s.served_remote, 1);
        assert!(r.latency.unwrap() >= cfg.backoff, "backoff is charged into the observed latency");
        // The lost attempt still consumed the local site's backend.
        assert_eq!(e.site_engine(0).stats().full, 1);
    }

    #[test]
    fn deadline_too_small_for_wan_sheds_instead_of_failing() {
        // Local site down all day; remote sites live but unreachable
        // within a 1 µs deadline. Live capacity exists → Shed, not
        // Failed.
        let mut traces = all_up();
        traces[0] = Site::from_down_intervals(vec![iv(0, DAY)], DAY);
        let cfg = MultiSiteConfig { deadline: 1, ..MultiSiteConfig::default() };
        let e = engine_with_traces(traces, cfg);
        let r = e.query(0, &[TermId(1)], 10);
        assert_eq!(r.served, Served::Shed);
        let s = e.stats();
        assert_eq!(s.shed_deadline, 1);
        assert_eq!(s.failed, 0);
    }

    #[test]
    fn retry_cap_bounds_the_failover_cascade() {
        // Every site dies right after dispatch: each attempt is lost
        // mid-flight. The cascade must stop at max_attempts and land in
        // shed_deadline.
        let traces = (0..3).map(|_| Site::from_down_intervals(vec![iv(1, DAY)], DAY)).collect();
        let cfg = MultiSiteConfig { max_attempts: 2, ..MultiSiteConfig::default() };
        let e = engine_with_traces(traces, cfg);
        let r = e.query(0, &[TermId(1)], 10);
        assert_eq!(r.served, Served::Shed);
        let s = e.stats();
        assert_eq!(s.failovers, 2, "exactly max_attempts dispatches were lost");
        assert_eq!(s.shed_deadline, 1);
    }

    #[test]
    fn overload_spills_then_sheds_explicitly() {
        // Quota: 0.5 × 2 qps × 1 s window = 1 query per site per window.
        let pi = index();
        let sites = (0..2)
            .map(|s| SiteEngineSpec {
                region: s as u16,
                capacity_qps: 2.0,
                engine: DistributedEngine::new(&pi, LruCache::new(16), 1),
                outages: Site::always_up(DAY),
            })
            .collect();
        let cfg = MultiSiteConfig {
            shed_threshold: 0.5,
            util_window: SECOND,
            ..MultiSiteConfig::default()
        };
        let e = MultiSiteEngine::new(sites, Topology::geo_ring(2), cfg);
        // Three distinct queries at the same instant from region 0:
        // 1st admitted locally, 2nd spills to site 1, 3rd is shed.
        let a = e.query(0, &[TermId(0)], 10);
        let b = e.query(0, &[TermId(1)], 10);
        let c = e.query(0, &[TermId(2)], 10);
        assert_eq!(a.site, Some(0));
        assert_eq!(b.site, Some(1), "overflow spilled to the other live site");
        assert_eq!(c.served, Served::Shed, "everyone saturated: explicit shed");
        let s = e.stats();
        assert_eq!((s.served_local, s.served_remote, s.shed_overload), (1, 1, 1));
        assert_eq!(s.total(), 3, "no query silently dropped");
        assert!(e.utilization(0) >= 0.5);
        // The next window admits again.
        e.advance_to(2 * SECOND);
        assert_eq!(e.query(0, &[TermId(3)], 10).site, Some(0));
    }

    #[test]
    fn outcomes_are_deterministic_given_the_same_traces() {
        let run = || {
            let mut traces = all_up();
            traces[1] = Site::from_down_intervals(vec![iv(HOUR, 5 * HOUR)], DAY);
            let e = engine_with_traces(traces, MultiSiteConfig::default());
            let mut hits = Vec::new();
            for i in 0..100u64 {
                e.advance_to(i * DAY / 100);
                let r = e.query((i % 3) as u16, &[TermId((i % 5) as u32)], 10);
                hits.push((r.served, r.site, r.latency));
            }
            (hits, e.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn engine_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>(_: &T) {}
        let e = engine_with_traces(all_up(), MultiSiteConfig::default());
        assert_send_sync(&e);
    }
}
