//! Heavy-tailed per-replica service-time model — the straggler generator.
//!
//! The paper observes that in scatter-gather query processing "the slowest
//! server determines the response time" (Section 5), yet the df-based
//! [`crate::broker::DocBroker::service_time`] is deterministic per shard:
//! every replica of a partition costs exactly the same, so the simulated
//! system cannot exhibit the tail behavior that dominates real capacity
//! planning. This module layers a multiplicative latency factor on top of
//! the df-based base cost, drawn per (partition, replica, query) from a
//! lognormal body with a bounded-Pareto tail mixed in — the standard
//! empirical shape for service-time stragglers (GC pauses, queueing,
//! background daemons).
//!
//! Determinism discipline mirrors [`crate::faults::FaultSchedule`]: draws
//! come from a label-forked [`SimRng`], forked once by the packed
//! `(partition, replica)` label and once by the query id. Every draw is
//! therefore stateless and order-independent — the same (p, r, qid) triple
//! yields the same factor no matter how many queries ran before it, which
//! is what keeps the parallel ≡ sequential and batch ≡ loop equivalence
//! invariants provable under hedging.

use dwr_sim::dist::{BoundedPareto, LogNormal};
use dwr_sim::{SimRng, SimTime};

/// Parameters of the drawn straggler distribution.
///
/// The multiplicative factor is `body × tail?`, where `body` is lognormal
/// with mean 1 and coefficient of variation [`TailParams::cv`], and with
/// probability [`TailParams::tail_prob`] an independent bounded-Pareto
/// multiplier on `[1, tail_cap]` with exponent [`TailParams::tail_alpha`]
/// is applied on top.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailParams {
    /// Coefficient of variation of the lognormal body (mean is fixed at 1).
    pub cv: f64,
    /// Probability that a draw lands in the heavy tail.
    pub tail_prob: f64,
    /// Pareto exponent of the tail (smaller ⇒ heavier).
    pub tail_alpha: f64,
    /// Upper bound of the tail multiplier (physically bounded slowness).
    pub tail_cap: f64,
}

impl TailParams {
    /// A mild tail: occasional 2–10× stragglers, thin body.
    pub fn mild() -> Self {
        TailParams { cv: 0.25, tail_prob: 0.01, tail_alpha: 1.8, tail_cap: 10.0 }
    }

    /// A heavy tail: the regime where hedging policies earn their keep.
    pub fn heavy() -> Self {
        TailParams { cv: 0.5, tail_prob: 0.05, tail_alpha: 1.3, tail_cap: 50.0 }
    }

    /// Load-scaled parameters: at utilization `rho` in `[0, 1]`, both the
    /// body variance and the tail mass grow with load, the way queueing
    /// delay inflates service-time variance on a busy server.
    pub fn at_load(rho: f64) -> Self {
        let rho = rho.clamp(0.0, 1.0);
        TailParams {
            cv: 0.3 + 0.7 * rho,
            tail_prob: 0.02 + 0.08 * rho,
            tail_alpha: 1.5 - 0.4 * rho,
            tail_cap: 10.0 + 90.0 * rho,
        }
    }
}

/// Per-(partition, replica, query) service-time inflation model.
#[derive(Debug, Clone)]
pub enum StragglerModel {
    /// Deterministic label-forked draws from a lognormal/Pareto mixture.
    Drawn {
        /// Root seed; forked by `(partition, replica)` then by query id.
        seed: u64,
        /// Lognormal body (mean 1, cv from [`TailParams`]).
        body: LogNormal,
        /// Probability of applying the tail multiplier.
        tail_prob: f64,
        /// Bounded-Pareto tail multiplier on `[1, tail_cap]`.
        tail: BoundedPareto,
    },
    /// Fixed per-(partition, replica) factors — for tests that need exact
    /// control over which replica is slow. Out-of-range lookups are 1.0.
    Fixed {
        /// `factors[partition][replica]`, multiplicative.
        factors: Vec<Vec<f64>>,
    },
}

impl StragglerModel {
    /// Drawn model from tail parameters, seeded like a fault schedule.
    pub fn drawn(seed: u64, params: TailParams) -> Self {
        assert!(
            (0.0..=1.0).contains(&params.tail_prob),
            "tail_prob must be a probability, got {}",
            params.tail_prob
        );
        StragglerModel::Drawn {
            seed,
            body: LogNormal::from_mean_cv(1.0, params.cv),
            tail_prob: params.tail_prob,
            tail: BoundedPareto::new(1.0, params.tail_cap.max(1.0 + 1e-9), params.tail_alpha),
        }
    }

    /// Fixed per-(partition, replica) factors.
    pub fn fixed(factors: Vec<Vec<f64>>) -> Self {
        for row in &factors {
            for &f in row {
                assert!(f.is_finite() && f > 0.0, "straggler factor must be positive, got {f}");
            }
        }
        StragglerModel::Fixed { factors }
    }

    /// The multiplicative slowdown for query `qid` on `(partition, replica)`.
    ///
    /// Stateless: forks a fresh RNG per call with the same packed label
    /// scheme as `FaultSchedule::generate` (`(p << 24) | r`), then by `qid`,
    /// so the value depends only on the triple — never on draw order.
    pub fn factor(&self, partition: usize, replica: usize, qid: u64) -> f64 {
        match self {
            StragglerModel::Drawn { seed, body, tail_prob, tail } => {
                let label = ((partition as u64) << 24) | replica as u64;
                let mut rng = SimRng::new(*seed).fork(label).fork(qid);
                let mut f = body.sample(&mut rng);
                if rng.f64() < *tail_prob {
                    f *= tail.sample(&mut rng);
                }
                f
            }
            StragglerModel::Fixed { factors } => {
                factors.get(partition).and_then(|row| row.get(replica)).copied().unwrap_or(1.0)
            }
        }
    }

    /// The drawn service cost: `base` microseconds inflated by
    /// [`Self::factor`], rounded up to a whole simulated microsecond and
    /// never below 1 (a served query always takes time).
    pub fn cost(&self, base: f64, partition: usize, replica: usize, qid: u64) -> SimTime {
        let inflated = (base * self.factor(partition, replica, qid)).ceil();
        (inflated as SimTime).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_deterministic_and_order_independent() {
        let m = StragglerModel::drawn(42, TailParams::heavy());
        let a = m.factor(3, 1, 777);
        // Interleave unrelated draws; the triple's value must not move.
        for q in 0..50 {
            m.factor(0, 0, q);
            m.factor(7, 2, q * 13);
        }
        assert_eq!(m.factor(3, 1, 777).to_bits(), a.to_bits());
    }

    #[test]
    fn replicas_of_one_partition_genuinely_diverge() {
        let m = StragglerModel::drawn(7, TailParams::heavy());
        let diverging = (0..200u64).filter(|&q| m.factor(0, 0, q) != m.factor(0, 1, q)).count();
        assert!(diverging > 190, "replica draws should be independent, {diverging}/200 differ");
    }

    #[test]
    fn queries_diverge_on_one_replica() {
        let m = StragglerModel::drawn(7, TailParams::mild());
        let diverging = (1..200u64).filter(|&q| m.factor(2, 0, q) != m.factor(2, 0, 0)).count();
        assert!(diverging > 190, "per-query draws should vary, {diverging}/199 differ");
    }

    #[test]
    fn body_mean_is_near_one_and_tail_is_heavy() {
        let mild = StragglerModel::drawn(11, TailParams::mild());
        let heavy = StragglerModel::drawn(11, TailParams::heavy());
        let n = 20_000u64;
        let mean: f64 = (0..n).map(|q| mild.factor(0, 0, q)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.1, "mild mean ≈ 1, got {mean}");
        let p999 = |m: &StragglerModel| {
            let mut v: Vec<f64> = (0..n).map(|q| m.factor(0, 0, q)).collect();
            v.sort_unstable_by(f64::total_cmp);
            v[(n as usize * 999) / 1000]
        };
        let (mild_tail, heavy_tail) = (p999(&mild), p999(&heavy));
        assert!(
            heavy_tail > 2.0 * mild_tail,
            "heavy p999 {heavy_tail} should dwarf mild p999 {mild_tail}"
        );
    }

    #[test]
    fn fixed_model_looks_up_and_defaults_to_unity() {
        let m = StragglerModel::fixed(vec![vec![1.0, 3.0], vec![0.5]]);
        assert_eq!(m.factor(0, 1, 99), 3.0);
        assert_eq!(m.factor(1, 0, 0), 0.5);
        assert_eq!(m.factor(1, 7, 0), 1.0, "out-of-range replica is neutral");
        assert_eq!(m.factor(9, 0, 0), 1.0, "out-of-range partition is neutral");
    }

    #[test]
    fn cost_rounds_up_and_never_hits_zero() {
        let m = StragglerModel::fixed(vec![vec![0.001]]);
        assert_eq!(m.cost(100.0, 0, 0, 1), 1, "floor at one microsecond");
        let m = StragglerModel::fixed(vec![vec![2.5]]);
        assert_eq!(m.cost(100.1, 0, 0, 1), 251, "ceil of 250.25");
    }

    #[test]
    fn load_scaled_params_grow_with_rho() {
        let lo = TailParams::at_load(0.2);
        let hi = TailParams::at_load(0.95);
        assert!(hi.cv > lo.cv && hi.tail_prob > lo.tail_prob);
        assert!(hi.tail_alpha < lo.tail_alpha, "heavier tail under load");
        assert!(hi.tail_cap > lo.tail_cap);
    }
}
