//! Personalization: server-side replicated state vs. a client-side layer.
//!
//! Section 5: "when query processing involves personalization of results,
//! additional information from a user profile is necessary at search time
//! (...) each user profile represents a state, which must be the latest
//! state and be consistent across replicas. Alternatively, a system can
//! implement personalization as a thin layer on the client-side. This last
//! approach is attractive because it deals with privacy issues (...) It
//! also restricts the user to always using the same terminal."
//!
//! Both designs share one re-ranking function; they differ in where the
//! profile lives: [`ServerPersonalization`] keeps it in the replicated
//! [`PrimaryBackupStore`] (consistent, survives failover, any terminal),
//! [`ClientPersonalization`] keeps it in the client process (private, no
//! server state, lost when the "terminal" changes).

use crate::broker::GlobalHit;
use crate::replica::PrimaryBackupStore;
use std::collections::HashMap;

/// A user profile: per-topic preference weights.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UserProfile {
    /// topic -> boost weight (1.0 = neutral).
    pub topic_boost: HashMap<u16, f32>,
}

impl UserProfile {
    /// Record a click on a document of `topic`, strengthening the boost.
    pub fn record_click(&mut self, topic: u16) {
        let w = self.topic_boost.entry(topic).or_insert(1.0);
        *w = (*w * 1.1).min(3.0);
    }

    /// The boost for a topic (1.0 when unknown).
    pub fn boost(&self, topic: u16) -> f32 {
        self.topic_boost.get(&topic).copied().unwrap_or(1.0)
    }
}

/// Re-rank hits by multiplying scores with the profile's topic boosts.
/// `topic_of` maps a global doc id to its topic.
pub fn personalize_ranking(
    hits: &[GlobalHit],
    profile: &UserProfile,
    topic_of: &dyn Fn(u32) -> u16,
) -> Vec<GlobalHit> {
    let mut out: Vec<GlobalHit> = hits
        .iter()
        .map(|h| GlobalHit { doc: h.doc, score: h.score * profile.boost(topic_of(h.doc)) })
        .collect();
    out.sort_by(|a, b| {
        b.score.partial_cmp(&a.score).expect("finite scores").then(a.doc.cmp(&b.doc))
    });
    out
}

/// Server-side personalization: profiles in the replicated store, encoded
/// as (user, topic) → fixed-point weight.
#[derive(Debug)]
pub struct ServerPersonalization {
    store: PrimaryBackupStore,
}

fn key(user: u64, topic: u16) -> u64 {
    user.wrapping_mul(65_537) ^ u64::from(topic)
}

impl ServerPersonalization {
    /// Create with `backups` backup replicas.
    pub fn new(backups: usize) -> Self {
        ServerPersonalization { store: PrimaryBackupStore::new(backups) }
    }

    /// Record a click (write-through to all replicas). Returns `false`
    /// when the whole store is down.
    pub fn record_click(&mut self, user: u64, topic: u16) -> bool {
        let current = self.store.get(key(user, topic)).unwrap_or(1_000);
        let next = (current + current / 10).min(3_000);
        self.store.put(key(user, topic), next).is_some()
    }

    /// Materialize the profile visible to `user` right now.
    pub fn profile(&mut self, user: u64, topics: u16) -> UserProfile {
        let mut p = UserProfile::default();
        for t in 0..topics {
            if let Some(w) = self.store.get(key(user, t)) {
                if w != 1_000 {
                    p.topic_boost.insert(t, w as f32 / 1_000.0);
                }
            }
        }
        p
    }

    /// Crash a replica (0 = primary).
    pub fn crash(&mut self, replica: usize) {
        self.store.crash(replica);
    }
}

/// Client-side personalization: the profile lives on one terminal.
#[derive(Debug, Default)]
pub struct ClientPersonalization {
    /// Per-terminal profiles (a new terminal starts empty).
    terminals: HashMap<u32, UserProfile>,
}

impl ClientPersonalization {
    /// Create an empty client layer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a click on `terminal`.
    pub fn record_click(&mut self, terminal: u32, topic: u16) {
        self.terminals.entry(terminal).or_default().record_click(topic);
    }

    /// The profile available on `terminal` (empty elsewhere — the paper's
    /// "restricts the user to always using the same terminal").
    pub fn profile(&self, terminal: u32) -> UserProfile {
        self.terminals.get(&terminal).cloned().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hits() -> Vec<GlobalHit> {
        vec![
            GlobalHit { doc: 0, score: 3.0 }, // topic 0
            GlobalHit { doc: 1, score: 2.9 }, // topic 1
            GlobalHit { doc: 2, score: 2.0 }, // topic 1
        ]
    }

    fn topic_of(doc: u32) -> u16 {
        if doc == 0 {
            0
        } else {
            1
        }
    }

    #[test]
    fn neutral_profile_preserves_order() {
        let p = UserProfile::default();
        let r = personalize_ranking(&hits(), &p, &topic_of);
        assert_eq!(r.iter().map(|h| h.doc).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn boosted_topic_rises() {
        let mut p = UserProfile::default();
        for _ in 0..5 {
            p.record_click(1);
        }
        let r = personalize_ranking(&hits(), &p, &topic_of);
        assert_eq!(r[0].doc, 1, "topic-1 doc overtakes");
    }

    #[test]
    fn boost_saturates() {
        let mut p = UserProfile::default();
        for _ in 0..200 {
            p.record_click(3);
        }
        assert!(p.boost(3) <= 3.0);
    }

    #[test]
    fn server_profile_survives_primary_crash() {
        let mut s = ServerPersonalization::new(2);
        for _ in 0..5 {
            assert!(s.record_click(42, 1));
        }
        let before = s.profile(42, 4);
        s.crash(0);
        let after = s.profile(42, 4);
        assert_eq!(before, after, "consistent across failover");
        assert!(after.boost(1) > 1.0);
    }

    #[test]
    fn server_profile_is_terminal_independent() {
        // Server-side state follows the user id, not the device.
        let mut s = ServerPersonalization::new(1);
        s.record_click(7, 2);
        // "Another terminal" = just another profile() call; same state.
        assert!(s.profile(7, 4).boost(2) > 1.0);
    }

    #[test]
    fn client_profile_is_terminal_bound() {
        let mut c = ClientPersonalization::new();
        for _ in 0..3 {
            c.record_click(1, 2);
        }
        assert!(c.profile(1).boost(2) > 1.0, "same terminal sees the profile");
        assert_eq!(c.profile(2), UserProfile::default(), "other terminal starts cold");
    }

    #[test]
    fn both_layers_rank_identically_given_same_profile() {
        let mut server = ServerPersonalization::new(1);
        let mut client = ClientPersonalization::new();
        for _ in 0..4 {
            server.record_click(9, 1);
            client.record_click(5, 1);
        }
        let sp = server.profile(9, 4);
        let cp = client.profile(5);
        let rs = personalize_ranking(&hits(), &sp, &topic_of);
        let rc = personalize_ranking(&hits(), &cp, &topic_of);
        assert_eq!(
            rs.iter().map(|h| h.doc).collect::<Vec<_>>(),
            rc.iter().map(|h| h.doc).collect::<Vec<_>>()
        );
    }
}
