//! The four system classes of Section 5: client/server, peer-to-peer,
//! federated, open.
//!
//! "In client/server systems, the amount of resources available on the
//! server side determines the total capacity of the system. (...) In
//! peer-to-peer systems, however, any new participant is both a new client
//! and a new server. Consequently, the total amount of resources available
//! for processing queries increases with the number of clients, assuming
//! that free-riding is not prevalent. On federated systems, independent
//! systems combine (...) On open systems, parties may allocate resources
//! in a self-interested fashion."
//!
//! The model makes those sentences quantitative: capacity as a function of
//! the client population, with free-riding and self-interest dials, so the
//! crossovers the paper reasons about can be computed and tested.

/// A distributed query-processing architecture.
#[derive(Debug, Clone, PartialEq)]
pub enum Architecture {
    /// Dedicated servers; clients only submit queries.
    ClientServer {
        /// Number of dedicated servers.
        servers: u32,
    },
    /// Every participant is client and server.
    PeerToPeer {
        /// Fraction of peers contributing no capacity (free riders).
        free_riding: f64,
        /// A peer's capacity relative to a dedicated server.
        peer_strength: f64,
    },
    /// Independent trusted systems pooled into one.
    Federated {
        /// Servers contributed by each member site.
        site_servers: Vec<u32>,
    },
    /// Federation without full trust: members serve foreign queries at a
    /// lower priority.
    Open {
        /// Servers contributed by each member site.
        site_servers: Vec<u32>,
        /// Fraction of each site's capacity actually granted to foreign
        /// queries (1.0 = fully cooperative, 0.0 = fully selfish).
        foreign_priority: f64,
        /// Fraction of the query load that is foreign to its serving site.
        foreign_fraction: f64,
    },
}

/// Per-server (or per-full-strength-peer) capacity in queries/second.
pub const SERVER_QPS: f64 = 100.0;

impl Architecture {
    /// Total sustainable query throughput with `clients` participants.
    pub fn capacity(&self, clients: u64) -> f64 {
        match self {
            Architecture::ClientServer { servers } => f64::from(*servers) * SERVER_QPS,
            Architecture::PeerToPeer { free_riding, peer_strength } => {
                assert!((0.0..=1.0).contains(free_riding));
                clients as f64 * (1.0 - free_riding) * peer_strength * SERVER_QPS
            }
            Architecture::Federated { site_servers } => {
                site_servers.iter().map(|&s| f64::from(s)).sum::<f64>() * SERVER_QPS
            }
            Architecture::Open { site_servers, foreign_priority, foreign_fraction } => {
                assert!((0.0..=1.0).contains(foreign_priority));
                assert!((0.0..=1.0).contains(foreign_fraction));
                let full: f64 = site_servers.iter().map(|&s| f64::from(s)).sum();
                // Local traffic is served at full rate; foreign traffic
                // only at the granted priority.
                let effective = (1.0 - foreign_fraction) + foreign_fraction * foreign_priority;
                full * SERVER_QPS * effective
            }
        }
    }

    /// Whether the architecture sustains `clients` each issuing
    /// `qps_per_client`.
    pub fn sustains(&self, clients: u64, qps_per_client: f64) -> bool {
        clients as f64 * qps_per_client < self.capacity(clients)
    }

    /// The largest client population this architecture sustains at
    /// `qps_per_client` (`None` = unbounded).
    pub fn saturation_point(&self, qps_per_client: f64) -> Option<u64> {
        assert!(qps_per_client > 0.0);
        match self {
            Architecture::ClientServer { .. }
            | Architecture::Federated { .. }
            | Architecture::Open { .. } => {
                // Fixed capacity C: n* = floor(C / q) (strictly below C).
                let c = self.capacity(0);
                let n = (c / qps_per_client).ceil() as u64;
                Some(n.saturating_sub(1))
            }
            Architecture::PeerToPeer { free_riding, peer_strength } => {
                // Per-client supply vs demand: unbounded iff supply > demand.
                let supply = (1.0 - free_riding) * peer_strength * SERVER_QPS;
                if supply > qps_per_client {
                    None
                } else {
                    Some(0)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_server_capacity_constant_in_clients() {
        let a = Architecture::ClientServer { servers: 10 };
        assert_eq!(a.capacity(1), a.capacity(1_000_000));
        assert_eq!(a.capacity(0), 1_000.0);
    }

    #[test]
    fn p2p_capacity_grows_with_clients() {
        let a = Architecture::PeerToPeer { free_riding: 0.0, peer_strength: 0.01 };
        assert!(a.capacity(10_000) > 10.0 * a.capacity(1_000) - 1e-9);
    }

    #[test]
    fn free_riding_scales_capacity_down() {
        let none = Architecture::PeerToPeer { free_riding: 0.0, peer_strength: 0.01 };
        let heavy = Architecture::PeerToPeer { free_riding: 0.9, peer_strength: 0.01 };
        let n = 100_000;
        assert!((heavy.capacity(n) - 0.1 * none.capacity(n)).abs() < 1e-6);
    }

    #[test]
    fn p2p_sustains_any_population_when_supply_exceeds_demand() {
        // Each peer contributes 1 qps (strength 0.01 × 100) and demands 0.5.
        let a = Architecture::PeerToPeer { free_riding: 0.0, peer_strength: 0.01 };
        assert_eq!(a.saturation_point(0.5), None);
        for n in [10u64, 10_000, 10_000_000] {
            assert!(a.sustains(n, 0.5));
        }
        // With 60% free riders, supply (0.4) < demand (0.5): collapses.
        let fr = Architecture::PeerToPeer { free_riding: 0.6, peer_strength: 0.01 };
        assert_eq!(fr.saturation_point(0.5), Some(0));
    }

    #[test]
    fn client_server_saturates() {
        let a = Architecture::ClientServer { servers: 10 }; // 1000 qps
        let n = a.saturation_point(0.5).expect("bounded");
        assert_eq!(n, 1999);
        assert!(a.sustains(n, 0.5));
        assert!(!a.sustains(n + 1, 0.5));
    }

    #[test]
    fn federation_pools_members() {
        let f = Architecture::Federated { site_servers: vec![4, 6, 10] };
        assert_eq!(f.capacity(0), 2_000.0);
    }

    #[test]
    fn open_system_loses_capacity_to_self_interest() {
        let servers = vec![4, 6, 10];
        let fed = Architecture::Federated { site_servers: servers.clone() };
        let open = Architecture::Open {
            site_servers: servers.clone(),
            foreign_priority: 0.5,
            foreign_fraction: 0.6,
        };
        assert!(open.capacity(0) < fed.capacity(0));
        // Fully cooperative open system equals the federation.
        let coop = Architecture::Open {
            site_servers: servers,
            foreign_priority: 1.0,
            foreign_fraction: 0.6,
        };
        assert!((coop.capacity(0) - fed.capacity(0)).abs() < 1e-9);
    }

    #[test]
    fn open_penalty_scales_with_foreign_share() {
        let mk = |frac| Architecture::Open {
            site_servers: vec![10],
            foreign_priority: 0.2,
            foreign_fraction: frac,
        };
        assert!(mk(0.8).capacity(0) < mk(0.2).capacity(0));
    }
}
