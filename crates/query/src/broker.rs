//! Document-partitioned scatter-gather evaluation.
//!
//! "In the case of a document partitioned system, query processors send
//! the query results to the coordinator, which merges and detects the top
//! ranked results (...) the response time in a document partitioned system
//! depends on the response time of its slowest component" (Section 5).
//!
//! The broker scatter-gathers over a [`PartitionedIndex`], optionally
//! restricted to the top-`m` partitions of a collection selector, and
//! accounts per-server *busy time* — the quantity Figure 2 plots.
//!
//! # Concurrency
//!
//! The broker is an immutable core plus atomic counters: it owns a cheap
//! clone of the `Arc`-sharded index, every query method takes `&self`,
//! and the whole type is `Send + Sync`, so any number of threads can
//! serve queries through one shared broker.
//!
//! Scatter itself runs either inline (sequential) or on a
//! [`ScatterPool`] (parallel, one task per partition). Both paths feed
//! the same gather loop, which walks partitions **in partition order**
//! — so merged hits, busy-time accounting, and the simulated latency
//! model are bit-for-bit identical whichever path evaluated the shards.
//!
//! # Live (splittable) indexes
//!
//! A broker built with [`DocBroker::live`] serves a
//! [`RepartIndex`] that may split partitions while queries are in
//! flight. Every query takes **one** epoch-consistent snapshot at
//! admission and threads it through scatter and gather, so a query
//! racing a split sees either the parent epoch or the child epoch in
//! full — never a mixture — and therefore answers every document
//! exactly once. Scoring uses the corpus-wide [`CorpusStats`] (splits
//! never change the corpus), making results bit-identical to a static
//! oracle at any epoch. Accounting slots (`busy`, `part_sites`) are
//! provisioned to the repart *capacity* up front, so the fixed-width
//! atomic ledgers survive any number of splits.

use crate::scatter::{task_label, ScatterPool};
use dwr_obs::{Event, NoopRecorder, Recorder};
use dwr_partition::parted::{IndexShard, PartitionedIndex};
use dwr_partition::repart::{CorpusStats, RepartIndex};
use dwr_partition::select::CollectionSelector;
use dwr_sim::net::{SiteId, Topology};
use dwr_sim::SimTime;
use dwr_text::score::Bm25;
use dwr_text::search::{search_or_with, EvalStats, EvalStrategy};
use dwr_text::topk::TopK;
use dwr_text::TermId;
use std::borrow::Cow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cost of scanning one posting, in µs (the CPU/disk work unit).
pub const US_PER_POSTING: f64 = 0.5;
/// Fixed per-query overhead on a query processor, in µs.
pub const US_PER_QUERY_FIXED: f64 = 200.0;
/// Broker-side merge cost per received hit, in µs.
pub const US_PER_MERGE_HIT: f64 = 1.0;

/// One globally-identified result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlobalHit {
    /// Global document id.
    pub doc: u32,
    /// BM25 score (local statistics).
    pub score: f32,
}

/// Outcome of one brokered query.
#[derive(Debug, Clone)]
pub struct BrokeredResponse {
    /// Merged top-k, best first.
    pub hits: Vec<GlobalHit>,
    /// Partitions actually queried.
    pub partitions_used: usize,
    /// Response latency: slowest partition (service + round trip) plus
    /// merge time.
    pub latency: SimTime,
}

/// Timing overrides for a deadline-aware gather
/// ([`DocBroker::query_selected_timed`]).
///
/// The engine supplies the *shard-side completion time* of each queried
/// partition — the replica's drawn service cost under a straggler model,
/// possibly shortened by a hedge — and an optional response deadline.
/// Shards completing after the deadline are excluded from the merge (the
/// partial-results policy of tail-tolerant search): their busy time and
/// scan work are still charged (the server did the work; its answer just
/// arrived too late), but their hits never reach the top-k and the
/// response reports how many partitions made the cut.
#[derive(Debug, Clone, Copy)]
pub struct GatherTiming<'a> {
    /// Shard-side completion (µs after dispatch), parallel to `parts`.
    pub completions: &'a [SimTime],
    /// Response deadline: shards whose completion exceeds it are dropped
    /// from the merge. The deadline gates on shard-side completion; the
    /// transit of the included responses still counts toward latency.
    pub deadline: Option<SimTime>,
}

/// One query of a broker batch: terms, result depth, target partitions,
/// and the query key stamped onto observability events.
#[derive(Debug, Clone)]
pub struct BatchQuery<'a> {
    /// Query terms (bag-of-words; duplicates collapse to a set inside
    /// the evaluator).
    pub terms: &'a [TermId],
    /// Result depth.
    pub k: usize,
    /// Partitions to scatter over.
    pub parts: Vec<u32>,
    /// Query key for observability events (0 when nobody listens).
    pub qid: u64,
}

/// The document-partition broker: an immutable shared core (index,
/// topology, scoring parameters) plus atomic accounting. `Send + Sync`;
/// all query methods take `&self`.
///
/// Generic over an observability [`Recorder`]; the default
/// [`NoopRecorder`] is a zero-sized type whose events compile away, so
/// uninstrumented brokers are exactly the pre-instrumentation code.
#[derive(Debug)]
pub struct DocBroker<R: Recorder = NoopRecorder> {
    /// The static index (epoch-0 snapshot for live brokers; query paths
    /// on a live broker always re-snapshot from `live`).
    index: PartitionedIndex,
    /// The live, splittable index, when this broker serves one.
    live: Option<Arc<RepartIndex>>,
    /// Corpus-wide scoring statistics. Set on live brokers (scores must
    /// be invariant across epochs) and on static oracles built to match
    /// them ([`Self::with_global_stats`]); `None` scores with local
    /// per-shard statistics, the classic one-round protocol.
    global_stats: Option<Arc<CorpusStats>>,
    topo: Topology,
    broker_site: SiteId,
    /// Site of each partition server.
    part_sites: Vec<SiteId>,
    bm25: Bm25,
    /// Which ranked evaluator shards run ([`EvalStrategy::MaxScore`] by
    /// default; both strategies return bit-identical hits).
    eval: EvalStrategy,
    /// Accumulated busy time per partition server, µs (f64 bits in an
    /// atomic cell).
    busy: Vec<AtomicU64>,
    /// Queries processed.
    queries: AtomicU64,
    /// Measured evaluator work, aggregated over all shards and queries.
    scan: ScanCounters,
    /// When set, shards are evaluated concurrently on this pool.
    pool: Option<Arc<ScatterPool>>,
    /// Observability sink; all events are emitted from the coordinating
    /// thread in deterministic order.
    recorder: R,
}

/// Atomic mirror of [`EvalStats`]: the broker's measured evaluator work
/// (distinct from the df-based *simulated* service-time model, which is
/// identical across strategies by design — see [`DocBroker::service_time`]).
#[derive(Debug, Default)]
struct ScanCounters {
    postings_scanned: AtomicU64,
    blocks_decoded: AtomicU64,
    blocks_skipped: AtomicU64,
    candidates_pruned: AtomicU64,
}

impl ScanCounters {
    fn add(&self, ev: &EvalStats) {
        self.postings_scanned.fetch_add(ev.postings_scanned, Ordering::Relaxed);
        self.blocks_decoded.fetch_add(ev.blocks_decoded, Ordering::Relaxed);
        self.blocks_skipped.fetch_add(ev.blocks_skipped, Ordering::Relaxed);
        self.candidates_pruned.fetch_add(ev.candidates_pruned, Ordering::Relaxed);
    }

    fn snapshot(&self) -> EvalStats {
        EvalStats {
            postings_scanned: self.postings_scanned.load(Ordering::Relaxed),
            blocks_decoded: self.blocks_decoded.load(Ordering::Relaxed),
            blocks_skipped: self.blocks_skipped.load(Ordering::Relaxed),
            candidates_pruned: self.candidates_pruned.load(Ordering::Relaxed),
        }
    }
}

/// Per-shard evaluation output: local top-k mapped to global doc ids,
/// plus the work counters the evaluator accumulated.
type ShardResult = (Vec<(u32, f32)>, EvalStats);

/// Evaluate one shard: local top-k, mapped to global doc ids, plus the
/// work counters the evaluator accumulated. With `stats` the shard
/// scores against corpus-wide statistics (epoch-invariant, the live
/// path); without, against its own local statistics (the classic
/// one-round protocol).
fn evaluate_shard(
    shard: &IndexShard,
    terms: &[TermId],
    k: usize,
    bm25: &Bm25,
    eval: EvalStrategy,
    stats: Option<&CorpusStats>,
) -> ShardResult {
    let idx = shard.index();
    let mut ev = EvalStats::default();
    let local = match stats {
        Some(gs) => search_or_with(eval, idx, terms, k, bm25, gs, &mut ev),
        None => search_or_with(eval, idx, terms, k, bm25, idx, &mut ev),
    };
    let hits = local.into_iter().map(|h| (shard.to_global(h.doc), h.score)).collect();
    (hits, ev)
}

impl DocBroker {
    /// Create a broker over `index`. `part_sites[p]` locates partition `p`.
    ///
    /// The broker keeps its own (cheap, `Arc`-backed) clone of the
    /// partitioned index, so it owns everything it needs to serve
    /// queries and carries no borrow of the build-side structures.
    /// # Panics
    /// Panics on a zero-partition index (its gather would divide by
    /// zero when normalizing busy load) or when `part_sites` does not
    /// name a site per partition. `PartitionedIndex::try_build` already
    /// refuses to construct a zero-partition index, so this guard is
    /// the broker restating its own invariant.
    pub fn new(
        index: &PartitionedIndex,
        topo: Topology,
        broker_site: SiteId,
        part_sites: Vec<SiteId>,
    ) -> Self {
        assert!(index.num_partitions() > 0, "zero-partition index");
        assert_eq!(part_sites.len(), index.num_partitions(), "one site per partition");
        let busy = (0..index.num_partitions()).map(|_| AtomicU64::new(0)).collect();
        DocBroker {
            index: index.clone(),
            live: None,
            global_stats: None,
            topo,
            broker_site,
            part_sites,
            bm25: Bm25::default(),
            eval: EvalStrategy::default(),
            busy,
            queries: AtomicU64::new(0),
            scan: ScanCounters::default(),
            pool: None,
            recorder: NoopRecorder,
        }
    }

    /// Single-site convenience constructor (everything on one LAN).
    pub fn single_site(index: &PartitionedIndex) -> Self {
        let sites = vec![SiteId(0); index.num_partitions()];
        Self::new(index, Topology::single_site(), SiteId(0), sites)
    }

    /// A single-site broker over a **live, splittable** index. Every
    /// query snapshots the current epoch at admission; accounting slots
    /// are provisioned to `repart.capacity()` so the fixed-width atomic
    /// ledgers survive any number of splits. Scoring uses the corpus-
    /// wide statistics, which splits never change — results stay
    /// bit-identical to a static oracle at any epoch (pair the oracle
    /// with [`Self::with_global_stats`]).
    pub fn live(repart: &Arc<RepartIndex>) -> Self {
        let capacity = repart.capacity();
        let snapshot = repart.snapshot();
        let busy = (0..capacity).map(|_| AtomicU64::new(0)).collect();
        DocBroker {
            index: snapshot,
            live: Some(Arc::clone(repart)),
            global_stats: Some(repart.corpus_stats()),
            topo: Topology::single_site(),
            broker_site: SiteId(0),
            part_sites: vec![SiteId(0); capacity],
            bm25: Bm25::default(),
            eval: EvalStrategy::default(),
            busy,
            queries: AtomicU64::new(0),
            scan: ScanCounters::default(),
            pool: None,
            recorder: NoopRecorder,
        }
    }
}

impl<R: Recorder> DocBroker<R> {
    /// Swap in an observability recorder (events flow to it from every
    /// query method). Counters and results are unaffected: recorders
    /// observe, they never steer.
    pub fn with_recorder<R2: Recorder>(self, recorder: R2) -> DocBroker<R2> {
        DocBroker {
            index: self.index,
            live: self.live,
            global_stats: self.global_stats,
            topo: self.topo,
            broker_site: self.broker_site,
            part_sites: self.part_sites,
            bm25: self.bm25,
            eval: self.eval,
            busy: self.busy,
            queries: self.queries,
            scan: self.scan,
            pool: self.pool,
            recorder,
        }
    }

    /// Pick the ranked evaluator shards run. Hits, latencies, and busy
    /// time are bit-identical across strategies (the evaluators agree
    /// exactly and the simulated latency model is df-based); only the
    /// *measured* work in [`DocBroker::eval_stats`] differs.
    pub fn with_strategy(mut self, eval: EvalStrategy) -> Self {
        self.eval = eval;
        self
    }

    /// The evaluator strategy in force.
    pub fn strategy(&self) -> EvalStrategy {
        self.eval
    }

    /// Measured evaluator work accumulated so far, over all shards and
    /// queries.
    pub fn eval_stats(&self) -> EvalStats {
        self.scan.snapshot()
    }

    /// The attached recorder.
    pub fn recorder(&self) -> &R {
        &self.recorder
    }

    /// Evaluate shards concurrently on a dedicated pool of `threads`
    /// workers. Results (hits, busy time, simulated latency) are
    /// bit-for-bit identical to the sequential path.
    pub fn parallel(self, threads: usize) -> Self {
        self.with_pool(Arc::new(ScatterPool::new(threads)))
    }

    /// Evaluate shards concurrently on an existing (possibly shared)
    /// pool.
    pub fn with_pool(mut self, pool: Arc<ScatterPool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Whether shard evaluation runs on a worker pool.
    pub fn is_parallel(&self) -> bool {
        self.pool.is_some()
    }

    /// Score shards against corpus-wide statistics instead of each
    /// shard's local ones. This is how a *static oracle* is built to
    /// match a live broker bit-for-bit: both score every document with
    /// the same epoch-invariant statistics, so partition layout cannot
    /// leak into scores.
    pub fn with_global_stats(mut self, stats: Arc<CorpusStats>) -> Self {
        self.global_stats = Some(stats);
        self
    }

    /// The epoch-consistent index for one query: the current live
    /// snapshot, or the static index. One short lock on the live path;
    /// a cheap `Arc` clone either way.
    pub fn snapshot(&self) -> PartitionedIndex {
        match &self.live {
            Some(r) => r.snapshot(),
            None => self.index.clone(),
        }
    }

    /// The live index behind this broker, if any.
    pub fn live_index(&self) -> Option<&Arc<RepartIndex>> {
        self.live.as_ref()
    }

    /// Provisioned accounting slots (= capacity for live brokers,
    /// partition count for static ones).
    pub fn slots(&self) -> usize {
        self.busy.len()
    }

    /// The service time partition `p` spends on `terms`: posting volume
    /// touched plus fixed overhead. Live brokers snapshot the current
    /// epoch; engines holding a per-query snapshot should prefer
    /// [`Self::service_time_in`].
    pub fn service_time(&self, p: usize, terms: &[TermId]) -> f64 {
        match &self.live {
            Some(r) => self.service_time_in(&r.snapshot(), p, terms),
            None => self.service_time_in(&self.index, p, terms),
        }
    }

    /// As [`Self::service_time`], against an explicit epoch snapshot.
    pub fn service_time_in(&self, snap: &PartitionedIndex, p: usize, terms: &[TermId]) -> f64 {
        let postings: u64 = terms.iter().map(|&t| u64::from(snap.part(p).df(t))).sum();
        US_PER_QUERY_FIXED + postings as f64 * US_PER_POSTING
    }

    /// Evaluate a query over all *active* partitions of the current
    /// epoch (all partitions, on a static index).
    pub fn query(&self, terms: &[TermId], k: usize) -> BrokeredResponse {
        let snap = self.snapshot();
        let all = snap.active_parts();
        let qid = if self.recorder.is_live() { crate::engine::query_key(terms) } else { 0 };
        self.query_selected_at_in(&snap, terms, k, &all, qid, 0)
    }

    /// Evaluate a query over the top-`m` partitions of `selector`.
    pub fn query_with_selection(
        &self,
        terms: &[TermId],
        k: usize,
        selector: &dyn CollectionSelector,
        m: usize,
    ) -> BrokeredResponse {
        let chosen: Vec<u32> = selector.rank(terms).into_iter().take(m).map(|(p, _)| p).collect();
        self.query_selected(terms, k, &chosen)
    }

    /// Build the owned shard-evaluation task for one `(partition, query)`
    /// pair (runs inline or on a pool worker).
    fn shard_task(
        &self,
        snap: &PartitionedIndex,
        p: u32,
        terms: &Arc<[TermId]>,
        k: usize,
    ) -> impl FnOnce() -> ShardResult + Send + 'static {
        let shard = snap.shard(p as usize);
        let terms = Arc::clone(terms);
        let bm25 = self.bm25;
        let eval = self.eval;
        let gs = self.global_stats.clone();
        move || evaluate_shard(&shard, &terms, k, &bm25, eval, gs.as_deref())
    }

    /// Drop partition ids that are out of range, inactive at this
    /// epoch, or duplicated — any of which would panic the scatter or
    /// silently double-merge a document — preserving the order of what
    /// survives. Borrows when the input is already clean (the engine
    /// path always is), so the hot path allocates nothing.
    fn sanitize_parts<'a>(snap: &PartitionedIndex, parts: &'a [u32]) -> Cow<'a, [u32]> {
        let valid = |p: u32| snap.is_active(p);
        let dirty = parts.iter().enumerate().any(|(i, &p)| !valid(p) || parts[..i].contains(&p));
        if !dirty {
            return Cow::Borrowed(parts);
        }
        let mut out: Vec<u32> = Vec::with_capacity(parts.len());
        for &p in parts {
            if valid(p) && !out.contains(&p) {
                out.push(p);
            }
        }
        Cow::Owned(out)
    }

    /// Scatter: per-partition result lists, in `parts` order. Runs on
    /// the pool when configured, inline otherwise; either way the output
    /// is indexed by task, so the gather phase is order-independent of
    /// completion. Both branches emit the same single
    /// [`Event::ScatterDispatch`] (identical payload), keeping the
    /// sequential and parallel event streams indistinguishable. Pool
    /// tasks carry an `(epoch, partition)` label so a panicking shard
    /// evaluation names the exact map snapshot that dispatched it.
    fn scatter(
        &self,
        snap: &PartitionedIndex,
        terms: &[TermId],
        k: usize,
        parts: &[u32],
        qid: u64,
        now: SimTime,
    ) -> Vec<ShardResult> {
        match &self.pool {
            Some(pool) if parts.len() > 1 => {
                let shared_terms: Arc<[TermId]> = terms.into();
                let epoch = snap.epoch();
                let tasks: Vec<(u64, _)> = parts
                    .iter()
                    .map(|&p| (task_label(epoch, p), self.shard_task(snap, p, &shared_terms, k)))
                    .collect();
                self.recorder.record(Event::ScatterDispatch {
                    qid,
                    now,
                    partitions: parts.len() as u32,
                });
                pool.scatter_labeled(tasks)
            }
            _ => {
                self.recorder.record(Event::ScatterDispatch {
                    qid,
                    now,
                    partitions: parts.len() as u32,
                });
                parts
                    .iter()
                    .map(|&p| {
                        evaluate_shard(
                            &snap.shard(p as usize),
                            terms,
                            k,
                            &self.bm25,
                            self.eval,
                            self.global_stats.as_deref(),
                        )
                    })
                    .collect()
            }
        }
    }

    /// Evaluate a query over an explicit partition set.
    pub fn query_selected(&self, terms: &[TermId], k: usize, parts: &[u32]) -> BrokeredResponse {
        // Standalone brokers have no sim clock and compute the query key
        // only when someone is listening.
        let qid = if self.recorder.is_live() { crate::engine::query_key(terms) } else { 0 };
        self.query_selected_at(terms, k, parts, qid, 0)
    }

    /// As [`Self::query_selected`], with the caller supplying the query
    /// key and sim-clock instant stamped onto observability events (the
    /// engine path, which has both at hand).
    pub fn query_selected_at(
        &self,
        terms: &[TermId],
        k: usize,
        parts: &[u32],
        qid: u64,
        now: SimTime,
    ) -> BrokeredResponse {
        let snap = self.snapshot();
        self.query_selected_at_in(&snap, terms, k, parts, qid, now)
    }

    /// As [`Self::query_selected_at`], against an explicit epoch
    /// snapshot — the engine path, which takes one snapshot per query
    /// at admission and threads it through dispatch and evaluation so
    /// the whole query observes a single epoch.
    ///
    /// Degenerate inputs are served gracefully, never panicked on:
    /// `k == 0` answers an empty result without touching any shard, and
    /// out-of-range / inactive / duplicate partition ids are dropped
    /// (`partitions_used` reports the partitions actually consulted).
    pub fn query_selected_at_in(
        &self,
        snap: &PartitionedIndex,
        terms: &[TermId],
        k: usize,
        parts: &[u32],
        qid: u64,
        now: SimTime,
    ) -> BrokeredResponse {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let parts: Cow<'_, [u32]> =
            if k == 0 { Cow::Owned(Vec::new()) } else { Self::sanitize_parts(snap, parts) };
        let per_part = self.scatter(snap, terms, k, &parts, qid, now);
        self.gather(snap, terms, k, &parts, qid, now, per_part)
    }

    /// As [`Self::query_selected_at`], with engine-supplied per-partition
    /// completion times and an optional response deadline (see
    /// [`GatherTiming`]). Returns the response plus the number of
    /// partitions whose answer arrived in time — `answered < parts.len()`
    /// means a partial result.
    pub fn query_selected_timed(
        &self,
        terms: &[TermId],
        k: usize,
        parts: &[u32],
        qid: u64,
        now: SimTime,
        timing: GatherTiming<'_>,
    ) -> (BrokeredResponse, usize) {
        let snap = self.snapshot();
        self.query_selected_timed_in(&snap, terms, k, parts, qid, now, timing)
    }

    /// As [`Self::query_selected_timed`], against an explicit epoch
    /// snapshot. Degenerate inputs sanitize like
    /// [`Self::query_selected_at_in`]; each dropped partition id takes
    /// its completion entry with it so the two stay parallel.
    #[allow(clippy::too_many_arguments)]
    pub fn query_selected_timed_in(
        &self,
        snap: &PartitionedIndex,
        terms: &[TermId],
        k: usize,
        parts: &[u32],
        qid: u64,
        now: SimTime,
        timing: GatherTiming<'_>,
    ) -> (BrokeredResponse, usize) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        assert_eq!(timing.completions.len(), parts.len(), "one completion per queried partition");
        let (parts, completions): (Cow<'_, [u32]>, Cow<'_, [SimTime]>) = if k == 0 {
            (Cow::Owned(Vec::new()), Cow::Owned(Vec::new()))
        } else {
            match Self::sanitize_parts(snap, parts) {
                Cow::Borrowed(p) => (Cow::Borrowed(p), Cow::Borrowed(timing.completions)),
                Cow::Owned(clean) => {
                    // Re-filter completions with the same predicate so
                    // the two vectors stay index-parallel.
                    let mut keep = Vec::with_capacity(clean.len());
                    let mut seen: Vec<u32> = Vec::with_capacity(clean.len());
                    for (i, &p) in parts.iter().enumerate() {
                        if snap.is_active(p) && !seen.contains(&p) {
                            seen.push(p);
                            keep.push(timing.completions[i]);
                        }
                    }
                    (Cow::Owned(clean), Cow::Owned(keep))
                }
            }
        };
        let per_part = self.scatter(snap, terms, k, &parts, qid, now);
        self.gather_with(
            snap,
            terms,
            k,
            &parts,
            qid,
            now,
            per_part,
            Some(GatherTiming { completions: &completions, deadline: timing.deadline }),
        )
    }

    /// Gather in partition order: deterministic merge and latency
    /// regardless of which thread finished first. Per-shard events are
    /// emitted here (not by workers), so their order is deterministic
    /// too. Also folds each shard's measured evaluator work into the
    /// broker-wide [`ScanCounters`].
    #[allow(clippy::too_many_arguments)]
    fn gather(
        &self,
        snap: &PartitionedIndex,
        terms: &[TermId],
        k: usize,
        parts: &[u32],
        qid: u64,
        now: SimTime,
        per_part: Vec<ShardResult>,
    ) -> BrokeredResponse {
        self.gather_with(snap, terms, k, parts, qid, now, per_part, None).0
    }

    /// The one gather loop behind both the legacy and the timed paths.
    ///
    /// With `timing: None` this is bit-identical to the pre-tail-suite
    /// gather: completion is the (truncated) df-based service time and
    /// every partition merges. With timing, completion comes from the
    /// engine's latency model and the optional deadline drops late
    /// shards from the merge — busy time, the `ShardService` event, and
    /// scan counters are still charged for them, because the server did
    /// the work whether or not the broker waited for the answer.
    #[allow(clippy::too_many_arguments)]
    fn gather_with(
        &self,
        snap: &PartitionedIndex,
        terms: &[TermId],
        k: usize,
        parts: &[u32],
        qid: u64,
        now: SimTime,
        per_part: Vec<ShardResult>,
        timing: Option<GatherTiming<'_>>,
    ) -> (BrokeredResponse, usize) {
        if let Some(t) = &timing {
            assert_eq!(t.completions.len(), parts.len(), "one completion per queried partition");
        }
        // `k == 0` callers arrive with `parts` already emptied, so the
        // max(1) floor (TopK rejects capacity 0) never admits a hit.
        let mut top = TopK::new(k.max(1));
        let mut slowest: SimTime = 0;
        let mut merged_hits = 0u64;
        let mut answered = 0usize;
        for (i, &p) in parts.iter().enumerate() {
            let pu = p as usize;
            let service = self.service_time_in(snap, pu, terms);
            self.add_busy(pu, service);
            self.recorder.record(Event::ShardService {
                qid,
                now,
                partition: p,
                service_us: service,
            });
            let (hits, ev) = &per_part[i];
            self.scan.add(ev);
            let completion = match &timing {
                Some(t) => t.completions[i],
                None => service as SimTime,
            };
            if timing.as_ref().is_some_and(|t| t.deadline.is_some_and(|d| completion > d)) {
                continue; // answer arrived past the deadline: work charged, hits dropped
            }
            answered += 1;
            merged_hits += hits.len() as u64;
            let rtt =
                self.topo.rtt(self.broker_site, self.part_sites[pu], 64, hits.len() as u64 * 12);
            slowest = slowest.max(completion + rtt);
            for &(doc, score) in hits {
                top.push(doc, score);
            }
        }
        let merge = (merged_hits as f64 * US_PER_MERGE_HIT) as SimTime;
        // A partial response is released *at* the deadline (plus transit
        // of what made it, plus merge); a complete one when the slowest
        // included answer lands.
        let latency = match timing.as_ref().and_then(|t| t.deadline) {
            Some(d) if answered < parts.len() => slowest.max(d) + merge,
            _ => slowest + merge,
        };
        self.recorder.record(Event::GatherDone { qid, now, merged_hits, latency_us: latency });
        let resp = BrokeredResponse {
            hits: top
                .into_sorted_vec()
                .into_iter()
                .map(|(doc, score)| GlobalHit { doc, score })
                .collect(),
            partitions_used: parts.len(),
            latency,
        };
        (resp, answered)
    }

    /// Evaluate a batch of queries, admitting every shard task under a
    /// single pool-lock acquisition ([`ScatterPool::scatter_batch`]).
    ///
    /// Responses, counters, and the observability event stream are
    /// identical to calling [`Self::query_selected_at`] once per entry in
    /// order: each query's `ScatterDispatch` is emitted immediately
    /// before its own gather (`ShardService*`, `GatherDone`), from this
    /// coordinating thread. Only the *locking* is amortized.
    pub fn query_selected_batch(
        &self,
        batch: &[BatchQuery<'_>],
        now: SimTime,
    ) -> Vec<BrokeredResponse> {
        let snap = self.snapshot();
        self.query_selected_batch_in(&snap, batch, now)
    }

    /// As [`Self::query_selected_batch`], against an explicit epoch
    /// snapshot: the whole batch is admitted under one snapshot, so a
    /// split landing mid-batch cannot straddle two epochs within it.
    /// Per-query degenerate inputs sanitize exactly as in
    /// [`Self::query_selected_at_in`].
    pub fn query_selected_batch_in(
        &self,
        snap: &PartitionedIndex,
        batch: &[BatchQuery<'_>],
        now: SimTime,
    ) -> Vec<BrokeredResponse> {
        let sane: Vec<Cow<'_, [u32]>> = batch
            .iter()
            .map(|q| {
                if q.k == 0 {
                    Cow::Owned(Vec::new())
                } else {
                    Self::sanitize_parts(snap, &q.parts)
                }
            })
            .collect();
        let evaluated: Vec<Vec<ShardResult>> = match &self.pool {
            Some(pool) if sane.iter().map(|p| p.len()).sum::<usize>() > 1 => {
                let groups: Vec<Vec<_>> = batch
                    .iter()
                    .zip(&sane)
                    .map(|(q, parts)| {
                        let shared_terms: Arc<[TermId]> = q.terms.into();
                        parts
                            .iter()
                            .map(|&p| self.shard_task(snap, p, &shared_terms, q.k))
                            .collect()
                    })
                    .collect();
                pool.scatter_batch(groups)
            }
            _ => batch
                .iter()
                .zip(&sane)
                .map(|(q, parts)| {
                    parts
                        .iter()
                        .map(|&p| {
                            evaluate_shard(
                                &snap.shard(p as usize),
                                q.terms,
                                q.k,
                                &self.bm25,
                                self.eval,
                                self.global_stats.as_deref(),
                            )
                        })
                        .collect()
                })
                .collect(),
        };
        batch
            .iter()
            .zip(&sane)
            .zip(evaluated)
            .map(|((q, parts), per_part)| {
                self.queries.fetch_add(1, Ordering::Relaxed);
                self.recorder.record(Event::ScatterDispatch {
                    qid: q.qid,
                    now,
                    partitions: parts.len() as u32,
                });
                self.gather(snap, q.terms, q.k, parts, q.qid, now, per_part)
            })
            .collect()
    }

    /// Batch convenience over all active partitions (standalone-broker
    /// path: sim clock at 0, query keys computed only when someone
    /// listens).
    pub fn query_batch(&self, queries: &[Vec<TermId>], k: usize) -> Vec<BrokeredResponse> {
        let snap = self.snapshot();
        let all = snap.active_parts();
        let batch: Vec<BatchQuery<'_>> = queries
            .iter()
            .map(|terms| BatchQuery {
                terms,
                k,
                parts: all.clone(),
                qid: if self.recorder.is_live() { crate::engine::query_key(terms) } else { 0 },
            })
            .collect();
        self.query_selected_batch_in(&snap, &batch, 0)
    }

    fn add_busy(&self, p: usize, amount: f64) {
        let cell = &self.busy[p];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + amount).to_bits();
            match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Accumulated busy time per partition server (µs).
    pub fn busy_time(&self) -> Vec<f64> {
        self.busy.iter().map(|b| f64::from_bits(b.load(Ordering::Relaxed))).collect()
    }

    /// Busy time normalized by its mean — the Figure 2 y-axis (dashed line
    /// at 1.0).
    pub fn busy_load_normalized(&self) -> Vec<f64> {
        let busy = self.busy_time();
        if busy.is_empty() {
            // Unreachable through the constructors (a zero-partition
            // index is rejected), but a division by zero here would
            // poison every downstream load statistic with NaN.
            return Vec::new();
        }
        let mean = busy.iter().sum::<f64>() / busy.len() as f64;
        if mean <= 0.0 {
            return vec![0.0; busy.len()];
        }
        busy.iter().map(|&b| b / mean).collect()
    }

    /// Queries processed so far.
    pub fn queries_processed(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwr_partition::doc::{DocPartitioner, RoundRobinPartitioner};
    use dwr_partition::parted::Corpus;
    use dwr_partition::quality::global_top_k;

    fn corpus() -> Corpus {
        (0..40u32).map(|d| vec![(TermId(d % 7), 1 + d % 3), (TermId(100 + d % 5), 1)]).collect()
    }

    fn parted(k: usize) -> (Corpus, PartitionedIndex) {
        let c = corpus();
        let a = RoundRobinPartitioner.assign(&c, k);
        let pi = PartitionedIndex::build(&c, &a, k);
        (c, pi)
    }

    #[test]
    fn brokered_results_match_monolithic_set() {
        let (c, pi) = parted(4);
        let broker = DocBroker::single_site(&pi);
        let terms = [TermId(1), TermId(100)];
        let got: Vec<u32> = broker.query(&terms, 10).hits.iter().map(|h| h.doc).collect();
        let want = global_top_k(&c, &terms, 10);
        // Local statistics may permute near-ties; the *sets* must agree.
        let mut gs = got.clone();
        let mut ws = want.clone();
        gs.sort_unstable();
        ws.sort_unstable();
        assert_eq!(gs, ws);
    }

    #[test]
    fn busy_load_balanced_under_round_robin() {
        let (_, pi) = parted(8);
        let broker = DocBroker::single_site(&pi);
        for q in 0..200u32 {
            broker.query(&[TermId(q % 7), TermId(100 + q % 5)], 10);
        }
        let norm = broker.busy_load_normalized();
        for &l in &norm {
            assert!((l - 1.0).abs() < 0.25, "{norm:?}");
        }
    }

    #[test]
    fn selection_reduces_partitions_and_latency() {
        let (_, pi) = parted(4);
        let sel = dwr_partition::select::CoriSelector::from_partitions(&pi);
        let broker = DocBroker::single_site(&pi);
        let terms = [TermId(1)];
        let full = broker.query(&terms, 10);
        let selective = broker.query_with_selection(&terms, 10, &sel, 2);
        assert_eq!(full.partitions_used, 4);
        assert_eq!(selective.partitions_used, 2);
        assert!(selective.hits.len() <= full.hits.len() || !full.hits.is_empty());
    }

    #[test]
    fn latency_includes_network() {
        let (_, pi) = parted(2);
        let lan_broker = DocBroker::single_site(&pi);
        let wan_topo = Topology::geo_ring(3);
        let wan_broker = DocBroker::new(&pi, wan_topo, SiteId(0), vec![SiteId(1), SiteId(2)]);
        let terms = [TermId(2)];
        let l = lan_broker.query(&terms, 10).latency;
        let w = wan_broker.query(&terms, 10).latency;
        assert!(w > l, "wan={w} lan={l}");
    }

    #[test]
    fn busy_time_accrues_only_on_queried_partitions() {
        let (_, pi) = parted(4);
        let broker = DocBroker::single_site(&pi);
        broker.query_selected(&[TermId(1)], 10, &[0, 1]);
        let busy = broker.busy_time();
        assert!(busy[0] > 0.0 && busy[1] > 0.0);
        assert_eq!(busy[2], 0.0);
        assert_eq!(busy[3], 0.0);
    }

    #[test]
    fn empty_query_is_harmless() {
        let (_, pi) = parted(2);
        let broker = DocBroker::single_site(&pi);
        let r = broker.query(&[], 10);
        assert!(r.hits.is_empty());
    }

    #[test]
    fn broker_is_send_sync_and_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>(_: &T) {}
        let (_, pi) = parted(4);
        let broker = std::sync::Arc::new(DocBroker::single_site(&pi));
        assert_send_sync(&*broker);
        let baseline = broker.query(&[TermId(1)], 10).hits;
        std::thread::scope(|s| {
            for _ in 0..4 {
                let broker = std::sync::Arc::clone(&broker);
                let baseline = baseline.clone();
                s.spawn(move || {
                    for _ in 0..25 {
                        assert_eq!(broker.query(&[TermId(1)], 10).hits, baseline);
                    }
                });
            }
        });
        // 1 baseline + 4 threads × 25 queries, all accounted atomically.
        assert_eq!(broker.queries_processed(), 101);
    }

    #[test]
    fn strategy_is_transparent_to_results_but_not_to_work() {
        let (_, pi) = parted(4);
        let ex = DocBroker::single_site(&pi).with_strategy(EvalStrategy::Exhaustive);
        let ms = DocBroker::single_site(&pi).with_strategy(EvalStrategy::MaxScore);
        assert_eq!(ex.strategy(), EvalStrategy::Exhaustive);
        assert_eq!(ms.strategy(), EvalStrategy::MaxScore);
        for q in 0..60u32 {
            let terms = [TermId(q % 7), TermId(100 + q % 5)];
            let a = ex.query(&terms, 3);
            let b = ms.query(&terms, 3);
            assert_eq!(a.hits, b.hits, "query {q}");
            assert_eq!(a.latency, b.latency, "query {q}");
        }
        assert_eq!(ex.busy_time(), ms.busy_time());
        let (we, wm) = (ex.eval_stats(), ms.eval_stats());
        assert!(we.postings_scanned > 0);
        assert!(
            wm.postings_scanned <= we.postings_scanned,
            "pruned evaluator never scans more: {} vs {}",
            wm.postings_scanned,
            we.postings_scanned
        );
    }

    #[test]
    fn batch_matches_query_at_a_time_loop() {
        let (_, pi) = parted(4);
        let seq = DocBroker::single_site(&pi);
        let batched = DocBroker::single_site(&pi);
        let queries: Vec<Vec<TermId>> =
            (0..30u32).map(|q| vec![TermId(q % 7), TermId(100 + q % 5)]).collect();
        let loop_resps: Vec<BrokeredResponse> = queries.iter().map(|t| seq.query(t, 5)).collect();
        let batch_resps = batched.query_batch(&queries, 5);
        assert_eq!(loop_resps.len(), batch_resps.len());
        for (i, (a, b)) in loop_resps.iter().zip(&batch_resps).enumerate() {
            assert_eq!(a.hits, b.hits, "query {i}");
            assert_eq!(a.latency, b.latency, "query {i}");
            assert_eq!(a.partitions_used, b.partitions_used, "query {i}");
        }
        assert_eq!(seq.busy_time(), batched.busy_time());
        assert_eq!(seq.queries_processed(), batched.queries_processed());
        assert_eq!(seq.eval_stats(), batched.eval_stats());
    }

    #[test]
    fn pooled_batch_matches_inline_batch() {
        let (_, pi) = parted(8);
        let inline = DocBroker::single_site(&pi);
        let pooled = DocBroker::single_site(&pi).parallel(4);
        let queries: Vec<Vec<TermId>> =
            (0..40u32).map(|q| vec![TermId(q % 7), TermId(100 + q % 5)]).collect();
        let a = inline.query_batch(&queries, 10);
        let b = pooled.query_batch(&queries, 10);
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(x.hits, y.hits, "query {i}");
            assert_eq!(x.latency, y.latency, "query {i}");
        }
        assert_eq!(inline.busy_time(), pooled.busy_time());
        assert_eq!(inline.eval_stats(), pooled.eval_stats());
    }

    #[test]
    fn empty_batch_and_empty_queries_are_harmless() {
        let (_, pi) = parted(2);
        let broker = DocBroker::single_site(&pi);
        assert!(broker.query_batch(&[], 10).is_empty());
        let r = broker.query_batch(&[vec![], vec![TermId(1)]], 10);
        assert_eq!(r.len(), 2);
        assert!(r[0].hits.is_empty());
        assert!(!r[1].hits.is_empty());
    }

    #[test]
    fn timed_gather_with_service_completions_matches_legacy() {
        let (_, pi) = parted(4);
        let legacy = DocBroker::single_site(&pi);
        let timed = DocBroker::single_site(&pi);
        let terms = [TermId(1), TermId(100)];
        let parts = [0u32, 1, 2, 3];
        let completions: Vec<SimTime> =
            parts.iter().map(|&p| timed.service_time(p as usize, &terms) as SimTime).collect();
        let a = legacy.query_selected(&terms, 10, &parts);
        let (b, answered) = timed.query_selected_timed(
            &terms,
            10,
            &parts,
            0,
            0,
            GatherTiming { completions: &completions, deadline: None },
        );
        assert_eq!(answered, 4, "no deadline: every partition answers");
        assert_eq!(a.hits, b.hits);
        assert_eq!(a.latency, b.latency, "service-time completions reproduce the legacy model");
        assert_eq!(legacy.busy_time(), timed.busy_time());
    }

    #[test]
    fn deadline_drops_late_shards_but_charges_their_work() {
        let (_, pi) = parted(4);
        let b = DocBroker::single_site(&pi);
        let terms = [TermId(1), TermId(100)];
        let parts = [0u32, 1, 2, 3];
        // Partitions 1 and 3 straggle far past the deadline.
        let completions = [300, 9_000, 300, 9_000];
        let full = DocBroker::single_site(&pi).query_selected(&terms, 40, &parts);
        let (partial, answered) = b.query_selected_timed(
            &terms,
            40,
            &parts,
            0,
            0,
            GatherTiming { completions: &completions, deadline: Some(1_000) },
        );
        assert_eq!(answered, 2);
        // Round-robin assignment: doc % 4 names the partition, so the
        // late partitions' documents must be absent from the merge.
        assert!(!partial.hits.is_empty());
        assert!(partial.hits.iter().all(|h| h.doc % 4 == 0 || h.doc % 4 == 2), "{partial:?}");
        assert!(partial.hits.len() < full.hits.len());
        // The stragglers' work is still charged: they did serve the query.
        assert!(b.busy_time().iter().all(|&t| t > 0.0), "{:?}", b.busy_time());
        // A partial response is released at the deadline, not before.
        assert!(partial.latency >= 1_000);
    }

    #[test]
    fn k_zero_answers_empty_without_touching_shards() {
        let (_, pi) = parted(4);
        let broker = DocBroker::single_site(&pi);
        let r = broker.query(&[TermId(1)], 0);
        assert!(r.hits.is_empty(), "k=0 must not smuggle a hit through the TopK floor");
        assert_eq!(r.partitions_used, 0);
        assert_eq!(r.latency, 0);
        assert!(broker.busy_time().iter().all(|&b| b == 0.0), "no shard consulted");
        assert_eq!(broker.queries_processed(), 1, "the query itself is still counted");
        // Same through the explicit-selection and timed paths.
        let r = broker.query_selected(&[TermId(1)], 0, &[0, 1]);
        assert!(r.hits.is_empty() && r.partitions_used == 0);
        let (r, answered) = broker.query_selected_timed(
            &[TermId(1)],
            0,
            &[0, 1],
            0,
            0,
            GatherTiming { completions: &[100, 100], deadline: Some(1_000) },
        );
        assert!(r.hits.is_empty() && answered == 0);
    }

    #[test]
    fn degenerate_part_lists_are_sanitized_not_panicked() {
        let (_, pi) = parted(4);
        let broker = DocBroker::single_site(&pi);
        let terms = [TermId(1), TermId(100)];
        let clean = broker.query_selected(&terms, 10, &[0, 1, 2, 3]);
        // Out-of-range ids are dropped, not a panic.
        let oob = broker.query_selected(&terms, 10, &[0, 99, 1, 2, 7, 3]);
        assert_eq!(oob.hits, clean.hits);
        assert_eq!(oob.partitions_used, 4, "only real partitions counted");
        // Duplicates collapse: no document answered twice, busy charged once.
        let fresh = DocBroker::single_site(&pi);
        let dup = fresh.query_selected(&terms, 10, &[2, 2, 2]);
        let once = DocBroker::single_site(&pi).query_selected(&terms, 10, &[2]);
        assert_eq!(dup.hits, once.hits);
        assert_eq!(dup.partitions_used, 1);
        assert_eq!(fresh.busy_time()[2], broker_busy_once(&pi, &terms));
        // k > #docs is simply a deep request.
        let deep = broker.query_selected(&terms, 10_000, &[0, 1, 2, 3]);
        assert!(deep.hits.len() <= 40);
        // Empty part list answers empty.
        let none = broker.query_selected(&terms, 10, &[]);
        assert!(none.hits.is_empty() && none.partitions_used == 0);
    }

    fn broker_busy_once(pi: &PartitionedIndex, terms: &[TermId]) -> f64 {
        let b = DocBroker::single_site(pi);
        b.query_selected(terms, 10, &[2]);
        b.busy_time()[2]
    }

    #[test]
    fn timed_gather_sanitizes_parts_and_completions_together() {
        let (_, pi) = parted(4);
        let broker = DocBroker::single_site(&pi);
        let terms = [TermId(1), TermId(100)];
        // Partition 9 does not exist; its (late) completion must vanish
        // with it instead of being attributed to a real partition.
        let (r, answered) = broker.query_selected_timed(
            &terms,
            10,
            &[0, 9, 1],
            0,
            0,
            GatherTiming { completions: &[100, 9_999_999, 100], deadline: Some(1_000) },
        );
        assert_eq!(answered, 2, "both real partitions answer in time");
        assert_eq!(r.partitions_used, 2);
    }

    #[test]
    fn live_broker_matches_static_oracle_at_every_epoch() {
        use dwr_partition::repart::{RepartIndex, SplitFate};
        let c = corpus();
        let a = RoundRobinPartitioner.assign(&c, 4);
        let repart = Arc::new(RepartIndex::build(c, &a, 4, 16));
        let live = DocBroker::live(&repart);
        assert_eq!(live.slots(), 16);
        for round in 0..3 {
            // Static oracle over the *current* epoch, scoring with the
            // same corpus-wide statistics.
            let oracle =
                DocBroker::single_site(&live.snapshot()).with_global_stats(repart.corpus_stats());
            for q in 0..30u32 {
                let terms = [TermId(q % 7), TermId(100 + q % 5)];
                let l = live.query(&terms, 10);
                let o = oracle.query(&terms, 10);
                assert_eq!(l.hits, o.hits, "round {round} query {q}");
            }
            let target = repart.split_target().expect("splittable");
            repart.split(target, SplitFate::Commit).expect("split");
        }
        // After splits, the live broker scatters over active parts only:
        // every doc exactly once.
        let all: Vec<u32> = live.query(&[TermId(0)], 40).hits.iter().map(|h| h.doc).collect();
        let mut sorted = all.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), all.len(), "no document answered twice");
    }

    #[test]
    fn parallel_scatter_is_bit_identical_to_sequential() {
        let (_, pi) = parted(8);
        let seq = DocBroker::single_site(&pi);
        let par = DocBroker::single_site(&pi).parallel(4);
        assert!(par.is_parallel() && !seq.is_parallel());
        for q in 0..50u32 {
            let terms = [TermId(q % 7), TermId(100 + q % 5)];
            let a = seq.query(&terms, 10);
            let b = par.query(&terms, 10);
            assert_eq!(a.hits, b.hits, "query {q}");
            assert_eq!(a.latency, b.latency, "query {q}");
            assert_eq!(a.partitions_used, b.partitions_used);
        }
        assert_eq!(seq.busy_time(), par.busy_time());
    }
}
