//! Document-partitioned scatter-gather evaluation.
//!
//! "In the case of a document partitioned system, query processors send
//! the query results to the coordinator, which merges and detects the top
//! ranked results (...) the response time in a document partitioned system
//! depends on the response time of its slowest component" (Section 5).
//!
//! The broker scatter-gathers over a [`PartitionedIndex`], optionally
//! restricted to the top-`m` partitions of a collection selector, and
//! accounts per-server *busy time* — the quantity Figure 2 plots.

use dwr_partition::parted::PartitionedIndex;
use dwr_partition::select::CollectionSelector;
use dwr_sim::net::{SiteId, Topology};
use dwr_sim::SimTime;
use dwr_text::score::Bm25;
use dwr_text::search::search_or;
use dwr_text::topk::TopK;
use dwr_text::TermId;

/// Cost of scanning one posting, in µs (the CPU/disk work unit).
pub const US_PER_POSTING: f64 = 0.5;
/// Fixed per-query overhead on a query processor, in µs.
pub const US_PER_QUERY_FIXED: f64 = 200.0;
/// Broker-side merge cost per received hit, in µs.
pub const US_PER_MERGE_HIT: f64 = 1.0;

/// One globally-identified result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlobalHit {
    /// Global document id.
    pub doc: u32,
    /// BM25 score (local statistics).
    pub score: f32,
}

/// Outcome of one brokered query.
#[derive(Debug, Clone)]
pub struct BrokeredResponse {
    /// Merged top-k, best first.
    pub hits: Vec<GlobalHit>,
    /// Partitions actually queried.
    pub partitions_used: usize,
    /// Response latency: slowest partition (service + round trip) plus
    /// merge time.
    pub latency: SimTime,
}

/// The document-partition broker.
pub struct DocBroker<'a> {
    index: &'a PartitionedIndex,
    topo: Topology,
    broker_site: SiteId,
    /// Site of each partition server.
    part_sites: Vec<SiteId>,
    bm25: Bm25,
    /// Accumulated busy time per partition server, µs.
    busy: Vec<f64>,
    /// Queries processed.
    queries: u64,
}

impl<'a> DocBroker<'a> {
    /// Create a broker over `index`. `part_sites[p]` locates partition `p`.
    pub fn new(
        index: &'a PartitionedIndex,
        topo: Topology,
        broker_site: SiteId,
        part_sites: Vec<SiteId>,
    ) -> Self {
        assert_eq!(part_sites.len(), index.num_partitions());
        let busy = vec![0.0; index.num_partitions()];
        DocBroker { index, topo, broker_site, part_sites, bm25: Bm25::default(), busy, queries: 0 }
    }

    /// Single-site convenience constructor (everything on one LAN).
    pub fn single_site(index: &'a PartitionedIndex) -> Self {
        let sites = vec![SiteId(0); index.num_partitions()];
        Self::new(index, Topology::single_site(), SiteId(0), sites)
    }

    /// The service time partition `p` spends on `terms`: posting volume
    /// touched plus fixed overhead.
    pub fn service_time(&self, p: usize, terms: &[TermId]) -> f64 {
        let postings: u64 = terms.iter().map(|&t| u64::from(self.index.part(p).df(t))).sum();
        US_PER_QUERY_FIXED + postings as f64 * US_PER_POSTING
    }

    /// Evaluate a query over all partitions.
    pub fn query(&mut self, terms: &[TermId], k: usize) -> BrokeredResponse {
        let all: Vec<u32> = (0..self.index.num_partitions() as u32).collect();
        self.query_selected(terms, k, &all)
    }

    /// Evaluate a query over the top-`m` partitions of `selector`.
    pub fn query_with_selection(
        &mut self,
        terms: &[TermId],
        k: usize,
        selector: &dyn CollectionSelector,
        m: usize,
    ) -> BrokeredResponse {
        let chosen: Vec<u32> = selector.rank(terms).into_iter().take(m).map(|(p, _)| p).collect();
        self.query_selected(terms, k, &chosen)
    }

    /// Evaluate a query over an explicit partition set.
    pub fn query_selected(&mut self, terms: &[TermId], k: usize, parts: &[u32]) -> BrokeredResponse {
        self.queries += 1;
        let mut top = TopK::new(k.max(1));
        let mut slowest: SimTime = 0;
        let mut merged_hits = 0u64;
        for &p in parts {
            let pu = p as usize;
            let idx = self.index.part(pu);
            let service = self.service_time(pu, terms);
            self.busy[pu] += service;
            let hits = search_or(idx, terms, k, &self.bm25, idx);
            merged_hits += hits.len() as u64;
            let rtt = self.topo.rtt(self.broker_site, self.part_sites[pu], 64, hits.len() as u64 * 12);
            slowest = slowest.max(service as SimTime + rtt);
            for h in hits {
                top.push(self.index.to_global(pu, h.doc), h.score);
            }
        }
        let merge = (merged_hits as f64 * US_PER_MERGE_HIT) as SimTime;
        BrokeredResponse {
            hits: top
                .into_sorted_vec()
                .into_iter()
                .map(|(doc, score)| GlobalHit { doc, score })
                .collect(),
            partitions_used: parts.len(),
            latency: slowest + merge,
        }
    }

    /// Accumulated busy time per partition server (µs).
    pub fn busy_time(&self) -> &[f64] {
        &self.busy
    }

    /// Busy time normalized by its mean — the Figure 2 y-axis (dashed line
    /// at 1.0).
    pub fn busy_load_normalized(&self) -> Vec<f64> {
        let mean = self.busy.iter().sum::<f64>() / self.busy.len() as f64;
        if mean <= 0.0 {
            return vec![0.0; self.busy.len()];
        }
        self.busy.iter().map(|&b| b / mean).collect()
    }

    /// Queries processed so far.
    pub fn queries_processed(&self) -> u64 {
        self.queries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwr_partition::doc::{DocPartitioner, RoundRobinPartitioner};
    use dwr_partition::parted::Corpus;
    use dwr_partition::quality::global_top_k;

    fn corpus() -> Corpus {
        (0..40u32)
            .map(|d| vec![(TermId(d % 7), 1 + d % 3), (TermId(100 + d % 5), 1)])
            .collect()
    }

    fn parted(k: usize) -> (Corpus, PartitionedIndex) {
        let c = corpus();
        let a = RoundRobinPartitioner.assign(&c, k);
        let pi = PartitionedIndex::build(&c, &a, k);
        (c, pi)
    }

    #[test]
    fn brokered_results_match_monolithic_set() {
        let (c, pi) = parted(4);
        let mut broker = DocBroker::single_site(&pi);
        let terms = [TermId(1), TermId(100)];
        let got: Vec<u32> = broker.query(&terms, 10).hits.iter().map(|h| h.doc).collect();
        let want = global_top_k(&c, &terms, 10);
        // Local statistics may permute near-ties; the *sets* must agree.
        let mut gs = got.clone();
        let mut ws = want.clone();
        gs.sort_unstable();
        ws.sort_unstable();
        assert_eq!(gs, ws);
    }

    #[test]
    fn busy_load_balanced_under_round_robin() {
        let (_, pi) = parted(8);
        let mut broker = DocBroker::single_site(&pi);
        for q in 0..200u32 {
            broker.query(&[TermId(q % 7), TermId(100 + q % 5)], 10);
        }
        let norm = broker.busy_load_normalized();
        for &l in &norm {
            assert!((l - 1.0).abs() < 0.25, "{norm:?}");
        }
    }

    #[test]
    fn selection_reduces_partitions_and_latency() {
        let (_, pi) = parted(4);
        let sel = dwr_partition::select::CoriSelector::from_partitions(&pi);
        let mut broker = DocBroker::single_site(&pi);
        let terms = [TermId(1)];
        let full = broker.query(&terms, 10);
        let selective = broker.query_with_selection(&terms, 10, &sel, 2);
        assert_eq!(full.partitions_used, 4);
        assert_eq!(selective.partitions_used, 2);
        assert!(selective.hits.len() <= full.hits.len() || !full.hits.is_empty());
    }

    #[test]
    fn latency_includes_network() {
        let (_, pi) = parted(2);
        let lan = DocBroker::single_site(&pi);
        let mut lan_broker = lan;
        let wan_topo = Topology::geo_ring(3);
        let mut wan_broker = DocBroker::new(
            &pi,
            wan_topo,
            SiteId(0),
            vec![SiteId(1), SiteId(2)],
        );
        let terms = [TermId(2)];
        let l = lan_broker.query(&terms, 10).latency;
        let w = wan_broker.query(&terms, 10).latency;
        assert!(w > l, "wan={w} lan={l}");
    }

    #[test]
    fn busy_time_accrues_only_on_queried_partitions() {
        let (_, pi) = parted(4);
        let mut broker = DocBroker::single_site(&pi);
        broker.query_selected(&[TermId(1)], 10, &[0, 1]);
        let busy = broker.busy_time();
        assert!(busy[0] > 0.0 && busy[1] > 0.0);
        assert_eq!(busy[2], 0.0);
        assert_eq!(busy[3], 0.0);
    }

    #[test]
    fn empty_query_is_harmless() {
        let (_, pi) = parted(2);
        let mut broker = DocBroker::single_site(&pi);
        let r = broker.query(&[], 10);
        assert!(r.hits.is_empty());
    }
}
