//! # dwr-query — distributed query processing (Section 5)
//!
//! The paper's query-processing model has three component roles —
//! coordinator, cache, query processor — spread over sites. This crate
//! implements the whole stack:
//!
//! * [`broker`] — document-partitioned scatter-gather with per-server
//!   busy-time accounting (the left panel of Figure 2), optional
//!   collection selection, and hierarchical merge;
//! * [`pipeline`] — term-partitioned *pipelined* evaluation (Webber et al.
//!   \[16\]; right panel of Figure 2), where a query visits exactly the
//!   servers holding its terms and busy load concentrates on the servers
//!   owning popular terms;
//! * [`cache`] — result caching: LRU, LFU and SDC (static-dynamic, Fagni
//!   et al. \[51\]), including serving stale results during backend outages
//!   ("upon query processor failures, the system returns cached results");
//! * [`replica`] — replica groups with failover dispatch, and a
//!   primary-backup replicated user-profile store for personalization
//!   state (Section 5's consistency discussion);
//! * [`route`] — selective search on the serving path: a
//!   [`route::ShardRouter`] wraps a collection selector, contacts only
//!   the top-*t* shards per query with a recall-safe broadening cascade,
//!   snapshots selector statistics per epoch (so routing composes with
//!   live repartitioning), and retrains profiles on topic drift;
//! * [`site`] — multi-site routing: geographic (DNS-style) routing,
//!   load-aware offloading across time zones \[33\], and site-failure
//!   failover;
//! * [`multisite`] — the *live* site tier: a [`multisite::MultiSiteEngine`]
//!   owns one fault-injected engine per site plus a WAN topology, drives
//!   per-site liveness from `dwr_avail::site::Site` outage traces, and
//!   serves queries end-to-end with nearest-live routing, budgeted WAN
//!   failover, and explicit load shedding;
//! * [`incremental`] — incremental result delivery: fast processors answer
//!   first, remote ones top up later;
//! * [`hierarchy`] — flat vs. tree-of-coordinators result merging ("it is
//!   possible to use a hierarchy of coordinators");
//! * [`arch`] — the client/server vs. peer-to-peer vs. federated vs. open
//!   capacity model of Section 5's four-attribute classification;
//! * [`routing`] — topic-based routing under query-topic drift \[35\], with
//!   automatic reconfiguration;
//! * [`personalize`] — server-side (replicated state) vs. client-side
//!   (thin layer) personalization, Section 5's privacy/consistency
//!   trade-off;
//! * [`faults`] — query-time fault injection: [`faults::FaultSchedule`]
//!   materializes per-replica outage intervals from
//!   `dwr_avail::UpDownProcess` and drives engine replica state as
//!   simulated time advances, with hedged retries on mid-query deaths;
//! * [`scatter`] — a fixed worker pool with deterministic in-order
//!   gather, the substrate of true parallel scatter-gather;
//! * [`straggler`] — heavy-tailed per-(partition, replica, query)
//!   service-time inflation (lognormal body, bounded-Pareto tail) with the
//!   same label-forked determinism discipline as [`faults`], feeding the
//!   engine's tail-tolerance policies ([`engine::HedgePolicy`]);
//! * [`engine`] — the assembled distributed engine: cache in front of a
//!   selector in front of replicated partitions, with degradation
//!   accounting. The broker and engine are `Send + Sync` with `&self`
//!   query methods, so threads share one engine behind an `Arc`.

pub mod arch;
pub mod broker;
pub mod cache;
pub mod engine;
pub mod faults;
pub mod hierarchy;
pub mod incremental;
pub mod multisite;
pub mod personalize;
pub mod pipeline;
pub mod replica;
pub mod route;
pub mod routing;
pub mod scatter;
pub mod site;
pub mod straggler;

pub use broker::DocBroker;
pub use cache::{LfuCache, LruCache, ResultCache, SdcCache, ShardedCache};
pub use engine::DistributedEngine;
pub use engine::HedgePolicy;
pub use faults::FaultSchedule;
pub use multisite::{MultiSiteConfig, MultiSiteEngine, MultiSiteStats, SiteEngineSpec};
pub use pipeline::PipelinedTermEngine;
pub use route::{DriftRefresh, RouteSource, RouterStats, ShardRouter};
pub use scatter::ScatterPool;
pub use straggler::{StragglerModel, TailParams};
