//! Incremental query processing.
//!
//! "One way to mitigate this problem is to adopt an incremental query
//! processing approach, where the faster query processors provide an
//! initial set of results. Other remote query processors provide
//! additional results with a higher latency and users continuously obtain
//! new results" (Section 5). This module models the completeness/latency
//! trade-off: given per-partition response latencies, how much of the
//! final merged top-k is already correct at each deadline?

use crate::broker::GlobalHit;
use dwr_sim::SimTime;
use dwr_text::topk::TopK;

/// One partition's contribution and when it arrives.
#[derive(Debug, Clone)]
pub struct PartitionArrival {
    /// When this partition's results reach the coordinator.
    pub at: SimTime,
    /// Its local top hits (global ids).
    pub hits: Vec<GlobalHit>,
}

/// Merge the hits available at time `deadline` into a top-k.
pub fn results_at(arrivals: &[PartitionArrival], deadline: SimTime, k: usize) -> Vec<GlobalHit> {
    let mut top = TopK::new(k.max(1));
    for a in arrivals {
        if a.at <= deadline {
            for h in &a.hits {
                top.push(h.doc, h.score);
            }
        }
    }
    top.into_sorted_vec().into_iter().map(|(doc, score)| GlobalHit { doc, score }).collect()
}

/// Completeness of the deadline-limited result set: fraction of the final
/// (all-arrivals) top-k already present at `deadline`.
pub fn completeness_at(arrivals: &[PartitionArrival], deadline: SimTime, k: usize) -> f64 {
    let final_set: std::collections::HashSet<u32> =
        results_at(arrivals, SimTime::MAX, k).iter().map(|h| h.doc).collect();
    if final_set.is_empty() {
        return 1.0;
    }
    let now: std::collections::HashSet<u32> =
        results_at(arrivals, deadline, k).iter().map(|h| h.doc).collect();
    now.intersection(&final_set).count() as f64 / final_set.len() as f64
}

/// The completeness curve over a set of deadlines, plus the latency of
/// full completeness.
#[derive(Debug, Clone, PartialEq)]
pub struct IncrementalProfile {
    /// `(deadline, completeness)` pairs, deadlines ascending.
    pub curve: Vec<(SimTime, f64)>,
    /// Time of the last arrival (full results).
    pub full_at: SimTime,
}

/// Profile an incremental evaluation across `steps` evenly spaced
/// deadlines up to the slowest arrival.
pub fn profile(arrivals: &[PartitionArrival], k: usize, steps: usize) -> IncrementalProfile {
    assert!(steps >= 2);
    let full_at = arrivals.iter().map(|a| a.at).max().unwrap_or(0);
    let curve = (0..steps)
        .map(|i| {
            let t = full_at * i as u64 / (steps as u64 - 1);
            (t, completeness_at(arrivals, t, k))
        })
        .collect();
    IncrementalProfile { curve, full_at }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arrivals() -> Vec<PartitionArrival> {
        vec![
            PartitionArrival {
                at: 10,
                hits: vec![GlobalHit { doc: 1, score: 5.0 }, GlobalHit { doc: 2, score: 1.0 }],
            },
            PartitionArrival { at: 100, hits: vec![GlobalHit { doc: 3, score: 4.0 }] },
            PartitionArrival {
                at: 1000,
                hits: vec![GlobalHit { doc: 4, score: 3.0 }, GlobalHit { doc: 5, score: 0.5 }],
            },
        ]
    }

    #[test]
    fn results_accumulate_over_time() {
        let a = arrivals();
        assert_eq!(results_at(&a, 0, 10).len(), 0);
        assert_eq!(results_at(&a, 10, 10).len(), 2);
        assert_eq!(results_at(&a, 100, 10).len(), 3);
        assert_eq!(results_at(&a, 1000, 10).len(), 5);
    }

    #[test]
    fn completeness_monotone() {
        let a = arrivals();
        let c0 = completeness_at(&a, 0, 4);
        let c1 = completeness_at(&a, 10, 4);
        let c2 = completeness_at(&a, 100, 4);
        let c3 = completeness_at(&a, 1000, 4);
        assert!(c0 <= c1 && c1 <= c2 && c2 <= c3);
        assert_eq!(c3, 1.0);
    }

    #[test]
    fn early_deadline_can_be_mostly_complete() {
        let a = arrivals();
        // Top-2 of the final merge is docs 1 and 3; at t=10 only doc 1 is
        // present → 50% complete on k=2.
        let c = completeness_at(&a, 10, 2);
        assert!((c - 0.5).abs() < 1e-12);
    }

    #[test]
    fn late_results_can_displace_early_ones() {
        // Doc 4 (score 3.0) displaces doc 2 (1.0) from the top-3.
        let a = arrivals();
        let early: Vec<u32> = results_at(&a, 10, 3).iter().map(|h| h.doc).collect();
        let fin: Vec<u32> = results_at(&a, 1000, 3).iter().map(|h| h.doc).collect();
        assert!(early.contains(&2));
        assert!(!fin.contains(&2));
        assert!(fin.contains(&4));
    }

    #[test]
    fn profile_shape() {
        let a = arrivals();
        let p = profile(&a, 4, 5);
        assert_eq!(p.full_at, 1000);
        assert_eq!(p.curve.len(), 5);
        assert_eq!(p.curve.last().unwrap().1, 1.0);
        assert!(p.curve.windows(2).all(|w| w[0].1 <= w[1].1 + 1e-12));
    }

    #[test]
    fn empty_arrivals_are_complete() {
        assert_eq!(completeness_at(&[], 0, 10), 1.0);
    }
}
