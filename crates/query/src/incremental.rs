//! Incremental query processing.
//!
//! "One way to mitigate this problem is to adopt an incremental query
//! processing approach, where the faster query processors provide an
//! initial set of results. Other remote query processors provide
//! additional results with a higher latency and users continuously obtain
//! new results" (Section 5). This module models the completeness/latency
//! trade-off: given per-partition response latencies, how much of the
//! final merged top-k is already correct at each deadline?

use crate::broker::GlobalHit;
use dwr_sim::SimTime;
use dwr_text::topk::TopK;

/// One partition's contribution and when it arrives.
#[derive(Debug, Clone)]
pub struct PartitionArrival {
    /// When this partition's results reach the coordinator.
    pub at: SimTime,
    /// Its local top hits (global ids).
    pub hits: Vec<GlobalHit>,
}

/// Merge the hits available at time `deadline` into a top-k.
///
/// `k = 0` asks for no results and returns none (the underlying
/// accumulator rejects top-0, so it is answered here).
pub fn results_at(arrivals: &[PartitionArrival], deadline: SimTime, k: usize) -> Vec<GlobalHit> {
    if k == 0 {
        return Vec::new();
    }
    let mut top = TopK::new(k);
    for a in arrivals {
        if a.at <= deadline {
            for h in &a.hits {
                top.push(h.doc, h.score);
            }
        }
    }
    top.into_sorted_vec().into_iter().map(|(doc, score)| GlobalHit { doc, score }).collect()
}

/// Completeness of the deadline-limited result set: fraction of the final
/// (all-arrivals) top-k already present at `deadline`.
pub fn completeness_at(arrivals: &[PartitionArrival], deadline: SimTime, k: usize) -> f64 {
    let final_set: std::collections::HashSet<u32> =
        results_at(arrivals, SimTime::MAX, k).iter().map(|h| h.doc).collect();
    if final_set.is_empty() {
        return 1.0;
    }
    let now: std::collections::HashSet<u32> =
        results_at(arrivals, deadline, k).iter().map(|h| h.doc).collect();
    now.intersection(&final_set).count() as f64 / final_set.len() as f64
}

/// The completeness curve over a set of deadlines, plus the latency of
/// full completeness.
#[derive(Debug, Clone, PartialEq)]
pub struct IncrementalProfile {
    /// `(deadline, completeness)` pairs, deadlines ascending.
    pub curve: Vec<(SimTime, f64)>,
    /// Time of the last arrival (full results).
    pub full_at: SimTime,
}

/// Profile an incremental evaluation across `steps` evenly spaced
/// deadlines up to the slowest arrival.
pub fn profile(arrivals: &[PartitionArrival], k: usize, steps: usize) -> IncrementalProfile {
    assert!(steps >= 2);
    let full_at = arrivals.iter().map(|a| a.at).max().unwrap_or(0);
    let curve = (0..steps)
        .map(|i| {
            let t = full_at * i as u64 / (steps as u64 - 1);
            (t, completeness_at(arrivals, t, k))
        })
        .collect();
    IncrementalProfile { curve, full_at }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arrivals() -> Vec<PartitionArrival> {
        vec![
            PartitionArrival {
                at: 10,
                hits: vec![GlobalHit { doc: 1, score: 5.0 }, GlobalHit { doc: 2, score: 1.0 }],
            },
            PartitionArrival { at: 100, hits: vec![GlobalHit { doc: 3, score: 4.0 }] },
            PartitionArrival {
                at: 1000,
                hits: vec![GlobalHit { doc: 4, score: 3.0 }, GlobalHit { doc: 5, score: 0.5 }],
            },
        ]
    }

    #[test]
    fn results_accumulate_over_time() {
        let a = arrivals();
        assert_eq!(results_at(&a, 0, 10).len(), 0);
        assert_eq!(results_at(&a, 10, 10).len(), 2);
        assert_eq!(results_at(&a, 100, 10).len(), 3);
        assert_eq!(results_at(&a, 1000, 10).len(), 5);
    }

    #[test]
    fn completeness_monotone() {
        let a = arrivals();
        let c0 = completeness_at(&a, 0, 4);
        let c1 = completeness_at(&a, 10, 4);
        let c2 = completeness_at(&a, 100, 4);
        let c3 = completeness_at(&a, 1000, 4);
        assert!(c0 <= c1 && c1 <= c2 && c2 <= c3);
        assert_eq!(c3, 1.0);
    }

    #[test]
    fn early_deadline_can_be_mostly_complete() {
        let a = arrivals();
        // Top-2 of the final merge is docs 1 and 3; at t=10 only doc 1 is
        // present → 50% complete on k=2.
        let c = completeness_at(&a, 10, 2);
        assert!((c - 0.5).abs() < 1e-12);
    }

    #[test]
    fn late_results_can_displace_early_ones() {
        // Doc 4 (score 3.0) displaces doc 2 (1.0) from the top-3.
        let a = arrivals();
        let early: Vec<u32> = results_at(&a, 10, 3).iter().map(|h| h.doc).collect();
        let fin: Vec<u32> = results_at(&a, 1000, 3).iter().map(|h| h.doc).collect();
        assert!(early.contains(&2));
        assert!(!fin.contains(&2));
        assert!(fin.contains(&4));
    }

    #[test]
    fn profile_shape() {
        let a = arrivals();
        let p = profile(&a, 4, 5);
        assert_eq!(p.full_at, 1000);
        assert_eq!(p.curve.len(), 5);
        assert_eq!(p.curve.last().unwrap().1, 1.0);
        assert!(p.curve.windows(2).all(|w| w[0].1 <= w[1].1 + 1e-12));
    }

    #[test]
    fn empty_arrivals_are_complete() {
        assert_eq!(completeness_at(&[], 0, 10), 1.0);
    }

    #[test]
    fn empty_arrivals_yield_no_results_at_any_deadline() {
        assert!(results_at(&[], 0, 10).is_empty());
        assert!(results_at(&[], SimTime::MAX, 10).is_empty());
        let p = profile(&[], 4, 3);
        assert_eq!(p.full_at, 0);
        assert!(p.curve.iter().all(|&(_, c)| c == 1.0));
    }

    #[test]
    fn k_zero_returns_nothing_and_is_vacuously_complete() {
        let a = arrivals();
        assert!(results_at(&a, SimTime::MAX, 0).is_empty());
        assert!(results_at(&a, 10, 0).is_empty());
        // The final top-0 set is empty, so completeness is 1 everywhere.
        assert_eq!(completeness_at(&a, 0, 0), 1.0);
        assert_eq!(completeness_at(&a, SimTime::MAX, 0), 1.0);
    }

    #[test]
    fn all_arrivals_after_the_deadline_yield_nothing() {
        let a = arrivals(); // earliest arrival at t = 10
        assert!(results_at(&a, 9, 10).is_empty());
        assert_eq!(completeness_at(&a, 9, 4), 0.0);
    }

    #[test]
    fn tied_scores_merge_identically_to_the_offline_topk() {
        // Two partitions carrying interleaved doc ids with heavy score
        // ties; the incremental merge at the final deadline must equal
        // the offline oracle over the concatenated hits: score
        // descending, lower doc id first on ties, cut at k.
        let a = vec![
            PartitionArrival {
                at: 5,
                hits: vec![
                    GlobalHit { doc: 8, score: 2.0 },
                    GlobalHit { doc: 2, score: 2.0 },
                    GlobalHit { doc: 5, score: 1.0 },
                ],
            },
            PartitionArrival {
                at: 40,
                hits: vec![
                    GlobalHit { doc: 1, score: 2.0 },
                    GlobalHit { doc: 9, score: 2.0 },
                    GlobalHit { doc: 3, score: 1.0 },
                ],
            },
        ];
        for k in 1..=7 {
            let mut oracle: Vec<GlobalHit> =
                a.iter().flat_map(|p| p.hits.iter().copied()).collect();
            oracle.sort_by(|x, y| y.score.partial_cmp(&x.score).unwrap().then(x.doc.cmp(&y.doc)));
            oracle.truncate(k);
            assert_eq!(results_at(&a, SimTime::MAX, k), oracle, "k={k}");
        }
        // The tie is genuinely exercised: at k = 3 doc 9 (tied at 2.0)
        // loses to docs 1, 2, 8 on id order.
        let top3: Vec<u32> = results_at(&a, SimTime::MAX, 3).iter().map(|h| h.doc).collect();
        assert_eq!(top3, [1, 2, 8]);
    }
}
