//! The assembled distributed engine: cache → selection → replicated
//! scatter-gather, with failure masking.
//!
//! This is the component stack of the paper's Figure 3 in one process: a
//! coordinator consults a result cache, optionally narrows the partition
//! set with collection selection, dispatches to a live replica of each
//! chosen partition, merges, and falls back to *stale cached results* when
//! a whole replica group is down ("upon query processor failures, the
//! system returns cached results").
//!
//! # Concurrency
//!
//! The engine is split into an immutable shared core and interior-mutable
//! accounting, so every serving method takes `&self` and the whole type
//! is `Send + Sync`:
//!
//! * the [`DocBroker`] owns an `Arc`-backed clone of the partitioned
//!   index and is itself shareable;
//! * the result cache sits behind a [`ShardedCache`] (policy state under
//!   per-shard mutexes);
//! * replica groups are per-partition mutexes (their round-robin cursors
//!   mutate on dispatch);
//! * counters are atomics, snapshot by [`DistributedEngine::stats`].
//!
//! Many client threads can therefore drive one `Arc<DistributedEngine>`,
//! and/or a single client can enable [`DistributedEngine::with_parallelism`]
//! to evaluate the partitions of *each* query concurrently. The parallel
//! scatter path is bit-for-bit identical to the sequential one (see
//! [`crate::broker`]).
//!
//! # Fault injection
//!
//! Replica liveness can be driven by a [`FaultSchedule`]
//! ([`DistributedEngine::with_faults`]): [`DistributedEngine::advance_to`]
//! applies the schedule's outage state at a simulated instant, and at
//! dispatch time the engine checks whether the chosen replica dies
//! *mid-query*, in which case it hedges once on another live replica
//! (subject to the optional per-query deadline,
//! [`DistributedEngine::with_deadline`]) before dropping the partition as
//! degraded. Selection, the availability check, and dispatch happen in
//! **one** pass under a single lock per replica group, so a group dying
//! concurrently can never be counted as served.
//!
//! # Tail tolerance
//!
//! A [`StragglerModel`] ([`DistributedEngine::with_stragglers`]) makes
//! replicas genuinely diverge: each (partition, replica, query) draws a
//! multiplicative service-time factor, so "the slowest server determines
//! the response time" becomes a measurable tail. The [`HedgePolicy`]
//! ([`DistributedEngine::with_hedge_policy`]) decides when a duplicate
//! request is launched on a second replica — never, on detected death
//! (the bit-identical default), after a fixed delay, past a live
//! percentile of the shard's own completion history, or immediately
//! (tied requests with cancellation accounting). A gather deadline
//! ([`DistributedEngine::with_gather_deadline`]) returns partial top-k
//! with explicit coverage ([`Served::Partial`]) when stragglers outlast
//! the response budget. All policies preserve the parallel ≡ sequential
//! and batch ≡ loop equivalence invariants.

use crate::broker::{BatchQuery, BrokeredResponse, DocBroker, GatherTiming, GlobalHit};
use crate::cache::{ResultCache, ShardedCache};
use crate::faults::FaultSchedule;
use crate::replica::ReplicaGroup;
use crate::route::{merge_topk, ShardRouter};
use crate::straggler::StragglerModel;
use dwr_obs::{Event, Histogram, NoopRecorder, Outcome as ObsOutcome, Recorder};
use dwr_partition::parted::PartitionedIndex;
use dwr_partition::repart::{RepartIndex, SplitFate, SplitSchedule};
use dwr_partition::select::CollectionSelector;
use dwr_sim::SimTime;
use dwr_text::search::EvalStrategy;
use dwr_text::TermId;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Lock a mutex, recovering the guard when a previous holder panicked.
/// Engine state under these locks (replica cursors, liveness bits) is
/// valid after any interrupted operation, so one panicking client must
/// not wedge every other thread.
fn lock_recovering<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// How a query was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Served {
    /// Fresh results straight from the cache.
    CacheHit,
    /// Evaluated on the full chosen partition set.
    Full,
    /// Evaluated with some partitions unavailable (degraded results).
    Degraded {
        /// Number of unavailable partitions skipped.
        missing: usize,
    },
    /// Backend entirely unavailable; served stale results from the cache.
    StaleFromCache,
    /// Backend unavailable and the cache had nothing.
    Failed,
    /// Rejected by admission control before reaching any backend: live
    /// capacity existed but policy (load shedding, an exhausted WAN
    /// retry/deadline budget) refused the query. Produced only by the
    /// site tier ([`crate::multisite::MultiSiteEngine`]); a single-site
    /// `DistributedEngine` never sheds.
    Shed,
    /// Evaluated, but the gather deadline expired before every dispatched
    /// partition answered: best-available top-k with explicit coverage.
    /// Partial responses are never cached — a truncated result must not
    /// masquerade as the full answer for its key.
    Partial {
        /// Dispatched partitions whose answers arrived in time to merge.
        partitions_answered: usize,
    },
    /// Evaluated on a routed subset of the active partitions: every
    /// contacted partition answered, but the [`crate::route::ShardRouter`]
    /// deliberately skipped the rest, so recall is bounded by the
    /// selector rather than proven. `Full` is reserved for answers
    /// where routing provably lost nothing (every active partition was
    /// contacted). Routed answers **are** cached: routing is a
    /// deterministic function of the query and the epoch's profiles, so
    /// the cached entry equals what re-evaluation would produce.
    Routed {
        /// Partitions the router contacted (initial tranche plus any
        /// broadening rounds).
        partitions_contacted: usize,
    },
}

/// When the engine launches a hedged (duplicate) request on a second
/// replica of a partition. The suite follows tail-tolerant search
/// practice (hedged and tied requests, partial results on deadline)
/// applied to the paper's observation that the slowest server determines
/// scatter-gather response time.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub enum HedgePolicy {
    /// Never hedge: a mid-query death simply degrades the partition.
    Never,
    /// Hedge only on a detected mid-query death — the engine's historical
    /// behavior and the default; bit-identical to the pre-policy engine.
    #[default]
    OnDeath,
    /// Launch the hedge when the first replica has not answered after a
    /// fixed delay (simulated µs).
    FixedDelay(SimTime),
    /// Launch the hedge when the first replica has not answered within
    /// this percentile (e.g. `95.0`) of the partition's *own* live
    /// completion history, tracked in a lock-free `dwr-obs` histogram.
    /// Falls back to [`HedgePolicy::OnDeath`] until enough history
    /// accumulates.
    PercentileTrigger(f64),
    /// Launch the hedge immediately ("tied requests"): the faster copy
    /// wins, the loser is cancelled and its burned work accounted.
    Tied,
}

/// Aggregate engine counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Answered from cache (fresh).
    pub cache_hits: u64,
    /// Fully evaluated.
    pub full: u64,
    /// Evaluated with missing partitions.
    pub degraded: u64,
    /// Served stale from cache during an outage.
    pub stale: u64,
    /// Unanswerable.
    pub failed: u64,
    /// Hedged retries dispatched after a replica died mid-query.
    pub hedged: u64,
    /// Hedged requests cancelled because the other copy answered first.
    pub cancelled: u64,
    /// Responses returned partial at the gather deadline.
    pub partial: u64,
    /// Answers evaluated on a routed subset of the active partitions.
    pub routed: u64,
    /// Fallback-cascade broadening rounds taken by routed queries.
    pub broadenings: u64,
    /// Simulated µs of work burned on hedges that did not serve the
    /// answer: cancelled losers and hedges that died mid-flight.
    pub hedge_work_us: u64,
}

/// Full outcome of one engine query.
#[derive(Debug, Clone)]
pub struct EngineResponse {
    /// Merged top-k, best first.
    pub hits: Vec<GlobalHit>,
    /// How the query was answered.
    pub served: Served,
    /// Simulated backend latency (slowest partition + merge), when the
    /// backend evaluated the query; `None` for cache/stale/failed
    /// answers.
    pub latency: Option<SimTime>,
}

#[derive(Debug, Default)]
struct Counters {
    cache_hits: AtomicU64,
    full: AtomicU64,
    degraded: AtomicU64,
    stale: AtomicU64,
    failed: AtomicU64,
    hedged: AtomicU64,
    cancelled: AtomicU64,
    partial: AtomicU64,
    routed: AtomicU64,
    broadenings: AtomicU64,
    hedge_work_us: AtomicU64,
}

/// Outcome of the single choose-and-dispatch pass for one query.
struct DispatchPlan {
    /// Partitions with a successfully dispatched, surviving replica.
    served: Vec<u32>,
    /// Shard-side completion time per served partition (parallel to
    /// `served`); feeds the timed gather.
    completions: Vec<SimTime>,
    /// Chosen partitions that could not be served.
    missing: usize,
    /// Extra simulated latency added by hedged retries (legacy path).
    hedge_extra: SimTime,
    /// Hedged retries dispatched.
    hedges: u64,
    /// Hedges cancelled after the other copy answered first.
    cancelled: u64,
    /// Simulated µs burned on hedges that did not serve the answer.
    hedge_work: u64,
}

impl DispatchPlan {
    fn with_capacity(n: usize) -> Self {
        DispatchPlan {
            served: Vec::with_capacity(n),
            completions: Vec::with_capacity(n),
            missing: 0,
            hedge_extra: 0,
            hedges: 0,
            cancelled: 0,
            hedge_work: 0,
        }
    }
}

/// Outcome of dispatching one query on one replica group.
struct OneDispatch {
    /// A surviving replica took the query.
    served: bool,
    /// Hedged retries dispatched (0 or 1).
    hedges: u64,
    /// Extra simulated latency a hedge added (legacy path).
    extra: SimTime,
    /// 1 when a hedge was cancelled because the other copy won.
    cancelled: u64,
    /// Shard-side completion time of the serving answer (0 if unserved).
    completion: SimTime,
    /// Simulated µs burned on a hedge that did not serve the answer.
    hedge_work: u64,
}

impl OneDispatch {
    fn not_served() -> Self {
        OneDispatch {
            served: false,
            hedges: 0,
            extra: 0,
            cancelled: 0,
            completion: 0,
            hedge_work: 0,
        }
    }

    fn served_at(completion: SimTime) -> Self {
        OneDispatch { served: true, hedges: 0, extra: 0, cancelled: 0, completion, hedge_work: 0 }
    }
}

/// Live-history samples a [`HedgePolicy::PercentileTrigger`] needs on a
/// partition before its trigger engages (it hedges on death until then).
const MIN_TRIGGER_SAMPLES: u64 = 16;

/// The engine. Owns its broker (which owns an `Arc`-backed index clone),
/// cache, and replica state; `Send + Sync`, all methods `&self`.
///
/// Generic over an observability [`Recorder`] (default: the zero-sized
/// [`NoopRecorder`], which compiles the instrumentation away entirely).
/// Attach a live recorder with [`DistributedEngine::with_obs`]; results
/// are bit-for-bit identical either way — recorders observe, they never
/// steer (`tests/observability.rs` pins this).
pub struct DistributedEngine<C: ResultCache, R: Recorder = NoopRecorder> {
    broker: DocBroker<R>,
    cache: ShardedCache<C>,
    groups: Vec<Mutex<ReplicaGroup>>,
    counters: Counters,
    /// Routing stage: when present, cold queries contact only the
    /// router's chosen partitions (with its recall-safe cascade) instead
    /// of every active partition.
    router: Option<Arc<ShardRouter>>,
    /// Outage schedule consulted at dispatch time and by `advance_to`.
    faults: Option<Arc<FaultSchedule>>,
    /// Per-query latency budget gating hedged retries.
    deadline: Option<SimTime>,
    /// When the engine launches a duplicate request on a second replica.
    policy: HedgePolicy,
    /// Per-(partition, replica, query) service-time inflation.
    stragglers: Option<Arc<StragglerModel>>,
    /// Response-level deadline: the gather returns partial top-k when a
    /// dispatched partition's answer lands after it.
    gather_deadline: Option<SimTime>,
    /// Live per-partition completion history (lock-free, drives
    /// [`HedgePolicy::PercentileTrigger`]).
    shard_latency: Vec<Histogram>,
    /// The engine's simulated clock (µs), advanced by `advance_to`.
    clock: AtomicU64,
    /// The live (splittable) index behind the broker, when the engine
    /// was built with [`Self::new_live`]. Each query serves against one
    /// epoch-consistent snapshot taken at admission, so a split landing
    /// mid-query changes nothing for queries already in flight.
    repart: Option<Arc<RepartIndex>>,
    /// Deterministic split storm applied by [`Self::advance_to`]; the
    /// cursor makes each scheduled split fire exactly once.
    splits: Option<(Arc<SplitSchedule>, Mutex<usize>)>,
    /// Observability sink (cloned into the broker so both emit to the
    /// same instruments).
    recorder: R,
}

/// A stable cache key for a term multiset.
pub fn query_key(terms: &[TermId]) -> u64 {
    let mut sorted: Vec<u32> = terms.iter().map(|t| t.0).collect();
    sorted.sort_unstable();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for t in sorted {
        h ^= u64::from(t);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl<C: ResultCache> DistributedEngine<C> {
    /// Create an engine over `index` with `replicas` per partition.
    pub fn new(index: &PartitionedIndex, cache: C, replicas: usize) -> Self {
        let groups =
            (0..index.num_partitions()).map(|_| Mutex::new(ReplicaGroup::new(replicas))).collect();
        DistributedEngine {
            broker: DocBroker::single_site(index),
            cache: ShardedCache::single(cache),
            groups,
            counters: Counters::default(),
            router: None,
            faults: None,
            deadline: None,
            policy: HedgePolicy::default(),
            stragglers: None,
            gather_deadline: None,
            shard_latency: (0..index.num_partitions()).map(|_| Histogram::new()).collect(),
            clock: AtomicU64::new(0),
            repart: None,
            splits: None,
            recorder: NoopRecorder,
        }
    }

    /// Create an engine over a **live** (splittable) index with
    /// `replicas` per partition slot. Replica groups and latency
    /// instruments are provisioned up to [`RepartIndex::capacity`] so
    /// child partitions born from later splits dispatch onto replica
    /// groups that already exist — a split never resizes engine state.
    pub fn new_live(repart: &Arc<RepartIndex>, cache: C, replicas: usize) -> Self {
        let capacity = repart.capacity();
        let groups = (0..capacity).map(|_| Mutex::new(ReplicaGroup::new(replicas))).collect();
        DistributedEngine {
            broker: DocBroker::live(repart),
            cache: ShardedCache::single(cache),
            groups,
            counters: Counters::default(),
            router: None,
            faults: None,
            deadline: None,
            policy: HedgePolicy::default(),
            stragglers: None,
            gather_deadline: None,
            shard_latency: (0..capacity).map(|_| Histogram::new()).collect(),
            clock: AtomicU64::new(0),
            repart: Some(Arc::clone(repart)),
            splits: None,
            recorder: NoopRecorder,
        }
    }
}

impl<C: ResultCache, R: Recorder> DistributedEngine<C, R> {
    /// Swap in an observability recorder: every stage of every query
    /// (admission, cache lookup, scatter, per-shard service, gather,
    /// hedges, outcome) flows to it as [`Event`]s. The recorder is
    /// cloned into the broker so engine- and broker-level events land in
    /// the same instruments; share one `Arc<ObsRecorder>` across engines
    /// for tier-wide accounting.
    pub fn with_obs<R2: Recorder + Clone>(self, recorder: R2) -> DistributedEngine<C, R2> {
        DistributedEngine {
            broker: self.broker.with_recorder(recorder.clone()),
            cache: self.cache,
            groups: self.groups,
            counters: self.counters,
            router: self.router,
            faults: self.faults,
            deadline: self.deadline,
            policy: self.policy,
            stragglers: self.stragglers,
            gather_deadline: self.gather_deadline,
            shard_latency: self.shard_latency,
            clock: self.clock,
            repart: self.repart,
            splits: self.splits,
            recorder,
        }
    }

    /// The attached recorder.
    pub fn recorder(&self) -> &R {
        &self.recorder
    }

    /// Enable collection selection: only the top-`m` partitions serve
    /// each query. Sugar for a fixed-source [`ShardRouter`] with no
    /// fallback cascade; answers on fewer than all partitions report
    /// [`Served::Routed`] (honest coverage), not `Full`.
    pub fn with_selection(
        self,
        selector: Arc<dyn CollectionSelector + Send + Sync>,
        m: usize,
    ) -> Self {
        assert!(m >= 1);
        assert!(
            self.repart.is_none(),
            "collection selection requires a static partition layout \
             (selectors rank the partitions they were built from; a live \
             index retires those ids as it splits). Use with_router with \
             an epoch-rebuilding source (ShardRouter::cori / \
             ShardRouter::query_driven) on a live index instead."
        );
        self.with_router(Arc::new(ShardRouter::fixed(selector, m)))
    }

    /// Attach a routing stage: cold queries contact only the router's
    /// top-*t* active partitions (per the query's own epoch snapshot),
    /// broadening recall-safely when the routed answer is deficient.
    /// Composes with live indexes ([`Self::new_live`]) — the router
    /// rebuilds selector profiles per epoch — and with hedging,
    /// deadlines, and stragglers, which apply unchanged on the contacted
    /// subset. [`Self::advance_to`] drives the router's drift-refresh
    /// loop when one is configured.
    pub fn with_router(mut self, router: Arc<ShardRouter>) -> Self {
        self.router = Some(router);
        self
    }

    /// The attached routing stage, if any.
    pub fn router(&self) -> Option<&Arc<ShardRouter>> {
        self.router.as_ref()
    }

    /// Attach a deterministic split storm: [`Self::advance_to`] fires
    /// every scheduled split whose instant has been reached, exactly
    /// once, against the live index. Each split picks the currently
    /// largest active partition; a split whose parent's replica group
    /// has no live replica at that instant aborts cleanly instead of
    /// committing (the builder node is down), and splits the live index
    /// refuses (capacity, too few docs) are skipped silently.
    pub fn with_splits(mut self, schedule: Arc<SplitSchedule>) -> Self {
        assert!(
            self.repart.is_some(),
            "split schedules require a live index (DistributedEngine::new_live)"
        );
        self.splits = Some((schedule, Mutex::new(0)));
        self
    }

    /// The live index behind this engine, if any.
    pub fn repart(&self) -> Option<&Arc<RepartIndex>> {
        self.repart.as_ref()
    }

    /// Evaluate each query's partitions concurrently on a pool of
    /// `threads` workers. Results are bit-for-bit identical to the
    /// sequential path.
    pub fn with_parallelism(mut self, threads: usize) -> Self {
        self.broker = self.broker.parallel(threads);
        self
    }

    /// Whether partition evaluation runs on a worker pool.
    pub fn is_parallel(&self) -> bool {
        self.broker.is_parallel()
    }

    /// Pick the ranked evaluator shards run (see
    /// [`DocBroker::with_strategy`]): results, latencies, and counters
    /// are bit-identical across strategies; only the measured work in
    /// `broker().eval_stats()` differs.
    pub fn with_strategy(mut self, eval: EvalStrategy) -> Self {
        self.broker = self.broker.with_strategy(eval);
        self
    }

    /// Drive replica liveness from an outage schedule: `advance_to`
    /// applies its state, and dispatch consults it for mid-query replica
    /// deaths (triggering hedged retries). The same `Arc` can drive
    /// several engines, which keeps fault-equivalence tests honest.
    pub fn with_faults(mut self, schedule: Arc<FaultSchedule>) -> Self {
        self.faults = Some(schedule);
        self.advance_to(self.now());
        self
    }

    /// Bound the simulated time a query may spend on one partition:
    /// a hedged retry is attempted only when first attempt + retry fit
    /// within `deadline`.
    pub fn with_deadline(mut self, deadline: SimTime) -> Self {
        assert!(deadline > 0);
        self.deadline = Some(deadline);
        self
    }

    /// Pick the tail-tolerance hedging policy. The default,
    /// [`HedgePolicy::OnDeath`], is the engine's historical behavior and
    /// is bit-identical to not configuring a policy at all.
    pub fn with_hedge_policy(mut self, policy: HedgePolicy) -> Self {
        match policy {
            HedgePolicy::FixedDelay(t) => assert!(t > 0, "hedge delay must be positive"),
            HedgePolicy::PercentileTrigger(q) => assert!(
                q.is_finite() && q > 0.0 && q < 100.0,
                "trigger percentile must be in (0, 100), got {q}"
            ),
            _ => {}
        }
        self.policy = policy;
        self
    }

    /// The hedging policy in force.
    pub fn hedge_policy(&self) -> HedgePolicy {
        self.policy
    }

    /// Attach a per-(partition, replica, query) latency model: every
    /// dispatched attempt's service time is the df-based base cost
    /// inflated by the model's deterministic draw, so replicas of one
    /// partition genuinely diverge and the gather sees real stragglers.
    pub fn with_stragglers(mut self, model: Arc<StragglerModel>) -> Self {
        self.stragglers = Some(model);
        self
    }

    /// Set a response deadline: the gather merges only partitions whose
    /// (shard-side) answer completes within it and reports the rest as
    /// missing coverage via [`Served::Partial`]. Independent of
    /// [`Self::with_deadline`], which budgets hedged retries per
    /// partition.
    pub fn with_gather_deadline(mut self, deadline: SimTime) -> Self {
        assert!(deadline > 0);
        self.gather_deadline = Some(deadline);
        self
    }

    /// Mergeable percentile summaries of each partition's live completion
    /// history (the instrument behind [`HedgePolicy::PercentileTrigger`]).
    pub fn shard_latency_percentiles(&self) -> Vec<dwr_sim::stats::Percentiles> {
        self.shard_latency.iter().map(Histogram::snapshot).collect()
    }

    /// The engine's simulated clock.
    pub fn now(&self) -> SimTime {
        self.clock.load(Ordering::Relaxed)
    }

    /// Advance the simulated clock to `t`, fire any scheduled splits
    /// whose instant has been reached, and apply the fault schedule's
    /// outage state to every replica group. Idempotent; callable from any
    /// thread while other threads serve queries.
    pub fn advance_to(&self, t: SimTime) {
        self.clock.store(t, Ordering::Relaxed);
        self.fire_due_splits(t);
        if let Some(router) = &self.router {
            router.maybe_refresh(t, &self.recorder);
        }
        let Some(faults) = &self.faults else { return };
        for (p, group) in self.groups.iter().enumerate() {
            let replicas = faults.num_replicas(p);
            if replicas == 0 {
                continue;
            }
            let mut g = lock_recovering(group);
            for r in 0..replicas {
                // Graceful on schedules wider than the group.
                g.set_alive(r, !faults.is_down(p, r, t));
            }
        }
    }

    /// Fire every scheduled split due at or before `t`, exactly once
    /// (the cursor advances under its own lock, so concurrent
    /// `advance_to` calls race safely). The injected crash fate comes
    /// from the schedule, downgraded to a clean abort when the parent's
    /// replica group has no live replica at the split instant — a split
    /// needs a live builder.
    fn fire_due_splits(&self, t: SimTime) {
        let (Some(repart), Some((schedule, cursor))) = (&self.repart, &self.splits) else {
            return;
        };
        let mut cur = lock_recovering(cursor);
        while let Some(ev) = schedule.events().get(*cur) {
            if ev.at > t {
                break;
            }
            *cur += 1;
            let Some(parent) = repart.split_target() else { continue };
            let fate = if self.group_has_live_replica(parent, ev.at) {
                ev.fate
            } else {
                SplitFate::CrashBeforePublish
            };
            match repart.split(parent, fate) {
                Ok(report) if report.committed => self.recorder.record(Event::RepartSplit {
                    now: ev.at,
                    parent,
                    children: report.children.len() as u32,
                    epoch: report.epoch_after,
                }),
                Ok(report) => self.recorder.record(Event::RepartAbort {
                    now: ev.at,
                    parent,
                    epoch: report.epoch_before,
                }),
                // Refused (capacity / too few docs): nothing happened,
                // so nothing is counted — `repart.*` instruments stay in
                // lockstep with `RepartIndex::repart_stats`.
                Err(_) => {}
            }
        }
    }

    /// Whether any replica of partition `p`'s group is live at `at`
    /// according to the fault schedule (no schedule = always live).
    fn group_has_live_replica(&self, p: u32, at: SimTime) -> bool {
        let Some(faults) = &self.faults else { return true };
        let pu = p as usize;
        let replicas = faults.num_replicas(pu);
        if replicas == 0 {
            return true;
        }
        (0..replicas).any(|r| !faults.is_down(pu, r, at))
    }

    /// Mark one replica of one partition down or up. Returns `false`
    /// (changing nothing) when either index is out of range.
    pub fn set_replica_alive(&self, partition: usize, replica: usize, up: bool) -> bool {
        match self.groups.get(partition) {
            Some(g) => lock_recovering(g).set_alive(replica, up),
            None => false,
        }
    }

    /// Queries dispatched so far, per partition and replica.
    pub fn dispatch_counts(&self) -> Vec<Vec<u64>> {
        self.groups.iter().map(|g| lock_recovering(g).dispatched().to_vec()).collect()
    }

    /// The partitions a query *could* address (before availability): the
    /// router's reachable set (initial tranche plus every broadening
    /// step), or every partition *active in the query's snapshot* — on a
    /// static index that is `0..num_partitions`, on a live one it is the
    /// current epoch's leaves. Drives the stale-serving decision: the
    /// backend counts as down for a query only when none of these
    /// partitions has an available replica group.
    fn reachable(&self, snap: &PartitionedIndex, terms: &[TermId]) -> Vec<u32> {
        match &self.router {
            Some(router) => router.reachable(snap, terms),
            None => snap.active_parts(),
        }
    }

    fn group_available(&self, p: u32) -> bool {
        self.groups.get(p as usize).is_some_and(|g| lock_recovering(g).available())
    }

    /// Serve a query.
    pub fn query(&self, terms: &[TermId], k: usize) -> (Vec<GlobalHit>, Served) {
        let r = self.query_full(terms, k);
        (r.hits, r.served)
    }

    /// Serve a query, reporting the simulated backend latency alongside
    /// the results.
    pub fn query_full(&self, terms: &[TermId], k: usize) -> EngineResponse {
        self.serve(terms, k, false)
    }

    /// Serve a query, allowing stale cache results when the backend is
    /// down (the dependability role of caches). Unlike [`Self::query`],
    /// a backend outage consults the cache *ignoring freshness*.
    pub fn query_stale_ok(&self, terms: &[TermId], k: usize) -> (Vec<GlobalHit>, Served) {
        let r = self.serve(terms, k, true);
        (r.hits, r.served)
    }

    /// Serve a batch of queries with amortized locking: admission (cache
    /// consult) runs per query in order, dispatch runs **partition-outer**
    /// (each replica-group lock taken once for the whole batch), and
    /// shard evaluation is admitted to the scatter pool in one enqueue
    /// ([`DocBroker::query_selected_batch`]).
    ///
    /// Responses and every counter (engine, cache, broker, dispatch
    /// counts) are identical to calling [`Self::query_full`] once per
    /// query in order, with one documented caveat: a query whose
    /// duplicate appears earlier in the batch is answered from the cache
    /// at resolution time, so if the cached entry is *evicted* while the
    /// batch is in flight the duplicate is re-evaluated (counted
    /// full/degraded where the loop form would have counted a cache
    /// hit). With a cache wide enough to hold the batch's distinct
    /// queries — the throughput-bench regime — batch ≡ loop exactly.
    ///
    /// The observability stream carries the same events with the same
    /// payloads, phase-ordered: all `QueryStart`/`CacheLookup`s (query
    /// order), then `Hedge`s (partition order), then per-query
    /// scatter/gather blocks (query order), then `Outcome`s (query
    /// order). Stale serving is not consulted (`stale_ok = false`
    /// semantics).
    pub fn query_batch(&self, queries: &[Vec<TermId>], k: usize) -> Vec<EngineResponse> {
        let now = self.now();
        if k == 0 {
            // Same short-circuit as the loop form, per query in order.
            return queries
                .iter()
                .map(|terms| {
                    let key = query_key(terms);
                    self.recorder.record(Event::QueryStart { qid: key, now });
                    self.answer_k_zero(key, now)
                })
                .collect();
        }
        // One epoch-consistent snapshot for the whole batch (the loop
        // form takes one per query; with no split between queries the
        // two views are identical).
        let snap = self.broker.snapshot();
        enum Slot {
            /// Resolved at admission (fresh cache hit).
            Done(EngineResponse),
            /// Duplicate of an earlier cold query in this batch; answered
            /// from the cache at resolution time.
            Dup { key: u64 },
            /// Admitted for evaluation.
            Cold { key: u64, chosen: Vec<u32> },
        }
        // --- Admission, in query order. Duplicates are detected *before*
        // the cache consult so cache hit/miss counters match the loop
        // form (where the duplicate's consult happens after the original
        // resolved, and hits).
        let mut pending: HashSet<u64> = HashSet::new();
        let mut slots: Vec<Slot> = Vec::with_capacity(queries.len());
        for terms in queries {
            let key = query_key(terms);
            self.recorder.record(Event::QueryStart { qid: key, now });
            if pending.contains(&key) {
                slots.push(Slot::Dup { key });
                continue;
            }
            if let Some(hit) = self.cache.get_recorded(key, &self.recorder, now) {
                self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                self.record_outcome(key, now, ObsOutcome::CacheHit, None);
                slots.push(Slot::Done(EngineResponse {
                    hits: hit,
                    served: Served::CacheHit,
                    latency: None,
                }));
                continue;
            }
            pending.insert(key);
            let chosen = if self.router.is_some() { Vec::new() } else { snap.active_parts() };
            slots.push(Slot::Cold { key, chosen });
        }
        // --- Routed engines resolve every cold slot per query, in query
        // order: the cascade's later tranches depend on earlier rounds'
        // answers, so its dispatches cannot be staged partition-outer up
        // front. Each group's round-robin cursor therefore sees exactly
        // the loop form's dispatch sequence — batch ≡ loop holds by
        // construction (events phase-ordered as documented above).
        if self.router.is_some() {
            return slots
                .into_iter()
                .zip(queries)
                .map(|(slot, terms)| match slot {
                    Slot::Done(r) => r,
                    Slot::Dup { key } => match self.cache.get_recorded(key, &self.recorder, now) {
                        Some(hit) => {
                            self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                            self.record_outcome(key, now, ObsOutcome::CacheHit, None);
                            EngineResponse { hits: hit, served: Served::CacheHit, latency: None }
                        }
                        None => self.evaluate_cold(&snap, terms, k, key, now),
                    },
                    Slot::Cold { key, .. } => self.evaluate_cold(&snap, terms, k, key, now),
                })
                .collect();
        }
        // --- Dispatch, partition-outer: one lock acquisition per replica
        // group for the whole batch. Within a group, queries dispatch in
        // query order, so the round-robin cursor sees exactly the
        // sequence the loop form produces. `served` is rebuilt in each
        // query's own `chosen` order so gather (events, busy time,
        // latency) is untouched by the transposition.
        let cold: Vec<usize> =
            (0..slots.len()).filter(|&i| matches!(slots[i], Slot::Cold { .. })).collect();
        // (query position, partition, shard-side completion) per dispatch.
        type StagedDispatch = Vec<(usize, u32, SimTime)>;
        let mut staged: Vec<(StagedDispatch, DispatchPlan)> =
            cold.iter().map(|_| (Vec::new(), DispatchPlan::with_capacity(0))).collect();
        let mut by_part: Vec<Vec<(usize, usize)>> = vec![Vec::new(); self.groups.len()];
        for (ci, &si) in cold.iter().enumerate() {
            let Slot::Cold { chosen, .. } = &slots[si] else { unreachable!() };
            for (pos, &p) in chosen.iter().enumerate() {
                match by_part.get_mut(p as usize) {
                    Some(interested) => interested.push((ci, pos)),
                    None => staged[ci].1.missing += 1,
                }
            }
        }
        for (pu, interested) in by_part.iter().enumerate() {
            if interested.is_empty() {
                continue;
            }
            let mut group = lock_recovering(&self.groups[pu]);
            for &(ci, pos) in interested {
                let Slot::Cold { key, .. } = slots[cold[ci]] else { unreachable!() };
                let one =
                    self.dispatch_one(&snap, &mut group, pu as u32, &queries[cold[ci]], now, key);
                let (served, plan) = &mut staged[ci];
                if one.served {
                    served.push((pos, pu as u32, one.completion));
                } else {
                    plan.missing += 1;
                }
                plan.hedges += one.hedges;
                plan.hedge_extra = plan.hedge_extra.max(one.extra);
                plan.cancelled += one.cancelled;
                plan.hedge_work += one.hedge_work;
            }
        }
        let plans: Vec<DispatchPlan> = staged
            .into_iter()
            .map(|(mut served, mut plan)| {
                served.sort_unstable_by_key(|&(pos, _, _)| pos);
                plan.completions = served.iter().map(|&(_, _, c)| c).collect();
                plan.served = served.into_iter().map(|(_, p, _)| p).collect();
                plan
            })
            .collect();
        // --- Evaluation: one broker batch over every cold query with a
        // non-empty plan (a single pool-lock acquisition admits all of
        // their shard tasks). The timed path instead evaluates each cold
        // query at resolution time — its gather needs the per-query
        // completions and deadline — trading the amortized enqueue for
        // the tail-tolerant latency model.
        let broker_batch: Vec<BatchQuery<'_>> = if self.timed() {
            Vec::new()
        } else {
            cold.iter()
                .zip(&plans)
                .filter(|(_, plan)| !plan.served.is_empty())
                .map(|(&si, plan)| {
                    let Slot::Cold { key, .. } = slots[si] else { unreachable!() };
                    BatchQuery { terms: &queries[si], k, parts: plan.served.clone(), qid: key }
                })
                .collect()
        };
        let mut evaluated =
            self.broker.query_selected_batch_in(&snap, &broker_batch, now).into_iter();
        // --- Resolution, in query order.
        let mut plans = plans.into_iter();
        slots
            .into_iter()
            .zip(queries)
            .map(|(slot, terms)| match slot {
                Slot::Done(r) => r,
                Slot::Dup { key } => match self.cache.get_recorded(key, &self.recorder, now) {
                    Some(hit) => {
                        self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                        self.record_outcome(key, now, ObsOutcome::CacheHit, None);
                        EngineResponse { hits: hit, served: Served::CacheHit, latency: None }
                    }
                    // Evicted while the batch was in flight: fall back to
                    // the ordinary cold path (the documented divergence).
                    None => self.evaluate_cold(&snap, terms, k, key, now),
                },
                Slot::Cold { key, .. } => {
                    let plan = plans.next().expect("one plan per cold query");
                    self.account_dispatch(&plan);
                    if plan.served.is_empty() {
                        self.counters.failed.fetch_add(1, Ordering::Relaxed);
                        self.record_outcome(key, now, ObsOutcome::Failed, None);
                        return EngineResponse {
                            hits: Vec::new(),
                            served: Served::Failed,
                            latency: None,
                        };
                    }
                    if self.timed() {
                        return self.evaluate_plan(&snap, terms, k, key, now, &plan);
                    }
                    let resp = evaluated.next().expect("one response per evaluated query");
                    self.resolve_evaluated(key, now, &plan, resp, None)
                }
            })
            .collect()
    }

    /// One pass over the chosen partitions: per group, availability and
    /// dispatch are decided under a **single** lock acquisition, so a
    /// group dying concurrently is observed as `None` and dropped rather
    /// than queried anyway. When a fault schedule is attached, a replica
    /// whose outage begins mid-query loses the attempt and the engine
    /// hedges once on another live replica (if the deadline leaves room).
    fn dispatch_partitions(
        &self,
        snap: &PartitionedIndex,
        chosen: &[u32],
        terms: &[TermId],
        now: SimTime,
        qid: u64,
    ) -> DispatchPlan {
        let mut plan = DispatchPlan::with_capacity(chosen.len());
        for &p in chosen {
            let pu = p as usize;
            let Some(group) = self.groups.get(pu) else {
                plan.missing += 1;
                continue;
            };
            let mut group = lock_recovering(group);
            let one = self.dispatch_one(snap, &mut group, p, terms, now, qid);
            drop(group);
            if one.served {
                plan.served.push(p);
                plan.completions.push(one.completion);
            } else {
                plan.missing += 1;
            }
            plan.hedges += one.hedges;
            plan.hedge_extra = plan.hedge_extra.max(one.extra);
            plan.cancelled += one.cancelled;
            plan.hedge_work += one.hedge_work;
        }
        plan
    }

    /// Whether gather runs through the timed path (engine-drawn
    /// completions, optional partial results) instead of the legacy
    /// df-based latency model.
    fn timed(&self) -> bool {
        self.stragglers.is_some() || self.gather_deadline.is_some()
    }

    /// The drawn service cost of one attempt: the df-based base inflated
    /// by the straggler model, or plain `ceil(base)` without one.
    fn drawn_cost(&self, base: f64, p: usize, r: usize, qid: u64) -> SimTime {
        match &self.stragglers {
            Some(m) => m.cost(base, p, r, qid),
            None => base.ceil() as SimTime,
        }
    }

    fn fails_during(&self, p: usize, r: usize, lo: SimTime, hi: SimTime) -> bool {
        self.faults.as_ref().is_some_and(|f| f.fails_during(p, r, lo, hi))
    }

    /// The live percentile trigger for partition `p`, once enough history
    /// has accumulated.
    fn shard_trigger(&self, p: usize, q: f64) -> Option<SimTime> {
        let hist = &self.shard_latency[p];
        if hist.count() < MIN_TRIGGER_SAMPLES {
            return None;
        }
        Some((hist.snapshot().percentile(q).ceil() as SimTime).max(1))
    }

    /// Dispatch one query on one **already locked** replica group: pick a
    /// replica (round-robin), draw its service cost, consult the fault
    /// schedule for a mid-query death, and let the [`HedgePolicy`] decide
    /// whether a duplicate request launches on a second replica. Shared
    /// by the per-query and batched dispatch passes, so both advance each
    /// group's round-robin cursor — and each partition's live latency
    /// history — through the exact same decision sequence.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_one(
        &self,
        snap: &PartitionedIndex,
        group: &mut ReplicaGroup,
        p: u32,
        terms: &[TermId],
        now: SimTime,
        qid: u64,
    ) -> OneDispatch {
        let pu = p as usize;
        let Some(first) = group.dispatch() else {
            return OneDispatch::not_served();
        };
        // Fast path — exactly the pre-suite behavior: without faults, a
        // latency model, or a gather deadline, a Never/OnDeath policy can
        // never hedge, so the dispatch is already decided.
        if self.faults.is_none()
            && !self.timed()
            && matches!(self.policy, HedgePolicy::Never | HedgePolicy::OnDeath)
        {
            return OneDispatch::served_at(0);
        }
        let base = self.broker.service_time_in(snap, pu, terms);
        let c1 = self.drawn_cost(base, pu, first, qid);
        let dead1 = self.fails_during(pu, first, now, now + c1);
        // When (relative to dispatch) the hedge launches, if at all. A
        // dead first replica never answers, so time-triggered policies
        // fire their timer on it regardless of `c1`.
        let launch = match self.policy {
            HedgePolicy::Never => None,
            HedgePolicy::OnDeath => dead1.then_some(c1),
            HedgePolicy::FixedDelay(t) => (dead1 || c1 > t).then_some(t),
            HedgePolicy::PercentileTrigger(q) => match self.shard_trigger(pu, q) {
                Some(t) => (dead1 || c1 > t).then_some(t),
                // Not enough history yet: hedge on death, like the default.
                None => dead1.then_some(c1),
            },
            HedgePolicy::Tied => Some(0),
        };
        let one = self.hedge_or_settle(group, p, base, now, qid, first, c1, dead1, launch);
        // Record the served completion *after* this query's trigger was
        // read. Both the loop and batch dispatch passes visit each
        // partition's queries in query order, so every query observes an
        // identical history — batch ≡ loop holds under PercentileTrigger.
        if one.served {
            self.shard_latency[pu].record(one.completion as f64);
        }
        one
    }

    /// Resolve one dispatched attempt against an optional hedge launch:
    /// peek the retry replica, budget-check it at its **own** drawn cost,
    /// then commit the dispatch and settle who serves, who is cancelled,
    /// and what work was burned.
    #[allow(clippy::too_many_arguments)]
    fn hedge_or_settle(
        &self,
        group: &mut ReplicaGroup,
        p: u32,
        base: f64,
        now: SimTime,
        qid: u64,
        first: usize,
        c1: SimTime,
        dead1: bool,
        launch: Option<SimTime>,
    ) -> OneDispatch {
        let pu = p as usize;
        let settle = |served: bool| {
            if served {
                OneDispatch::served_at(c1)
            } else {
                OneDispatch::not_served()
            }
        };
        let Some(h) = launch else { return settle(!dead1) };
        let Some(second) = group.peek_excluding(first) else { return settle(!dead1) };
        let c2 = self.drawn_cost(base, pu, second, qid);
        // Budget the hedge at the retry replica's own drawn cost from its
        // own launch offset. (Historically this check was `2 * svc <= d`,
        // silently pricing the retry at the *first* replica's cost — under
        // a straggler model the two genuinely diverge.)
        if self.deadline.is_some_and(|d| h + c2 > d) {
            return settle(!dead1);
        }
        let dispatched = group.dispatch_excluding(first);
        debug_assert_eq!(dispatched, Some(second), "peek and dispatch agree on the candidate");
        self.recorder.record(Event::Hedge { qid, now, partition: p, extra_us: c2 as f64 });
        let dead2 = self.fails_during(pu, second, now + h, now + h + c2);
        match (dead1, dead2) {
            (false, false) => {
                // Both copies survive: the faster answer serves, the
                // loser is cancelled, and the work it burned before the
                // cancellation is the hedging overhead.
                let (t1, t2) = (c1, h + c2);
                let hedge_work = if t2 < t1 { t2 } else { t1.saturating_sub(h) };
                OneDispatch {
                    served: true,
                    hedges: 1,
                    extra: 0,
                    cancelled: 1,
                    completion: t1.min(t2),
                    hedge_work,
                }
            }
            (true, false) => OneDispatch {
                served: true,
                hedges: 1,
                extra: c2,
                cancelled: 0,
                completion: h + c2,
                hedge_work: 0,
            },
            (false, true) => OneDispatch {
                // The hedge died mid-flight; the primary answer stands.
                served: true,
                hedges: 1,
                extra: 0,
                cancelled: 0,
                completion: c1,
                hedge_work: c2,
            },
            (true, true) => OneDispatch {
                served: false,
                hedges: 1,
                extra: 0,
                cancelled: 0,
                completion: 0,
                hedge_work: c2,
            },
        }
    }

    /// The one serving path behind [`Self::query_full`] and
    /// [`Self::query_stale_ok`]: cache consult, then a single
    /// choose-and-dispatch pass, then evaluation — selection,
    /// availability, and dispatch each happen exactly once per query.
    fn serve(&self, terms: &[TermId], k: usize, stale_ok: bool) -> EngineResponse {
        let now = self.now();
        let key = query_key(terms);
        self.recorder.record(Event::QueryStart { qid: key, now });
        if k == 0 {
            return self.answer_k_zero(key, now);
        }
        // The query's epoch-consistent view: one snapshot at admission,
        // threaded through choose, dispatch, and evaluation, so a split
        // committing mid-query cannot tear the partition set.
        let snap = self.broker.snapshot();
        if let Some(hit) = self.cache.get_recorded(key, &self.recorder, now) {
            if stale_ok && !self.reachable(&snap, terms).iter().any(|&p| self.group_available(p)) {
                self.counters.stale.fetch_add(1, Ordering::Relaxed);
                self.record_outcome(key, now, ObsOutcome::StaleFromCache, None);
                return EngineResponse { hits: hit, served: Served::StaleFromCache, latency: None };
            }
            self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            self.record_outcome(key, now, ObsOutcome::CacheHit, None);
            return EngineResponse { hits: hit, served: Served::CacheHit, latency: None };
        }
        self.evaluate_cold(&snap, terms, k, key, now)
    }

    /// A `k = 0` query asks for nothing: answer it empty and `Full`
    /// without touching cache or backend, on every serving path alike
    /// (the timed gather would otherwise report zero-of-n coverage as
    /// `Partial`).
    fn answer_k_zero(&self, key: u64, now: SimTime) -> EngineResponse {
        self.counters.full.fetch_add(1, Ordering::Relaxed);
        self.record_outcome(key, now, ObsOutcome::Full, Some(0));
        EngineResponse { hits: Vec::new(), served: Served::Full, latency: Some(0) }
    }

    /// The cold path behind a cache miss: one choose-and-dispatch pass,
    /// scatter-gather evaluation, cache fill, and outcome accounting.
    /// With a router attached, dispatch runs the routed cascade instead
    /// of fanning out to every active partition.
    fn evaluate_cold(
        &self,
        snap: &PartitionedIndex,
        terms: &[TermId],
        k: usize,
        key: u64,
        now: SimTime,
    ) -> EngineResponse {
        if let Some(router) = &self.router {
            return self.evaluate_routed(router, snap, terms, k, key, now);
        }
        let chosen = snap.active_parts();
        let plan = self.dispatch_partitions(snap, &chosen, terms, now, key);
        self.account_dispatch(&plan);
        if plan.served.is_empty() {
            // Whole backend (for this query) is down, and the cache
            // already missed: nothing to serve.
            self.counters.failed.fetch_add(1, Ordering::Relaxed);
            self.record_outcome(key, now, ObsOutcome::Failed, None);
            return EngineResponse { hits: Vec::new(), served: Served::Failed, latency: None };
        }
        self.evaluate_plan(snap, terms, k, key, now, &plan)
    }

    /// The routed cold path: contact the router's tranches in order —
    /// each through the **same** dispatch pass as the unrouted engine,
    /// so hedging, deadlines, and stragglers apply unchanged on the
    /// contacted subset — merging round answers through the broker's
    /// top-k comparator and broadening while the merged answer is
    /// deficient. With `width >= active` the plan is one tranche equal
    /// to `active_parts()` and this degenerates bit-identically to the
    /// unrouted path (`tests/route_chaos.rs` pins it).
    ///
    /// Honest coverage: `Full` only when every active partition was
    /// contacted; [`Served::Routed`] when the router skipped some and
    /// every contacted one answered; `Degraded`/`Partial`/`Failed` keep
    /// their meanings (and their priority) from the unrouted path.
    /// Cascade rounds are decided at admission time against the query's
    /// one epoch snapshot; round latencies are charged additively.
    fn evaluate_routed(
        &self,
        router: &ShardRouter,
        snap: &PartitionedIndex,
        terms: &[TermId],
        k: usize,
        key: u64,
        now: SimTime,
    ) -> EngineResponse {
        let selector = router.profile_for(snap, now, &self.recorder);
        let decision = router.decide(selector.as_ref(), snap, terms);
        let mut hits: Vec<GlobalHit> = Vec::new();
        let mut latency: SimTime = 0;
        let mut contacted = 0usize;
        let mut missing = 0usize;
        let mut served_total = 0usize;
        let mut answered_total = 0usize;
        let mut partial = false;
        let mut broadenings = 0u32;
        for (round, tranche) in decision.tranches.iter().enumerate() {
            if round > 0 {
                if !router.deficient(&hits, k) {
                    break;
                }
                broadenings += 1;
            }
            contacted += tranche.len();
            let plan = self.dispatch_partitions(snap, tranche, terms, now, key);
            self.account_dispatch(&plan);
            missing += plan.missing;
            if plan.served.is_empty() {
                // An entirely-unavailable tranche merges nothing; the
                // deficiency check naturally broadens past it.
                continue;
            }
            served_total += plan.served.len();
            let resp = if self.timed() {
                let timing =
                    GatherTiming { completions: &plan.completions, deadline: self.gather_deadline };
                let (resp, answered) = self.broker.query_selected_timed_in(
                    snap,
                    terms,
                    k,
                    &plan.served,
                    key,
                    now,
                    timing,
                );
                answered_total += answered;
                partial |= answered < plan.served.len();
                latency += resp.latency;
                resp
            } else {
                let resp = self.broker.query_selected_at_in(snap, terms, k, &plan.served, key, now);
                latency += resp.latency + plan.hedge_extra;
                resp
            };
            hits = if hits.is_empty() { resp.hits } else { merge_topk(&hits, &resp.hits, k) };
        }
        router.account(contacted, decision.active, broadenings);
        self.counters.broadenings.fetch_add(u64::from(broadenings), Ordering::Relaxed);
        self.recorder.record(Event::RouteServed {
            qid: key,
            now,
            contacted: contacted as u32,
            active: decision.active as u32,
            broadenings,
            hits: hits.len() as u32,
            k: k as u32,
        });
        if served_total == 0 {
            self.counters.failed.fetch_add(1, Ordering::Relaxed);
            self.record_outcome(key, now, ObsOutcome::Failed, None);
            return EngineResponse { hits: Vec::new(), served: Served::Failed, latency: None };
        }
        if partial {
            // Same rule as the unrouted timed gather: report coverage
            // exactly, and never cache a truncated answer.
            self.counters.partial.fetch_add(1, Ordering::Relaxed);
            self.record_outcome(key, now, ObsOutcome::Partial, Some(latency));
            return EngineResponse {
                hits,
                served: Served::Partial { partitions_answered: answered_total },
                latency: Some(latency),
            };
        }
        self.cache.put(key, hits.clone());
        let served = if missing > 0 {
            self.counters.degraded.fetch_add(1, Ordering::Relaxed);
            self.record_outcome(key, now, ObsOutcome::Degraded, Some(latency));
            Served::Degraded { missing }
        } else if contacted < decision.active {
            self.counters.routed.fetch_add(1, Ordering::Relaxed);
            self.record_outcome(key, now, ObsOutcome::Routed, Some(latency));
            Served::Routed { partitions_contacted: contacted }
        } else {
            self.counters.full.fetch_add(1, Ordering::Relaxed);
            self.record_outcome(key, now, ObsOutcome::Full, Some(latency));
            Served::Full
        };
        EngineResponse { hits, served, latency: Some(latency) }
    }

    /// Evaluate a non-empty dispatch plan through the broker. The legacy
    /// path (no latency model, no gather deadline) is the pre-suite code
    /// bit-for-bit; the timed path feeds the engine-drawn per-partition
    /// completions into a deadline-aware gather.
    fn evaluate_plan(
        &self,
        snap: &PartitionedIndex,
        terms: &[TermId],
        k: usize,
        key: u64,
        now: SimTime,
        plan: &DispatchPlan,
    ) -> EngineResponse {
        if self.timed() {
            let timing =
                GatherTiming { completions: &plan.completions, deadline: self.gather_deadline };
            let (resp, answered) =
                self.broker.query_selected_timed_in(snap, terms, k, &plan.served, key, now, timing);
            self.resolve_evaluated(key, now, plan, resp, Some(answered))
        } else {
            let resp = self.broker.query_selected_at_in(snap, terms, k, &plan.served, key, now);
            self.resolve_evaluated(key, now, plan, resp, None)
        }
    }

    /// Fold one dispatch plan's hedging counters into the engine totals.
    fn account_dispatch(&self, plan: &DispatchPlan) {
        self.counters.hedged.fetch_add(plan.hedges, Ordering::Relaxed);
        self.counters.cancelled.fetch_add(plan.cancelled, Ordering::Relaxed);
        self.counters.hedge_work_us.fetch_add(plan.hedge_work, Ordering::Relaxed);
    }

    /// Shared tail of the cold path: turn a brokered response for `plan`
    /// into the engine response — cache fill, counters, outcome event.
    /// `answered` is `Some` on the timed path (how many served partitions
    /// merged before the gather deadline) and `None` on the legacy path.
    fn resolve_evaluated(
        &self,
        key: u64,
        now: SimTime,
        plan: &DispatchPlan,
        resp: BrokeredResponse,
        answered: Option<usize>,
    ) -> EngineResponse {
        if let Some(answered) = answered {
            if answered < plan.served.len() {
                // Partial coverage: report it exactly, and never cache a
                // truncated result under the full answer's key.
                self.counters.partial.fetch_add(1, Ordering::Relaxed);
                self.record_outcome(key, now, ObsOutcome::Partial, Some(resp.latency));
                return EngineResponse {
                    hits: resp.hits,
                    served: Served::Partial { partitions_answered: answered },
                    latency: Some(resp.latency),
                };
            }
        }
        self.cache.put(key, resp.hits.clone());
        // The legacy model charges hedge retries as additive latency; the
        // timed gather already folded hedge-shortened completions in, so
        // adding `hedge_extra` there would double-charge.
        let latency =
            if answered.is_some() { resp.latency } else { resp.latency + plan.hedge_extra };
        let served = if plan.missing == 0 {
            self.counters.full.fetch_add(1, Ordering::Relaxed);
            self.record_outcome(key, now, ObsOutcome::Full, Some(latency));
            Served::Full
        } else {
            self.counters.degraded.fetch_add(1, Ordering::Relaxed);
            self.record_outcome(key, now, ObsOutcome::Degraded, Some(latency));
            Served::Degraded { missing: plan.missing }
        };
        EngineResponse { hits: resp.hits, served, latency: Some(latency) }
    }

    fn record_outcome(
        &self,
        qid: u64,
        now: SimTime,
        outcome: ObsOutcome,
        latency: Option<SimTime>,
    ) {
        self.recorder.record(Event::Outcome { qid, now, outcome, latency_us: latency });
    }

    /// Counters so far.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            cache_hits: self.counters.cache_hits.load(Ordering::Relaxed),
            full: self.counters.full.load(Ordering::Relaxed),
            degraded: self.counters.degraded.load(Ordering::Relaxed),
            stale: self.counters.stale.load(Ordering::Relaxed),
            failed: self.counters.failed.load(Ordering::Relaxed),
            hedged: self.counters.hedged.load(Ordering::Relaxed),
            cancelled: self.counters.cancelled.load(Ordering::Relaxed),
            partial: self.counters.partial.load(Ordering::Relaxed),
            routed: self.counters.routed.load(Ordering::Relaxed),
            broadenings: self.counters.broadenings.load(Ordering::Relaxed),
            hedge_work_us: self.counters.hedge_work_us.load(Ordering::Relaxed),
        }
    }

    /// The cache's own counters.
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.cache.stats()
    }

    /// The broker, for busy-time inspection.
    pub fn broker(&self) -> &DocBroker<R> {
        &self.broker
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::LruCache;
    use dwr_partition::doc::{DocPartitioner, RoundRobinPartitioner};
    use dwr_partition::parted::Corpus;

    fn setup() -> PartitionedIndex {
        let corpus: Corpus =
            (0..24u32).map(|d| vec![(TermId(d % 5), 2), (TermId(50 + d % 3), 1)]).collect();
        let a = RoundRobinPartitioner.assign(&corpus, 4);
        PartitionedIndex::build(&corpus, &a, 4)
    }

    #[test]
    fn cache_hit_on_repeat() {
        let pi = setup();
        let e = DistributedEngine::new(&pi, LruCache::new(16), 2);
        let (r1, s1) = e.query(&[TermId(1)], 5);
        assert_eq!(s1, Served::Full);
        let (r2, s2) = e.query(&[TermId(1)], 5);
        assert_eq!(s2, Served::CacheHit);
        assert_eq!(r1, r2);
        assert_eq!(e.stats().cache_hits, 1);
    }

    #[test]
    fn query_key_is_order_insensitive() {
        assert_eq!(query_key(&[TermId(1), TermId(2)]), query_key(&[TermId(2), TermId(1)]));
        assert_ne!(query_key(&[TermId(1)]), query_key(&[TermId(2)]));
    }

    #[test]
    fn replica_failover_keeps_full_service() {
        let pi = setup();
        let e = DistributedEngine::new(&pi, LruCache::new(16), 2);
        e.set_replica_alive(0, 0, false); // one replica of partition 0 down
        let (_, s) = e.query(&[TermId(2)], 5);
        assert_eq!(s, Served::Full, "second replica covers");
    }

    #[test]
    fn dead_group_degrades_results() {
        let pi = setup();
        let e = DistributedEngine::new(&pi, LruCache::new(16), 1);
        e.set_replica_alive(0, 0, false); // partition 0 gone entirely
        let (hits, s) = e.query(&[TermId(2)], 24);
        assert_eq!(s, Served::Degraded { missing: 1 });
        // Documents of partition 0 (globals 0,4,8,...) are absent.
        assert!(hits.iter().all(|h| h.doc % 4 != 0), "{hits:?}");
    }

    #[test]
    fn stale_serving_during_total_outage() {
        let pi = setup();
        let e = DistributedEngine::new(&pi, LruCache::new(16), 1);
        let (fresh, _) = e.query(&[TermId(3)], 5); // populate cache
        for p in 0..4 {
            e.set_replica_alive(p, 0, false);
        }
        let (stale, s) = e.query_stale_ok(&[TermId(3)], 5);
        assert_eq!(s, Served::StaleFromCache);
        assert_eq!(stale, fresh);
        // A query never seen before cannot be served at all.
        let (none, s2) = e.query_stale_ok(&[TermId(4)], 5);
        assert_eq!(s2, Served::Failed);
        assert!(none.is_empty());
    }

    #[test]
    fn selection_limits_partitions() {
        let pi = setup();
        let sel = dwr_partition::select::CoriSelector::from_partitions(&pi);
        let e = DistributedEngine::new(&pi, LruCache::new(16), 1).with_selection(Arc::new(sel), 2);
        let (hits, s) = e.query(&[TermId(1)], 24);
        // Honest coverage: 2 of 4 partitions answered, which is routed
        // service, not Full — routing may have lost recall.
        assert_eq!(s, Served::Routed { partitions_contacted: 2 });
        // Only 2 of 4 partitions answered: at most 12 of 24 docs reachable.
        assert!(hits.len() <= 12);
        assert_eq!(e.stats().routed, 1);
        // Routed answers are cached: routing is deterministic.
        let (_, again) = e.query(&[TermId(1)], 24);
        assert_eq!(again, Served::CacheHit);
    }

    #[test]
    fn stats_accumulate() {
        let pi = setup();
        let e = DistributedEngine::new(&pi, LruCache::new(16), 1);
        e.query(&[TermId(0)], 5);
        e.query(&[TermId(0)], 5);
        e.query(&[TermId(1)], 5);
        let s = e.stats();
        assert_eq!(s.full, 2);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(e.cache_stats().misses, 2);
    }

    #[test]
    fn query_full_reports_latency_only_for_backend_answers() {
        let pi = setup();
        let e = DistributedEngine::new(&pi, LruCache::new(16), 1);
        let first = e.query_full(&[TermId(1)], 5);
        assert_eq!(first.served, Served::Full);
        assert!(first.latency.is_some_and(|l| l > 0));
        let second = e.query_full(&[TermId(1)], 5);
        assert_eq!(second.served, Served::CacheHit);
        assert!(second.latency.is_none());
    }

    #[test]
    fn engine_is_send_sync_and_serves_from_threads() {
        fn assert_send_sync<T: Send + Sync>(_: &T) {}
        let pi = setup();
        let e = Arc::new(DistributedEngine::new(&pi, LruCache::new(64), 2));
        assert_send_sync(&*e);
        let baseline = e.query(&[TermId(1)], 5).0;
        std::thread::scope(|s| {
            for _ in 0..4 {
                let e = Arc::clone(&e);
                let baseline = baseline.clone();
                s.spawn(move || {
                    for _ in 0..25 {
                        let (hits, served) = e.query(&[TermId(1)], 5);
                        assert_eq!(hits, baseline);
                        assert!(matches!(served, Served::CacheHit | Served::Full));
                    }
                });
            }
        });
        let s = e.stats();
        assert_eq!(s.cache_hits + s.full, 101);
    }

    #[test]
    fn set_replica_alive_out_of_range_is_ignored() {
        let pi = setup();
        let e = DistributedEngine::new(&pi, LruCache::new(16), 2);
        assert!(!e.set_replica_alive(99, 0, false), "bad partition");
        assert!(!e.set_replica_alive(0, 99, false), "bad replica");
        assert!(e.set_replica_alive(0, 1, false));
        let (_, s) = e.query(&[TermId(1)], 5);
        assert_eq!(s, Served::Full, "state untouched by bad indices");
    }

    fn down(start: SimTime, end: SimTime) -> dwr_avail::failure::DownInterval {
        dwr_avail::failure::DownInterval { start, end }
    }

    #[test]
    fn fault_schedule_drives_replica_state() {
        let pi = setup();
        // Partition 0's only replica is down over the second simulated
        // second (wide enough that queries near it don't graze it
        // mid-flight: service times are a few hundred µs).
        let sec = 1_000_000;
        let schedule = FaultSchedule::from_intervals(
            vec![vec![vec![down(sec, 2 * sec)]], vec![vec![]], vec![vec![]], vec![vec![]]],
            10 * sec,
        );
        let e = DistributedEngine::new(&pi, LruCache::new(16), 1).with_faults(Arc::new(schedule));
        let (_, s) = e.query(&[TermId(2)], 24);
        assert_eq!(s, Served::Full, "up before the outage");
        e.advance_to(sec + sec / 2);
        let (_, s) = e.query(&[TermId(3)], 24);
        assert_eq!(s, Served::Degraded { missing: 1 }, "outage applied");
        e.advance_to(3 * sec);
        let (_, s) = e.query(&[TermId(4)], 24);
        assert_eq!(s, Served::Full, "repair applied");
        assert_eq!(e.now(), 3 * sec);
    }

    /// A 2-partition, 2-replica setting where replica 0 of partition 0
    /// goes down just after dispatch time 0 — i.e. mid-query for any
    /// service time > 1 µs.
    fn setup_mid_query_death() -> (PartitionedIndex, Arc<FaultSchedule>) {
        let corpus: Corpus = (0..24u32).map(|d| vec![(TermId(d % 5), 2)]).collect();
        let a = RoundRobinPartitioner.assign(&corpus, 2);
        let pi = PartitionedIndex::build(&corpus, &a, 2);
        let schedule = FaultSchedule::from_intervals(
            vec![vec![vec![down(1, 1_000_000)], vec![]], vec![vec![], vec![]]],
            2_000_000,
        );
        (pi, Arc::new(schedule))
    }

    #[test]
    fn mid_query_death_is_hedged_on_another_replica() {
        let (pi, schedule) = setup_mid_query_death();
        let e = DistributedEngine::new(&pi, LruCache::new(16), 2).with_faults(schedule);
        let r = e.query_full(&[TermId(1)], 10);
        assert_eq!(r.served, Served::Full, "the hedge covers the dead replica");
        assert_eq!(e.stats().hedged, 1);
        let counts = e.dispatch_counts();
        assert_eq!(counts[0], vec![1, 1], "first attempt plus hedge on partition 0");
        assert_eq!(counts[1].iter().sum::<u64>(), 1, "partition 1 served in one attempt");
    }

    #[test]
    fn hedge_unavailable_degrades_the_partition() {
        let pi = setup();
        // Single replica per partition: a mid-query death has no hedge
        // target, so the partition is dropped as degraded.
        let schedule = FaultSchedule::from_intervals(
            vec![vec![vec![down(1, 1_000_000)]], vec![vec![]], vec![vec![]], vec![vec![]]],
            2_000_000,
        );
        let e = DistributedEngine::new(&pi, LruCache::new(16), 1).with_faults(Arc::new(schedule));
        let (_, s) = e.query(&[TermId(2)], 24);
        assert_eq!(s, Served::Degraded { missing: 1 });
        assert_eq!(e.stats().hedged, 0);
    }

    #[test]
    fn deadline_blocks_the_hedged_retry() {
        let (pi, schedule) = setup_mid_query_death();
        // A 1 µs deadline can never fit attempt + retry: degrade instead.
        let e = DistributedEngine::new(&pi, LruCache::new(16), 2)
            .with_faults(schedule)
            .with_deadline(1);
        let (_, s) = e.query(&[TermId(1)], 10);
        assert_eq!(s, Served::Degraded { missing: 1 });
        assert_eq!(e.stats().hedged, 0, "no retry was dispatched");
        assert_eq!(e.dispatch_counts()[0], vec![1, 0], "replica 1 untouched");
    }

    /// Regression for the check-then-dispatch race: pre-fix, the engine
    /// probed availability and dispatched under *separate* lock
    /// acquisitions and ignored a `None` dispatch, so a group dying in
    /// between was still queried and counted `Full`. Post-fix, every
    /// evaluated partition corresponds to exactly one successful dispatch
    /// (no fault schedule ⇒ no hedges), an invariant this test checks
    /// under a concurrent replica killer.
    #[test]
    fn full_service_implies_one_dispatch_per_partition() {
        use std::sync::atomic::AtomicBool;
        // A deliberately wide index: with 256 partitions, the pre-fix
        // availability pass and dispatch pass are microseconds apart, so
        // the killer thread lands inside the TOCTOU window even when a
        // timeslice preemption is the only source of interleaving.
        const P: usize = 256;
        let corpus: Corpus = (0..P as u32).map(|d| vec![(TermId(d % 7), 1)]).collect();
        let a = RoundRobinPartitioner.assign(&corpus, P);
        let pi = PartitionedIndex::build(&corpus, &a, P);
        let e = Arc::new(DistributedEngine::new(&pi, LruCache::new(4), 1));
        let stop = Arc::new(AtomicBool::new(false));
        let killer = {
            let e = Arc::clone(&e);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut up = false;
                while !stop.load(Ordering::Relaxed) {
                    e.set_replica_alive(0, 0, up);
                    up = !up;
                }
            })
        };
        let mut evaluated = 0u64;
        for q in 0..5_000u32 {
            // Distinct single-term queries: the cache never answers.
            let (_, served) = e.query(&[TermId(1_000 + q)], 5);
            evaluated += match served {
                Served::Full => P as u64,
                Served::Degraded { missing } => (P - missing) as u64,
                Served::Failed => 0,
                Served::CacheHit
                | Served::StaleFromCache
                | Served::Shed
                | Served::Partial { .. }
                | Served::Routed { .. } => {
                    unreachable!("distinct cold queries on a single-site engine")
                }
            };
        }
        stop.store(true, Ordering::Relaxed);
        killer.join().expect("killer thread");
        let dispatched: u64 = e.dispatch_counts().iter().flatten().sum();
        assert_eq!(
            dispatched, evaluated,
            "every partition counted as served must have had a successful dispatch"
        );
    }

    /// Regression for the hedge-budget bug: the deadline check used
    /// `2 * svc <= d`, pricing the retry at the *first* replica's cost.
    /// With a straggler model the replicas diverge, and the budget must
    /// charge the retry replica's own drawn cost — in both directions.
    #[test]
    fn hedge_budget_charges_the_retry_replicas_own_cost() {
        use crate::straggler::StragglerModel;
        let (pi, schedule) = setup_mid_query_death();
        let svc = {
            let probe = DistributedEngine::new(&pi, LruCache::new(16), 2);
            probe.broker().service_time(0, &[TermId(1)]).ceil() as SimTime
        };
        // Direction 1: first replica cheap (c1 = svc), retry replica 3×
        // slower. Old budget 2·c1 = 2svc fits d = 3svc and would hedge;
        // the honest budget c1 + c2 = 4svc does not, so the partition
        // degrades with no retry dispatched.
        let slow_retry = Arc::new(StragglerModel::fixed(vec![vec![1.0, 3.0], vec![1.0, 1.0]]));
        let e = DistributedEngine::new(&pi, LruCache::new(16), 2)
            .with_faults(Arc::clone(&schedule))
            .with_deadline(3 * svc)
            .with_stragglers(slow_retry);
        let r = e.query_full(&[TermId(1)], 10);
        assert_eq!(r.served, Served::Degraded { missing: 1 });
        assert_eq!(e.stats().hedged, 0, "over-budget retry must not be dispatched");
        assert_eq!(e.dispatch_counts()[0], vec![1, 0], "retry replica untouched");
        // Direction 2: first replica 2× slow, retry replica 2× fast. The
        // old budget 2·c1 = 4svc exceeds d = 3svc and would refuse; the
        // honest budget c1 + c2 = 2svc + ceil(svc/2) fits, so the hedge
        // serves the partition.
        let fast_retry = Arc::new(StragglerModel::fixed(vec![vec![2.0, 0.5], vec![1.0, 1.0]]));
        let e = DistributedEngine::new(&pi, LruCache::new(16), 2)
            .with_faults(schedule)
            .with_deadline(3 * svc)
            .with_stragglers(fast_retry);
        let r = e.query_full(&[TermId(1)], 10);
        assert_eq!(r.served, Served::Full, "affordable retry covers the dead replica");
        assert_eq!(e.stats().hedged, 1);
        assert_eq!(e.dispatch_counts()[0], vec![1, 1]);
    }

    #[test]
    fn explicit_on_death_policy_is_identical_to_the_default() {
        let (pi, schedule) = setup_mid_query_death();
        let default =
            DistributedEngine::new(&pi, LruCache::new(16), 2).with_faults(Arc::clone(&schedule));
        let explicit = DistributedEngine::new(&pi, LruCache::new(16), 2)
            .with_faults(schedule)
            .with_hedge_policy(HedgePolicy::OnDeath);
        for q in 0..10u32 {
            let terms = [TermId(q % 5)];
            let a = default.query_full(&terms, 10);
            let b = explicit.query_full(&terms, 10);
            assert_eq!(a.hits, b.hits, "query {q}");
            assert_eq!(a.served, b.served, "query {q}");
            assert_eq!(a.latency, b.latency, "query {q}");
        }
        assert_eq!(default.stats(), explicit.stats());
        assert_eq!(default.dispatch_counts(), explicit.dispatch_counts());
    }

    #[test]
    fn never_policy_drops_dead_partition_without_hedge() {
        let (pi, schedule) = setup_mid_query_death();
        let e = DistributedEngine::new(&pi, LruCache::new(16), 2)
            .with_faults(schedule)
            .with_hedge_policy(HedgePolicy::Never);
        let (_, s) = e.query(&[TermId(1)], 10);
        assert_eq!(s, Served::Degraded { missing: 1 });
        assert_eq!(e.stats().hedged, 0);
        assert_eq!(e.dispatch_counts()[0], vec![1, 0], "no retry dispatched");
    }

    #[test]
    fn tied_requests_cancel_the_loser_and_cut_the_tail() {
        use crate::straggler::StragglerModel;
        let pi = {
            let corpus: Corpus = (0..24u32).map(|d| vec![(TermId(d % 5), 2)]).collect();
            let a = RoundRobinPartitioner.assign(&corpus, 2);
            PartitionedIndex::build(&corpus, &a, 2)
        };
        // Replica 0 of partition 0 is 5× slow; its twin is nominal.
        let model = Arc::new(StragglerModel::fixed(vec![vec![5.0, 1.0], vec![1.0, 1.0]]));
        let tied = DistributedEngine::new(&pi, LruCache::new(16), 2)
            .with_stragglers(Arc::clone(&model))
            .with_hedge_policy(HedgePolicy::Tied);
        let never = DistributedEngine::new(&pi, LruCache::new(16), 2)
            .with_stragglers(model)
            .with_hedge_policy(HedgePolicy::Never);
        let t = tied.query_full(&[TermId(1)], 10);
        let n = never.query_full(&[TermId(1)], 10);
        assert_eq!(t.served, Served::Full);
        assert_eq!(t.hits, n.hits, "policy changes latency, never results");
        assert!(
            t.latency.unwrap() < n.latency.unwrap(),
            "tied {} must beat the straggler {}",
            t.latency.unwrap(),
            n.latency.unwrap()
        );
        let s = tied.stats();
        assert_eq!(s.hedged, 2, "every partition launched its twin");
        assert_eq!(s.cancelled, 2, "both losers cancelled");
        assert!(s.hedge_work_us > 0, "cancelled work is accounted");
        assert_eq!(never.stats().hedged, 0);
    }

    #[test]
    fn fixed_delay_hedges_only_actual_stragglers() {
        use crate::straggler::StragglerModel;
        let pi = setup();
        let svc = {
            let probe = DistributedEngine::new(&pi, LruCache::new(16), 2);
            probe.broker().service_time(0, &[TermId(1)]).ceil() as SimTime
        };
        // Only partition 0's first replica straggles (4×).
        let model = Arc::new(StragglerModel::fixed(vec![
            vec![4.0, 1.0],
            vec![1.0, 1.0],
            vec![1.0, 1.0],
            vec![1.0, 1.0],
        ]));
        let e = DistributedEngine::new(&pi, LruCache::new(16), 2)
            .with_stragglers(model)
            .with_hedge_policy(HedgePolicy::FixedDelay(2 * svc));
        let r = e.query_full(&[TermId(1)], 10);
        assert_eq!(r.served, Served::Full);
        let s = e.stats();
        assert_eq!(s.hedged, 1, "only the straggling partition hedges");
        assert_eq!(s.cancelled, 1, "the slow original is cancelled");
        assert_eq!(e.dispatch_counts()[0], vec![1, 1]);
    }

    #[test]
    fn percentile_trigger_engages_after_live_history_accumulates() {
        use crate::straggler::StragglerModel;
        // One partition, two replicas: replica 0 is 8× slow, so the
        // round-robin alternates slow-first and fast-first queries.
        let corpus: Corpus = (0..24u32).map(|d| vec![(TermId(d % 12), 2)]).collect();
        let a = RoundRobinPartitioner.assign(&corpus, 1);
        let pi = PartitionedIndex::build(&corpus, &a, 1);
        let model = Arc::new(StragglerModel::fixed(vec![vec![8.0, 1.0]]));
        let e = DistributedEngine::new(&pi, LruCache::new(64), 2)
            .with_stragglers(model)
            .with_hedge_policy(HedgePolicy::PercentileTrigger(25.0));
        // Warmup: below MIN_TRIGGER_SAMPLES the policy falls back to
        // hedge-on-death, and nothing dies here.
        for q in 0..MIN_TRIGGER_SAMPLES as u32 {
            e.query(&[TermId(q % 12), TermId(100 + q)], 5);
        }
        assert_eq!(e.stats().hedged, 0, "no trigger before history accumulates");
        // With history in place, the p25 trigger sits near the fast
        // replica's completion: slow-first queries now hedge onto the
        // fast twin and cancel the straggler.
        for q in 0..10u32 {
            e.query(&[TermId(q % 12), TermId(200 + q)], 5);
        }
        let s = e.stats();
        assert!(s.hedged >= 5, "slow-first queries hedge: {s:?}");
        assert_eq!(s.cancelled, s.hedged, "no deaths: every hedge cancels a loser");
    }

    #[test]
    fn gather_deadline_returns_partial_with_exact_coverage() {
        use crate::straggler::StragglerModel;
        let pi = setup();
        // Partitions 1 and 3 straggle 50×; the deadline admits only the
        // nominal ones.
        let model =
            Arc::new(StragglerModel::fixed(vec![vec![1.0], vec![50.0], vec![1.0], vec![50.0]]));
        let deadline = 2 * {
            let probe = DistributedEngine::new(&pi, LruCache::new(16), 1);
            (0..4)
                .map(|p| probe.broker().service_time(p, &[TermId(2)]).ceil() as SimTime)
                .max()
                .unwrap()
        };
        let e = DistributedEngine::new(&pi, LruCache::new(16), 1)
            .with_stragglers(model)
            .with_gather_deadline(deadline);
        let r = e.query_full(&[TermId(2)], 24);
        assert_eq!(r.served, Served::Partial { partitions_answered: 2 });
        assert!(r.latency.unwrap() >= deadline, "partial responses release at the deadline");
        // Round-robin: doc % 4 names the partition; stragglers' docs are
        // absent from the merge.
        assert!(r.hits.iter().all(|h| h.doc % 4 == 0 || h.doc % 4 == 2), "{:?}", r.hits);
        assert!(!r.hits.is_empty());
        assert_eq!(e.stats().partial, 1);
        // Partial results are never cached: the same query evaluates
        // again rather than serving the truncated answer as a hit.
        let again = e.query_full(&[TermId(2)], 24);
        assert_eq!(again.served, Served::Partial { partitions_answered: 2 });
        assert_eq!(e.stats().partial, 2);
        assert_eq!(e.stats().cache_hits, 0);
    }

    /// An LRU whose `get` panics on one key: a client thread dies while
    /// holding the cache shard lock, and the engine must keep serving
    /// every other client.
    struct BombCache {
        inner: LruCache,
        bomb: u64,
    }

    impl crate::cache::ResultCache for BombCache {
        fn get(&mut self, key: u64) -> Option<&crate::cache::CachedResults> {
            assert_ne!(key, self.bomb, "boom");
            self.inner.get(key)
        }
        fn put(&mut self, key: u64, value: crate::cache::CachedResults) {
            self.inner.put(key, value);
        }
        fn stats(&self) -> crate::cache::CacheStats {
            self.inner.stats()
        }
        fn len(&self) -> usize {
            self.inner.len()
        }
        fn name(&self) -> &'static str {
            "Bomb"
        }
    }

    #[test]
    fn panicked_client_does_not_wedge_other_threads() {
        let pi = setup();
        let bomb = query_key(&[TermId(42)]);
        let e =
            Arc::new(DistributedEngine::new(&pi, BombCache { inner: LruCache::new(16), bomb }, 2));
        let baseline = e.query(&[TermId(1)], 5).0;
        let poisoner = Arc::clone(&e);
        std::thread::spawn(move || poisoner.query(&[TermId(42)], 5))
            .join()
            .expect_err("the bomb query panics its client");
        // Other clients keep hitting the same (now-recovered) shard and
        // the replica groups.
        std::thread::scope(|s| {
            for _ in 0..3 {
                let e = Arc::clone(&e);
                let baseline = baseline.clone();
                s.spawn(move || {
                    let (hits, served) = e.query(&[TermId(1)], 5);
                    assert_eq!(hits, baseline);
                    assert!(matches!(served, Served::CacheHit | Served::Full));
                    e.set_replica_alive(0, 0, false);
                    e.set_replica_alive(0, 0, true);
                });
            }
        });
    }

    /// Batch ≡ loop on the engine: responses and every counter agree,
    /// including duplicate queries inside one batch (answered from the
    /// cache exactly as the loop form answers them) and repeat batches
    /// (all cache hits).
    #[test]
    fn engine_batch_matches_query_at_a_time_loop() {
        let pi = setup();
        let looped = DistributedEngine::new(&pi, LruCache::new(64), 2);
        let batched = DistributedEngine::new(&pi, LruCache::new(64), 2);
        // 20 queries over 10 distinct keys: every key appears twice, so
        // the batch exercises the in-flight duplicate path.
        let queries: Vec<Vec<TermId>> =
            (0..20u32).map(|q| vec![TermId(q % 5), TermId(50 + (q / 5) % 2)]).collect();
        let a: Vec<EngineResponse> = queries.iter().map(|t| looped.query_full(t, 5)).collect();
        let b = batched.query_batch(&queries, 5);
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(x.hits, y.hits, "query {i}");
            assert_eq!(x.served, y.served, "query {i}");
            assert_eq!(x.latency, y.latency, "query {i}");
        }
        assert_eq!(looped.stats(), batched.stats());
        assert_eq!(looped.cache_stats().hits, batched.cache_stats().hits);
        assert_eq!(looped.cache_stats().misses, batched.cache_stats().misses);
        assert_eq!(looped.dispatch_counts(), batched.dispatch_counts());
        assert_eq!(looped.broker().busy_time(), batched.broker().busy_time());
        assert_eq!(looped.broker().eval_stats(), batched.broker().eval_stats());
        // A second identical batch is answered entirely from the cache.
        let again = batched.query_batch(&queries, 5);
        assert!(again.iter().all(|r| r.served == Served::CacheHit));
    }

    #[test]
    fn engine_batch_matches_loop_under_faults_and_selection() {
        let pi = setup();
        let sec = 1_000_000;
        let schedule = Arc::new(FaultSchedule::from_intervals(
            vec![vec![vec![down(1, sec)]], vec![vec![]], vec![vec![]], vec![vec![]]],
            2 * sec,
        ));
        let sel = Arc::new(dwr_partition::select::CoriSelector::from_partitions(&pi));
        let mk = || {
            DistributedEngine::new(&pi, LruCache::new(64), 1)
                .with_selection(Arc::clone(&sel) as _, 3)
                .with_faults(Arc::clone(&schedule))
        };
        let (looped, batched) = (mk(), mk());
        let queries: Vec<Vec<TermId>> = (0..12u32).map(|q| vec![TermId(q % 5)]).collect();
        let a: Vec<EngineResponse> = queries.iter().map(|t| looped.query_full(t, 8)).collect();
        let b = batched.query_batch(&queries, 8);
        assert!(a.iter().any(|r| matches!(r.served, Served::Degraded { .. })));
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(x.hits, y.hits, "query {i}");
            assert_eq!(x.served, y.served, "query {i}");
            assert_eq!(x.latency, y.latency, "query {i}");
        }
        assert_eq!(looped.stats(), batched.stats());
        assert_eq!(looped.dispatch_counts(), batched.dispatch_counts());
    }

    #[test]
    fn engine_strategy_is_transparent_to_responses() {
        let pi = setup();
        let ex = DistributedEngine::new(&pi, LruCache::new(64), 2)
            .with_strategy(EvalStrategy::Exhaustive);
        let ms =
            DistributedEngine::new(&pi, LruCache::new(64), 2).with_strategy(EvalStrategy::MaxScore);
        for q in 0..20u32 {
            let terms = [TermId(q % 5), TermId(50 + q % 3)];
            let a = ex.query_full(&terms, 10);
            let b = ms.query_full(&terms, 10);
            assert_eq!(a.hits, b.hits, "query {q}");
            assert_eq!(a.served, b.served, "query {q}");
            assert_eq!(a.latency, b.latency, "query {q}");
        }
        assert_eq!(ex.stats(), ms.stats());
        assert!(
            ms.broker().eval_stats().postings_scanned <= ex.broker().eval_stats().postings_scanned
        );
    }

    #[test]
    fn parallel_engine_matches_sequential_engine() {
        let pi = setup();
        let seq = DistributedEngine::new(&pi, LruCache::new(16), 2);
        let par = DistributedEngine::new(&pi, LruCache::new(16), 2).with_parallelism(4);
        assert!(par.is_parallel());
        for q in 0..20u32 {
            let terms = [TermId(q % 5), TermId(50 + q % 3)];
            let a = seq.query_full(&terms, 10);
            let b = par.query_full(&terms, 10);
            assert_eq!(a.hits, b.hits, "query {q}");
            assert_eq!(a.served, b.served, "query {q}");
            assert_eq!(a.latency, b.latency, "query {q}");
        }
        assert_eq!(seq.stats(), par.stats());
    }

    #[test]
    fn k_zero_serves_empty_and_full_on_every_path() {
        let pi = setup();
        let e = DistributedEngine::new(&pi, LruCache::new(16), 2);
        let r = e.query_full(&[TermId(1)], 0);
        assert!(r.hits.is_empty());
        assert_eq!(r.served, Served::Full);
        assert_eq!(r.latency, Some(0));
        // Timed path: the deadline gather must not report Partial.
        let timed = DistributedEngine::new(&pi, LruCache::new(16), 2).with_gather_deadline(1);
        let rt = timed.query_full(&[TermId(1)], 0);
        assert_eq!(rt.served, Served::Full);
        // Batch ≡ loop.
        let batch = e.query_batch(&[vec![TermId(2)], vec![TermId(3)]], 0);
        assert!(batch.iter().all(|r| r.hits.is_empty() && r.served == Served::Full));
        assert_eq!(e.stats().full, 3);
    }

    fn live_setup(parts: u32, capacity: usize) -> Arc<dwr_partition::repart::RepartIndex> {
        let corpus: Corpus =
            (0..24u32).map(|d| vec![(TermId(d % 5), 2), (TermId(50 + d % 3), 1)]).collect();
        let a = RoundRobinPartitioner.assign(&corpus, parts as usize);
        Arc::new(dwr_partition::repart::RepartIndex::build(corpus, &a, parts as usize, capacity))
    }

    #[test]
    fn live_engine_fires_scheduled_splits_exactly_once() {
        use dwr_partition::repart::{SplitEvent, SplitFate, SplitSchedule};
        let repart = live_setup(2, 8);
        let schedule = SplitSchedule::from_events(
            vec![
                SplitEvent { at: 10, fate: SplitFate::Commit },
                SplitEvent { at: 20, fate: SplitFate::CrashBeforePublish },
                SplitEvent { at: 30, fate: SplitFate::CrashAfterPublish },
            ],
            100,
        );
        let e = DistributedEngine::new_live(&repart, LruCache::new(16), 2)
            .with_splits(Arc::new(schedule));
        assert_eq!(repart.epoch(), 0);
        e.advance_to(15);
        e.advance_to(15); // idempotent: the cursor already passed t=10
        assert_eq!(repart.epoch(), 1, "commit fired once");
        e.advance_to(25);
        assert_eq!(repart.epoch(), 1, "crash-before-publish aborted");
        e.advance_to(99);
        assert_eq!(repart.epoch(), 2, "crash-after-publish rolled forward");
        let stats = repart.repart_stats();
        assert_eq!(stats.splits_committed, 2);
        assert_eq!(stats.splits_aborted, 1);
        repart.validate().expect("map never torn");
    }

    #[test]
    fn live_engine_serves_identically_across_a_split() {
        let repart = live_setup(2, 8);
        let e = DistributedEngine::new_live(&repart, LruCache::new(1), 2);
        let terms = [TermId(1), TermId(51)];
        let before = e.query_full(&terms, 24);
        assert_eq!(before.served, Served::Full);
        repart.split(0, dwr_partition::repart::SplitFate::Commit).unwrap();
        // Evict the cached entry so the post-split query re-evaluates
        // against the new epoch's snapshot.
        e.query_full(&[TermId(2)], 1);
        let after = e.query_full(&terms, 24);
        assert_eq!(after.served, Served::Full);
        assert_eq!(before.hits, after.hits, "split-invariant scoring: same docs, same scores");
    }

    #[test]
    #[should_panic(expected = "static partition layout")]
    fn selection_rejects_live_index() {
        let repart = live_setup(2, 8);
        let sel = dwr_partition::select::CoriSelector::from_partitions(&repart.snapshot());
        let _ = DistributedEngine::new_live(&repart, LruCache::new(16), 1)
            .with_selection(Arc::new(sel), 1);
    }

    #[test]
    #[should_panic(expected = "require a live index")]
    fn splits_require_live_index() {
        let pi = setup();
        let schedule = dwr_partition::repart::SplitSchedule::generate(1, 100, 7);
        let _ = DistributedEngine::new(&pi, LruCache::new(16), 1).with_splits(Arc::new(schedule));
    }
}
